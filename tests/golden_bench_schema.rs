//! Golden schema tests for the committed bench artifacts.
//!
//! CI gates parse `BENCH_sweep.json`, `BENCH_arena.json` and
//! `BENCH_serve.json` with ad-hoc python; nothing used to pin their *shape*, so a bench refactor could
//! silently drop a key and the gates would fail far from the change (or
//! worse, pass vacuously). These tests parse the committed artifacts with a
//! small hand-rolled JSON reader (the workspace deliberately has no JSON
//! dependency) and assert every key and shape the gates and docs rely on —
//! schema drift now fails `cargo test -q` right next to the code that
//! caused it.

use std::collections::BTreeMap;

/// Minimal JSON value — just enough to validate the bench artifacts.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn expect_key(&self, key: &str) -> &Json {
        self.get(key).unwrap_or_else(|| panic!("missing required key `{key}` in {self:?}"))
    }

    fn as_num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    fn as_arr(&self) -> &[Json] {
        match self {
            Json::Arr(a) => a,
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn as_bool(&self) -> bool {
        match self {
            Json::Bool(b) => *b,
            other => panic!("expected bool, got {other:?}"),
        }
    }
}

/// Recursive-descent JSON parser over bytes. Supports exactly the grammar
/// the bench writers emit: objects, arrays, strings with `\"`/`\\` escapes,
/// numbers, booleans and null. Panics with a byte offset on malformed
/// input — these are tests, not a library.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Json {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.value();
        p.skip_ws();
        assert!(p.pos == p.bytes.len(), "trailing garbage at byte {}", p.pos);
        v
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        assert!(self.pos < self.bytes.len(), "unexpected end of input");
        self.bytes[self.pos]
    }

    fn eat(&mut self, b: u8) {
        assert_eq!(self.peek(), b, "expected `{}` at byte {}", b as char, self.pos);
        self.pos += 1;
    }

    fn eat_literal(&mut self, lit: &str) {
        self.skip_ws();
        assert!(
            self.bytes[self.pos..].starts_with(lit.as_bytes()),
            "expected `{lit}` at byte {}",
            self.pos
        );
        self.pos += lit.len();
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => {
                self.eat_literal("true");
                Json::Bool(true)
            }
            b'f' => {
                self.eat_literal("false");
                Json::Bool(false)
            }
            b'n' => {
                self.eat_literal("null");
                Json::Null
            }
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut map = BTreeMap::new();
        if self.peek() != b'}' {
            loop {
                let key = self.string();
                self.eat(b':');
                let val = self.value();
                assert!(map.insert(key.clone(), val).is_none(), "duplicate key `{key}`");
                if self.peek() != b',' {
                    break;
                }
                self.eat(b',');
            }
        }
        self.eat(b'}');
        Json::Obj(map)
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut items = Vec::new();
        if self.peek() != b']' {
            loop {
                items.push(self.value());
                if self.peek() != b',' {
                    break;
                }
                self.eat(b',');
            }
        }
        self.eat(b']');
        Json::Arr(items)
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            assert!(self.pos < self.bytes.len(), "unterminated string");
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.bytes[self.pos];
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'n' => '\n',
                        b't' => '\t',
                        other => panic!("unsupported escape `\\{}`", other as char),
                    });
                    self.pos += 1;
                }
                b => {
                    // The artifacts are ASCII; multi-byte UTF-8 would need
                    // char-wise iteration.
                    assert!(b.is_ascii(), "non-ascii byte in string at {}", self.pos);
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Json::Num(text.parse().unwrap_or_else(|_| panic!("bad number `{text}` at byte {start}")))
    }
}

fn read_artifact(name: &str) -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../").to_string() + name;
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed bench artifact {name} must be readable: {e}"));
    Parser::parse(&text)
}

#[test]
fn bench_sweep_artifact_matches_schema() {
    let doc = read_artifact("BENCH_sweep.json");

    // The keys the CI speedup gate greps for.
    assert_eq!(doc.expect_key("workload").as_str(), "fig5_l1_iteration_sweep");
    assert!(doc.expect_key("seed_path_s").as_num() > 0.0);
    assert!(doc.expect_key("optimized_s").as_num() > 0.0);
    assert!(doc.expect_key("speedup").as_num() > 0.0);
    assert_eq!(doc.expect_key("points").as_num(), 6.0, "the fig5 grid has six cells");
    doc.expect_key("quick").as_bool();

    // The analytical pre-pruner section (PR 8): the pruned sweep must
    // simulate a strict subset of the grid and reproduce the curve.
    let pruned = doc.expect_key("pruned");
    let total = pruned.expect_key("cells_total").as_num();
    let simulated = pruned.expect_key("cells_simulated").as_num();
    assert_eq!(total, 6.0, "pruning runs over the same fig5 grid");
    assert!(simulated > 0.0 && simulated < total, "pruning must drop some cells, not all");
    assert!(pruned.expect_key("unpruned_s").as_num() > 0.0);
    assert!(pruned.expect_key("pruned_s").as_num() > 0.0);
    assert!(pruned.expect_key("speedup").as_num() > 0.0);
    assert!(
        pruned.expect_key("max_ber_err").as_num() >= 0.0,
        "curve-reproduction error must be recorded"
    );

    // The Ampere cross-check (PR 10): the same pruned-sweep contract on the
    // sub-core device, recorded so CI can gate model fit on the modern core.
    let ampere = doc.expect_key("ampere");
    assert_eq!(ampere.expect_key("device").as_str(), "RTX A4000");
    assert_eq!(ampere.expect_key("cells_total").as_num(), 6.0, "same fig5 grid");
    let ampere_simulated = ampere.expect_key("cells_simulated").as_num();
    assert!(
        ampere_simulated > 0.0 && ampere_simulated <= 6.0,
        "the transition band must cover at least one ampere cell"
    );
    let ampere_err = ampere.expect_key("max_ber_err").as_num();
    assert!(
        (0.0..=0.12).contains(&ampere_err),
        "ampere filled-cell BER error {ampere_err} outside the analytical band"
    );
    assert!(
        ampere.expect_key("verdicts_agree").as_bool(),
        "an ampere filled cell flipped a confident verdict"
    );
}

/// Asserts the full arena-report shape on one matrix object — applied to
/// the top-level Kepler report and to the nested Ampere report, which must
/// be structurally identical.
fn assert_arena_report(doc: &Json, label: &str) {
    assert!(!doc.expect_key("device").as_str().is_empty());
    assert!(doc.expect_key("bits").as_num() >= 1.0);
    assert_eq!(doc.expect_key("min_ber").as_num(), 0.2);

    let defenses: Vec<&str> =
        doc.expect_key("defenses").as_arr().iter().map(|d| d.as_str()).collect();
    assert!(defenses.contains(&"none"), "the undefended baseline column is required");

    let rows = doc.expect_key("rows").as_arr();
    assert!(!rows.is_empty(), "{label}: arena matrix has no attacker rows");
    let mut attackers = Vec::new();
    for row in rows {
        attackers.push(row.expect_key("attacker").as_str().to_string());
        let cells = row.expect_key("cells").as_arr();
        let cell_defenses: Vec<&str> =
            cells.iter().map(|c| c.expect_key("defense").as_str()).collect();
        assert_eq!(
            cell_defenses, defenses,
            "every attacker row must cover the defense columns in order"
        );
        for cell in cells {
            // Shape of every cell the docs and CI gate read.
            let ber = cell.expect_key("ber").as_num();
            assert!((0.0..=1.0).contains(&ber), "BER {ber} out of range");
            assert!(cell.expect_key("residual_kbps").as_num() >= 0.0);
            cell.expect_key("delivered").as_bool();
            // Fixed-strategy rows carry a defense verdict; the adaptive
            // row leaves it null and records `final_family` instead.
            match cell.expect_key("verdict") {
                Json::Null => {}
                Json::Str(verdict) => assert!(
                    ["effective", "degraded", "ineffective"].contains(&verdict.as_str()),
                    "unknown verdict `{verdict}`"
                ),
                other => panic!("`verdict` must be null or string, got {other:?}"),
            }
            cell.expect_key("fallback_escape").as_bool();
            for nullable in ["final_family", "error"] {
                match cell.expect_key(nullable) {
                    Json::Null | Json::Str(_) => {}
                    other => panic!("`{nullable}` must be null or string, got {other:?}"),
                }
            }
            cell.expect_key("escalation").as_arr();
        }
    }
    for required in ["l1", "sync", "atomic", "adaptive"] {
        assert!(
            attackers.iter().any(|a| a == required),
            "{label}: attacker row `{required}` missing"
        );
    }
}

#[test]
fn bench_arena_artifact_matches_schema() {
    let doc = read_artifact("BENCH_arena.json");

    // The paper's Kepler matrix stays at the top level (existing consumers
    // keep their paths); the sub-core Ampere matrix rides under `ampere`
    // with the identical report shape.
    assert_arena_report(&doc, "kepler");
    assert_eq!(doc.expect_key("device").as_str(), "Tesla K40C");
    let ampere = doc.expect_key("ampere");
    assert_arena_report(ampere, "ampere");
    assert_eq!(ampere.expect_key("device").as_str(), "RTX A4000");
    assert_eq!(
        ampere.expect_key("bits").as_num(),
        doc.expect_key("bits").as_num(),
        "both matrices must carry the same payload"
    );
}

#[test]
fn bench_serve_artifact_matches_schema() {
    let doc = read_artifact("BENCH_serve.json");

    assert_eq!(doc.expect_key("workload").as_str(), "resilient_sweep_service");
    assert!(doc.expect_key("cells").as_num() >= 12.0, "the bench grid has at least a dozen cells");
    assert!(doc.expect_key("cold_s").as_num() > 0.0);
    assert!(doc.expect_key("warm_s").as_num() > 0.0);
    // The CI gate asserts the warm replay is not slower than computing;
    // the committed artifact comes from a full (non-quick) run where the
    // bench itself enforces >= 5x.
    assert!(doc.expect_key("warm_speedup").as_num() > 0.0);
    let hit_rate = doc.expect_key("warm_hit_rate").as_num();
    assert!((0.0..=1.0).contains(&hit_rate), "hit rate {hit_rate} out of range");
    assert!(doc.expect_key("chaos_s").as_num() > 0.0);
    assert!(doc.expect_key("chaos_overhead").as_num() > 0.0);
    assert!(doc.expect_key("chaos_retries").as_num() >= 0.0);
    assert!(
        doc.expect_key("digests_identical").as_bool(),
        "cold, warm and chaos matrices must digest identically"
    );
    doc.expect_key("quick").as_bool();
}

#[test]
fn json_reader_handles_the_grammar_the_artifacts_use() {
    let doc = Parser::parse(r#"{"a": [1, -2.5e1, "x\"y"], "b": {"c": null, "d": true}}"#);
    assert_eq!(doc.expect_key("a").as_arr()[1].as_num(), -25.0);
    assert_eq!(doc.expect_key("a").as_arr()[2].as_str(), "x\"y");
    assert_eq!(doc.expect_key("b").expect_key("c"), &Json::Null);
    assert!(doc.expect_key("b").expect_key("d").as_bool());
}
