//! End-to-end tests of the Section-5 functional-unit channels.

use gpgpu_covert::bits::Message;
use gpgpu_covert::fu_channel::SfuChannel;
use gpgpu_covert::microbench::fu_latency_sweep;
use gpgpu_spec::{presets, FuOpKind};

#[test]
fn sfu_channel_error_free_on_all_three_gpus() {
    let msg = Message::pseudo_random(12, 0x55);
    for spec in presets::all() {
        let o = SfuChannel::new(spec.clone()).transmit(&msg).unwrap();
        assert!(o.is_error_free(), "{}: ber {}", spec.name, o.ber);
    }
}

#[test]
fn figure6_shapes_hold_on_every_architecture() {
    // __sinf and sqrt must show contention steps; the step onset reflects
    // the warp-scheduler count.
    for spec in presets::all() {
        let sweep = fu_latency_sweep(&spec, FuOpKind::SpSinf, &[1, 2, 8, 16, 32]).unwrap();
        let first = sweep[0].latency;
        let last = sweep.last().unwrap().latency;
        assert!(
            last > first * 1.4,
            "{}: __sinf shows no contention ({first} -> {last})",
            spec.name
        );
    }
}

#[test]
fn figure7_double_precision_exists_only_on_fermi_and_kepler() {
    for op in [FuOpKind::DpAdd, FuOpKind::DpMul] {
        assert!(fu_latency_sweep(&presets::tesla_c2075(), op, &[1, 8]).is_ok());
        assert!(fu_latency_sweep(&presets::tesla_k40c(), op, &[1, 8]).is_ok());
        assert!(fu_latency_sweep(&presets::quadro_m4000(), op, &[1]).is_err());
    }
}

#[test]
fn sqrt_is_slower_than_sinf_everywhere() {
    for spec in presets::all() {
        let sinf = fu_latency_sweep(&spec, FuOpKind::SpSinf, &[1]).unwrap()[0].latency;
        let sqrt = fu_latency_sweep(&spec, FuOpKind::SpSqrt, &[1]).unwrap()[0].latency;
        assert!(sqrt > 2.0 * sinf, "{}: sqrt {sqrt} vs sinf {sinf}", spec.name);
    }
}

#[test]
fn contention_is_isolated_per_warp_scheduler() {
    // With exactly one warp per scheduler, adding a warp on a *different*
    // scheduler must not move warp 0's latency; the paper's Section 5 core
    // observation. We test it via the sweep: latency at nsched warps equals
    // latency at 1 warp.
    for spec in presets::all() {
        let n = spec.sm.num_warp_schedulers;
        let sweep = fu_latency_sweep(&spec, FuOpKind::SpSinf, &[1, n]).unwrap();
        let (one, full) = (sweep[0].latency, sweep[1].latency);
        assert!(
            (full - one).abs() < 1.5,
            "{}: warp on another scheduler changed latency {one} -> {full}",
            spec.name
        );
    }
}
