//! End-to-end tests of the resilient sweep service: chaos convergence,
//! hard-kill resume, cache quarantine, and typed per-cell degradation.
//!
//! The central claim under test is the determinism contract: a sweep's
//! *results* are a pure function of its request, so a chaos-ridden run
//! (worker kills, stalls, cache rot), a warm-cache run and a journal-resumed
//! run must all produce a matrix **bit-identical** to a clean first run —
//! only the per-cell provenance (computed / cached / resumed / recovered)
//! may differ. The chaos schedule makes that assertion sound rather than
//! probabilistic: each cell suffers a bounded number of injected failures
//! ([`ChaosPlan::attempts_to_converge`]), so a sufficient attempt budget
//! *guarantees* convergence.

use gpgpu_covert::harness::{TrialError, TrialRunner};
use gpgpu_serve::{CellStatus, ChaosPlan, ResultCache, ServeError, SweepService};
use gpgpu_spec::{SweepRequest, TopologySpec};
use std::path::PathBuf;

/// Fresh scratch directory per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpgpu-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small but multi-axis grid: 2 families × 2 symbol times × 2 fault
/// plans = 8 cells, mixing clean and noisy operating points.
fn grid() -> SweepRequest {
    SweepRequest::from_spec(
        "device=kepler;family=l1+atomic;iters=4+8;bits=8;seed=0x5eed;\
         faults=none|seed=7,intensity=0.5,kinds=evict+storm",
    )
    .unwrap()
}

#[test]
fn a_chaos_ridden_sweep_is_bit_identical_to_a_clean_run() {
    let dir = scratch("chaos");
    let clean = SweepService::new(grid()).unwrap().run().unwrap();
    assert!(clean.is_complete());
    assert_eq!(clean.outcomes.len(), 8);
    assert_eq!(clean.stats.computed, 8);

    let chaos = ChaosPlan::from_spec("seed=0xC4A05,kills=2,stalls=1,corrupt=2").unwrap();
    let stormy = SweepService::new(grid())
        .unwrap()
        .with_cache_dir(&dir)
        .unwrap()
        .with_chaos(chaos)
        .with_max_attempts(chaos.attempts_to_converge())
        .with_backoff_base_ms(0)
        .run()
        .unwrap();
    assert!(stormy.is_complete(), "every injected failure must be recovered");
    assert!(stormy.stats.retries > 0, "this chaos seed injects at least one failure");
    assert_eq!(stormy.digest(), clean.digest(), "chaos must not change a single bit");
    for (a, b) in clean.outcomes.iter().zip(&stormy.outcomes) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.status.result(), b.status.result(), "cell {} diverged", a.key);
    }
    for o in &stormy.outcomes {
        if let CellStatus::Recovered { attempts, last_error, .. } = &o.status {
            assert!(*attempts > 1);
            assert!(last_error.is_transient(), "only transient errors are retried: {last_error}");
        }
    }

    // Warm re-run over the same cache: everything served from disk,
    // still bit-identical.
    let warm = SweepService::new(grid()).unwrap().with_cache_dir(&dir).unwrap().run().unwrap();
    assert_eq!(warm.stats.cached, 8, "{:?}", warm.stats);
    assert_eq!(warm.digest(), clean.digest());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_exhausted_attempt_budget_is_a_typed_outcome_not_an_abort() {
    let chaos = ChaosPlan::from_spec("seed=0xC4A05,kills=2,stalls=1").unwrap();
    let matrix = SweepService::new(grid())
        .unwrap()
        .with_chaos(chaos)
        .with_max_attempts(1) // far below attempts_to_converge() == 4
        .with_backoff_base_ms(0)
        .run()
        .unwrap();
    assert_eq!(matrix.outcomes.len(), 8, "a failing cell never aborts the sweep");
    assert!(matrix.stats.failed > 0, "this seed kills at least one cell's only attempt");
    for o in &matrix.outcomes {
        if let CellStatus::Failed { error, attempts } = &o.status {
            assert_eq!(*attempts, 1);
            assert!(error.is_transient(), "budget exhaustion ends on the injected error");
        }
    }
}

#[test]
fn journal_resume_completes_a_hard_killed_run_bit_identically() {
    let dir = scratch("resume");
    let journal = dir.join("journal.log");
    let full = SweepService::new(grid()).unwrap().with_journal(&journal, false).run().unwrap();
    assert!(full.is_complete());

    // Simulate `kill -9` mid-run: keep the header and the first 3
    // journaled cells, tear the 4th line in half.
    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 9, "header + 8 cells");
    let mut torn: Vec<String> = lines[..4].iter().map(|l| l.to_string()).collect();
    torn.push(lines[4][..lines[4].len() / 2].to_string());
    std::fs::write(&journal, torn.join("\n") + "\n").unwrap();

    let resumed = SweepService::new(grid()).unwrap().with_journal(&journal, true).run().unwrap();
    assert_eq!(resumed.stats.resumed, 3, "{:?}", resumed.stats);
    assert_eq!(resumed.stats.computed, 5);
    assert!(resumed.recovery_note.is_some(), "the torn line is reported, not hidden");
    assert_eq!(resumed.digest(), full.digest(), "resume must be bit-identical");

    // A journal from a *different* request refuses to resume outright.
    let other = SweepRequest::from_spec("device=kepler;family=l1;iters=4;bits=8").unwrap();
    let err = SweepService::new(other).unwrap().with_journal(&journal, true).run().unwrap_err();
    assert!(matches!(err, ServeError::Journal(_)), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entries_are_quarantined_and_recomputed() {
    let dir = scratch("quarantine");
    let service = SweepService::new(grid()).unwrap().with_cache_dir(&dir).unwrap();
    let keys = service.keys();
    let first = service.run().unwrap();
    assert_eq!(first.stats.computed, 8);

    // Rot one entry at rest: flip a byte in the middle of the file.
    let cache = ResultCache::open(&dir).unwrap();
    let victim = cache.entry_path(&keys[2]);
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&victim, bytes).unwrap();

    let second = SweepService::new(grid()).unwrap().with_cache_dir(&dir).unwrap().run().unwrap();
    assert_eq!(second.stats.cached, 7, "{:?}", second.stats);
    assert_eq!(second.stats.computed, 1, "the rotted cell is recomputed");
    assert_eq!(second.stats.quarantined, 1);
    assert_eq!(second.digest(), first.digest(), "recomputation restores the exact bits");
    let poisoned = &second.outcomes[2];
    assert!(poisoned.quarantined.is_some());
    assert!(!poisoned.quarantined.as_ref().unwrap().is_miss());
    let quarantined: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.path().to_string_lossy().ends_with(".quarantined"))
        .collect();
    assert_eq!(quarantined.len(), 1, "the corpse is kept for post-mortem");

    // Third run: the recomputed entry is served from cache again.
    let third = SweepService::new(grid()).unwrap().with_cache_dir(&dir).unwrap().run().unwrap();
    assert_eq!(third.stats.cached, 8);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn impossible_cells_fail_fast_with_typed_errors_and_spare_their_neighbors() {
    // nvlink without a topology and parallel-sfu with a fault plan are
    // *deterministically* impossible: they must fail on attempt 1 with a
    // precise error while the rest of the grid completes.
    let request = SweepRequest::from_spec(
        "device=kepler;family=l1+parallel-sfu+nvlink;iters=4;bits=8;\
         faults=none|seed=7,intensity=0.5,kinds=evict+storm",
    )
    .unwrap();
    let matrix = SweepService::new(request).unwrap().run().unwrap();
    assert_eq!(matrix.outcomes.len(), 6);
    assert_eq!(matrix.stats.failed, 3, "{}", matrix.render());
    assert_eq!(matrix.stats.retries, 0, "deterministic failures are never retried");
    for o in &matrix.outcomes {
        let impossible = o.cell.family == "nvlink"
            || (o.cell.family == "parallel-sfu" && o.cell.faults != "none");
        match &o.status {
            CellStatus::Failed { error, attempts } => {
                assert!(impossible, "unexpected failure on {}: {error}", o.key);
                assert_eq!(*attempts, 1, "fail fast, not retry-until-budget");
                assert!(
                    matches!(error, TrialError::Misconfigured { .. }),
                    "precise error class for {}: {error}",
                    o.key
                );
            }
            _ => assert!(!impossible, "{} should be impossible", o.key),
        }
    }

    // With a topology supplied, the same nvlink cell computes.
    let topo = TopologySpec::dual("kepler").unwrap().to_spec();
    let request = SweepRequest::from_spec(&format!(
        "device=kepler;family=nvlink;iters=4;bits=8;topology={topo}"
    ))
    .unwrap();
    let matrix = SweepService::new(request).unwrap().run().unwrap();
    assert!(matrix.is_complete(), "{}", matrix.render());
}

#[test]
fn bad_requests_and_bad_fault_axes_are_run_level_errors() {
    let unknown_family = SweepRequest { families: vec!["l3".into()], ..SweepRequest::default() };
    assert!(matches!(SweepService::new(unknown_family), Err(ServeError::Request(_))));

    let bad_fault = SweepRequest { faults: vec!["seed=banana".into()], ..SweepRequest::default() };
    match SweepService::new(bad_fault) {
        Err(ServeError::InvalidFaults { spec, .. }) => assert_eq!(spec, "seed=banana"),
        other => panic!("expected InvalidFaults, got {other:?}"),
    }
}

#[test]
fn equivalent_fault_spellings_share_cache_cells() {
    // The fault axis canonicalizes through FaultPlan's round trip, so a
    // spelling variant (spaces, different key order) addresses the same
    // cache entry instead of recomputing it.
    let dir = scratch("canonical");
    let a = SweepRequest::from_spec(
        "device=kepler;family=l1;iters=4;bits=8;faults=seed=7,intensity=0.5,kinds=evict+storm",
    )
    .unwrap();
    let b = SweepRequest::from_spec(
        "device=kepler;family=l1;iters=4;bits=8;faults=intensity=0.5, kinds=evict+storm, seed=7",
    )
    .unwrap();
    let first = SweepService::new(a).unwrap().with_cache_dir(&dir).unwrap().run().unwrap();
    assert_eq!(first.stats.computed, 1);
    let second = SweepService::new(b).unwrap().with_cache_dir(&dir).unwrap().run().unwrap();
    assert_eq!(second.stats.cached, 1, "spelling variants must hit, not miss");
    assert_eq!(first.digest(), second.digest());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_count_does_not_change_the_matrix() {
    let sequential =
        SweepService::new(grid()).unwrap().with_runner(TrialRunner::sequential()).run().unwrap();
    let wide = SweepService::new(grid())
        .unwrap()
        .with_runner(TrialRunner::new().with_workers(8))
        .run()
        .unwrap();
    assert_eq!(sequential.digest(), wide.digest());
}

#[test]
fn backoff_is_seeded_exponential_and_reproducible() {
    let service = SweepService::new(grid()).unwrap().with_backoff_base_ms(4);
    let d1 = service.backoff_delay_ms(0xABCD, 1);
    let d2 = service.backoff_delay_ms(0xABCD, 2);
    let d3 = service.backoff_delay_ms(0xABCD, 3);
    // Windows double: delay_n lies in [base * 2^(n-1), 2 * base * 2^(n-1)].
    assert!((4..=8).contains(&d1), "{d1}");
    assert!((8..=16).contains(&d2), "{d2}");
    assert!((16..=32).contains(&d3), "{d3}");
    assert_eq!(d1, service.backoff_delay_ms(0xABCD, 1), "pure function of (cell, retry)");
    assert!(service.backoff_delay_ms(0x1234, 1) <= 8);
    let disabled = SweepService::new(grid()).unwrap().with_backoff_base_ms(0);
    assert_eq!(disabled.backoff_delay_ms(0xABCD, 3), 0);
}

#[test]
fn the_rendered_matrix_carries_the_digest_line_and_json_is_well_formed() {
    let request = SweepRequest::from_spec("device=kepler;family=l1;iters=4;bits=8").unwrap();
    let matrix = SweepService::new(request).unwrap().run().unwrap();
    let text = matrix.render();
    let digest_line = format!("matrix digest {:#018x}", matrix.digest());
    assert!(text.contains(&digest_line), "{text}");
    assert!(text.contains("cells=1 computed=1"), "{text}");
    let json = matrix.to_json();
    assert!(json.contains("\"digest\""), "{json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
}
