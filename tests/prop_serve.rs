//! Property tests for the `gpgpu-serve` sweep service:
//!
//! * **cache-key injectivity** — distinct sweep cells render distinct
//!   canonical keys (and identical cells render identical keys), the
//!   property that makes the key safe to content-address;
//! * **cache-hit bit-identity** — any representable [`CellResult`] survives
//!   the store → load round trip with its exact `f64` bit patterns;
//! * **grammar round trips** — sweep requests and chaos plans re-parse to
//!   themselves;
//! * **corruption fuzz** — a byte flipped (or a file truncated) at an
//!   *arbitrary* offset of a cache entry, run journal or trial checkpoint
//!   yields a typed error or a shorter trusted prefix — never a panic and
//!   never silently-wrong data.

use gpgpu_covert::harness::TrialRunner;
use gpgpu_serve::{CellResult, ChaosPlan, Journal, JournalError, ResultCache};
use gpgpu_spec::sweep::FAMILY_LABELS;
use gpgpu_spec::{SweepCell, SweepRequest};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-case scratch location that never collides across cases or parallel
/// test binaries.
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("gpgpu-prop-serve-{}-{tag}-{n}", std::process::id()))
}

const DEVICES: [&str; 3] = ["fermi", "kepler", "maxwell"];
const FAULT_AXES: [&str; 3] =
    ["none", "seed=7,intensity=0.5,kinds=evict+storm", "seed=9,intensity=0.25,kinds=jitter"];
const DEFENSE_AXES: [&str; 2] = ["none", "partition=2"];

/// A sweep cell drawn from realistic axis vocabularies. Components are
/// sampled by index so equality of the tuple is decidable in the test.
fn arb_cell() -> impl Strategy<Value = SweepCell> {
    (0usize..3, 0usize..5, 1u64..40, 1u32..32, 0u64..1024, 0usize..3, 0usize..2).prop_map(
        |(d, f, iters, bits, seed, fault, defense)| SweepCell {
            device: DEVICES[d].to_string(),
            family: FAMILY_LABELS[f].to_string(),
            iterations: iters,
            bits,
            seed,
            faults: FAULT_AXES[fault].to_string(),
            defense: DEFENSE_AXES[defense].to_string(),
            topology: "none".to_string(),
        },
    )
}

/// Any representable result, including messy float bit patterns.
fn arb_result() -> impl Strategy<Value = CellResult> {
    (0usize..64, any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), 0usize..48).prop_map(
        |(sent, cycles, bw_bits, ber_bits, rx_bits, rx_len)| CellResult {
            sent,
            received: (0..rx_len).map(|i| (rx_bits >> (i % 64)) & 1 == 1).collect(),
            cycles,
            bandwidth_kbps: f64::from_bits(bw_bits),
            ber: f64::from_bits(ber_bits),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Injectivity: two cells share a key iff they are the same cell.
    #[test]
    fn cache_keys_are_injective(a in arb_cell(), b in arb_cell()) {
        if a == b {
            prop_assert_eq!(a.key(), b.key());
        } else {
            prop_assert!(a.key() != b.key(), "distinct cells collided: {}", a.key());
        }
    }

    /// A cache hit returns exactly the stored result, bit for bit.
    #[test]
    fn cache_hits_are_bit_identical(r in arb_result(), cell in arb_cell()) {
        let cache = ResultCache::open(scratch("hit")).unwrap();
        let key = cell.key();
        cache.store(&key, &r).unwrap();
        let back = cache.load(&key).unwrap();
        prop_assert_eq!(back.bandwidth_kbps.to_bits(), r.bandwidth_kbps.to_bits());
        prop_assert_eq!(back.ber.to_bits(), r.ber.to_bits());
        prop_assert_eq!(back, r);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    /// The chaos grammar round-trips every representable plan.
    #[test]
    fn chaos_plans_round_trip(seed in any::<u64>(), kills in 0u32..8, stalls in 0u32..8, corrupt in 0u64..16) {
        let plan = ChaosPlan { seed, kills, stalls, corrupt };
        prop_assert_eq!(ChaosPlan::from_spec(&plan.to_spec()).unwrap(), plan);
    }

    /// The sweep-request grammar round-trips arbitrary multi-valued grids.
    #[test]
    fn sweep_requests_round_trip(
        d in 0usize..3, extra_d in 0usize..3, f in 0usize..5, extra_f in 0usize..5,
        iters in 1u64..40, bits in 1u32..32, seed in any::<u64>(),
        fault in 0usize..3, defense in 0usize..2,
    ) {
        let mut devices = vec![DEVICES[d].to_string()];
        if extra_d != d {
            devices.push(DEVICES[extra_d].to_string());
        }
        let mut families = vec![FAMILY_LABELS[f].to_string()];
        if extra_f != f {
            families.push(FAMILY_LABELS[extra_f].to_string());
        }
        let request = SweepRequest {
            devices,
            families,
            iterations: vec![iters, iters + 1],
            bits,
            seed,
            faults: vec![FAULT_AXES[fault].to_string()],
            defenses: vec![DEFENSE_AXES[defense].to_string()],
            topology: "none".to_string(),
        };
        request.validate().unwrap();
        prop_assert_eq!(SweepRequest::from_spec(&request.to_spec()).unwrap(), request);
    }

    /// Flipping any single byte of a cache entry can never serve wrong
    /// data: the load either fails with a typed non-miss error or (never
    /// observed, but the only other safe outcome) returns the original.
    #[test]
    fn cache_survives_arbitrary_byte_flips(r in arb_result(), offset in any::<u64>(), mask in 1u8..=255) {
        let cache = ResultCache::open(scratch("flip")).unwrap();
        let key = "device=kepler;family=l1;iters=20;bits=8;seed=0x5eed;faults=none;defense=none;topology=none";
        cache.store(key, &r).unwrap();
        let path = cache.entry_path(key);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = (offset % bytes.len() as u64) as usize;
        bytes[at] ^= mask;
        std::fs::write(&path, bytes).unwrap();
        match cache.load(key) {
            Ok(back) => prop_assert_eq!(back, r, "a flip at {} must not alter a served result", at),
            Err(e) => prop_assert!(!e.is_miss(), "corruption must be typed, not a silent miss"),
        }
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    /// Truncating a cache entry anywhere strictly short of its full length
    /// is a typed error, never a panic or a wrong result.
    #[test]
    fn cache_survives_arbitrary_truncation(r in arb_result(), cut in any::<u64>()) {
        let cache = ResultCache::open(scratch("cut")).unwrap();
        let key = "device=maxwell;family=atomic;iters=4;bits=4;seed=0x1;faults=none;defense=none;topology=none";
        cache.store(key, &r).unwrap();
        let path = cache.entry_path(key);
        let bytes = std::fs::read(&path).unwrap();
        let keep = (cut % bytes.len() as u64) as usize; // always strictly truncates
        std::fs::write(&path, &bytes[..keep]).unwrap();
        match cache.load(key) {
            // Losing only the trailing newline leaves the entry intact —
            // the one truncation that may still serve, and it must serve
            // the exact original.
            Ok(back) => {
                prop_assert_eq!(keep, bytes.len() - 1);
                prop_assert_eq!(back, r);
            }
            Err(e) => prop_assert!(!e.is_miss(), "truncation must be typed, not a silent miss"),
        }
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    /// Flipping any single byte of a journal yields either a typed refusal
    /// (header damage) or a recovered prefix that is element-wise equal to
    /// a prefix of what was written — never reordered, never altered.
    #[test]
    fn journal_survives_arbitrary_byte_flips(
        results in proptest::collection::vec(arb_result(), 1..6),
        offset in any::<u64>(),
        mask in 1u8..=255,
    ) {
        let path = scratch("journal").with_extension("log");
        let journal = Journal::create(&path, 0xFEED, results.len()).unwrap();
        for (i, r) in results.iter().enumerate() {
            journal.append(i, r).unwrap();
        }
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = (offset % bytes.len() as u64) as usize;
        bytes[at] ^= mask;
        std::fs::write(&path, bytes).unwrap();
        match Journal::resume(&path, 0xFEED, results.len()) {
            Err(JournalError::HeaderMismatch { .. }) | Err(JournalError::Io { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected resume error: {other}"),
            Ok((_, recovery)) => {
                prop_assert!(recovery.entries.len() <= results.len());
                for (slot, (index, got)) in recovery.entries.iter().enumerate() {
                    prop_assert_eq!(*index, slot, "completion order preserved");
                    prop_assert_eq!(got, &results[slot], "recovered entries are exact");
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Flipping any post-header byte of a `run_checkpointed` file still
    /// resumes to the full, correct result vector (damaged lines end the
    /// trusted prefix and are recomputed).
    #[test]
    fn checkpoints_survive_arbitrary_byte_flips(offset in any::<u64>(), mask in 1u8..=255) {
        let path = scratch("ckpt").with_extension("ckpt");
        let runner = TrialRunner::sequential().with_base_seed(0xC0FFEE);
        let encode = |v: &u64| v.to_string();
        let decode = |s: &str| s.parse::<u64>().ok();
        let full = runner
            .run_checkpointed(6, &path, encode, decode, |t| t.seed.wrapping_mul(3))
            .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let header_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        if header_len < bytes.len() {
            let at = header_len + (offset % (bytes.len() - header_len) as u64) as usize;
            bytes[at] ^= mask;
            std::fs::write(&path, bytes).unwrap();
        }
        let resumed = runner
            .run_checkpointed(6, &path, encode, decode, |t| t.seed.wrapping_mul(3))
            .unwrap();
        prop_assert_eq!(resumed, full);
        let _ = std::fs::remove_file(&path);
    }
}
