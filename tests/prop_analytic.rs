//! Property tests for the analytical fast path and the calibration
//! thresholds it leans on.
//!
//! Two families of properties:
//!
//! * **model shape** — for any family model the characterizer could emit,
//!   the closed form is monotone in symbol time (more iterations: more
//!   cycles, lower failure probability) and never leaves [0, err_sat];
//! * **simulator agreement** — against the live characterized model, the
//!   predictor never flips a verdict the cycle engine is confident about
//!   (simulated BER ≤ 0.05 or ≥ 0.35), for arbitrary grid points and
//!   messages;
//! * **calibration regression guard** — `core::calibrate` thresholds stay
//!   valid (`min_hot >= 1`, the PR-4 `InvalidThreshold` bug class) and
//!   monotone as noise pushes the hot population upward.

use gpgpu_covert::analytic::{simulator_confident, AnalyticalModel, ChannelVerdict};
use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::L1Channel;
use gpgpu_covert::calibrate::{pilot_pattern, Calibration};
use gpgpu_sim::FamilyModel;
use gpgpu_spec::presets;
use proptest::prelude::*;
use std::sync::OnceLock;

fn l1_model() -> &'static AnalyticalModel {
    static MODEL: OnceLock<AnalyticalModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        AnalyticalModel::characterize_families(&presets::tesla_k40c(), &["l1"])
            .expect("l1 characterization runs")
    })
}

/// Any affine-cost family model the characterizer could plausibly emit.
/// The vendored proptest only samples integer ranges, so parameters are
/// drawn in fixed-point (1/16 resolution) and scaled down.
fn arb_family_model() -> impl Strategy<Value = FamilyModel> {
    (
        0u64..80_000,   // fixed, sixteenths
        16u64..160_000, // base, sixteenths
        0u64..80_000,   // slope, sixteenths
        0u64..=16,      // err_sat, sixteenths
        0u64..256,      // err_knee, sixteenths
    )
        .prop_map(|(fixed, base, slope, err_sat, err_knee)| FamilyModel {
            family: "arb".into(),
            knob: "iterations".into(),
            fixed: fixed as f64 / 16.0,
            base: base as f64 / 16.0,
            slope: slope as f64 / 16.0,
            knob_lo: 1.0,
            knob_hi: 32.0,
            err_sat: err_sat as f64 / 16.0,
            err_knee: err_knee as f64 / 16.0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// More symbol time never hurts: cycles are non-decreasing and the
    /// 1-bit failure probability is non-increasing in the knob.
    #[test]
    fn closed_form_is_monotone_in_symbol_time(
        model in arb_family_model(),
        bits in 1usize..128,
        knob_a in 16u64..1_024,
        knob_b in 16u64..1_024,
    ) {
        let (knob_a, knob_b) = (knob_a as f64 / 16.0, knob_b as f64 / 16.0);
        let (lo, hi) = if knob_a <= knob_b { (knob_a, knob_b) } else { (knob_b, knob_a) };
        prop_assert!(model.cycles(bits, lo) <= model.cycles(bits, hi));
        prop_assert!(model.one_bit_failure(lo) >= model.one_bit_failure(hi));
        let p = model.one_bit_failure(lo);
        prop_assert!((0.0..=model.err_sat.max(0.0)).contains(&p));
    }

    /// Longer messages never cost fewer cycles.
    #[test]
    fn closed_form_is_monotone_in_message_length(
        model in arb_family_model(),
        bits in 1usize..256,
        knob in 16u64..1_024,
    ) {
        let knob = knob as f64 / 16.0;
        prop_assert!(model.cycles(bits, knob) <= model.cycles(bits + 1, knob));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// The live characterized L1 model never flips a verdict the simulator
    /// is confident about, for arbitrary iteration counts and messages.
    #[test]
    fn predictor_never_flips_a_confident_l1_verdict(
        iterations in 1u64..=24,
        bits in proptest::collection::vec(any::<bool>(), 16..48),
    ) {
        let msg = Message::from_bits(bits);
        let sim = L1Channel::new(presets::tesla_k40c())
            .with_iterations(iterations)
            .transmit(&msg)
            .expect("l1 transmits");
        // Inside the transition band the simulator's own verdict is not
        // confident and the model is allowed to disagree (vendored proptest
        // has no prop_assume; an early return discards the case).
        if simulator_confident(sim.ber) {
            let pred =
                l1_model().predict("l1", iterations as f64, &msg).expect("l1 characterized");
            prop_assert_eq!(
                pred.verdict,
                ChannelVerdict::from_ber(sim.ber),
                "model flipped a confident verdict at {} iterations (sim BER {}, predicted {})",
                iterations, sim.ber, pred.ber
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Calibration thresholds fitted from increasingly noisy hot samples
    /// move monotonically upward and never degenerate to `min_hot == 0` —
    /// the PR-4 `InvalidThreshold` regression class.
    #[test]
    fn calibration_threshold_is_monotone_under_noise_and_min_hot_stays_valid(
        idle in 1u64..200,
        gap in 8u64..400,
        noise_step in 1u64..50,
        pilot_len in 4usize..16,
        samples_per_bit in 1usize..4,
    ) {
        let pilot = pilot_pattern(pilot_len);
        let mut last_threshold = None;
        for noise in 0..4u64 {
            // Hot latencies ride `noise` steps above the clean separation
            // point; idle latencies stay put. A hotter contended population
            // can only push the fitted threshold up.
            let samples: Vec<Vec<u64>> = pilot
                .iter()
                .map(|&b| {
                    let v = if b { idle + gap + noise * noise_step } else { idle };
                    vec![v; samples_per_bit]
                })
                .collect();
            let cal = Calibration::fit(&pilot, &samples).expect("separable pilot fits");
            prop_assert!(cal.min_hot >= 1, "min_hot degenerated to 0");
            if let Some(last) = last_threshold {
                prop_assert!(
                    cal.threshold >= last,
                    "threshold regressed under added noise: {} < {}",
                    cal.threshold,
                    last
                );
            }
            last_threshold = Some(cal.threshold);
        }
    }

    /// `from_spec` clamps any persisted `min_hot` back to a decodable value.
    #[test]
    fn calibration_from_spec_never_yields_zero_min_hot(
        threshold in 1u64..10_000,
        min_hot in 0usize..64,
    ) {
        let cal = Calibration::from_spec(threshold, min_hot);
        prop_assert!(cal.min_hot >= 1);
    }
}
