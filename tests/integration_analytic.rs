//! Three-way differential tests: Dense / EventDriven / Analytical.
//!
//! The two cycle engines must stay bit-identical (the
//! `integration_engines` contract); the analytical fast path is a
//! closed-form model *characterized from* the cycle engine, so it is held
//! to explicit per-family tolerances instead
//! ([`gpgpu_covert::analytic::tolerance`], policy in DESIGN.md §8):
//! predicted BER within the stated band of simulated BER across the
//! Figure-5-style sweep grids, predicted bandwidth within the stated
//! relative band, and **exact** works/dead verdict agreement wherever the
//! simulator is confident (simulated BER ≤ 0.05 or ≥ 0.35).

use gpgpu_covert::analytic::{
    simulator_confident, tolerance, AnalyticalModel, AnalyticalPrediction, ChannelVerdict,
};
use gpgpu_covert::atomic_channel::{AtomicChannel, AtomicScenario};
use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::{L1Channel, L2Channel};
use gpgpu_covert::fu_channel::SfuChannel;
use gpgpu_covert::harness::{assert_engines_agree_within, TrialRunner};
use gpgpu_covert::nvlink_channel::NvlinkChannel;
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_covert::ChannelOutcome;
use gpgpu_sim::{DeviceTuning, EngineMode, LatencyTable};
use gpgpu_spec::{presets, TopologySpec};
use std::sync::OnceLock;

/// The characterized Kepler model, extracted once and shared by every test
/// (characterization itself runs cycle-engine probes).
fn kepler_model() -> &'static AnalyticalModel {
    static MODEL: OnceLock<AnalyticalModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let mut m = AnalyticalModel::characterize(&presets::tesla_k40c())
            .expect("characterization suite runs");
        m.characterize_nvlink(&TopologySpec::dual("kepler").expect("dual topology"))
            .expect("nvlink characterization runs");
        m
    })
}

/// The characterized Ampere model: the analytical layer is arch-generic, so
/// the same extraction suite must fit the sub-core device (single-issue
/// partitions, fixed-latency dependence management, sectored L1) without any
/// model-side special casing.
fn ampere_model() -> &'static AnalyticalModel {
    static MODEL: OnceLock<AnalyticalModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let mut m = AnalyticalModel::characterize(&presets::rtx_a4000())
            .expect("ampere characterization suite runs");
        m.characterize_nvlink(&TopologySpec::dual("ampere").expect("dual topology"))
            .expect("ampere nvlink characterization runs");
        m
    })
}

fn tuning(mode: EngineMode) -> DeviceTuning {
    DeviceTuning { engine: mode, ..DeviceTuning::none() }
}

/// Recasts a simulated outcome in the analytical prediction's shape so the
/// three-way helper can compare like with like. Dense-vs-EventDriven
/// equality on this struct is still exact (`PartialEq` on the raw floats).
fn observed(family: &str, knob: f64, o: &ChannelOutcome) -> AnalyticalPrediction {
    AnalyticalPrediction {
        family: family.to_string(),
        knob,
        bits: o.sent.len(),
        cycles: o.cycles,
        bandwidth_kbps: o.bandwidth_kbps,
        ber: o.ber,
        verdict: ChannelVerdict::from_ber(o.ber),
    }
}

/// Runs one sweep cell three ways against `model` and asserts the family's
/// tolerance. Returns the simulated cell for further checks.
fn three_way_cell_on<F>(
    model: &AnalyticalModel,
    family: &str,
    knob: f64,
    msg: &Message,
    transmit: F,
) -> AnalyticalPrediction
where
    F: Fn(EngineMode) -> ChannelOutcome,
{
    let pred = model.predict(family, knob, msg).expect("family is characterized");
    let what = format!("{family} channel at knob {knob}");
    assert_engines_agree_within(
        &what,
        |mode| observed(family, knob, &transmit(mode)),
        &pred,
        |sim, pred| tolerance(family).check(sim.ber, sim.bandwidth_kbps, pred),
    )
}

/// [`three_way_cell_on`] against the Kepler model (the paper's device).
fn three_way_cell<F>(family: &str, knob: f64, msg: &Message, transmit: F) -> AnalyticalPrediction
where
    F: Fn(EngineMode) -> ChannelOutcome,
{
    three_way_cell_on(kepler_model(), family, knob, msg, transmit)
}

/// The Figure-5 message: pseudo-random (about half ones), like the paper's
/// payloads.
fn fig5_message() -> Message {
    Message::pseudo_random(48, 0xF165)
}

#[test]
fn l1_three_way_agreement_on_fig5_grid() {
    let msg = fig5_message();
    let mut confident_cells = 0;
    for &iterations in &[20u64, 12, 8, 4, 2, 1] {
        let sim = three_way_cell("l1", iterations as f64, &msg, |mode| {
            L1Channel::new(presets::tesla_k40c())
                .with_tuning(tuning(mode))
                .with_iterations(iterations)
                .transmit(&msg)
                .expect("l1 transmits")
        });
        if simulator_confident(sim.ber) {
            confident_cells += 1;
        }
    }
    assert!(confident_cells >= 2, "the fig5 grid must exercise the confident region");
}

#[test]
fn l2_three_way_agreement_on_iteration_grid() {
    let msg = fig5_message();
    for &iterations in &[16u64, 4, 2, 1] {
        three_way_cell("l2", iterations as f64, &msg, |mode| {
            L2Channel::new(presets::tesla_k40c())
                .with_tuning(tuning(mode))
                .with_iterations(iterations)
                .transmit(&msg)
                .expect("l2 transmits")
        });
    }
}

#[test]
fn sfu_three_way_agreement_on_iteration_grid() {
    let msg = Message::pseudo_random(24, 0x5F0);
    for &iterations in &[10u64, 6, 3] {
        three_way_cell("sfu", iterations as f64, &msg, |mode| {
            SfuChannel::new(presets::tesla_k40c())
                .with_tuning(tuning(mode))
                .with_iterations(iterations)
                .transmit(&msg)
                .expect("sfu transmits")
        });
    }
}

#[test]
fn atomic_three_way_agreement_on_iteration_grid() {
    let msg = Message::pseudo_random(24, 0xA70);
    for &iterations in &[12u64, 6, 3] {
        three_way_cell("atomic", iterations as f64, &msg, |mode| {
            AtomicChannel::new(presets::tesla_k40c(), AtomicScenario::OneAddress)
                .with_tuning(tuning(mode))
                .with_iterations(iterations)
                .transmit(&msg)
                .expect("atomic transmits")
        });
    }
}

#[test]
fn sync_three_way_agreement() {
    // The synchronized channel has no symbol-time knob; the model's check is
    // that its fitted fixed+per-bit cost extrapolates from the 8/24-bit
    // probe messages to an unseen length.
    let msg = Message::pseudo_random(16, 0x57AC);
    three_way_cell("sync", 0.0, &msg, |mode| {
        SyncChannel::new(presets::tesla_k40c())
            .with_tuning(tuning(mode))
            .transmit(&msg)
            .expect("sync transmits")
    });
}

#[test]
fn nvlink_three_way_agreement_on_window_grid() {
    let msg = Message::pseudo_random(16, 0x12);
    for &window in &[2_048u64, 4_096, 8_192] {
        three_way_cell("nvlink", window as f64, &msg, |mode| {
            NvlinkChannel::new(TopologySpec::dual("kepler").expect("dual topology"))
                .expect("channel builds")
                .with_tuning(tuning(mode))
                .with_window(window)
                .transmit(&msg)
                .expect("nvlink transmits")
        });
    }
}

/// The Ampere three-way grid: every single-device family holds its
/// documented tolerance band on the sub-core arch too. Smaller knob grids
/// than the Kepler suites — the point is per-family coverage of the modern
/// core, not a second full Figure-5 sweep.
#[test]
fn ampere_three_way_agreement_per_family() {
    let model = ampere_model();
    let spec = presets::rtx_a4000();

    let msg = fig5_message();
    for &iterations in &[20u64, 8, 2] {
        three_way_cell_on(model, "l1", iterations as f64, &msg, |mode| {
            L1Channel::new(spec.clone())
                .with_tuning(tuning(mode))
                .with_iterations(iterations)
                .transmit(&msg)
                .expect("l1 transmits")
        });
    }

    let msg = Message::pseudo_random(24, 0x5F0);
    for &iterations in &[10u64, 3] {
        three_way_cell_on(model, "sfu", iterations as f64, &msg, |mode| {
            SfuChannel::new(spec.clone())
                .with_tuning(tuning(mode))
                .with_iterations(iterations)
                .transmit(&msg)
                .expect("sfu transmits")
        });
    }

    // Balanced seed (12/24 ones): the model is characterized from half-ones
    // probes, and Ampere's wider idle/contended atomic gap makes predictions
    // for ones-poor payloads overshoot the bandwidth band.
    let msg = Message::pseudo_random(24, 0xF165);
    for &iterations in &[12u64, 3] {
        three_way_cell_on(model, "atomic", iterations as f64, &msg, |mode| {
            AtomicChannel::new(spec.clone(), AtomicScenario::OneAddress)
                .with_tuning(tuning(mode))
                .with_iterations(iterations)
                .transmit(&msg)
                .expect("atomic transmits")
        });
    }

    let msg = Message::pseudo_random(16, 0x57AC);
    three_way_cell_on(model, "sync", 0.0, &msg, |mode| {
        SyncChannel::new(spec.clone())
            .with_tuning(tuning(mode))
            .transmit(&msg)
            .expect("sync transmits")
    });

    let msg = Message::pseudo_random(16, 0x12);
    for &window in &[2_048u64, 8_192] {
        three_way_cell_on(model, "nvlink", window as f64, &msg, |mode| {
            NvlinkChannel::new(TopologySpec::dual("ampere").expect("dual topology"))
                .expect("channel builds")
                .with_tuning(tuning(mode))
                .with_window(window)
                .transmit(&msg)
                .expect("nvlink transmits")
        });
    }
}

#[test]
fn ampere_characterized_table_round_trips_through_spec() {
    let model = ampere_model();
    let spec = model.table().to_spec();
    let parsed = LatencyTable::from_spec(&spec).expect("ampere table parses back");
    assert_eq!(
        &parsed,
        model.table(),
        "to_spec/from_spec must round-trip the ampere table exactly"
    );
    for family in ["l1", "l2", "sfu", "atomic", "sync", "nvlink"] {
        assert!(parsed.family(family).is_some(), "family {family} missing from the ampere table");
    }
}

#[test]
fn characterized_table_round_trips_through_spec() {
    let model = kepler_model();
    let spec = model.table().to_spec();
    let parsed = LatencyTable::from_spec(&spec).expect("characterized table parses back");
    assert_eq!(
        &parsed,
        model.table(),
        "to_spec/from_spec must round-trip the extracted table exactly"
    );
    // The table carries all six families once nvlink is characterized.
    for family in ["l1", "l2", "sfu", "atomic", "sync", "nvlink"] {
        assert!(parsed.family(family).is_some(), "family {family} missing from the table");
    }
}

#[test]
fn pruned_fig5_sweep_reproduces_unpruned_curve() {
    let model = kepler_model();
    let msg = fig5_message();
    let grid = [20u64, 12, 8, 4, 2, 1];
    let runner = TrialRunner::new();
    let channel = L1Channel::new(presets::tesla_k40c());

    let unpruned = channel.error_rate_sweep_on(&runner, &msg, &grid).expect("unpruned sweep runs");
    let (pruned, mask) = model
        .pruned_error_rate_sweep(&runner, &channel, "l1", &msg, &grid)
        .expect("pruned sweep runs");

    let simulated = mask.iter().filter(|&&keep| keep).count();
    assert!(simulated < grid.len(), "the model must prune at least one cell");
    assert!(simulated > 0, "the fig5 grid crosses the transition band");

    for (i, (&keep, (up, pp))) in mask.iter().zip(unpruned.iter().zip(&pruned)).enumerate() {
        if keep {
            // Simulated cells are the same trials the unpruned sweep ran —
            // bit-identical, not just close.
            assert_eq!(up, pp, "simulated cell {i} diverged from the unpruned sweep");
        } else {
            // Filled cells come from the closed form: curve agreement is the
            // documented tolerance plus verdict agreement on confident cells.
            let tol = tolerance("l1");
            assert!(
                (up.1 - pp.1).abs() <= tol.ber_abs,
                "filled cell {i}: BER {:.3} vs simulated {:.3} exceeds ±{:.3}",
                pp.1,
                up.1,
                tol.ber_abs
            );
            assert!(
                (up.0 - pp.0).abs() / up.0 <= tol.bandwidth_rel,
                "filled cell {i}: bandwidth {:.2} vs simulated {:.2} exceeds ±{:.0}%",
                pp.0,
                up.0,
                tol.bandwidth_rel * 100.0
            );
            if simulator_confident(up.1) {
                assert_eq!(
                    ChannelVerdict::from_ber(pp.1),
                    ChannelVerdict::from_ber(up.1),
                    "filled cell {i} flipped a confident verdict"
                );
            }
        }
    }
}

#[test]
fn targeted_characterization_matches_full_suite() {
    let full = kepler_model();
    let only_l1 = AnalyticalModel::characterize_families(&presets::tesla_k40c(), &["l1"])
        .expect("targeted characterization runs");
    assert_eq!(
        only_l1.table().family("l1"),
        full.table().family("l1"),
        "the targeted suite must extract the same l1 model as the full suite"
    );
    assert!(only_l1.table().family("sfu").is_none());
}
