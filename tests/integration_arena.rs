//! End-to-end tests for the attack/defense arena: the full tournament is
//! deterministic, covers every attacker row and defense column (composed
//! defenses included), degrades per-cell on missing prerequisites instead
//! of aborting, and — the paper-level claim — the adaptive ladder attacker
//! escapes single-resource mitigations by hopping channel families.

use gpgpu_covert::arena::{run_arena, ArenaConfig, Attacker};
use gpgpu_covert::mitigations::ChannelFamily;
use gpgpu_sim::{DeviceTuning, SimError};
use gpgpu_spec::{presets, DefenseSpec};

/// An 8-bit tournament over the default defense set: big enough that every
/// family transmits real payloads, small enough for the test profile.
fn small_config() -> ArenaConfig {
    ArenaConfig::new(presets::tesla_k40c()).with_bits(8)
}

#[test]
fn full_tournament_is_deterministic_and_fully_populated() {
    let config = small_config();
    let report = run_arena(&config).unwrap();
    assert_eq!(report.rows.len(), Attacker::ALL.len(), "one row per attacker");
    // Baseline column plus the four default defenses, one of them composed.
    assert_eq!(report.defenses.len(), 5);
    assert_eq!(report.defenses[0], DefenseSpec::none());
    assert!(report.defenses.iter().any(|d| d.components().len() >= 2));
    for row in &report.rows {
        assert_eq!(row.cells.len(), report.defenses.len(), "{:?}", row.attacker);
        for cell in &row.cells {
            assert!(cell.error.is_none(), "{:?}/{}: {:?}", row.attacker, cell.defense, cell.error);
        }
    }
    // Undefended, every attacker delivers with real bandwidth.
    for &attacker in &Attacker::ALL {
        let cell = report.cell(attacker, "none").unwrap();
        assert!(cell.delivered, "{attacker:?} must deliver undefended");
        assert!(cell.residual_bandwidth_kbps > 0.0, "{attacker:?}");
    }
    // Same config, same matrix — bit for bit.
    assert_eq!(run_arena(&config).unwrap(), report);
    // Rendering mentions every row and column.
    let text = report.render();
    for &attacker in &Attacker::ALL {
        assert!(text.contains(attacker.label()), "{text}");
    }
    for defense in &report.defenses {
        assert!(text.contains(&defense.to_spec()), "{text}");
    }
}

#[test]
fn adaptive_attacker_escapes_a_single_mitigation_via_family_fallback() {
    let report = run_arena(&small_config()).unwrap();
    // Cache partitioning kills the static cache rows outright...
    let l1 = report.cell(Attacker::Static(ChannelFamily::L1), "partition=2").unwrap();
    assert_eq!(l1.residual_bandwidth_kbps, 0.0, "{l1:?}");
    // ...but the ladder walks off the defended resource and still delivers.
    let escapes = report.fallback_escapes();
    assert!(
        escapes.iter().any(|c| c.defense.components().len() == 1),
        "the adaptive attacker must escape at least one single mitigation: {escapes:?}"
    );
    for cell in escapes {
        assert!(cell.delivered && cell.residual_bandwidth_kbps > 0.0, "{cell:?}");
        let family = cell.final_family.as_deref().unwrap();
        assert_ne!(family, "l1-sync", "an escape means the ladder left its home family");
        assert!(
            cell.escalation.iter().any(|line| line.starts_with("fallback")),
            "the escalation trace must record the hop: {:?}",
            cell.escalation
        );
    }
}

#[test]
fn missing_topology_degrades_to_typed_cells_not_an_abort() {
    let config = small_config()
        .without_topology()
        .with_defenses(vec![DefenseSpec::from_spec("partition=2").unwrap()]);
    let report = run_arena(&config).unwrap();
    for defense in ["none", "partition=2"] {
        let cell = report.cell(Attacker::Static(ChannelFamily::Nvlink), defense).unwrap();
        let err = cell.error.as_deref().expect("nvlink without a topology is not evaluable");
        assert!(err.contains("topology"), "{err}");
        assert_eq!(cell.residual_bandwidth_kbps, 0.0);
        assert!(!cell.delivered);
    }
    // The on-chip rows are untouched by the missing fabric.
    let l1 = report.cell(Attacker::Static(ChannelFamily::L1), "none").unwrap();
    assert!(l1.error.is_none() && l1.delivered);
    // And the matrix is rendered with the not-evaluable marker.
    assert!(report.render().contains('x'));
}

#[test]
fn conflicting_defense_tunings_stay_typed_errors() {
    // The spec layer refuses the conflicting composition...
    let p2 = DefenseSpec::from_spec("partition=2").unwrap();
    let p4 = DefenseSpec::from_spec("partition=4").unwrap();
    assert!(p2.compose(&p4).is_err());
    // ...and so does the tuning layer, with the conflicting field named.
    let e = DeviceTuning::from_defense(&p2).merge(DeviceTuning::from_defense(&p4)).unwrap_err();
    assert!(matches!(e, SimError::TuningConflict { field: "cache_partitions", .. }), "{e:?}");
}
