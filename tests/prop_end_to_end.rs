//! Property-based tests over the full stack: arbitrary messages and channel
//! configurations must round-trip exactly at the error-free operating
//! points, core data-structure invariants must hold for arbitrary address
//! streams, and the framing/ARQ stack must detect or repair arbitrary
//! corruptions.

use gpgpu_covert::bits::{hamming_decode, hamming_encode, Message};
use gpgpu_covert::cache_channel::L1Channel;
use gpgpu_covert::framing::{
    arq_transmit, scan_frames, ArqConfig, FlakyPipe, FrameCoding, FRAME_BITS, PAYLOAD_BITS,
};
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_mem::{AccessOutcome, SetAssocCache};
use gpgpu_sim::FaultPlan;
use gpgpu_spec::{presets, CacheGeometry};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Any message round-trips exactly through the baseline L1 channel.
    #[test]
    fn l1_channel_round_trips_any_message(bits in proptest::collection::vec(any::<bool>(), 1..24)) {
        let msg = Message::from_bits(bits);
        let o = L1Channel::new(presets::tesla_k40c()).transmit(&msg).unwrap();
        prop_assert_eq!(o.received, msg);
    }

    /// Any message round-trips through the synchronized channel with any
    /// valid data-set count.
    #[test]
    fn sync_channel_round_trips_any_message(
        bits in proptest::collection::vec(any::<bool>(), 1..36),
        data_sets in 1u32..=6,
    ) {
        let msg = Message::from_bits(bits);
        let o = SyncChannel::new(presets::tesla_k40c())
            .with_data_sets(data_sets)
            .unwrap()
            .transmit(&msg)
            .unwrap();
        prop_assert_eq!(o.received, msg);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// CRC-8 framing detects **every** 1- and 2-bit corruption of a frame:
    /// the polynomial's Hamming distance is 4 out to 119 data bits, far
    /// beyond the 32-bit protected body, and flips in the preamble or CRC
    /// field fail the scan outright.
    #[test]
    fn crc8_detects_all_one_and_two_bit_frame_corruptions(
        payload in proptest::collection::vec(any::<bool>(), PAYLOAD_BITS..=PAYLOAD_BITS),
        seq in any::<u8>(),
        first in 0usize..FRAME_BITS,
        second in 0usize..FRAME_BITS,
    ) {
        let frame = FrameCoding::Raw.encode(seq, &payload);
        prop_assert_eq!(scan_frames(&frame, FrameCoding::Raw), vec![(seq, payload)]);
        let mut corrupted = frame.clone();
        corrupted[first] = !corrupted[first];
        prop_assert!(
            scan_frames(&corrupted, FrameCoding::Raw).is_empty(),
            "single flip at {} went undetected", first
        );
        if second != first {
            corrupted[second] = !corrupted[second];
            prop_assert!(
                scan_frames(&corrupted, FrameCoding::Raw).is_empty(),
                "double flip at {},{} went undetected", first, second
            );
        }
    }

    /// ARQ framing round-trips **any** message under **any** seeded
    /// single-burst fault schedule, in both raw and FEC-coded framing: the
    /// burst corrupts round 0 arbitrarily, and selective retransmission
    /// recovers every frame from the clean rounds that follow.
    #[test]
    fn arq_round_trips_any_message_under_any_single_burst(
        bits in proptest::collection::vec(any::<bool>(), 1..=128),
        burst_start in 0usize..400,
        burst_len in 0usize..=96,
        coding in prop_oneof![Just(FrameCoding::Raw), Just(FrameCoding::Fec)],
    ) {
        let msg = Message::from_bits(bits);
        let mut pipe = FlakyPipe::single_burst(burst_start, burst_len);
        let cfg = ArqConfig { coding, ..ArqConfig::default() };
        let (received, report) = arq_transmit(&mut pipe, &msg, &cfg).unwrap();
        prop_assert!(report.recovered, "unrecovered after {} rounds", report.rounds);
        prop_assert_eq!(received, msg);
    }

    /// A fault plan's spec string is a faithful serialization: parsing it
    /// back yields the identical plan for arbitrary field values.
    #[test]
    fn fault_plan_spec_round_trips(
        seed in any::<u64>(),
        intensity_ppm in 0u64..=1_000_000,
        period in 1u64..10_000_000,
        burst_frac_ppm in 0u64..=1_000_000,
        target_set in 0u64..64,
        kind_mask in 1u32..64,
    ) {
        let plan = FaultPlan::new(seed)
            .with_intensity(intensity_ppm as f64 / 1e6)
            .with_period(period)
            .with_burst(period * burst_frac_ppm / 1_000_000)
            .with_target_set(target_set)
            .with_kinds(gpgpu_sim::FaultKinds {
                evict: kind_mask & 1 != 0,
                jitter: kind_mask & 2 != 0,
                skew: kind_mask & 4 != 0,
                clock: kind_mask & 8 != 0,
                storm: kind_mask & 16 != 0,
                link: kind_mask & 32 != 0,
            });
        prop_assert_eq!(FaultPlan::from_spec(&plan.to_spec()), Ok(plan));
    }

    /// Hamming(7,4) round-trips any message and corrects any single flipped
    /// bit per codeword.
    #[test]
    fn hamming_corrects_single_errors(
        bits in proptest::collection::vec(any::<bool>(), 4..64),
        flip_choice in any::<u64>(),
    ) {
        let mut padded = bits.clone();
        while padded.len() % 4 != 0 { padded.push(false); }
        let msg = Message::from_bits(padded.clone());
        let coded = hamming_encode(&msg);
        let mut corrupted = coded.bits().to_vec();
        // Flip one bit in one codeword.
        let cw = (flip_choice as usize / 7) % (corrupted.len() / 7);
        let pos = cw * 7 + (flip_choice as usize % 7);
        corrupted[pos] = !corrupted[pos];
        let decoded = hamming_decode(&Message::from_bits(corrupted));
        prop_assert_eq!(decoded, msg);
    }

    /// An LRU cache never exceeds its associativity per set, and an access
    /// immediately after itself always hits.
    #[test]
    fn cache_invariants_hold_for_arbitrary_streams(
        addrs in proptest::collection::vec(0u64..16 * 1024, 1..256),
    ) {
        let geom = CacheGeometry::new(2048, 64, 4).unwrap();
        let mut cache = SetAssocCache::new(geom);
        for &a in &addrs {
            cache.access(a);
            // Immediate re-access hits.
            prop_assert_eq!(cache.access(a), AccessOutcome::Hit);
        }
        for set in 0..geom.num_sets() {
            prop_assert!(cache.set_occupancy(set) <= geom.ways() as usize);
        }
    }

    /// The most-recently-used line of a set always survives the next fill.
    #[test]
    fn mru_line_survives_next_insertion(
        seed_lines in proptest::collection::vec(0u64..64, 4..32),
    ) {
        let geom = CacheGeometry::new(2048, 64, 4).unwrap();
        let mut cache = SetAssocCache::new(geom);
        for &l in &seed_lines {
            // Map everything into set 0.
            let addr = l * geom.same_set_stride();
            cache.access(addr);
            let mru = addr;
            // Insert one more distinct line into the same set.
            let other = (l + 1000) * geom.same_set_stride();
            cache.access(other);
            prop_assert!(cache.probe(mru), "MRU line was evicted");
        }
    }

    /// Message <-> bytes round-trip.
    #[test]
    fn message_bytes_round_trip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(Message::from_bytes(&data).to_bytes(), data);
    }

    /// BER is symmetric and bounded.
    #[test]
    fn ber_is_symmetric_and_bounded(
        a in proptest::collection::vec(any::<bool>(), 0..64),
        b in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        let (ma, mb) = (Message::from_bits(a), Message::from_bits(b));
        let ab = ma.bit_error_rate(&mb);
        let ba = mb.bit_error_rate(&ma);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
    }
}
