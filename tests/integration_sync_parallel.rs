//! End-to-end tests of the Section-7 optimizations: synchronization,
//! multi-bit cache-set parallelism, multi-SM parallelism, per-scheduler SFU
//! lanes and the combined multi-resource channel.

use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::L1Channel;
use gpgpu_covert::fu_channel::SfuChannel;
use gpgpu_covert::parallel::{CombinedChannel, ParallelSfuChannel};
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_spec::presets;

#[test]
fn table2_column_ordering_holds_on_kepler() {
    // baseline < synchronized < sync+multibit < sync+multibit+all-SMs.
    let spec = presets::tesla_k40c();
    let msg = Message::pseudo_random(90, 0x99);
    let baseline = L1Channel::new(spec.clone()).transmit(&msg).unwrap();
    let sync = SyncChannel::new(spec.clone()).transmit(&msg).unwrap();
    let multibit =
        SyncChannel::new(spec.clone()).with_data_sets(6).unwrap().transmit(&msg).unwrap();
    let full = SyncChannel::new(spec)
        .with_data_sets(6)
        .unwrap()
        .with_parallel_sms(15)
        .unwrap()
        .transmit(&msg)
        .unwrap();
    for (name, o) in
        [("baseline", &baseline), ("sync", &sync), ("multibit", &multibit), ("full", &full)]
    {
        assert!(o.is_error_free(), "{name}: ber {}", o.ber);
    }
    assert!(sync.bandwidth_kbps > baseline.bandwidth_kbps);
    assert!(multibit.bandwidth_kbps > sync.bandwidth_kbps);
    assert!(full.bandwidth_kbps > multibit.bandwidth_kbps);
}

#[test]
fn sync_channel_error_free_on_all_gpus() {
    let msg = Message::pseudo_random(24, 0xAA);
    for spec in presets::all() {
        let o = SyncChannel::new(spec.clone()).transmit(&msg).unwrap();
        assert!(o.is_error_free(), "{}: ber {}", spec.name, o.ber);
    }
}

#[test]
fn multibit_uses_all_available_data_sets() {
    // Kepler/Maxwell: 8 sets - 2 signalling = 6 data sets.
    // Fermi: 16 sets - 2 = up to 14.
    for spec in presets::all() {
        let max = (spec.const_l1.geometry.num_sets() - 2) as u32;
        let msg = Message::pseudo_random(2 * max as usize, 0xBB);
        let o = SyncChannel::new(spec.clone()).with_data_sets(max).unwrap().transmit(&msg).unwrap();
        assert!(o.is_error_free(), "{} with {} data sets: ber {}", spec.name, max, o.ber);
    }
}

#[test]
fn multi_sm_scaling_is_near_linear() {
    // Table 2 col 3 -> col 4 is ~15x on the K40C.
    let spec = presets::tesla_k40c();
    let msg = Message::pseudo_random(360, 0xCC);
    let one = SyncChannel::new(spec.clone()).with_data_sets(6).unwrap().transmit(&msg).unwrap();
    let fifteen = SyncChannel::new(spec)
        .with_data_sets(6)
        .unwrap()
        .with_parallel_sms(15)
        .unwrap()
        .transmit(&msg)
        .unwrap();
    assert!(fifteen.is_error_free(), "ber {}", fifteen.ber);
    let scaling = fifteen.bandwidth_kbps / one.bandwidth_kbps;
    assert!(
        (8.0..=16.5).contains(&scaling),
        "multi-SM scaling {scaling:.1}x out of the near-linear band"
    );
}

#[test]
fn table3_parallel_sfu_beats_baseline_sfu() {
    let spec = presets::tesla_k40c();
    let msg = Message::pseudo_random(60, 0xDD);
    let baseline = SfuChannel::new(spec.clone()).transmit(&msg).unwrap();
    let sched_parallel = ParallelSfuChannel::new(spec.clone()).transmit(&msg).unwrap();
    let full = ParallelSfuChannel::new(spec).with_parallel_sms(15).unwrap().transmit(&msg).unwrap();
    assert!(baseline.is_error_free() && sched_parallel.is_error_free() && full.is_error_free());
    assert!(sched_parallel.bandwidth_kbps > baseline.bandwidth_kbps);
    assert!(full.bandwidth_kbps > sched_parallel.bandwidth_kbps);
}

#[test]
fn parallel_sfu_error_free_on_all_gpus() {
    let msg = Message::pseudo_random(16, 0xEE);
    for spec in presets::all() {
        let o = ParallelSfuChannel::new(spec.clone()).transmit(&msg).unwrap();
        assert!(o.is_error_free(), "{}: ber {}", spec.name, o.ber);
    }
}

#[test]
fn combined_channel_error_free_on_all_gpus() {
    let msg = Message::pseudo_random(10, 0xFF);
    for spec in presets::all() {
        let o = CombinedChannel::new(spec.clone()).transmit(&msg).unwrap();
        assert!(o.is_error_free(), "{}: ber {}", spec.name, o.ber);
    }
}

#[test]
fn long_message_stays_error_free() {
    // 1 Kb through the fully parallel channel: no drift, no desync.
    let spec = presets::tesla_k40c();
    let msg = Message::pseudo_random(1024, 0x123);
    let o = SyncChannel::new(spec)
        .with_data_sets(6)
        .unwrap()
        .with_parallel_sms(15)
        .unwrap()
        .transmit(&msg)
        .unwrap();
    assert!(o.is_error_free(), "ber {}", o.ber);
    assert!(o.bandwidth_kbps > 1000.0, "Mbps-class expected, got {:.0}", o.bandwidth_kbps);
}
