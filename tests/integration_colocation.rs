//! Cross-crate integration tests for Section 3: establishing co-location.

use gpgpu_covert::colocation::{
    coresident_recipe, exclusive_recipe, reverse_engineer_block_scheduler,
    reverse_engineer_warp_scheduler,
};
use gpgpu_isa::{ProgramBuilder, Reg, Special};
use gpgpu_sim::{Device, KernelSpec};
use gpgpu_spec::presets;

#[test]
fn every_preset_implements_the_leftover_policy() {
    for spec in presets::all() {
        let r = reverse_engineer_block_scheduler(&spec).unwrap();
        assert!(r.is_leftover_policy(), "{}: {r:?}", spec.name);
    }
}

#[test]
fn warp_scheduler_count_is_inferable_on_every_preset() {
    for spec in presets::all() {
        let r = reverse_engineer_warp_scheduler(&spec).unwrap();
        assert_eq!(
            r.inferred_num_schedulers, spec.sm.num_warp_schedulers,
            "{}: {:?}",
            spec.name, r
        );
        assert!(r.is_round_robin(spec.sm.num_warp_schedulers));
    }
}

#[test]
fn coresident_recipe_yields_full_overlap() {
    // Launch the recipe on the simulator and verify both kernels' blocks
    // share every SM and every warp scheduler.
    for spec in presets::all() {
        let (spy_cfg, trojan_cfg) = coresident_recipe(&spec);
        let mut b = ProgramBuilder::new();
        b.read_special(Reg(0), Special::SmId);
        b.read_special(Reg(1), Special::SchedulerId);
        b.push_result(Reg(0));
        b.push_result(Reg(1));
        // Busy-work so both kernels are resident simultaneously.
        b.repeat(Reg(20), 200, |b| {
            b.fu(gpgpu_spec::FuOpKind::SpAdd);
        });
        let program = b.build().unwrap();
        let mut dev = Device::new(spec.clone());
        let spy = dev.launch(0, KernelSpec::new("spy", program.clone(), spy_cfg)).unwrap();
        let trojan = dev.launch(1, KernelSpec::new("trojan", program, trojan_cfg)).unwrap();
        dev.run_until_idle(100_000_000).unwrap();
        let (rs, rt) = (dev.results(spy).unwrap(), dev.results(trojan).unwrap());
        let all_sms: Vec<u32> = (0..spec.num_sms).collect();
        assert_eq!(rs.sms_used(), all_sms, "{}", spec.name);
        assert_eq!(rt.sms_used(), all_sms, "{}", spec.name);
        // Each block covers every warp scheduler.
        for r in [&rs, &rt] {
            for blk in &r.blocks {
                let mut scheds: Vec<u64> = blk.warp_results.iter().map(|w| w[1]).collect();
                scheds.sort_unstable();
                scheds.dedup();
                assert_eq!(scheds.len() as u32, spec.sm.num_warp_schedulers);
            }
        }
    }
}

#[test]
fn exclusive_recipe_blocks_third_kernels_on_every_preset() {
    for spec in presets::all() {
        let (spy_cfg, trojan_cfg) = exclusive_recipe(&spec);
        let mut b = ProgramBuilder::new();
        b.repeat(Reg(20), 500, |b| {
            b.fu(gpgpu_spec::FuOpKind::SpAdd);
        });
        let busy = b.build().unwrap();
        let mut quick = ProgramBuilder::new();
        quick.read_special(Reg(0), Special::SmId);
        quick.push_result(Reg(0));
        let probe = quick.build().unwrap();

        let mut dev = Device::new(spec.clone());
        let spy = dev.launch(0, KernelSpec::new("spy", busy.clone(), spy_cfg)).unwrap();
        let _trojan = dev.launch(1, KernelSpec::new("trojan", busy, trojan_cfg)).unwrap();
        let third = dev
            .launch(2, KernelSpec::new("third", probe, gpgpu_spec::LaunchConfig::new(1, 32)))
            .unwrap();
        dev.run_until_idle(100_000_000).unwrap();
        let spy_done = dev.results(spy).unwrap().completed_at;
        let third_start = dev.results(third).unwrap().blocks[0].start_cycle;
        assert!(
            third_start >= spy_done.min(dev.results(gpgpu_sim::KernelId(1)).unwrap().completed_at),
            "{}: third kernel started at {third_start}, before the channel released at {spy_done}",
            spec.name
        );
    }
}
