//! End-to-end tests of Section 8: interference and exclusive co-location.

use gpgpu_covert::bits::{hamming_decode, hamming_encode, Message};
use gpgpu_covert::noise::{run_sync_with_noise, run_sync_with_noise_intensity, NoiseKind};
use gpgpu_spec::presets;

#[test]
fn unprotected_channel_is_corrupted_by_cache_noise() {
    let spec = presets::tesla_k40c();
    let msg = Message::pseudo_random(16, 0x1);
    let exp = run_sync_with_noise(&spec, &msg, &[NoiseKind::ConstantCacheHog], false).unwrap();
    assert!(exp.noise_overlapped);
    assert!(exp.outcome.ber > 0.05, "ber {}", exp.outcome.ber);
}

#[test]
fn exclusive_colocation_gives_error_free_communication_on_all_gpus() {
    // The paper's headline Section-8 result: "we were able to prevent
    // interference against all interfering workloads and workload mixtures
    // and achieved error free communication in all cases."
    let msg = Message::pseudo_random(16, 0x2);
    for spec in presets::all() {
        for kind in NoiseKind::ALL {
            let exp = run_sync_with_noise(&spec, &msg, &[kind], true).unwrap();
            assert!(
                exp.outcome.is_error_free(),
                "{} vs {kind:?}: ber {}",
                spec.name,
                exp.outcome.ber
            );
        }
        // And the full mixture.
        let exp = run_sync_with_noise(&spec, &msg, &NoiseKind::ALL, true).unwrap();
        assert!(exp.outcome.is_error_free(), "{} mixture: ber {}", spec.name, exp.outcome.ber);
    }
}

#[test]
fn noise_that_avoids_the_constant_cache_is_harmless() {
    let spec = presets::tesla_k40c();
    let msg = Message::pseudo_random(16, 0x3);
    for kind in [NoiseKind::FuBound, NoiseKind::MemoryBound, NoiseKind::SharedMemHog] {
        let exp = run_sync_with_noise(&spec, &msg, &[kind], false).unwrap();
        assert!(
            exp.outcome.is_error_free(),
            "{kind:?} should not corrupt a cache channel: ber {}",
            exp.outcome.ber
        );
    }
}

#[test]
fn hamming_fec_repairs_a_lightly_noisy_channel() {
    let spec = presets::tesla_k40c();
    let msg = Message::pseudo_random(32, 0x4);
    let coded = hamming_encode(&msg);
    let exp =
        run_sync_with_noise_intensity(&spec, &coded, &[NoiseKind::ConstantCacheHog], false, 6)
            .unwrap();
    let decoded = hamming_decode(&exp.outcome.received);
    let mut bits = decoded.bits().to_vec();
    bits.truncate(msg.len());
    let decoded = Message::from_bits(bits);
    assert!(
        msg.bit_error_rate(&decoded) < exp.outcome.ber,
        "FEC should improve on raw BER {}",
        exp.outcome.ber
    );
}
