//! End-to-end tests of the Section-4 cache channels across all presets.

use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::{L1Channel, L2Channel};
use gpgpu_spec::presets;

#[test]
fn l1_channel_error_free_on_all_three_gpus() {
    let msg = Message::pseudo_random(16, 0x11);
    for spec in presets::all() {
        let o = L1Channel::new(spec.clone()).transmit(&msg).unwrap();
        assert!(o.is_error_free(), "{}: ber {}", spec.name, o.ber);
        assert!(
            (5.0..300.0).contains(&o.bandwidth_kbps),
            "{}: L1 baseline bandwidth {:.1} Kbps out of plausible range",
            spec.name,
            o.bandwidth_kbps
        );
    }
}

#[test]
fn l2_channel_error_free_on_all_three_gpus() {
    let msg = Message::pseudo_random(12, 0x22);
    for spec in presets::all() {
        let o = L2Channel::new(spec.clone()).transmit(&msg).unwrap();
        assert!(o.is_error_free(), "{}: ber {}", spec.name, o.ber);
    }
}

#[test]
fn l2_channel_is_slower_than_l1() {
    // Figure 4's shape: on every GPU the L1 channel beats the L2 channel.
    let msg = Message::pseudo_random(16, 0x33);
    for spec in presets::all() {
        let l1 = L1Channel::new(spec.clone()).transmit(&msg).unwrap();
        let l2 = L2Channel::new(spec.clone()).transmit(&msg).unwrap();
        assert!(
            l1.bandwidth_kbps > l2.bandwidth_kbps,
            "{}: L1 {:.1} <= L2 {:.1}",
            spec.name,
            l1.bandwidth_kbps,
            l2.bandwidth_kbps
        );
    }
}

#[test]
fn error_rate_rises_as_iterations_shrink() {
    // Figure 5's shape: pushing the channel faster trades bandwidth for
    // errors.
    let msg = Message::pseudo_random(24, 0x44);
    let ch = L1Channel::new(presets::tesla_k40c());
    let sweep = ch.error_rate_sweep(&msg, &[20, 10, 4, 1]).unwrap();
    assert_eq!(sweep[0].1, 0.0, "20 iterations must be error-free");
    // Bandwidth grows monotonically as iterations shrink.
    for w in sweep.windows(2) {
        assert!(w[1].0 > w[0].0, "bandwidth must rise: {sweep:?}");
    }
    // And errors eventually appear.
    assert!(sweep.last().unwrap().1 > 0.0, "1 iteration must show errors: {sweep:?}");
}

#[test]
fn channel_works_on_non_default_cache_sets() {
    let spec = presets::tesla_k40c();
    let msg = Message::from_bits([true, false, true]);
    for set in [1, 3, 7] {
        let o = L1Channel::new(spec.clone()).with_target_set(set).transmit(&msg).unwrap();
        assert!(o.is_error_free(), "set {set}: ber {}", o.ber);
    }
}

#[test]
fn all_ones_and_all_zeros_messages() {
    let spec = presets::tesla_k40c();
    for msg in [Message::from_bits(vec![true; 10]), Message::from_bits(vec![false; 10])] {
        let o = L1Channel::new(spec.clone()).transmit(&msg).unwrap();
        assert_eq!(o.received, msg);
    }
}
