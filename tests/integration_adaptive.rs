//! End-to-end tests for the adaptive link layer: online calibration,
//! link-quality-driven escalation, channel-family fallback, and the
//! harness's per-trial fault isolation.
//!
//! The acceptance scenario mirrors the paper's Section-8 interference
//! setup at its worst: the PR-3 calibrated phantom-eviction storm *plus* a
//! constant-cache-hog co-runner. Static thresholds lose the channel
//! outright; the adaptive ladder must get every bit across with no manual
//! retuning, and its diagnostic must say how.

use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::L1Channel;
use gpgpu_covert::calibrate::CalibrationSource;
use gpgpu_covert::fu_channel::SfuChannel;
use gpgpu_covert::harness::{TrialError, TrialRunner};
use gpgpu_covert::linkmon::{AdaptiveLink, ChannelFamily, LadderStage, LinkEnvironment};
use gpgpu_covert::noise::{noise_kernel, NoiseKind};
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_covert::CovertError;
use gpgpu_sim::{FaultKinds, FaultPlan};
use gpgpu_spec::presets;

/// The PR-3 calibrated cache-fault storm: full-intensity eviction bursts +
/// phantom-workload storms on the sync channel's first data set, with the
/// burst period sized so raw sync BER lands well above 10%.
fn storm_plan() -> FaultPlan {
    FaultPlan::new(0xFA_0175)
        .with_intensity(1.0)
        .with_period(900_000)
        .with_burst(280_000)
        .with_target_set(2)
        .with_kinds(FaultKinds::cache())
}

fn hostile_env(bits: usize) -> LinkEnvironment {
    LinkEnvironment::clean()
        .with_faults(storm_plan())
        .with_noise(vec![NoiseKind::ConstantCacheHog], 40 + 30 * bits as u64)
}

/// Co-runners that stomp every on-chip family at once: the cache hog kills
/// both L1 channels, the atomic hammer saturates the atomic units, and four
/// SFU-bound kernels (one is two warps — too few to cross the decode
/// midpoint) saturate the special function units.
fn total_noise() -> Vec<NoiseKind> {
    vec![
        NoiseKind::ConstantCacheHog,
        NoiseKind::AtomicHammer,
        NoiseKind::FuBound,
        NoiseKind::FuBound,
        NoiseKind::FuBound,
        NoiseKind::FuBound,
    ]
}

// ---------------------------------------------------------------- calibration

#[test]
fn pilot_calibration_converges_on_a_quiet_device() {
    let spec = presets::tesla_k40c();
    // The synchronized channel's pilot fit must separate cleanly and agree
    // with the static rule bit for bit.
    let ch = SyncChannel::new(spec.clone());
    let cal = ch.calibrate(12).expect("pilot handshake runs");
    assert!(cal.converged(), "quiet-device pilot must converge: {cal:?}");
    assert!(cal.margin > 0, "positive separation margin, got {}", cal.margin);
    assert_eq!(cal.source, CalibrationSource::Pilot { pilot_bits: 12 });
    let msg = Message::pseudo_random(24, 0xCAB);
    let static_out = ch.transmit(&msg).expect("static transmit");
    let fitted_out =
        SyncChannel::new(spec.clone()).with_calibration(cal).transmit(&msg).expect("fitted");
    assert_eq!(static_out.received, fitted_out.received, "fitted rule agrees with static");
    assert_eq!(fitted_out.received, msg);

    // The SFU channel's pilot converges too (different family, same API).
    let cal = SfuChannel::new(spec).calibrate(8).expect("sfu pilot runs");
    assert!(cal.converged(), "{cal:?}");
}

#[test]
fn calibration_under_a_full_cache_hog_reports_inseparable() {
    // When a co-runner stomps every L1 set, there is no threshold to fit —
    // the pilot must say so (the ladder treats this as an escalate signal)
    // rather than hand back a garbage rule.
    let spec = presets::tesla_k40c();
    let noise = vec![noise_kernel(&spec, NoiseKind::ConstantCacheHog, 400)];
    let err = SyncChannel::new(spec).calibrate_with_noise(12, noise).unwrap_err();
    match err {
        CovertError::Config { reason } => {
            assert!(reason.contains("inseparable"), "{reason}")
        }
        other => panic!("expected Config(inseparable), got {other:?}"),
    }
}

// -------------------------------------------------------- adaptive vs static

#[test]
fn adaptive_never_does_worse_than_static_under_any_noise_kind() {
    let spec = presets::tesla_k40c();
    let msg = Message::pseudo_random(24, 0x0152);
    for kind in NoiseKind::ALL {
        let env = LinkEnvironment::clean().with_noise(vec![kind], 40 + 30 * msg.len() as u64);
        let link = AdaptiveLink::new(spec.clone()).with_env(env);
        let s = link.transmit_static(&msg).expect("static arm runs");
        let a = link.transmit(&msg).expect("adaptive runs");
        assert!(
            a.diagnostic.ber <= s.diagnostic.ber,
            "{kind:?}: adaptive BER {} > static BER {}",
            a.diagnostic.ber,
            s.diagnostic.ber
        );
        assert!(a.diagnostic.delivered, "{kind:?}: adaptive must deliver; {}", a.diagnostic);
        assert_eq!(a.received, msg, "{kind:?}");
    }
}

#[test]
fn adaptive_never_does_worse_than_static_under_the_calibrated_storm() {
    let spec = presets::tesla_k40c();
    let msg = Message::pseudo_random(24, 0x0153);
    let env = LinkEnvironment::clean().with_faults(storm_plan());
    let link = AdaptiveLink::new(spec).with_env(env);
    let s = link.transmit_static(&msg).expect("static arm runs");
    let a = link.transmit(&msg).expect("adaptive runs");
    assert!(a.diagnostic.ber <= s.diagnostic.ber);
    assert!(a.diagnostic.delivered, "{}", a.diagnostic);
    assert_eq!(a.received, msg);
}

#[test]
fn acceptance_storm_plus_hog_static_fails_adaptive_recovers_bit_exact() {
    let spec = presets::tesla_k40c();
    let msg = Message::pseudo_random(32, 0xACCE);
    let link = AdaptiveLink::new(spec).with_env(hostile_env(msg.len()));

    // Static decoding loses the channel outright.
    let s = link.transmit_static(&msg).expect("static arm runs");
    assert!(!s.diagnostic.delivered, "static must fail under storm + hog: {}", s.diagnostic);
    assert!(s.diagnostic.ber > 0.0, "static BER must be > 0, got {}", s.diagnostic.ber);

    // The adaptive ladder recovers BER 0 with no manual retuning.
    let a = link.transmit(&msg).expect("adaptive runs");
    assert!(a.diagnostic.delivered, "{}", a.diagnostic);
    assert_eq!(a.diagnostic.ber, 0.0, "{}", a.diagnostic);
    assert_eq!(a.received, msg, "bit-exact recovery");

    // The diagnostic records which stages fired: the stomped L1 family's
    // static rung failed, a fallback happened, and the final family is not
    // the stomped one.
    let stages = &a.diagnostic.stages;
    assert!(
        stages.iter().any(|e| e.stage == LadderStage::Static
            && e.family == ChannelFamily::CacheL1Sync
            && !e.recovered),
        "trace must show the l1-sync static rung failing: {}",
        a.diagnostic
    );
    assert!(
        stages.iter().any(|e| e.stage == LadderStage::Fallback),
        "trace must show the family fallback: {}",
        a.diagnostic
    );
    assert_ne!(a.diagnostic.final_family, ChannelFamily::CacheL1Sync, "{}", a.diagnostic);
    let rendered = a.diagnostic.to_string();
    assert!(rendered.contains("fallback") && rendered.contains("delivered"), "{rendered}");
}

#[test]
fn exhausted_ladder_records_every_stage_in_order_then_aborts() {
    // Stomp every family at once: a constant-cache hog kills both L1
    // channels, an atomic hammer saturates the atomic units, SFU-bound
    // co-runners saturate the special function units, always-on launch-skew
    // faults destroy the trojan/spy overlap every per-bit on-chip channel
    // needs (no threshold fit can repair a missed window), and an always-on
    // link-congestion storm saturates the NVLink fabric the topology
    // provides. No rung on any family can recover; the diagnostic must
    // record the complete ladder — Static/Recalibrate/Stretch per family,
    // a Fallback marker at each family switch, and the final Abort — in
    // exact order.
    let spec = presets::tesla_k40c();
    let msg = Message::pseudo_random(16, 0xABD1);
    let plan = FaultPlan::new(0xDEAD_11AC)
        .with_intensity(1.0)
        .with_period(200_000)
        .with_burst(200_000) // burst == period: the storm never lets up
        .with_target_set(2)
        .with_kinds(FaultKinds { link: true, skew: true, ..FaultKinds::cache() });
    let env = LinkEnvironment::clean()
        .with_faults(plan)
        .with_noise(total_noise(), 40 + 30 * msg.len() as u64)
        .with_topology(gpgpu_spec::TopologySpec::dual("kepler").unwrap());
    let link = AdaptiveLink::new(spec).with_env(env);

    let out = link.transmit(&msg).expect("exhaustion is an outcome, not an Err");
    let d = &out.diagnostic;
    assert!(!d.delivered, "no family may deliver under total interference: {d}");
    assert!(d.ber > 0.0, "best-effort message must be damaged, got BER {}", d.ber);
    assert!(d.reason.contains("exhausted"), "{}", d.reason);

    // The full ladder, in order: three rungs per family, a fallback marker
    // before each family after the first, then the abort.
    use ChannelFamily::{Atomic, CacheL1Sync, Nvlink, Sfu};
    use LadderStage::{Abort, Fallback, Recalibrate, Static, Stretch};
    let got: Vec<(LadderStage, ChannelFamily)> =
        d.stages.iter().map(|e| (e.stage, e.family)).collect();
    let want = vec![
        (Static, CacheL1Sync),
        (Recalibrate, CacheL1Sync),
        (Stretch, CacheL1Sync),
        (Fallback, Atomic),
        (Static, Atomic),
        (Recalibrate, Atomic),
        (Stretch, Atomic),
        (Fallback, Sfu),
        (Static, Sfu),
        (Recalibrate, Sfu),
        (Stretch, Sfu),
        (Fallback, Nvlink),
        (Static, Nvlink),
        (Recalibrate, Nvlink),
        (Stretch, Nvlink),
    ];
    assert_eq!(&got[..want.len()], &want[..], "ladder order diverged: {d}");
    assert_eq!(got.len(), want.len() + 1, "exactly one event past the last rung: {d}");
    assert_eq!(d.stages.last().unwrap().stage, Abort, "{d}");
    assert!(d.stages.iter().all(|e| !e.recovered), "no rung may recover: {d}");

    // The NVLink rungs must have died to the typed saturation error — the
    // congestion storm exceeding the channel's queue budget — not by
    // decoding garbage.
    let nvlink_attempts: Vec<_> = d
        .stages
        .iter()
        .filter(|e| e.family == Nvlink && e.stage != Fallback && e.stage != Abort)
        .collect();
    assert_eq!(nvlink_attempts.len(), 3, "{d}");
    for e in nvlink_attempts {
        assert!(
            e.detail.contains("transport error") && e.detail.contains("saturated"),
            "nvlink rung should record link saturation, got: {}",
            e.detail
        );
    }
}

#[test]
fn exhausted_ladder_on_ampere_walks_the_same_rungs_in_order() {
    // The sub-core arch runs the identical ladder: total interference must
    // walk Static/Recalibrate/Stretch per family with a Fallback marker at
    // each family switch and a final Abort, exactly as on the paper trio.
    // This pins the adaptive layer's arch-independence through the sub-core
    // decomposition (issue partitions and the sectored L1 change latencies,
    // not the escalation policy).
    let spec = presets::rtx_a4000();
    let msg = Message::pseudo_random(16, 0xABD1);
    let plan = FaultPlan::new(0xDEAD_11AC)
        .with_intensity(1.0)
        .with_period(200_000)
        .with_burst(200_000)
        .with_target_set(2)
        .with_kinds(FaultKinds { link: true, skew: true, ..FaultKinds::cache() });
    let env = LinkEnvironment::clean()
        .with_faults(plan)
        .with_noise(total_noise(), 40 + 30 * msg.len() as u64)
        .with_topology(gpgpu_spec::TopologySpec::dual("ampere").unwrap());
    let link = AdaptiveLink::new(spec).with_env(env);

    let out = link.transmit(&msg).expect("exhaustion is an outcome, not an Err");
    let d = &out.diagnostic;
    assert!(!d.delivered, "no family may deliver under total interference: {d}");
    assert!(d.reason.contains("exhausted"), "{}", d.reason);

    use ChannelFamily::{Atomic, CacheL1Sync, Nvlink, Sfu};
    use LadderStage::{Abort, Fallback, Recalibrate, Static, Stretch};
    let got: Vec<(LadderStage, ChannelFamily)> =
        d.stages.iter().map(|e| (e.stage, e.family)).collect();
    let want = vec![
        (Static, CacheL1Sync),
        (Recalibrate, CacheL1Sync),
        (Stretch, CacheL1Sync),
        (Fallback, Atomic),
        (Static, Atomic),
        (Recalibrate, Atomic),
        (Stretch, Atomic),
        (Fallback, Sfu),
        (Static, Sfu),
        (Recalibrate, Sfu),
        (Stretch, Sfu),
        (Fallback, Nvlink),
        (Static, Nvlink),
        (Recalibrate, Nvlink),
        (Stretch, Nvlink),
    ];
    assert_eq!(&got[..want.len()], &want[..], "ampere ladder order diverged: {d}");
    assert_eq!(d.stages.last().unwrap().stage, Abort, "{d}");
    assert!(d.stages.iter().all(|e| !e.recovered), "no rung may recover: {d}");
}

#[test]
fn ampere_adaptive_delivers_bit_exact_on_a_clean_device() {
    let link = AdaptiveLink::new(presets::rtx_a4000());
    let msg = Message::pseudo_random(32, 0xA4_000);
    let a = link.transmit(&msg).expect("adaptive");
    assert!(a.diagnostic.delivered, "{}", a.diagnostic);
    assert_eq!(a.received, msg);
    assert_eq!(a.diagnostic.stages.len(), 1, "no escalation on a clean device");
}

#[test]
fn exhausted_ladder_without_a_topology_reports_the_nvlink_config_error() {
    // Same total interference, but no multi-GPU topology in the
    // environment: the NVLink rungs cannot even construct a channel and
    // must record the typed configuration error instead of panicking.
    let spec = presets::tesla_k40c();
    let msg = Message::pseudo_random(16, 0xABD2);
    let plan = FaultPlan::new(0xDEAD_11AC)
        .with_intensity(1.0)
        .with_period(200_000)
        .with_burst(200_000)
        .with_target_set(2)
        .with_kinds(FaultKinds { skew: true, ..FaultKinds::cache() });
    let env = LinkEnvironment::clean()
        .with_faults(plan)
        .with_noise(total_noise(), 40 + 30 * msg.len() as u64);
    let out = AdaptiveLink::new(spec).with_env(env).transmit(&msg).expect("outcome, not Err");
    let d = &out.diagnostic;
    assert!(!d.delivered, "{d}");
    assert_eq!(d.stages.last().unwrap().stage, LadderStage::Abort, "{d}");
    let nvlink_rungs: Vec<_> =
        d.stages.iter().filter(|e| e.family == ChannelFamily::Nvlink).collect();
    assert!(!nvlink_rungs.is_empty(), "nvlink family must still be attempted: {d}");
    assert!(
        nvlink_rungs
            .iter()
            .filter(|e| e.stage != LadderStage::Fallback)
            .all(|e| e.detail.contains("requires a multi-GPU topology")),
        "{d}"
    );
}

#[test]
fn clean_device_adaptive_is_bit_identical_to_static() {
    let link = AdaptiveLink::new(presets::tesla_k40c());
    let msg = Message::pseudo_random(48, 0x1DE1);
    let a = link.transmit(&msg).expect("adaptive");
    let s = link.transmit_static(&msg).expect("static");
    assert_eq!(a.received, s.received);
    assert_eq!(a.report, s.report, "same rounds, frames, and simulated cycles");
    assert_eq!(a.diagnostic.stages.len(), 1, "no escalation on a clean device");
}

// ------------------------------------------------------- harness robustness

#[test]
fn panicking_and_deadline_trials_are_isolated_per_slot() {
    let spec = presets::tesla_k40c();
    let runner = TrialRunner::sequential().with_workers(4).with_deadline(1_000);
    let batch = |r: &TrialRunner| {
        r.run_caught(5, |t| {
            match t.index {
                // A hung-handshake stand-in: the sync channel cannot finish
                // inside the trial deadline, surfacing CycleLimitExceeded.
                1 => {
                    let ch = SyncChannel::new(spec.clone())
                        .with_cycle_budget(t.deadline.expect("runner sets a deadline"));
                    ch.transmit(&Message::pseudo_random(8, t.seed)).map(|o| o.received)
                }
                // A crashing trial.
                3 => panic!("trial {} crashed", t.index),
                // Healthy neighbors: a real transmission each.
                _ => L1Channel::new(spec.clone())
                    .transmit(&Message::pseudo_random(8, 0xF00D ^ t.index as u64))
                    .map(|o| o.received),
            }
        })
    };
    let out = batch(&runner);
    assert_eq!(out.len(), 5);
    assert_eq!(out[1], Err(TrialError::DeadlineExceeded { budget: 1_000 }));
    assert_eq!(out[3], Err(TrialError::Panicked { message: "trial 3 crashed".into() }));
    for i in [0, 2, 4] {
        let received = out[i].as_ref().unwrap_or_else(|e| panic!("trial {i} failed: {e}"));
        assert_eq!(*received, Message::pseudo_random(8, 0xF00D ^ i as u64), "trial {i}");
    }
    // The whole batch — including which slots erred and why — is identical
    // for every worker count.
    let seq = batch(&TrialRunner::sequential().with_deadline(1_000));
    assert_eq!(out, seq, "per-trial verdicts are worker-count independent");
}

#[test]
fn checkpointed_sweep_resumes_deterministically_with_real_transmissions() {
    let spec = presets::tesla_k40c();
    let dir = std::env::temp_dir().join(format!("gpgpu-adaptive-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("l1-sweep.ckpt");
    let _ = std::fs::remove_file(&path);
    let runner = TrialRunner::sequential().with_workers(2).with_base_seed(0xCC);
    let encode =
        |m: &Message| m.bits().iter().map(|&b| if b { '1' } else { '0' }).collect::<String>();
    let decode = |s: &str| {
        s.chars()
            .map(|c| match c {
                '0' => Some(false),
                '1' => Some(true),
                _ => None,
            })
            .collect::<Option<Vec<bool>>>()
            .map(Message::from_bits)
    };
    let work = |t: gpgpu_covert::harness::Trial| {
        L1Channel::new(spec.clone())
            .transmit(&Message::pseudo_random(8, t.seed))
            .expect("transmits")
            .received
    };
    let full = runner.run_checkpointed(6, &path, encode, decode, work).unwrap();
    assert_eq!(full.len(), 6);

    // Drop the last two results; the resume must recompute exactly those
    // and reproduce the identical batch.
    let text = std::fs::read_to_string(&path).unwrap();
    let keep: Vec<&str> = text.lines().take(5).collect();
    std::fs::write(&path, keep.join("\n")).unwrap();
    let resumed = runner.run_checkpointed(6, &path, encode, decode, work).unwrap();
    assert_eq!(resumed, full);
    let _ = std::fs::remove_file(&path);
}
