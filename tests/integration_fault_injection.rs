//! Fault-injection integration tests: the deterministic fault subsystem
//! must not perturb the engine-equivalence and seed-determinism guarantees,
//! and the framing/ARQ stack must actually repair what the faults break.
//!
//! Acceptance bar (PR issue): at a fault intensity where the *raw*
//! synchronized channel's BER exceeds 10%, the ARQ-framed transmission over
//! the same faulted channel recovers the message with BER = 0.

use gpgpu_covert::bits::Message;
use gpgpu_covert::framing::{arq_transmit, ArqConfig, SyncPipe};
use gpgpu_covert::harness::TrialRunner;
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_sim::{DeviceTuning, EngineMode, FaultKinds, FaultPlan};
use gpgpu_spec::presets;

/// The calibrated cache-fault storm used by these tests: eviction bursts +
/// phantom-workload storms aimed at the sync channel's first data set
/// (set 2; the handshake sets 0/1 stay clean so the protocol survives).
fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_intensity(1.0)
        .with_period(900_000)
        .with_burst(280_000)
        .with_target_set(2)
        .with_kinds(FaultKinds::cache())
}

#[test]
fn fault_injected_sync_runs_are_engine_equivalent() {
    let run = |engine: EngineMode| {
        let tuning = DeviceTuning { engine, ..DeviceTuning::none() };
        let msg = Message::pseudo_random(24, 0xFA17);
        let plan = FaultPlan::new(0xD00F).with_kinds(FaultKinds::all());
        let o = SyncChannel::new(presets::tesla_k40c())
            .with_tuning(tuning)
            .with_faults(plan)
            .transmit(&msg)
            .expect("transmits");
        (o.cycles, o.received.bits().to_vec(), o.ber.to_bits())
    };
    assert_eq!(
        run(EngineMode::Dense),
        run(EngineMode::EventDriven),
        "a fault hook fired at a point the engines do not share"
    );
}

#[test]
fn fault_ber_is_seed_deterministic_and_worker_count_independent() {
    let trial = |t: gpgpu_covert::harness::Trial| {
        let msg = Message::pseudo_random(16, 0xBA5E ^ t.index as u64);
        let o = SyncChannel::new(presets::tesla_k40c())
            .with_faults(storm_plan(t.seed))
            .transmit(&msg)
            .expect("transmits");
        (o.cycles, o.received.bits().to_vec(), o.ber.to_bits())
    };
    let one = TrialRunner::sequential().with_base_seed(0xFEED).run(4, trial);
    let four = TrialRunner::sequential().with_base_seed(0xFEED).with_workers(4).run(4, trial);
    assert_eq!(one, four, "fault outcomes depend on GPGPU_TRIAL_WORKERS");
}

#[test]
fn arq_framing_recovers_what_the_fault_storm_destroys() {
    let msg = Message::pseudo_random(96, 0x5E_C2E7);
    let plan = storm_plan(0xBAD_5EED);
    let channel = SyncChannel::new(presets::tesla_k40c());

    // Raw: the storm flips probe outcomes on the data set; BER > 10%.
    let raw = channel.clone().with_faults(plan).transmit(&msg).expect("raw transmits");
    assert!(
        raw.ber > 0.10,
        "calibration drifted: the raw faulted channel must exceed 10% BER, got {}",
        raw.ber
    );

    // ARQ over the same faulted channel: selective retransmission under
    // per-round fault reseeding recovers the message completely.
    let mut pipe = SyncPipe::new(channel, plan);
    let cfg = ArqConfig { max_rounds: 24, ..ArqConfig::default() };
    let (received, report) = arq_transmit(&mut pipe, &msg, &cfg).expect("arq transmits");
    assert!(report.recovered, "ARQ exhausted {} rounds without recovering", report.rounds);
    assert_eq!(msg.bit_error_rate(&received), 0.0, "ARQ must deliver BER = 0");
    assert!(
        report.retransmissions > 0,
        "the storm must actually cost retransmissions for this test to mean anything"
    );
}

/// Calibration probe (ignored): prints raw BER across storm duty cycles so
/// the `storm_plan` constants can be re-pinned if channel timing changes.
#[test]
#[ignore]
fn calibrate_storm_intensity() {
    let msg = Message::pseudo_random(96, 0x5E_C2E7);
    let clean = SyncChannel::new(presets::tesla_k40c()).transmit(&msg).expect("clean");
    println!("clean: cycles={} per-bit={}", clean.cycles, clean.cycles / 96);
    for (period, burst) in
        [(900_000, 280_000), (1_200_000, 300_000), (1_200_000, 360_000), (1_500_000, 400_000)]
    {
        let plan = storm_plan(0xBAD_5EED).with_period(period).with_burst(burst);
        let o = SyncChannel::new(presets::tesla_k40c())
            .with_faults(plan)
            .transmit(&msg)
            .expect("transmits");
        println!("period={period} burst={burst}: ber={:.3} cycles={}", o.ber, o.cycles);
        let mut pipe = SyncPipe::new(SyncChannel::new(presets::tesla_k40c()), plan);
        match arq_transmit(&mut pipe, &msg, &ArqConfig::default()) {
            Ok((received, report)) => {
                println!("  arq: ber={:.3} {report:?}", msg.bit_error_rate(&received))
            }
            Err(e) => println!("  arq: error {e}"),
        }
    }
}
