//! Property-based tests for the composable defense layer: arbitrary valid
//! defenses must survive the `--defense` grammar round trip, lowering onto
//! `DeviceTuning` must commute with spec-level composition, and pooled /
//! snapshot-restored devices under any non-trivial tuning (including merged
//! multi-component tunings) must be observably identical to freshly built
//! `Device::with_tuning` devices.
//!
//! Run under a pinned `PROPTEST_RNG_SEED` in CI for reproducible shrinks.

use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::L1Channel;
use gpgpu_covert::pool;
use gpgpu_sim::DeviceTuning;
use gpgpu_spec::{presets, DefenseComponent, DefenseSpec};
use proptest::prelude::*;

/// Builds a defense from a component-inclusion bitmask and the three
/// (always-drawn) in-range parameters.
fn defense_from(mask: u8, partitions: u32, seed: u64, granularity: u64) -> DefenseSpec {
    let components = [
        (mask & 1 != 0).then_some(DefenseComponent::CachePartitioning { partitions }),
        (mask & 2 != 0).then_some(DefenseComponent::RandomizedWarpScheduling { seed }),
        (mask & 4 != 0).then_some(DefenseComponent::ClockFuzzing { granularity }),
    ];
    DefenseSpec::new(components.into_iter().flatten())
        .expect("distinct in-range components always compose")
}

/// A strategy for arbitrary *valid* defenses: any subset of the three
/// Section-9 components with in-range parameters (the empty subset is the
/// undefended baseline, `none`).
fn arb_defense() -> impl Strategy<Value = DefenseSpec> {
    (0u8..8, 2u32..=16, any::<u64>(), 2u64..=1_000_000)
        .prop_map(|(m, p, s, f)| defense_from(m, p, s, f))
}

/// Like [`arb_defense`], but never the empty baseline.
fn arb_nontrivial_defense() -> impl Strategy<Value = DefenseSpec> {
    (1u8..8, 2u32..=16, any::<u64>(), 2u64..=1_000_000)
        .prop_map(|(m, p, s, f)| defense_from(m, p, s, f))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Any valid defense survives the `--defense` grammar round trip
    /// exactly, component parameters included.
    #[test]
    fn defense_specs_round_trip(d in arb_defense()) {
        prop_assert_eq!(DefenseSpec::from_spec(&d.to_spec()), Ok(d));
    }

    /// Lowering commutes with composition: merging the two lowered tunings
    /// gives exactly the lowering of the composed spec, and a spec-level
    /// conflict always surfaces as a tuning-level merge conflict.
    #[test]
    fn lowering_commutes_with_composition(a in arb_defense(), b in arb_defense()) {
        let merged = DeviceTuning::from_defense(&a).merge(DeviceTuning::from_defense(&b));
        match a.compose(&b) {
            Ok(both) => prop_assert_eq!(merged, Ok(DeviceTuning::from_defense(&both))),
            Err(_) => prop_assert!(merged.is_err(), "spec conflict must surface in merge"),
        }
    }

    /// Merging a lowered defense with the empty tuning is the identity, in
    /// both orders.
    #[test]
    fn merge_with_none_is_identity(d in arb_defense()) {
        let t = DeviceTuning::from_defense(&d);
        prop_assert_eq!(t.merge(DeviceTuning::none()), Ok(t));
        prop_assert_eq!(DeviceTuning::none().merge(t), Ok(t));
    }
}

proptest! {
    // Each case runs three full transmissions; keep the count small.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Pooled devices are indistinguishable from fresh ones under any
    /// non-trivial tuning: the same transmission on (1) a fresh device,
    /// (2) a first pooled checkout, and (3) a snapshot-restored pooled
    /// checkout yields the identical outcome bit-for-bit. Multi-component
    /// defenses exercise the merged-tuning path inside `from_defense`.
    #[test]
    fn pooled_devices_match_fresh_under_any_tuning(
        d in arb_nontrivial_defense(),
        seed in any::<u64>(),
    ) {
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(8, seed);
        let tuning = DeviceTuning::from_defense(&d);
        pool::clear();
        pool::set_disabled(true);
        let fresh = L1Channel::new(spec.clone()).with_tuning(tuning).transmit(&msg).unwrap();
        pool::set_disabled(false);
        // The first pooled transmit builds and shelves the device; the
        // second restores its pristine snapshot before running.
        let warmed = L1Channel::new(spec.clone()).with_tuning(tuning).transmit(&msg).unwrap();
        let restored = L1Channel::new(spec).with_tuning(tuning).transmit(&msg).unwrap();
        prop_assert_eq!(&warmed, &fresh);
        prop_assert_eq!(&restored, &fresh);
    }
}
