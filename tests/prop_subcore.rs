//! Property-based tests for the sub-core decomposition (spec grammar,
//! degenerate legacy identity, sectored-fill accounting).
//!
//! Three invariants hold for *arbitrary* inputs, not just the four shipped
//! generations:
//!
//! 1. The [`ArchDescriptor`] grammar is a faithful, injective serialization
//!    over the whole descriptor space.
//! 2. An Ampere-tagged device configured as the degenerate legacy case
//!    (single scoreboarded sub-core, unsectored L1) is cycle-identical to
//!    its Maxwell twin on arbitrary kernels — the sub-core engine refactor
//!    cannot perturb legacy timing through any code path.
//! 3. Sector-fill accounting never exceeds line-fill accounting in bytes
//!    for any access pattern (each sector fills at most once per line
//!    lifetime), with equality when the geometry is unsectored.
//!
//! Run under a pinned `PROPTEST_RNG_SEED` in CI for reproducible shrinks.

use gpgpu_isa::{ProgramBuilder, Reg};
use gpgpu_mem::SetAssocCache;
use gpgpu_sim::{Device, KernelSpec};
use gpgpu_spec::{
    presets, ArchDescriptor, Architecture, CacheGeometry, DependenceMode, DeviceSpec, FuOpKind,
    LaunchConfig, SubCoreSpec,
};
use proptest::prelude::*;

// ------------------------------------------------------------ (a) grammar

/// Arbitrary descriptors over the full field space — not just the four
/// canonical generations — so the grammar is pinned as a total codec.
fn arb_descriptor() -> impl Strategy<Value = ArchDescriptor> {
    let arch = prop_oneof![
        Just(Architecture::Fermi),
        Just(Architecture::Kepler),
        Just(Architecture::Maxwell),
        Just(Architecture::Ampere),
    ];
    let dep = prop_oneof![Just(DependenceMode::Scoreboard), Just(DependenceMode::FixedLatency)];
    let sector =
        prop_oneof![Just(None), (1u32..=7, 1u64..=8).prop_map(|(b, n)| Some((1u64 << b, n))),];
    (arch, 1u32..=8, 1u32..=4, 1u32..=65_536, dep, sector).prop_map(
        |(arch, sub_cores, issue_slots, registers_per_subcore, dependence, l1_sector)| {
            ArchDescriptor {
                arch,
                sub_core: SubCoreSpec { sub_cores, issue_slots, registers_per_subcore, dependence },
                l1_sector,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Any descriptor survives the spec-string round trip exactly.
    #[test]
    fn descriptor_grammar_round_trips(d in arb_descriptor()) {
        prop_assert_eq!(ArchDescriptor::parse(&d.to_spec()), Ok(d));
    }

    /// `to_spec` is injective on the descriptor space: distinct descriptors
    /// render to distinct strings (a collision would make the
    /// content-addressed spec key ambiguous).
    #[test]
    fn distinct_descriptors_render_distinct_specs(
        a in arb_descriptor(),
        b in arb_descriptor(),
    ) {
        if a != b {
            prop_assert!(a.to_spec() != b.to_spec(), "collision: {}", a.to_spec());
        }
    }
}

// ------------------------------------- (b) degenerate identity to Maxwell

/// A 1-sub-core Maxwell device and its Ampere-tagged twin: identical SM
/// resources, a single scoreboarded single-issue sub-core owning the whole
/// register file, and an unsectored L1. The architecture tag is the *only*
/// difference, and the Ampere functional-unit timing rows equal Maxwell's,
/// so every kernel must replay cycle-for-cycle.
fn degenerate_pair() -> (DeviceSpec, DeviceSpec) {
    let mut maxwell = presets::quadro_m4000();
    maxwell.sm.num_warp_schedulers = 1;
    maxwell.sm.dispatch_units = 1;
    maxwell.sub_core = SubCoreSpec::shared_issue(&maxwell.sm);
    let mut ampere = maxwell.clone();
    ampere.name = "Degenerate A4000".to_string();
    ampere.architecture = Architecture::Ampere;
    ampere.sub_core = SubCoreSpec {
        sub_cores: 1,
        issue_slots: 1,
        registers_per_subcore: maxwell.sm.registers,
        dependence: DependenceMode::Scoreboard,
    };
    (maxwell, ampere)
}

/// One step of an arbitrary kernel: a constant load, a functional-unit op,
/// or a timed drain point that pushes the warp clock into the results.
#[derive(Debug, Clone, Copy)]
enum Step {
    ConstLoad(u64),
    Fu(FuOpKind),
    PushClock,
}

fn arb_program() -> impl Strategy<Value = Vec<Step>> {
    let step = prop_oneof![
        (0u64..4096).prop_map(Step::ConstLoad),
        prop_oneof![
            Just(FuOpKind::SpAdd),
            Just(FuOpKind::SpMul),
            Just(FuOpKind::SpSinf),
            Just(FuOpKind::SpSqrt),
        ]
        .prop_map(Step::Fu),
        Just(Step::PushClock),
    ];
    proptest::collection::vec(step, 1..48)
}

fn run_kernel(spec: &DeviceSpec, steps: &[Step], warps: u32) -> (u64, Vec<Vec<u64>>) {
    let mut b = ProgramBuilder::new();
    let (addr, clock) = (Reg(0), Reg(1));
    for step in steps {
        match *step {
            Step::ConstLoad(offset) => {
                b.mov_imm(addr, offset);
                b.const_load(addr);
            }
            Step::Fu(op) => {
                b.fu(op);
            }
            Step::PushClock => {
                b.read_clock(clock);
                b.push_result(clock);
            }
        }
    }
    b.read_clock(clock);
    b.push_result(clock);
    let mut dev = Device::new(spec.clone());
    dev.alloc_constant(4096);
    let k = dev
        .launch(
            0,
            KernelSpec::new(
                "prop-subcore",
                b.build().expect("assembles"),
                LaunchConfig::new(1, warps * 32),
            ),
        )
        .expect("launches");
    dev.run_until_idle(200_000_000).expect("completes");
    let r = dev.results(k).expect("results");
    let per_warp = (0..warps).map(|w| r.warp_results(0, w).unwrap_or(&[]).to_vec()).collect();
    (dev.now(), per_warp)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The degenerate Ampere twin replays arbitrary kernels cycle-for-cycle
    /// against Maxwell: same device clock at idle, same per-warp clock
    /// observations.
    #[test]
    fn degenerate_ampere_is_cycle_identical_to_maxwell(
        steps in arb_program(),
        warps in 1u32..=4,
    ) {
        let (maxwell, ampere) = degenerate_pair();
        let (m_now, m_results) = run_kernel(&maxwell, &steps, warps);
        let (a_now, a_results) = run_kernel(&ampere, &steps, warps);
        prop_assert_eq!(m_now, a_now, "device clocks diverged");
        prop_assert_eq!(m_results, a_results, "warp clock observations diverged");
    }
}

// --------------------------------------------- (c) sector-fill accounting

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// For any access pattern, the bytes fetched by sector fills never
    /// exceed the bytes the same trace would fetch filling whole lines:
    /// a sector fills at most once per line lifetime, so
    /// `sector_fills * sector_bytes <= line_fills * line_bytes`, with
    /// equality exactly when the geometry is unsectored.
    #[test]
    fn sector_fill_bytes_never_exceed_line_fill_bytes(
        sector_shift in 3u32..=6, // 8..=64 B sectors in a 64 B line
        addrs in proptest::collection::vec(0u64..16 * 1024, 1..256),
    ) {
        let sector_bytes = 1u64 << sector_shift;
        let geom = CacheGeometry::new_sectored(2048, 64, 4, sector_bytes).unwrap();
        let mut cache = SetAssocCache::new(geom);
        for &a in &addrs {
            cache.access(a);
            prop_assert!(
                cache.sector_fills() * geom.sector_bytes()
                    <= cache.line_fills() * geom.line_bytes(),
                "sector-fill bytes overtook line-fill bytes after {} accesses",
                addrs.len()
            );
            prop_assert!(
                cache.sector_fills() >= cache.line_fills(),
                "every line fill fetches its first sector"
            );
        }
        if !geom.is_sectored() {
            prop_assert_eq!(
                cache.sector_fills() * geom.sector_bytes(),
                cache.line_fills() * geom.line_bytes(),
                "unsectored fills are whole lines"
            );
        }
    }
}
