//! Determinism regression tests for the trial harness and the event-driven
//! cycle engine.
//!
//! The performance work must never change a result: the same seeds pushed
//! through the sequential path and through a threaded [`TrialRunner`] must
//! produce bit-identical cycle counts, received bits and BER — and the
//! `Dense` ablation engine must agree bit-for-bit with the default
//! event-driven engine.

use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::L1Channel;
use gpgpu_covert::harness::{Trial, TrialRunner};
use gpgpu_sim::{DeviceTuning, EngineMode};
use gpgpu_spec::presets;

/// One seeded BER trial: a short L1 transmission whose launch jitter is
/// seeded from the trial, returning everything a sweep would record.
fn ber_trial(t: Trial) -> (u64, Vec<bool>, f64) {
    let msg = Message::pseudo_random(8, 0xDA7A ^ t.index as u64);
    let o = L1Channel::new(presets::tesla_k40c())
        .with_iterations(4)
        .with_jitter(Some((3_000, t.seed)))
        .transmit(&msg)
        .expect("transmits");
    (o.cycles, o.received.bits().to_vec(), o.ber)
}

#[test]
fn threaded_runner_matches_sequential_bitwise() {
    const TRIALS: usize = 12;
    let sequential = TrialRunner::sequential().with_base_seed(0xBEEF).run(TRIALS, ber_trial);
    for workers in [2, 4, 7] {
        let threaded = TrialRunner::sequential()
            .with_base_seed(0xBEEF)
            .with_workers(workers)
            .run(TRIALS, ber_trial);
        assert_eq!(
            sequential, threaded,
            "cycle counts / received bits / BER diverged at {workers} workers"
        );
    }
}

#[test]
fn error_rate_sweep_is_worker_count_independent() {
    let msg = Message::pseudo_random(16, 0x5EED_CAFE);
    let ch = L1Channel::new(presets::tesla_k40c());
    let sequential =
        ch.error_rate_sweep_on(&TrialRunner::sequential(), &msg, &[8, 4, 2, 1]).expect("sweep");
    let threaded = ch
        .error_rate_sweep_on(&TrialRunner::sequential().with_workers(4), &msg, &[8, 4, 2, 1])
        .expect("sweep");
    assert_eq!(sequential, threaded);
}

#[test]
fn dense_and_event_driven_engines_agree_bitwise() {
    let run = |engine: EngineMode| {
        let tuning = DeviceTuning { engine, ..DeviceTuning::none() };
        let msg = Message::pseudo_random(8, 0xD15E);
        let o = L1Channel::new(presets::tesla_k40c())
            .with_tuning(tuning)
            .transmit(&msg)
            .expect("transmits");
        (o.cycles, o.received.bits().to_vec(), o.ber, o.bandwidth_kbps.to_bits())
    };
    assert_eq!(
        run(EngineMode::Dense),
        run(EngineMode::EventDriven),
        "the event-driven engine changed an architectural result"
    );
}

#[test]
fn cycle_limit_fires_at_the_same_cycle_in_both_engines() {
    use gpgpu_isa::ProgramBuilder;
    use gpgpu_sim::{Device, KernelSpec};
    use gpgpu_spec::{FuOpKind, LaunchConfig};
    // An endless spin kernel forces the budget to trip; the event-driven
    // engine used to fast-forward past the limit (e.g. to the K40C's
    // 15 000-cycle launch arrival) before noticing it, reporting the right
    // error from the wrong cycle.
    let spin = || {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top);
        b.fu(FuOpKind::SpAdd);
        b.jump(top);
        b.build().unwrap()
    };
    let run = |engine: EngineMode, limit: u64| {
        let tuning = DeviceTuning { engine, ..DeviceTuning::none() };
        let mut dev = Device::with_tuning(presets::tesla_k40c(), tuning);
        dev.launch(0, KernelSpec::new("spin", spin(), LaunchConfig::new(1, 32))).unwrap();
        let err = dev.run_until_idle(limit);
        (dev.now(), err)
    };
    // Budget below the 15 000-cycle launch arrival (pure fast-forward path)
    // and budget mid-flight (stepping path): identical stop cycle + error.
    for limit in [10_000, 20_000] {
        let dense = run(EngineMode::Dense, limit);
        let event = run(EngineMode::EventDriven, limit);
        assert_eq!(dense, event, "engines disagree on the limit-hit path at limit {limit}");
        assert_eq!(dense.0, limit, "clock must stop exactly at the budget");
    }
}

#[test]
fn microbench_sweeps_are_worker_count_independent() {
    use gpgpu_covert::microbench::{cache_sweep, fig2_sizes};
    // cache_sweep reads GPGPU_TRIAL_WORKERS via TrialRunner::new(); the
    // points are deterministic per size, so any two full runs must agree.
    let spec = presets::tesla_k40c();
    let sizes = fig2_sizes();
    let a = cache_sweep(&spec, 64, &sizes[..12]).expect("sweep");
    let b = cache_sweep(&spec, 64, &sizes[..12]).expect("sweep");
    assert_eq!(a, b);
}
