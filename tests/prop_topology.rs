//! Property-based tests for the multi-GPU topology layer: arbitrary valid
//! topologies must survive the spec-string round trip, arbitrary payloads
//! must round-trip across a clean two-GPU link, and arbitrary link-fault
//! schedules must surface as typed errors — never panics.
//!
//! Run under a pinned `PROPTEST_RNG_SEED` in CI for reproducible shrinks.

use gpgpu_covert::bits::Message;
use gpgpu_covert::nvlink_channel::NvlinkChannel;
use gpgpu_covert::CovertError;
use gpgpu_sim::{FaultKinds, FaultPlan, SimError};
use gpgpu_spec::{LinkSpec, TopologySpec};
use proptest::prelude::*;

/// A strategy for arbitrary *valid* topologies: 2–4 devices drawn from the
/// three preset architectures, joined by 0–4 links with distinct in-range
/// endpoints and non-zero timing fields.
fn arb_topology() -> impl Strategy<Value = TopologySpec> {
    let device = prop_oneof![Just("fermi"), Just("kepler"), Just("maxwell")];
    let devices = proptest::collection::vec(device, 2..=4);
    let raw_link = (0u32..4, 1u32..4, 1u64..10_000, 1u64..64, 1u32..16);
    let links = proptest::collection::vec(raw_link, 0..=4);
    (devices, links).prop_map(|(devices, raw)| {
        let n = devices.len() as u32;
        let links = raw
            .into_iter()
            .map(|(a, b_off, lat, slot, lanes)| {
                // Map the raw draws onto distinct in-range endpoints.
                let a = a % n;
                let b = (a + 1 + b_off % (n - 1)) % n;
                LinkSpec::between(a, b).with_latency(lat).with_slot_cycles(slot).with_lanes(lanes)
            })
            .collect();
        TopologySpec::new(&devices, links).expect("strategy only emits valid topologies")
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any valid topology survives the `--topology` grammar round trip
    /// exactly: devices, link endpoints, and every timing field.
    #[test]
    fn topology_spec_round_trips(t in arb_topology()) {
        prop_assert_eq!(TopologySpec::from_spec(&t.to_spec()), Ok(t));
    }

    /// `to_spec` is injective on the generated space: distinct topologies
    /// render to distinct strings (a collision would make the CLI argument
    /// ambiguous).
    #[test]
    fn distinct_topologies_render_distinct_specs(a in arb_topology(), b in arb_topology()) {
        if a != b {
            prop_assert!(a.to_spec() != b.to_spec(), "collision: {}", a.to_spec());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Any payload round-trips error-free across a clean dual-GPU link at
    /// the channel's self-calibrated operating point.
    #[test]
    fn cross_device_payload_round_trips(
        bits in proptest::collection::vec(any::<bool>(), 1..16),
    ) {
        let msg = Message::from_bits(bits);
        let ch = NvlinkChannel::new(TopologySpec::dual("kepler").unwrap()).unwrap();
        let o = ch.transmit(&msg).unwrap();
        prop_assert_eq!(o.received, msg);
    }

    /// Arbitrary link-congestion fault schedules never panic: a transmission
    /// either completes (possibly with bit errors the outcome reports) or
    /// fails with the typed `LinkSaturated` error.
    #[test]
    fn link_fault_bursts_yield_typed_errors_never_panics(
        seed in any::<u64>(),
        period in 1u64..100_000,
        burst_frac_ppm in 0u64..=1_000_000,
        intensity_ppm in 0u64..=1_000_000,
    ) {
        let plan = FaultPlan::new(seed)
            .with_period(period)
            .with_burst(period * burst_frac_ppm / 1_000_000)
            .with_intensity(intensity_ppm as f64 / 1e6)
            .with_kinds(FaultKinds { link: true, ..FaultKinds::none() });
        let ch = NvlinkChannel::new(TopologySpec::dual("kepler").unwrap())
            .unwrap()
            .with_faults(plan);
        match ch.transmit(&Message::from_bits([true, false, true])) {
            Ok(_) => {}
            Err(CovertError::Sim(SimError::LinkSaturated { queue_cycles, .. })) => {
                prop_assert!(queue_cycles > 0, "saturation must report the queue delay");
            }
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
        }
    }
}
