//! The full attack playbook, end to end, using only what an attacker can
//! observe: reverse engineer the schedulers and caches from timing, derive
//! the channel parameters from the *recovered* values, then communicate.

use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::L1Channel;
use gpgpu_covert::colocation::{
    coresident_recipe, reverse_engineer_block_scheduler, reverse_engineer_warp_scheduler,
};
use gpgpu_covert::microbench::{cache_sweep, recover_cache_geometry};
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_spec::presets;

#[test]
fn recon_then_attack_from_recovered_parameters_only() {
    let spec = presets::tesla_k40c();

    // Step 1 (paper §3): the placement policy supports co-residency.
    let blocks = reverse_engineer_block_scheduler(&spec).unwrap();
    assert!(blocks.is_leftover_policy());
    let warps = reverse_engineer_warp_scheduler(&spec).unwrap();
    assert!(warps.inferred_num_schedulers > 0);

    // Step 2 (paper §4.1): recover the L1 geometry from a stride sweep over
    // a size range an attacker would scan (we do not peek at the preset).
    let sizes: Vec<u64> = (0..=120).map(|i| 1024 + i * 32).collect();
    let sweep = cache_sweep(&spec, 64, &sizes).unwrap();
    let g = recover_cache_geometry(&sweep).expect("staircase found");

    // Step 3: the recovered parameters equal the hardware's.
    assert_eq!(g.size_bytes, spec.const_l1.geometry.size_bytes());
    assert_eq!(g.line_bytes, spec.const_l1.geometry.line_bytes());
    assert_eq!(g.num_sets, spec.const_l1.geometry.num_sets());
    assert_eq!(g.ways, spec.const_l1.geometry.ways());

    // Step 4: pick a target set within the *recovered* set count and
    // transmit with the co-residency recipe the recon produced.
    let (spy_cfg, _) = coresident_recipe(&spec);
    assert_eq!(spy_cfg.grid_blocks, spec.num_sms);
    let target_set = (g.num_sets - 1).min(5);
    let msg = Message::from_bytes(b"go");
    let o = L1Channel::new(spec.clone()).with_target_set(target_set).transmit(&msg).unwrap();
    assert!(o.is_error_free(), "ber {}", o.ber);

    // Step 5: upgrade to the synchronized channel sized by the recovered
    // set count (all sets minus the two signalling sets).
    let data_sets = (g.num_sets - 2) as u32;
    let o = SyncChannel::new(spec)
        .with_data_sets(data_sets)
        .unwrap()
        .transmit(&Message::from_bytes(b"covert payload"))
        .unwrap();
    assert!(o.is_error_free(), "ber {}", o.ber);
    assert_eq!(o.received.to_bytes(), b"covert payload");
}

#[test]
fn playbook_works_on_fermi_too() {
    // Fermi's L1 is twice the size (4 KB, 16 sets); the same recon flow
    // must adapt without any hardcoded constants.
    let spec = presets::tesla_c2075();
    let sizes: Vec<u64> = (0..=120).map(|i| 3072 + i * 32).collect();
    let sweep = cache_sweep(&spec, 64, &sizes).unwrap();
    let g = recover_cache_geometry(&sweep).expect("staircase found");
    assert_eq!(g.size_bytes, 4096);
    assert_eq!(g.num_sets, 16);
    let o = SyncChannel::new(spec)
        .with_data_sets((g.num_sets - 2) as u32)
        .unwrap()
        .transmit(&Message::pseudo_random(28, 0xF00))
        .unwrap();
    assert!(o.is_error_free(), "ber {}", o.ber);
}
