//! Differential tests: the dense and event-driven cycle engines must
//! produce bit-identical architectural results for every channel family.
//!
//! The event-driven engine's optimization contract is that it skips only
//! work that provably cannot change architectural state — so a whole
//! channel transmission (calibration, per-bit kernels, decode, cycle
//! counts) must come out identical under both engines, down to the last
//! bit of the floating-point bandwidth figure. `assert_engines_agree` runs
//! each closure once per engine and compares.

use gpgpu_covert::atomic_channel::{AtomicChannel, AtomicScenario};
use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::L1Channel;
use gpgpu_covert::fu_channel::SfuChannel;
use gpgpu_covert::harness::assert_engines_agree;
use gpgpu_covert::nvlink_channel::NvlinkChannel;
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_covert::ChannelOutcome;
use gpgpu_sim::{DeviceTuning, EngineMode, FaultKinds, FaultPlan};
use gpgpu_spec::{presets, TopologySpec};

/// The architectural fingerprint of a transmission: everything a spy can
/// observe, with floats made exactly comparable. Engine counters
/// (`SimStats`) are deliberately excluded — the engines legitimately differ
/// in how much work they *did*, never in what the simulation *computed*.
fn fingerprint(o: &ChannelOutcome) -> (Vec<bool>, usize, u64, u64, u64) {
    (
        o.received.bits().to_vec(),
        o.sent.len(),
        o.cycles,
        o.ber.to_bits(),
        o.bandwidth_kbps.to_bits(),
    )
}

fn tuning(mode: EngineMode) -> DeviceTuning {
    DeviceTuning { engine: mode, ..DeviceTuning::none() }
}

#[test]
fn l1_channel_is_engine_equivalent() {
    let msg = Message::from_bits([true, false, true, true, false, false, true, false]);
    let out = assert_engines_agree("L1 prime+probe channel", |mode| {
        let o = L1Channel::new(presets::tesla_k40c())
            .with_tuning(tuning(mode))
            .transmit(&msg)
            .expect("l1 transmits");
        fingerprint(&o)
    });
    assert_eq!(out.0, msg.bits(), "and the channel itself is error-free");
}

#[test]
fn sync_channel_is_engine_equivalent() {
    let msg = Message::from_bits([false, true, true, false, true, false, false, true]);
    let out = assert_engines_agree("synchronized L1 channel", |mode| {
        let o = SyncChannel::new(presets::tesla_k40c())
            .with_tuning(tuning(mode))
            .transmit(&msg)
            .expect("sync transmits");
        fingerprint(&o)
    });
    assert_eq!(out.0, msg.bits());
}

#[test]
fn atomic_channel_is_engine_equivalent() {
    let msg = Message::from_bits([true, true, false, false, true, false, true, false]);
    let out = assert_engines_agree("atomic-contention channel", |mode| {
        let o = AtomicChannel::new(presets::tesla_k40c(), AtomicScenario::OneAddress)
            .with_tuning(tuning(mode))
            .transmit(&msg)
            .expect("atomic transmits");
        fingerprint(&o)
    });
    assert_eq!(out.0, msg.bits());
}

#[test]
fn sfu_channel_is_engine_equivalent() {
    let msg = Message::from_bits([false, true, false, true, true, false, true, true]);
    let out = assert_engines_agree("SFU issue-contention channel", |mode| {
        let o = SfuChannel::new(presets::tesla_k40c())
            .with_tuning(tuning(mode))
            .transmit(&msg)
            .expect("sfu transmits");
        fingerprint(&o)
    });
    assert_eq!(out.0, msg.bits());
}

#[test]
fn nvlink_channel_is_engine_equivalent() {
    let msg = Message::from_bytes(b"x9");
    let out = assert_engines_agree("cross-GPU nvlink channel", |mode| {
        let ch = NvlinkChannel::new(TopologySpec::dual("kepler").expect("dual topology"))
            .expect("channel builds")
            .with_tuning(tuning(mode));
        fingerprint(&ch.transmit(&msg).expect("nvlink transmits"))
    });
    assert_eq!(out.0, msg.bits());
}

#[test]
fn nvlink_channel_under_mild_congestion_is_engine_equivalent() {
    // Link-congestion faults perturb the transfer schedule; the schedule is
    // pure arithmetic over request timestamps, so it must stay identical
    // across engines even when it differs from the clean run.
    let plan = FaultPlan::new(0x11AC)
        .with_period(2_048)
        .with_burst(512)
        .with_intensity(0.5)
        .with_kinds(FaultKinds { link: true, ..FaultKinds::none() });
    let msg = Message::from_bits([true, false, true, false, true, true]);
    assert_engines_agree("nvlink channel under congestion faults", |mode| {
        let ch = NvlinkChannel::new(TopologySpec::dual("maxwell").expect("dual topology"))
            .expect("channel builds")
            .with_tuning(tuning(mode))
            .with_faults(plan);
        fingerprint(&ch.transmit(&msg).expect("mild congestion must not saturate"))
    });
}
