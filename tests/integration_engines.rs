//! Differential tests: the dense and event-driven cycle engines must
//! produce bit-identical architectural results for every channel family.
//!
//! The event-driven engine's optimization contract is that it skips only
//! work that provably cannot change architectural state — so a whole
//! channel transmission (calibration, per-bit kernels, decode, cycle
//! counts) must come out identical under both engines, down to the last
//! bit of the floating-point bandwidth figure. `assert_engines_agree` runs
//! each closure once per engine and compares.

use gpgpu_covert::atomic_channel::{AtomicChannel, AtomicScenario};
use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::L1Channel;
use gpgpu_covert::fu_channel::SfuChannel;
use gpgpu_covert::harness::assert_engines_agree;
use gpgpu_covert::nvlink_channel::NvlinkChannel;
use gpgpu_covert::parallel::ParallelSfuChannel;
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_covert::ChannelOutcome;
use gpgpu_sim::{DeviceTuning, EngineMode, FaultKinds, FaultPlan};
use gpgpu_spec::{presets, TopologySpec};

/// The architectural fingerprint of a transmission: everything a spy can
/// observe, with floats made exactly comparable. Engine counters
/// (`SimStats`) are deliberately excluded — the engines legitimately differ
/// in how much work they *did*, never in what the simulation *computed*.
fn fingerprint(o: &ChannelOutcome) -> (Vec<bool>, usize, u64, u64, u64) {
    (
        o.received.bits().to_vec(),
        o.sent.len(),
        o.cycles,
        o.ber.to_bits(),
        o.bandwidth_kbps.to_bits(),
    )
}

fn tuning(mode: EngineMode) -> DeviceTuning {
    DeviceTuning { engine: mode, ..DeviceTuning::none() }
}

#[test]
fn l1_channel_is_engine_equivalent() {
    let msg = Message::from_bits([true, false, true, true, false, false, true, false]);
    let out = assert_engines_agree("L1 prime+probe channel", |mode| {
        let o = L1Channel::new(presets::tesla_k40c())
            .with_tuning(tuning(mode))
            .transmit(&msg)
            .expect("l1 transmits");
        fingerprint(&o)
    });
    assert_eq!(out.0, msg.bits(), "and the channel itself is error-free");
}

#[test]
fn sync_channel_is_engine_equivalent() {
    let msg = Message::from_bits([false, true, true, false, true, false, false, true]);
    let out = assert_engines_agree("synchronized L1 channel", |mode| {
        let o = SyncChannel::new(presets::tesla_k40c())
            .with_tuning(tuning(mode))
            .transmit(&msg)
            .expect("sync transmits");
        fingerprint(&o)
    });
    assert_eq!(out.0, msg.bits());
}

#[test]
fn atomic_channel_is_engine_equivalent() {
    let msg = Message::from_bits([true, true, false, false, true, false, true, false]);
    let out = assert_engines_agree("atomic-contention channel", |mode| {
        let o = AtomicChannel::new(presets::tesla_k40c(), AtomicScenario::OneAddress)
            .with_tuning(tuning(mode))
            .transmit(&msg)
            .expect("atomic transmits");
        fingerprint(&o)
    });
    assert_eq!(out.0, msg.bits());
}

#[test]
fn sfu_channel_is_engine_equivalent() {
    let msg = Message::from_bits([false, true, false, true, true, false, true, true]);
    let out = assert_engines_agree("SFU issue-contention channel", |mode| {
        let o = SfuChannel::new(presets::tesla_k40c())
            .with_tuning(tuning(mode))
            .transmit(&msg)
            .expect("sfu transmits");
        fingerprint(&o)
    });
    assert_eq!(out.0, msg.bits());
}

#[test]
fn nvlink_channel_is_engine_equivalent() {
    let msg = Message::from_bytes(b"x9");
    let out = assert_engines_agree("cross-GPU nvlink channel", |mode| {
        let ch = NvlinkChannel::new(TopologySpec::dual("kepler").expect("dual topology"))
            .expect("channel builds")
            .with_tuning(tuning(mode));
        fingerprint(&ch.transmit(&msg).expect("nvlink transmits"))
    });
    assert_eq!(out.0, msg.bits());
}

/// The full architecture × family grid: every device preset (the paper trio
/// plus sub-core Ampere) runs every channel family under both cycle engines,
/// and the engines must stay bit-identical everywhere. This is the
/// regression net for the sub-core decomposition: Ampere exercises
/// single-issue sub-cores, fixed-latency dependence management and the
/// sectored L1, while the legacy archs pin the shared-issue degenerate case.
#[test]
fn every_arch_runs_every_family_engine_equivalent() {
    let msg = Message::pseudo_random(8, 0x4A5C);
    for spec in presets::all() {
        let arch = spec.architecture.label();
        assert_engines_agree(&format!("l1 channel on {arch}"), |mode| {
            let o = L1Channel::new(spec.clone())
                .with_tuning(tuning(mode))
                .transmit(&msg)
                .expect("l1 transmits");
            fingerprint(&o)
        });
        assert_engines_agree(&format!("sync channel on {arch}"), |mode| {
            let o = SyncChannel::new(spec.clone())
                .with_tuning(tuning(mode))
                .transmit(&msg)
                .expect("sync transmits");
            fingerprint(&o)
        });
        assert_engines_agree(&format!("parallel-sfu channel on {arch}"), |mode| {
            let o = ParallelSfuChannel::new(spec.clone())
                .with_tuning(tuning(mode))
                .transmit(&msg)
                .expect("parallel-sfu transmits");
            fingerprint(&o)
        });
        assert_engines_agree(&format!("atomic channel on {arch}"), |mode| {
            let o = AtomicChannel::new(spec.clone(), AtomicScenario::OneAddress)
                .with_tuning(tuning(mode))
                .transmit(&msg)
                .expect("atomic transmits");
            fingerprint(&o)
        });
        assert_engines_agree(&format!("nvlink channel on {arch}"), |mode| {
            let ch = NvlinkChannel::new(TopologySpec::dual(arch).expect("dual topology"))
                .expect("channel builds")
                .with_tuning(tuning(mode));
            fingerprint(&ch.transmit(&msg).expect("nvlink transmits"))
        });
    }
}

/// The fault plan the seed-golden tests ran under when their fingerprints
/// were captured: mild eviction/jitter/clock faults so the fault hooks are
/// exercised on every family without saturating any channel.
fn golden_fault_plan() -> FaultPlan {
    FaultPlan::new(0xFA11)
        .with_period(4_096)
        .with_burst(256)
        .with_intensity(0.25)
        .with_kinds(FaultKinds { evict: true, jitter: true, clock: true, ..FaultKinds::none() })
}

/// Bits of the golden message `b"Kq"`.
fn golden_msg() -> Message {
    Message::from_bytes(b"Kq")
}

// Fingerprints captured from the seed engine (pre-data-oriented-core), with
// faults and tracing enabled. These pin the exact scheduler order, memory
// timing, fault schedule and trace-hook cadence: the struct-of-arrays warp
// table, trial arenas and snapshot restore must reproduce every one of them
// bit for bit. Do not regenerate these constants to make a failure pass —
// a mismatch means the rewrite changed architectural behaviour.

#[test]
fn seed_golden_l1_with_faults_and_tracing() {
    let msg = golden_msg();
    let (o, cap) = L1Channel::new(presets::tesla_k40c())
        .with_tuning(tuning(EngineMode::EventDriven))
        .with_faults(golden_fault_plan())
        .transmit_traced(&msg, 4096)
        .expect("l1 transmits under golden faults");
    assert_eq!(o.received.bits(), msg.bits());
    assert_eq!(
        fingerprint(&o),
        (msg.bits().to_vec(), 16, 270_092, 0, 4631408000392284183),
        "L1 channel diverged from the seed engine"
    );
    assert_eq!(cap.records().len(), 4096, "trace ring fill diverged");
    assert_eq!(cap.events.dropped(), 520_703, "trace event cadence diverged");
}

#[test]
fn seed_golden_sync_with_faults() {
    let msg = golden_msg();
    let o = SyncChannel::new(presets::tesla_k40c())
        .with_tuning(tuning(EngineMode::EventDriven))
        .with_faults(golden_fault_plan())
        .transmit(&msg)
        .expect("sync transmits under golden faults");
    // The sync protocol takes two bit errors under this plan — itself part
    // of the fingerprint (the fault schedule must land identically).
    let received = [
        false, true, true, false, true, false, true, true, false, true, true, true, true, false,
        false, true,
    ];
    assert_eq!(
        fingerprint(&o),
        (received.to_vec(), 16, 134_275, 4593671619917905920, 4635947264306802898),
        "sync channel diverged from the seed engine"
    );
}

#[test]
fn seed_golden_atomic_with_faults() {
    let msg = golden_msg();
    let o = AtomicChannel::new(presets::tesla_k40c(), AtomicScenario::OneAddress)
        .with_tuning(tuning(EngineMode::EventDriven))
        .with_faults(golden_fault_plan())
        .transmit(&msg)
        .expect("atomic transmits under golden faults");
    assert_eq!(
        fingerprint(&o),
        (msg.bits().to_vec(), 16, 962_793, 0, 4623159302550576337),
        "atomic channel diverged from the seed engine"
    );
}

#[test]
fn seed_golden_sfu_with_faults() {
    let msg = golden_msg();
    let o = SfuChannel::new(presets::tesla_k40c())
        .with_tuning(tuning(EngineMode::EventDriven))
        .with_faults(golden_fault_plan())
        .transmit(&msg)
        .expect("sfu transmits under golden faults");
    assert_eq!(
        fingerprint(&o),
        (msg.bits().to_vec(), 16, 548_736, 0, 4626807600048860839),
        "sfu channel diverged from the seed engine"
    );
}

#[test]
fn seed_golden_nvlink_with_faults_and_tracing() {
    let msg = golden_msg();
    let plan = FaultPlan::new(0x11AC)
        .with_period(2_048)
        .with_burst(512)
        .with_intensity(0.5)
        .with_kinds(FaultKinds { link: true, ..FaultKinds::none() });
    let ch = NvlinkChannel::new(TopologySpec::dual("maxwell").expect("dual topology"))
        .expect("channel builds")
        .with_tuning(tuning(EngineMode::EventDriven))
        .with_faults(plan);
    let (o, trace) = ch.transmit_traced(&msg).expect("nvlink transmits under golden faults");
    assert_eq!(
        fingerprint(&o),
        (msg.bits().to_vec(), 16, 52_678, 0, 4642464776539840714),
        "nvlink channel diverged from the seed engine"
    );
    assert_eq!(trace.len(), 384, "link transfer count diverged");
}

/// Every single-component defense the arena composes from, as specs.
const SINGLE_DEFENSES: [&str; 3] = ["partition=2", "randsched=0xd1ce", "fuzz=4096"];

/// Engine tuning with one defense lowered on top: the defended device must
/// still be engine-equivalent — a defense changes what the simulation
/// computes, never differently per engine.
fn defended_tuning(mode: EngineMode, defense: &str) -> DeviceTuning {
    let defense = gpgpu_spec::DefenseSpec::from_spec(defense).expect("defense spec parses");
    DeviceTuning::from_defense(&defense)
        .merge(tuning(mode))
        .expect("defense and engine tunings touch disjoint knobs")
}

#[test]
fn every_family_is_engine_equivalent_under_each_single_defense() {
    let msg = Message::pseudo_random(8, 0xDEF);
    for defense in SINGLE_DEFENSES {
        let what = |family: &str| format!("{family} channel under {defense}");
        assert_engines_agree(&what("l1"), |mode| {
            let o = L1Channel::new(presets::tesla_k40c())
                .with_tuning(defended_tuning(mode, defense))
                .transmit(&msg)
                .expect("l1 transmits (possibly garbled) under a defense");
            fingerprint(&o)
        });
        // The synchronized protocol aborts decode under some defenses
        // (inseparable pilot); abort-vs-outcome must itself be engine-stable.
        let _ = assert_engines_agree(&what("sync"), |mode| {
            SyncChannel::new(presets::tesla_k40c())
                .with_tuning(defended_tuning(mode, defense))
                .transmit(&msg)
                .map(|o| fingerprint(&o))
                .map_err(|e| e.to_string())
        });
        assert_engines_agree(&what("atomic"), |mode| {
            let o = AtomicChannel::new(presets::tesla_k40c(), AtomicScenario::OneAddress)
                .with_tuning(defended_tuning(mode, defense))
                .transmit(&msg)
                .expect("atomic transmits under a defense");
            fingerprint(&o)
        });
        assert_engines_agree(&what("sfu"), |mode| {
            let o = SfuChannel::new(presets::tesla_k40c())
                .with_tuning(defended_tuning(mode, defense))
                .transmit(&msg)
                .expect("sfu transmits under a defense");
            fingerprint(&o)
        });
        assert_engines_agree(&what("nvlink"), |mode| {
            let ch = NvlinkChannel::new(TopologySpec::dual("kepler").expect("dual topology"))
                .expect("channel builds")
                .with_tuning(defended_tuning(mode, defense));
            fingerprint(&ch.transmit(&msg).expect("nvlink transmits under a defense"))
        });
    }
}

#[test]
fn nvlink_channel_under_mild_congestion_is_engine_equivalent() {
    // Link-congestion faults perturb the transfer schedule; the schedule is
    // pure arithmetic over request timestamps, so it must stay identical
    // across engines even when it differs from the clean run.
    let plan = FaultPlan::new(0x11AC)
        .with_period(2_048)
        .with_burst(512)
        .with_intensity(0.5)
        .with_kinds(FaultKinds { link: true, ..FaultKinds::none() });
    let msg = Message::from_bits([true, false, true, false, true, true]);
    assert_engines_agree("nvlink channel under congestion faults", |mode| {
        let ch = NvlinkChannel::new(TopologySpec::dual("maxwell").expect("dual topology"))
            .expect("channel builds")
            .with_tuning(tuning(mode))
            .with_faults(plan);
        fingerprint(&ch.transmit(&msg).expect("mild congestion must not saturate"))
    });
}
