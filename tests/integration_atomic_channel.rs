//! End-to-end tests of the Section-6 global-memory atomic channels.

use gpgpu_covert::atomic_channel::{AtomicChannel, AtomicScenario};
use gpgpu_covert::bits::Message;
use gpgpu_spec::presets;

#[test]
fn all_scenarios_error_free_on_all_gpus() {
    let msg = Message::pseudo_random(8, 0x66);
    for spec in presets::all() {
        for scenario in AtomicScenario::ALL {
            let o = AtomicChannel::new(spec.clone(), scenario).transmit(&msg).unwrap();
            assert!(o.is_error_free(), "{} / {scenario:?}: ber {}", spec.name, o.ber);
        }
    }
}

#[test]
fn figure10_shape_uncoalesced_is_slowest_coalesced_fastest() {
    let msg = Message::pseudo_random(8, 0x77);
    for spec in [presets::tesla_k40c(), presets::quadro_m4000()] {
        let bw = |s| AtomicChannel::new(spec.clone(), s).transmit(&msg).unwrap().bandwidth_kbps;
        let one = bw(AtomicScenario::OneAddress);
        let strided = bw(AtomicScenario::Strided);
        let uncoalesced = bw(AtomicScenario::Consecutive);
        assert!(uncoalesced < one, "{}: {uncoalesced} !< {one}", spec.name);
        assert!(uncoalesced < strided, "{}: {uncoalesced} !< {strided}", spec.name);
    }
}

#[test]
fn figure10_shape_fermi_is_much_slower_than_kepler() {
    // L2-side atomics ("improved by 9x") make Kepler's channel several
    // times faster than Fermi's.
    let msg = Message::pseudo_random(8, 0x88);
    let fermi = AtomicChannel::new(presets::tesla_c2075(), AtomicScenario::OneAddress)
        .transmit(&msg)
        .unwrap();
    let kepler = AtomicChannel::new(presets::tesla_k40c(), AtomicScenario::OneAddress)
        .transmit(&msg)
        .unwrap();
    assert!(
        kepler.bandwidth_kbps > 3.0 * fermi.bandwidth_kbps,
        "kepler {:.1} vs fermi {:.1}",
        kepler.bandwidth_kbps,
        fermi.bandwidth_kbps
    );
}

#[test]
fn plain_global_loads_cannot_form_a_channel() {
    // The paper's negative result: "Using normal load and store operations,
    // we did not observe reliable contention in the global memory."
    // A competing streaming kernel shifts a timed load loop by only a few
    // cycles — far too little to signal through.
    use gpgpu_isa::{LanePattern, ProgramBuilder, Reg};
    use gpgpu_sim::{Device, KernelSpec};
    use gpgpu_spec::LaunchConfig;

    let spec = presets::tesla_k40c();
    let timed_loads = |base: u64| {
        let mut b = ProgramBuilder::new();
        let (addr, t0, t1, lat) = (Reg(0), Reg(1), Reg(2), Reg(3));
        b.mov_imm(addr, base);
        b.repeat(Reg(20), 16, move |b| {
            b.read_clock(t0);
            for _ in 0..8 {
                b.global_load(addr, LanePattern::Consecutive { elem_bytes: 4 });
                b.add_imm(addr, addr, 128);
            }
            b.read_clock(t1);
            b.sub(lat, t1, t0);
            b.push_result(lat);
        });
        b.build().unwrap()
    };
    let mean = |with_trojan: bool| -> f64 {
        let mut dev = Device::new(spec.clone());
        let spy = dev
            .launch(0, KernelSpec::new("spy", timed_loads(0x1000_0000), LaunchConfig::new(15, 32)))
            .unwrap();
        if with_trojan {
            let mut b = ProgramBuilder::new();
            let addr = Reg(0);
            b.mov_imm(addr, 0x2000_0000);
            b.repeat(Reg(20), 64, |b| {
                b.global_load(addr, LanePattern::Consecutive { elem_bytes: 4 });
                b.add_imm(addr, addr, 128);
            });
            dev.launch(1, KernelSpec::new("trojan", b.build().unwrap(), LaunchConfig::new(15, 32)))
                .unwrap();
        }
        dev.run_until_idle(100_000_000).unwrap();
        let r = dev.results(spy).unwrap();
        let s = r.warp_results(0, 0).unwrap();
        s.iter().map(|&x| x as f64).sum::<f64>() / s.len() as f64
    };
    let idle = mean(false);
    let contended = mean(true);
    let shift = (contended - idle) / idle;
    assert!(
        shift.abs() < 0.05,
        "plain loads showed {:.1}% contention — they should not form a channel",
        shift * 100.0
    );
}
