//! Golden-file test: a fixed-seed L1-channel transmission exports
//! byte-identical Chrome-trace JSON, run after run and machine after
//! machine. Guards both the determinism of the simulator under tracing and
//! the stability of the exporter's output format.
//!
//! Regenerate the golden file after an *intentional* format or model
//! change with:
//!
//! ```text
//! GPGPU_UPDATE_GOLDEN=1 cargo test -p gpgpu-bench --test trace_golden
//! ```

use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::L1Channel;
use gpgpu_spec::presets;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/l1_trace.json")
}

fn fixed_seed_trace_json() -> String {
    // Small on purpose: 2 bits at 2 iterations in a 512-record ring keeps
    // the golden file reviewable while still exercising launches, block
    // placement, warp issue, cache accesses and evictions.
    let ch = L1Channel::new(presets::tesla_k40c()).with_iterations(2);
    let msg = Message::from_bits([true, false]);
    let (_, capture) = ch.transmit_traced(&msg, 512).expect("traced transmit succeeds");
    capture.chrome_trace_json()
}

/// Minimal structural well-formedness check, deliberately serde-free: the
/// document must be one JSON object whose braces/brackets balance outside
/// string literals and whose strings terminate.
fn assert_structurally_valid_json(s: &str) {
    let mut depth_obj = 0i64;
    let mut depth_arr = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        assert!(depth_obj >= 0 && depth_arr >= 0, "close before open");
    }
    assert!(!in_str, "unterminated string");
    assert_eq!(depth_obj, 0, "unbalanced braces");
    assert_eq!(depth_arr, 0, "unbalanced brackets");
    assert!(s.trim_start().starts_with('{') && s.trim_end().ends_with('}'));
}

#[test]
fn l1_trace_export_is_byte_identical_to_golden() {
    let json = fixed_seed_trace_json();
    assert_structurally_valid_json(&json);
    assert!(json.contains("\"traceEvents\""));
    let path = golden_path();
    if std::env::var_os("GPGPU_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &json).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {} ({e}); regenerate with GPGPU_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        json, golden,
        "trace JSON drifted from the golden file; if the change is intentional, \
         regenerate with GPGPU_UPDATE_GOLDEN=1"
    );
}

#[test]
fn repeated_traced_runs_are_bit_identical() {
    assert_eq!(fixed_seed_trace_json(), fixed_seed_trace_json());
}

#[test]
fn structural_checker_rejects_malformed_documents() {
    let ok = std::panic::catch_unwind(|| assert_structurally_valid_json("{\"a\":[1,2,\"}\"]}"));
    assert!(ok.is_ok());
    for bad in ["{\"a\":[}", "{\"a\":\"unterminated", "{}}", "[1,2]"] {
        let r = std::panic::catch_unwind(|| assert_structurally_valid_json(bad));
        assert!(r.is_err(), "accepted malformed {bad:?}");
    }
}
