//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. launch overhead: the baseline channel's bandwidth tracks it, the
//!    synchronized channel's does not;
//! 2. per-scheduler isolation: on a hypothetical single-scheduler device
//!    the Table-3 per-scheduler parallelism collapses;
//! 3. jitter: drives the Figure-5 error knee.

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::L1Channel;
use gpgpu_covert::parallel::ParallelSfuChannel;
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_spec::presets;

fn bench(c: &mut Criterion) {
    let msg = Message::pseudo_random(48, 19);

    // 1. Launch-overhead sweep.
    println!("ablation: launch overhead sweep (cycles -> baseline Kbps, sync Kbps)");
    let mut baseline_span = (f64::INFINITY, 0.0f64);
    let mut sync_span = (f64::INFINITY, 0.0f64);
    for overhead in [2_000, 8_000, 32_000] {
        let mut spec = presets::tesla_k40c();
        spec.launch_overhead_cycles = overhead;
        let b = L1Channel::new(spec.clone()).transmit(&msg).unwrap().bandwidth_kbps;
        let s = SyncChannel::new(spec).transmit(&msg).unwrap().bandwidth_kbps;
        println!("  {overhead:>6} -> baseline {b:>7.1}, sync {s:>7.1}");
        baseline_span = (baseline_span.0.min(b), baseline_span.1.max(b));
        sync_span = (sync_span.0.min(s), sync_span.1.max(s));
    }
    let baseline_swing = baseline_span.1 / baseline_span.0;
    let sync_swing = sync_span.1 / sync_span.0;
    assert!(
        baseline_swing > 2.0 && sync_swing < 1.5,
        "baseline must track launch overhead (swing {baseline_swing:.1}x), sync must not ({sync_swing:.1}x)"
    );

    // 2. Scheduler isolation: a single-scheduler Kepler has no per-scheduler
    // lanes left (1 bit per SM per round instead of 4).
    let mut mono = presets::tesla_k40c();
    mono.sm.num_warp_schedulers = 1;
    mono.sm.dispatch_units = 2;
    let four = ParallelSfuChannel::new(presets::tesla_k40c());
    let one = ParallelSfuChannel::new(mono);
    println!(
        "ablation: bits/round with 4 schedulers = {}, with 1 scheduler = {}",
        four.bits_per_round(),
        one.bits_per_round()
    );
    assert_eq!(four.bits_per_round(), 4);
    assert_eq!(one.bits_per_round(), 1);

    // 3. Jitter drives the error knee: without jitter even 1 iteration is
    // error-free; with jitter it is not.
    let quiet = L1Channel::new(presets::tesla_k40c())
        .with_iterations(1)
        .with_jitter(None)
        .transmit(&msg)
        .unwrap();
    let noisy = L1Channel::new(presets::tesla_k40c()).with_iterations(1).transmit(&msg).unwrap();
    println!(
        "ablation: 1-iteration BER without jitter {:.1}%, with jitter {:.1}%",
        quiet.ber * 100.0,
        noisy.ber * 100.0
    );
    assert_eq!(quiet.ber, 0.0);
    assert!(noisy.ber > 0.0);

    c.bench_function("ablation_sync_channel_48bits", |b| {
        b.iter(|| SyncChannel::new(presets::tesla_k40c()).transmit(&msg).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
