//! Robustness sweep: static-threshold vs adaptive-link BER and goodput as
//! a fault storm and a constant-cache-hog co-runner ramp up together, plus
//! the clean-device ablation — adaptive mode must be bit-identical to the
//! static arm and essentially free when nothing is wrong.

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_bench::data::robustness_sweep;
use gpgpu_covert::bits::Message;
use gpgpu_covert::linkmon::AdaptiveLink;
use gpgpu_spec::presets;

use gpgpu_bench::quick;

/// Minimum wall time of `reps` runs of `f` — the minimum is the scheduler-
/// noise-robust estimator for a deterministic workload.
fn min_wall(reps: usize, mut f: impl FnMut()) -> std::time::Duration {
    (0..reps)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .expect("reps > 0")
}

fn bench(c: &mut Criterion) {
    let (bits, intensities): (usize, &[f64]) =
        if quick() { (32, &[0.0, 1.0]) } else { (32, &[0.0, 0.5, 1.0]) };
    let pts = robustness_sweep(bits, intensities);
    println!(
        "robustness_sweep static:   {:?}",
        pts.iter().map(|p| (p.intensity, p.static_ber, p.static_delivered)).collect::<Vec<_>>()
    );
    println!(
        "robustness_sweep adaptive: {:?}",
        pts.iter()
            .map(|p| (p.intensity, p.adaptive_ber, p.adaptive_family, p.adaptive_stages))
            .collect::<Vec<_>>()
    );
    println!(
        "robustness_sweep goodput (static/adaptive Kbps): {:?}",
        pts.iter()
            .map(|p| (p.intensity, p.static_goodput_kbps, p.adaptive_goodput_kbps))
            .collect::<Vec<_>>()
    );
    // Shape: both arms clean at zero intensity; under the full storm + hog
    // the static arm must fail and the adaptive ladder must deliver BER 0
    // by hopping channel families — without any manual retuning.
    let clean = &pts[0];
    assert_eq!(clean.static_ber, 0.0, "static arm is error-free on a clean device");
    assert_eq!(clean.adaptive_ber, 0.0, "adaptive link is error-free on a clean device");
    assert_eq!(clean.adaptive_stages, 1, "no escalation fires on a clean device");
    assert_eq!(clean.adaptive_family, "l1-sync", "clean device stays on the fastest family");
    let storm = pts.last().unwrap();
    assert!(
        !storm.static_delivered && storm.static_ber > 0.0,
        "full-intensity static BER must be substantial, got {}",
        storm.static_ber
    );
    assert!(storm.adaptive_delivered, "adaptive link must deliver under the storm");
    assert_eq!(storm.adaptive_ber, 0.0, "adaptive BER 0 under the storm");
    assert!(storm.adaptive_stages > 1, "recovery must have escalated");
    assert_ne!(storm.adaptive_family, "l1-sync", "the stomped family must be abandoned");

    // Ablation: on a clean device the adaptive path runs exactly the static
    // arm's single attempt — bit-identical output, identical simulated
    // cycles, and <2% wall-clock overhead (measured as min-of-N to shed
    // scheduler noise).
    let link = AdaptiveLink::new(presets::tesla_k40c());
    let m = Message::pseudo_random(48, 0xAB1A);
    let a = link.transmit(&m).expect("adaptive transmits");
    let s = link.transmit_static(&m).expect("static transmits");
    assert_eq!(a.received, s.received, "clean-device adaptive is bit-identical to static");
    assert_eq!(a.report, s.report, "identical ARQ report, including simulated cycles");
    let t_adaptive = min_wall(7, || {
        link.transmit(&m).expect("adaptive transmits");
    });
    let t_static = min_wall(7, || {
        link.transmit_static(&m).expect("static transmits");
    });
    let ratio = t_adaptive.as_secs_f64() / t_static.as_secs_f64();
    println!(
        "robustness_sweep ablation: adaptive {t_adaptive:?} vs static {t_static:?} (ratio {ratio:.4})"
    );
    if quick() {
        // Quick mode (CI smoke) runs on noisy shared runners; skip the
        // wall-clock assert there like ablation_engine_speedup does. The
        // bit- and cycle-identity asserts above always run.
        println!("robustness_sweep ablation: quick mode, timing assert skipped");
    } else {
        assert!(
            ratio < 1.02,
            "clean-device adaptive must be <2% slower than static, got {ratio:.4}"
        );
    }

    c.bench_function("robustness_sweep_two_point", |b| {
        b.iter(|| robustness_sweep(24, &[0.0, 1.0]))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
