//! Figure 4: baseline cache-channel bandwidth on all three GPUs.

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_bench::report::render_rows;
use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::{L1Channel, L2Channel};
use gpgpu_spec::presets;

fn bench(c: &mut Criterion) {
    let rows = gpgpu_bench::data::fig04(64);
    println!("{}", render_rows("Figure 4", &rows));
    // Shape: L1 beats L2 on every device.
    for pair in rows.chunks(2) {
        assert!(pair[0].measured > pair[1].measured, "{pair:?}");
    }

    let msg = Message::pseudo_random(16, 7);
    c.bench_function("fig04_l1_channel_16bits_kepler", |b| {
        b.iter(|| L1Channel::new(presets::tesla_k40c()).transmit(&msg).unwrap())
    });
    c.bench_function("fig04_l2_channel_16bits_kepler", |b| {
        b.iter(|| L2Channel::new(presets::tesla_k40c()).transmit(&msg).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
