//! Section 8: interference from Rodinia-like workloads and the exclusive
//! co-location defense.

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_bench::report::render_rows;
use gpgpu_covert::bits::Message;
use gpgpu_covert::noise::{run_sync_with_noise, NoiseKind};
use gpgpu_spec::presets;

fn bench(c: &mut Criterion) {
    let rows = gpgpu_bench::data::sec8(24);
    println!("{}", render_rows("Section 8", &rows));
    for pair in rows.chunks(2) {
        assert!(pair[0].measured > 0.0, "undefended channel must be corrupted: {pair:?}");
        assert_eq!(pair[1].measured, 0.0, "defended channel must be clean: {pair:?}");
    }

    let msg = Message::pseudo_random(16, 17);
    c.bench_function("sec8_exclusive_under_mixture_kepler", |b| {
        b.iter(|| {
            let e =
                run_sync_with_noise(&presets::tesla_k40c(), &msg, &NoiseKind::ALL, true).unwrap();
            assert_eq!(e.outcome.ber, 0.0);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
