//! Figure 10: global atomic channel bandwidth, scenarios 1-3 x 3 GPUs.

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_bench::report::render_rows;
use gpgpu_covert::atomic_channel::{AtomicChannel, AtomicScenario};
use gpgpu_covert::bits::Message;
use gpgpu_spec::presets;

fn bench(c: &mut Criterion) {
    let rows = gpgpu_bench::data::fig10(32);
    println!("{}", render_rows("Figure 10", &rows));
    // Shapes: scenario 3 slowest per device; Fermi far below Kepler/Maxwell.
    for device_rows in rows.chunks(3) {
        assert!(device_rows[2].measured < device_rows[0].measured, "{device_rows:?}");
        assert!(device_rows[2].measured < device_rows[1].measured, "{device_rows:?}");
    }
    assert!(rows[3].measured > 3.0 * rows[0].measured, "Kepler >> Fermi");

    let msg = Message::pseudo_random(8, 5);
    c.bench_function("fig10_one_address_8bits_kepler", |b| {
        b.iter(|| {
            AtomicChannel::new(presets::tesla_k40c(), AtomicScenario::OneAddress)
                .transmit(&msg)
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
