//! Table 2: the improved L1 channel (baseline / +sync / +multi-bit /
//! +all-SMs) plus the Section-7 multi-bit scaling sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_bench::report::render_rows;
use gpgpu_covert::bits::Message;
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_spec::presets;

fn bench(c: &mut Criterion) {
    let rows = gpgpu_bench::data::table2(180);
    println!("{}", render_rows("Table 2", &rows));
    // Shape: strictly increasing across the four columns, per device.
    for device_rows in rows.chunks(4) {
        for w in device_rows.windows(2) {
            assert!(w[1].measured > w[0].measured, "{w:?}");
        }
    }
    let scaling = gpgpu_bench::data::table2_multibit_scaling(180);
    println!("{}", render_rows("multi-bit scaling", &scaling));
    // Sublinear but increasing with the set count.
    assert!(scaling.windows(2).all(|w| w[1].measured > w[0].measured));

    let msg = Message::pseudo_random(90, 11);
    c.bench_function("table2_sync_multibit_90bits_kepler", |b| {
        b.iter(|| {
            SyncChannel::new(presets::tesla_k40c())
                .with_data_sets(6)
                .unwrap()
                .transmit(&msg)
                .unwrap()
        })
    });
    c.bench_function("table2_full_parallel_90bits_kepler", |b| {
        b.iter(|| {
            SyncChannel::new(presets::tesla_k40c())
                .with_data_sets(6)
                .unwrap()
                .with_parallel_sms(15)
                .unwrap()
                .transmit(&msg)
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
