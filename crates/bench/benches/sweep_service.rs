//! Resilient sweep service: cold vs warm-cache vs chaos-ridden wall clocks.
//!
//! Three runs of the same grid through `gpgpu_serve::SweepService`:
//!
//! 1. **cold** — fresh cache directory, every cell simulated;
//! 2. **warm** — same directory again, every cell served from the
//!    content-addressed cache;
//! 3. **chaos** — fresh directory under a `ChaosPlan` that kills and stalls
//!    workers, with the attempt budget sized so the run still converges.
//!
//! The matrix digest must be bit-identical across all three arms — the
//! service's core determinism contract. On a quiet machine the warm run must
//! be at least 5x faster than cold and the chaos run must stay under 2x the
//! cold wall clock (injected failures abort before the simulation starts, so
//! chaos costs supervision overhead, not repeated compute). The numbers are
//! written to `BENCH_serve.json` for the CI gate.

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_bench::quick;
use gpgpu_serve::{ChaosPlan, SweepMatrix, SweepService};
use gpgpu_spec::SweepRequest;
use std::path::PathBuf;

/// Minimum wall time of `reps` runs of `f` — the minimum is the scheduler-
/// noise-robust estimator for a deterministic workload.
fn min_wall(reps: usize, mut f: impl FnMut()) -> std::time::Duration {
    (0..reps)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .expect("reps > 0")
}

/// Fresh per-invocation scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("gpgpu-bench-serve-{}-{tag}-{n}", std::process::id()))
}

fn run_grid(spec: &str, dir: &PathBuf, chaos: Option<ChaosPlan>) -> SweepMatrix {
    let request = SweepRequest::from_spec(spec).expect("bench grid parses");
    let mut service = SweepService::new(request)
        .expect("bench grid resolves")
        .with_cache_dir(dir)
        .expect("scratch cache dir opens")
        .with_backoff_base_ms(0);
    if let Some(plan) = chaos {
        service = service.with_chaos(plan).with_max_attempts(plan.attempts_to_converge());
    }
    let matrix = service.run().expect("sweep completes");
    assert!(matrix.is_complete(), "every cell must produce a result:\n{}", matrix.render());
    matrix
}

fn bench(c: &mut Criterion) {
    // 2 devices x 3 families x 2 iteration points x 2 fault plans = 24 cells
    // (12 in quick mode). Enough simulated work per cell that reading the
    // cache back is dramatically cheaper than recomputing.
    let spec = if quick() {
        "device=kepler;family=l1+sync+atomic;iters=8+16;bits=16;seed=0x5eed;\
         faults=none|seed=7,intensity=0.5,kinds=evict+storm"
    } else {
        "device=kepler+maxwell;family=l1+sync+atomic;iters=16+32;bits=24;seed=0x5eed;\
         faults=none|seed=7,intensity=0.5,kinds=evict+storm"
    };
    let chaos =
        ChaosPlan::from_spec("seed=0xC4A05,kills=2,stalls=1,corrupt=0").expect("chaos plan parses");
    let reps = if quick() { 2 } else { 3 };

    // Reference digests: one clean cold run, its warm replay, and a
    // chaos-ridden cold run — all three must agree bit for bit.
    let cold_dir = scratch("ref");
    let cold = run_grid(spec, &cold_dir, None);
    let cells = cold.outcomes.len();
    assert_eq!(cold.stats.computed, cells, "reference cold run computes everything");
    let warm = run_grid(spec, &cold_dir, None);
    assert_eq!(warm.stats.cached, cells, "warm replay is served entirely from cache");
    let chaos_dir = scratch("chaos");
    let stormy = run_grid(spec, &chaos_dir, Some(chaos));
    assert_eq!(stormy.stats.failed, 0, "the sized attempt budget converges every cell");
    let digests_identical = warm.digest() == cold.digest() && stormy.digest() == cold.digest();
    assert!(
        digests_identical,
        "matrix digests diverged: cold {:#018x} warm {:#018x} chaos {:#018x}",
        cold.digest(),
        warm.digest(),
        stormy.digest()
    );
    let warm_hit_rate = warm.stats.cached as f64 / cells as f64;
    let chaos_retries = stormy.stats.retries;
    let _ = std::fs::remove_dir_all(&chaos_dir);

    // Wall clocks, min-of-N. Cold and chaos reps each need a virgin cache
    // directory; the warm reps deliberately share the populated one.
    let cold_wall = min_wall(reps, || {
        let dir = scratch("cold");
        run_grid(spec, &dir, None);
        let _ = std::fs::remove_dir_all(&dir);
    });
    let warm_wall = min_wall(reps, || {
        run_grid(spec, &cold_dir, None);
    });
    let chaos_wall = min_wall(reps, || {
        let dir = scratch("storm");
        run_grid(spec, &dir, Some(chaos));
        let _ = std::fs::remove_dir_all(&dir);
    });
    let _ = std::fs::remove_dir_all(&cold_dir);

    let cold_s = cold_wall.as_secs_f64();
    let warm_s = warm_wall.as_secs_f64();
    let chaos_s = chaos_wall.as_secs_f64();
    let warm_speedup = cold_s / warm_s;
    let chaos_overhead = chaos_s / cold_s;
    println!(
        "sweep_service: {cells} cells, cold {cold_s:.4}s, warm {warm_s:.4}s \
         ({warm_speedup:.1}x), chaos {chaos_s:.4}s ({chaos_overhead:.2}x, \
         {chaos_retries} retries), digests identical"
    );
    if quick() {
        // Quick mode (CI smoke) runs on noisy shared runners; skip the
        // wall-clock magnitude asserts there like robustness_sweep does.
        // The digest-identity asserts above always run.
        println!("sweep_service: quick mode, timing asserts skipped");
    } else {
        assert!(
            warm_speedup >= 5.0,
            "a warm cache must be at least 5x faster than recomputing, got {warm_speedup:.2}x"
        );
        assert!(
            chaos_overhead < 2.0,
            "chaos supervision must stay under 2x the clean wall clock, got {chaos_overhead:.2}x"
        );
    }

    let json = format!(
        "{{\n  \"workload\": \"resilient_sweep_service\",\n  \"cells\": {cells},\n  \
         \"cold_s\": {cold_s:.6},\n  \"warm_s\": {warm_s:.6},\n  \
         \"warm_speedup\": {warm_speedup:.4},\n  \"warm_hit_rate\": {warm_hit_rate:.4},\n  \
         \"chaos_s\": {chaos_s:.6},\n  \"chaos_overhead\": {chaos_overhead:.4},\n  \
         \"chaos_retries\": {chaos_retries},\n  \"digests_identical\": {digests_identical},\n  \
         \"quick\": {}\n}}\n",
        quick()
    );
    // Anchor at the workspace root regardless of the bench's cwd (cargo
    // runs benches from the package directory).
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out, json).expect("BENCH_serve.json is writable");

    c.bench_function("sweep_service_warm_replay", |b| {
        let dir = scratch("crit");
        run_grid(spec, &dir, None);
        b.iter(|| run_grid(spec, &dir, None));
        let _ = std::fs::remove_dir_all(&dir);
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
