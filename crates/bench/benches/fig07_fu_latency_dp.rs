//! Figure 7: double-precision FU latency vs warp count (Fermi and Kepler;
//! Maxwell has no DPUs).

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_covert::microbench::fu_latency_sweep;
use gpgpu_spec::{presets, FuOpKind};

fn bench(c: &mut Criterion) {
    for spec in [presets::tesla_c2075(), presets::tesla_k40c()] {
        for op in [FuOpKind::DpAdd, FuOpKind::DpMul] {
            let curve = gpgpu_bench::data::fu_curve(&spec, op, 32);
            println!("fig07 {} {}: 1w {:.1} -> 32w {:.1}", spec.name, op, curve[0].1, curve[31].1);
            assert!(curve[31].1 > curve[0].1, "{} {op} must show contention", spec.name);
        }
    }
    // Maxwell: the figure's omission is a launch error here.
    assert!(fu_latency_sweep(&presets::quadro_m4000(), FuOpKind::DpAdd, &[1]).is_err());

    c.bench_function("fig07_dp_sweep_fermi", |b| {
        b.iter(|| {
            fu_latency_sweep(&presets::tesla_c2075(), FuOpKind::DpAdd, &[1, 8, 16, 32]).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
