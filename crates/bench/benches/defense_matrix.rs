//! Section 9, evaluated as a tournament: the full attack/defense arena.
//!
//! Runs `gpgpu_covert::arena::run_arena` — every channel family plus the
//! adaptive degradation-ladder attacker against every deployed defense and
//! defense combination — on the paper's Kepler and on the sub-core Ampere
//! device, asserts the headline results (cache partitioning zeroes the
//! static L1 row but the adaptive attacker escapes it by hopping families,
//! on both generations), and writes the residual-bandwidth matrices to
//! `BENCH_arena.json` at the workspace root for CI to archive (the Kepler
//! matrix at the top level, the Ampere matrix under the `ampere` key).
//!
//! `GPGPU_BENCH_QUICK=1` shrinks the message so the smoke run finishes in
//! seconds; the assertions are identical in both modes.

use gpgpu_covert::arena::{run_arena, ArenaConfig, ArenaReport, Attacker};
use gpgpu_covert::mitigations::{ChannelFamily, MitigationVerdict};
use gpgpu_spec::{presets, DeviceSpec};
use std::time::Instant;

use gpgpu_bench::quick;

/// Runs the tournament on one device and asserts the headline cells that
/// hold on every modelled generation.
fn tournament(spec: DeviceSpec, bits: usize) -> ArenaReport {
    let device = spec.name.clone();
    let config = ArenaConfig::new(spec).with_bits(bits);
    let start = Instant::now();
    let report = run_arena(&config).expect("default arena config is runnable");
    let elapsed = start.elapsed().as_secs_f64();
    println!("{}", report.render());
    println!(
        "arena[{device}]: {} rows x {} defenses, {bits}-bit message, {elapsed:.2}s",
        report.rows.len(),
        report.defenses.len()
    );

    // Undefended, every static on-chip family delivers.
    for family in ChannelFamily::ALL {
        let cell = report.cell(Attacker::Static(family), "none").expect("baseline column");
        assert!(
            cell.delivered && cell.residual_bandwidth_kbps > 0.0,
            "{device}: {family} must deliver undefended: {cell:?}"
        );
    }

    // Cache partitioning zeroes the static L1 row...
    let l1 = report.cell(Attacker::Static(ChannelFamily::L1), "partition=2").unwrap();
    assert_eq!(l1.verdict, Some(MitigationVerdict::Effective), "{device}: {l1:?}");
    assert_eq!(l1.residual_bandwidth_kbps, 0.0, "{device}: {l1:?}");

    // ...but the adaptive attacker escapes it via family fallback, keeping
    // residual bandwidth — the arena's central claim.
    let escapes = report.fallback_escapes();
    assert!(
        !escapes.is_empty(),
        "{device}: the adaptive attacker must escape at least one defense"
    );
    for cell in &escapes {
        println!(
            "escape[{device}]: `{}` -> {} at {:.2} kb/s residual",
            cell.defense.to_spec(),
            cell.final_family.as_deref().unwrap_or("?"),
            cell.residual_bandwidth_kbps
        );
    }
    assert!(
        escapes.iter().any(|c| c.defense.components().len() == 1),
        "{device}: at least one *single* mitigation must be escaped"
    );
    report
}

fn main() {
    let bits = if quick() { 8 } else { 16 };
    let kepler = tournament(presets::tesla_k40c(), bits);
    let ampere = tournament(presets::rtx_a4000(), bits);

    // One artifact, two matrices: the paper device stays at the top level
    // (existing consumers keep working); the modern sub-core device rides
    // under the `ampere` key.
    let base = kepler.to_json();
    let merged = format!(
        "{},\n  \"ampere\": {}\n}}\n",
        base.trim_end().strip_suffix('}').expect("arena json is an object").trim_end(),
        ampere.to_json().trim_end(),
    );
    // Anchor at the workspace root regardless of the bench's cwd (cargo
    // runs benches from the package directory).
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_arena.json");
    std::fs::write(out, merged).expect("BENCH_arena.json is writable");
    println!("wrote {out}");
}
