//! Section 9, evaluated as a tournament: the full attack/defense arena.
//!
//! Runs `gpgpu_covert::arena::run_arena` — every channel family plus the
//! adaptive degradation-ladder attacker against every deployed defense and
//! defense combination — asserts the headline results (cache partitioning
//! zeroes the static L1 row but the adaptive attacker escapes it by hopping
//! families), and writes the residual-bandwidth matrix to `BENCH_arena.json`
//! at the workspace root for CI to archive.
//!
//! `GPGPU_BENCH_QUICK=1` shrinks the message so the smoke run finishes in
//! seconds; the assertions are identical in both modes.

use gpgpu_covert::arena::{run_arena, ArenaConfig, Attacker};
use gpgpu_covert::mitigations::{ChannelFamily, MitigationVerdict};
use gpgpu_spec::presets;
use std::time::Instant;

use gpgpu_bench::quick;

fn main() {
    let bits = if quick() { 8 } else { 16 };
    let config = ArenaConfig::new(presets::tesla_k40c()).with_bits(bits);
    let start = Instant::now();
    let report = run_arena(&config).expect("default arena config is runnable");
    let elapsed = start.elapsed().as_secs_f64();
    println!("{}", report.render());
    println!(
        "arena: {} rows x {} defenses, {bits}-bit message, {elapsed:.2}s",
        report.rows.len(),
        report.defenses.len()
    );

    // Undefended, every static on-chip family delivers.
    for family in ChannelFamily::ALL {
        let cell = report.cell(Attacker::Static(family), "none").expect("baseline column");
        assert!(
            cell.delivered && cell.residual_bandwidth_kbps > 0.0,
            "{family} must deliver undefended: {cell:?}"
        );
    }

    // Cache partitioning zeroes the static L1 row...
    let l1 = report.cell(Attacker::Static(ChannelFamily::L1), "partition=2").unwrap();
    assert_eq!(l1.verdict, Some(MitigationVerdict::Effective), "{l1:?}");
    assert_eq!(l1.residual_bandwidth_kbps, 0.0, "{l1:?}");

    // ...but the adaptive attacker escapes it via family fallback, keeping
    // residual bandwidth — the arena's central claim.
    let escapes = report.fallback_escapes();
    assert!(!escapes.is_empty(), "the adaptive attacker must escape at least one defense");
    for cell in &escapes {
        println!(
            "escape: `{}` -> {} at {:.2} kb/s residual",
            cell.defense.to_spec(),
            cell.final_family.as_deref().unwrap_or("?"),
            cell.residual_bandwidth_kbps
        );
    }
    assert!(
        escapes.iter().any(|c| c.defense.components().len() == 1),
        "at least one *single* mitigation must be escaped"
    );

    // Anchor at the workspace root regardless of the bench's cwd (cargo
    // runs benches from the package directory).
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_arena.json");
    std::fs::write(out, report.to_json()).expect("BENCH_arena.json is writable");
    println!("wrote {out}");
}
