//! Engine ablation: the event-driven cycle engine and the threaded trial
//! harness against their baselines, on the workloads the paper's evaluation
//! actually runs.
//!
//! 1. **Dense vs event-driven engine** on the Figure-5 iteration sweep:
//!    identical `(bandwidth, BER)` points (the engine may only skip work
//!    that cannot change architectural state) and a single-thread speedup.
//! 2. **TrialRunner scaling** on a 64-trial seeded BER sweep: 1 worker vs 4
//!    workers. The near-linear-scaling assertion only fires on machines
//!    with at least 4 cores; elsewhere the measured ratio is printed.
//! 3. **Tracing overhead** of the `TraceSink` hook: an untraced transmit
//!    against the same transmit with an `EventTrace` installed. The
//!    disabled path is one `Option` check per event site, so it must stay
//!    within 2% of the traced run's floor (in practice it is *faster*; the
//!    assertion guards against the hook growing disabled-path work).
//! 4. **Fault-hook overhead**: the same bound for the `FaultInjector`
//!    hooks — a transmit with no injector installed must stay within 2%
//!    of the same transmit with a zero-intensity fault plan installed.
//!    At intensity 0 no fault ever fires, so the simulated run is
//!    bit-identical, but every hook site still evaluates its window
//!    arithmetic: the comparison isolates exactly the disabled-path cost.

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::L1Channel;
use gpgpu_covert::harness::{Trial, TrialRunner};
use gpgpu_sim::{DeviceTuning, EngineMode};
use gpgpu_spec::presets;
use std::time::Instant;

fn quick() -> bool {
    std::env::var("GPGPU_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// The Figure-5 sweep on a sequential runner with an explicit engine mode.
fn fig5_sweep(engine: EngineMode) -> Vec<(f64, f64)> {
    let tuning = DeviceTuning { engine, ..DeviceTuning::none() };
    let msg = Message::pseudo_random(64, 3);
    L1Channel::new(presets::tesla_k40c())
        .with_tuning(tuning)
        .error_rate_sweep_on(&TrialRunner::sequential(), &msg, &[20, 12, 8, 4, 2, 1])
        .expect("sweep transmits")
}

/// One seeded BER trial of the 64-trial scaling workload.
fn ber_trial(t: Trial) -> f64 {
    let msg = Message::pseudo_random(8, 0xABBA ^ t.index as u64);
    L1Channel::new(presets::tesla_k40c())
        .with_iterations(4)
        .with_jitter(Some((3_000, t.seed)))
        .transmit(&msg)
        .expect("transmits")
        .ber
}

fn bench(c: &mut Criterion) {
    // --- 1. Dense vs event-driven: identical results, measured speedup. ---
    let reps = if quick() { 1 } else { 3 };
    let time_engine = |engine: EngineMode| -> (Vec<(f64, f64)>, f64) {
        let mut best = f64::INFINITY;
        let mut pts = Vec::new();
        for _ in 0..reps {
            let start = Instant::now();
            pts = fig5_sweep(engine);
            best = best.min(start.elapsed().as_secs_f64());
        }
        (pts, best)
    };
    let (dense_pts, dense_s) = time_engine(EngineMode::Dense);
    let (event_pts, event_s) = time_engine(EngineMode::EventDriven);
    for engine in [EngineMode::Dense, EngineMode::EventDriven] {
        let o = L1Channel::new(presets::tesla_k40c())
            .with_tuning(DeviceTuning { engine, ..DeviceTuning::none() })
            .transmit(&Message::pseudo_random(16, 3))
            .expect("transmits");
        println!("ablation: {engine:?} engine counters: {}", o.stats);
    }
    assert_eq!(dense_pts, event_pts, "event-driven engine changed the Figure-5 series");
    let speedup = dense_s / event_s;
    println!(
        "ablation: fig5 sweep dense {dense_s:.3}s, event-driven {event_s:.3}s -> {speedup:.2}x"
    );
    // Quick mode (CI smoke) runs one repetition: keep the equality check
    // but skip the timing assertion, which needs best-of-3 stability.
    if !quick() {
        assert!(
            speedup >= 1.5,
            "event-driven engine must be >= 1.5x on the Fig 5 sweep, got {speedup:.2}x"
        );
    }

    // --- 2. TrialRunner scaling on a 64-trial BER sweep. ---
    let trials = if quick() { 8 } else { 64 };
    let time_workers = |workers: usize| -> (Vec<f64>, f64) {
        let start = Instant::now();
        let out = TrialRunner::sequential().with_workers(workers).run(trials, ber_trial);
        (out, start.elapsed().as_secs_f64())
    };
    let (seq_out, seq_s) = time_workers(1);
    let (par_out, par_s) = time_workers(4);
    assert_eq!(seq_out, par_out, "worker count changed BER results");
    let scaling = seq_s / par_s;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "ablation: {trials}-trial BER sweep 1 worker {seq_s:.3}s, 4 workers {par_s:.3}s \
         -> {scaling:.2}x ({cores} cores available)"
    );
    if cores >= 4 && !quick() {
        assert!(
            scaling >= 3.0,
            "TrialRunner must scale >= 3x on 4 workers with {cores} cores, got {scaling:.2}x"
        );
    } else {
        println!("ablation: scaling assertion skipped ({cores} cores, quick={})", quick());
    }

    // --- 3. Tracing overhead: disabled hook vs live EventTrace sink. ---
    let trace_reps = if quick() { 1 } else { 5 };
    let msg = Message::pseudo_random(32, 7);
    let ch = L1Channel::new(presets::tesla_k40c());
    let best_of = |f: &dyn Fn()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..trace_reps {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let disabled_s = best_of(&|| {
        ch.transmit(&msg).expect("transmits");
    });
    let traced_s = best_of(&|| {
        ch.transmit_traced(&msg, 4096).expect("transmits");
    });
    println!(
        "ablation: 32-bit L1 transmit untraced {disabled_s:.3}s, traced {traced_s:.3}s \
         -> disabled/traced = {:.3}",
        disabled_s / traced_s
    );
    if !quick() {
        // The traced run does strictly more work (it records every event),
        // so the disabled path staying within 2% of it bounds the hook's
        // disabled-path cost well under the 2% budget.
        assert!(
            disabled_s <= traced_s * 1.02,
            "tracing-disabled path must be within 2% of the traced run, \
             got disabled {disabled_s:.3}s vs traced {traced_s:.3}s"
        );
    }

    // --- 4. Fault-hook overhead: no injector vs a zero-intensity plan. ---
    let sync_msg = Message::pseudo_random(24, 11);
    let sync_ch = gpgpu_covert::sync_channel::SyncChannel::new(presets::tesla_k40c());
    let quiet_plan = gpgpu_sim::FaultPlan::new(0xAB1A)
        .with_intensity(0.0)
        .with_kinds(gpgpu_sim::FaultKinds::all());
    let bare = sync_ch.clone().transmit(&sync_msg).expect("transmits");
    let quiet = sync_ch.clone().with_faults(quiet_plan).transmit(&sync_msg).expect("transmits");
    assert_eq!(
        (bare.cycles, &bare.received),
        (quiet.cycles, &quiet.received),
        "a zero-intensity fault plan must not perturb the run"
    );
    let fault_free_s = best_of(&|| {
        sync_ch.clone().transmit(&sync_msg).expect("transmits");
    });
    let hooked_s = best_of(&|| {
        sync_ch.clone().with_faults(quiet_plan).transmit(&sync_msg).expect("transmits");
    });
    println!(
        "ablation: 24-bit sync transmit no-injector {fault_free_s:.3}s, quiet-injector \
         {hooked_s:.3}s -> disabled/hooked = {:.3}",
        fault_free_s / hooked_s
    );
    if !quick() {
        // The quiet-injector run simulates the identical protocol but pays
        // the window arithmetic at every hook site, so the no-injector path
        // staying within 2% of it bounds the disabled-hook cost.
        assert!(
            fault_free_s <= hooked_s * 1.02,
            "fault-disabled path must be within 2% of the quiet-injector run, \
             got disabled {fault_free_s:.3}s vs hooked {hooked_s:.3}s"
        );
    }

    c.bench_function("engine_event_driven_fig5_sweep", |b| {
        b.iter(|| fig5_sweep(EngineMode::EventDriven))
    });
    c.bench_function("engine_dense_fig5_sweep", |b| b.iter(|| fig5_sweep(EngineMode::Dense)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
