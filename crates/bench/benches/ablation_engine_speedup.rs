//! Engine ablation: the event-driven cycle engine and the threaded trial
//! harness against their baselines, on the workloads the paper's evaluation
//! actually runs.
//!
//! 1. **Dense vs event-driven engine** on the Figure-5 iteration sweep:
//!    identical `(bandwidth, BER)` points (the engine may only skip work
//!    that cannot change architectural state) and a single-thread speedup.
//! 2. **TrialRunner scaling** on a 64-trial seeded BER sweep: 1 worker vs 4
//!    workers. The near-linear-scaling assertion only fires on machines
//!    with at least 4 cores; elsewhere the measured ratio is printed.
//! 3. **Tracing overhead** of the `TraceSink` hook: an untraced transmit
//!    against the same transmit with an `EventTrace` installed. The
//!    disabled path is one `Option` check per event site, so it must stay
//!    within 2% of the traced run's floor (in practice it is *faster*; the
//!    assertion guards against the hook growing disabled-path work).
//! 4. **Fault-hook overhead**: the same bound for the `FaultInjector`
//!    hooks — a transmit with no injector installed must stay within 2%
//!    of the same transmit with a zero-intensity fault plan installed.
//!    At intensity 0 no fault ever fires, so the simulated run is
//!    bit-identical, but every hook site still evaluates its window
//!    arithmetic: the comparison isolates exactly the disabled-path cost.
//! 5. **Data-oriented core vs seed path** on the Figure-5 sweep: the seed
//!    configuration (dense engine, device pool disabled — a fresh device
//!    built per transmission) against the optimized stack (event-driven
//!    engine over the SoA warp tables, pooled devices restored from
//!    pristine snapshots). Identical sweep points, wall-clock speedup
//!    asserted, and the numbers are written to `BENCH_sweep.json` for the
//!    CI regression gate — together with the pruned-sweep numbers of the
//!    next section.
//! 6. **Analytical grid pre-pruning** on the same sweep: an
//!    [`AnalyticalModel`] characterized from the cycle engine flags which
//!    grid cells sit in the BER transition band; only those are simulated,
//!    the rest are filled from the closed form. Simulated cells must be
//!    bit-identical to the unpruned sweep, filled cells within the
//!    analytical BER band, and the pruned sweep must not be slower. The
//!    same contract is then replayed on the sub-core Ampere device and
//!    recorded under the `ampere` key of `BENCH_sweep.json` (model fit +
//!    verdict agreement on the modern core).
//! 7. **Zero-alloc trials**: a counting global allocator proves that after
//!    the first (warmup) trial, a `reset_for_trial` + launch +
//!    `run_until_idle` + borrowed-records readback loop performs zero heap
//!    allocations per trial — the arena/pooling contract of the
//!    data-oriented core.

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_covert::analytic::AnalyticalModel;
use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::L1Channel;
use gpgpu_covert::harness::{Trial, TrialRunner};
use gpgpu_sim::{DeviceTuning, EngineMode};
use gpgpu_spec::presets;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A pass-through allocator that counts every allocation (and
/// reallocation), so the zero-alloc-per-trial section can assert on the
/// exact number of heap hits in a code region.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System`; the counter is a relaxed
// atomic with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

use gpgpu_bench::quick;

/// The Figure-5 sweep on a sequential runner with an explicit engine mode.
fn fig5_sweep(engine: EngineMode) -> Vec<(f64, f64)> {
    let tuning = DeviceTuning { engine, ..DeviceTuning::none() };
    let msg = Message::pseudo_random(64, 3);
    L1Channel::new(presets::tesla_k40c())
        .with_tuning(tuning)
        .error_rate_sweep_on(&TrialRunner::sequential(), &msg, &[20, 12, 8, 4, 2, 1])
        .expect("sweep transmits")
}

/// One seeded BER trial of the 64-trial scaling workload.
fn ber_trial(t: Trial) -> f64 {
    let msg = Message::pseudo_random(8, 0xABBA ^ t.index as u64);
    L1Channel::new(presets::tesla_k40c())
        .with_iterations(4)
        .with_jitter(Some((3_000, t.seed)))
        .transmit(&msg)
        .expect("transmits")
        .ber
}

fn bench(c: &mut Criterion) {
    // --- 1. Dense vs event-driven: identical results, measured speedup. ---
    // The arms are interleaved round-robin and each keeps its best round:
    // machine-speed drift (noisy neighbours, frequency scaling) then hits
    // both arms alike instead of skewing whichever ran later.
    let reps = if quick() { 1 } else { 5 };
    let mut dense_s = f64::INFINITY;
    let mut event_s = f64::INFINITY;
    let (mut dense_pts, mut event_pts) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        let start = Instant::now();
        dense_pts = fig5_sweep(EngineMode::Dense);
        dense_s = dense_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        event_pts = fig5_sweep(EngineMode::EventDriven);
        event_s = event_s.min(start.elapsed().as_secs_f64());
    }
    for engine in [EngineMode::Dense, EngineMode::EventDriven] {
        let o = L1Channel::new(presets::tesla_k40c())
            .with_tuning(DeviceTuning { engine, ..DeviceTuning::none() })
            .transmit(&Message::pseudo_random(16, 3))
            .expect("transmits");
        println!("ablation: {engine:?} engine counters: {}", o.stats);
    }
    assert_eq!(dense_pts, event_pts, "event-driven engine changed the Figure-5 series");
    let speedup = dense_s / event_s;
    println!(
        "ablation: fig5 sweep dense {dense_s:.3}s, event-driven {event_s:.3}s -> {speedup:.2}x"
    );
    // Quick mode (CI smoke) runs one repetition: keep the equality check
    // but skip the timing assertion, which needs best-of-3 stability.
    if !quick() {
        assert!(
            speedup >= 1.5,
            "event-driven engine must be >= 1.5x on the Fig 5 sweep, got {speedup:.2}x"
        );
    }

    // --- 2. TrialRunner scaling on a 64-trial BER sweep. ---
    let trials = if quick() { 8 } else { 64 };
    let time_workers = |workers: usize| -> (Vec<f64>, f64) {
        let start = Instant::now();
        let out = TrialRunner::sequential().with_workers(workers).run(trials, ber_trial);
        (out, start.elapsed().as_secs_f64())
    };
    let (seq_out, seq_s) = time_workers(1);
    let (par_out, par_s) = time_workers(4);
    assert_eq!(seq_out, par_out, "worker count changed BER results");
    let scaling = seq_s / par_s;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "ablation: {trials}-trial BER sweep 1 worker {seq_s:.3}s, 4 workers {par_s:.3}s \
         -> {scaling:.2}x ({cores} cores available)"
    );
    if cores >= 4 && !quick() {
        assert!(
            scaling >= 3.0,
            "TrialRunner must scale >= 3x on 4 workers with {cores} cores, got {scaling:.2}x"
        );
    } else {
        println!("ablation: scaling assertion skipped ({cores} cores, quick={})", quick());
    }

    // --- 3. Tracing overhead: disabled hook vs live EventTrace sink. ---
    let trace_reps = if quick() { 1 } else { 5 };
    let msg = Message::pseudo_random(32, 7);
    let ch = L1Channel::new(presets::tesla_k40c());
    let best_of = |f: &dyn Fn()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..trace_reps {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let disabled_s = best_of(&|| {
        ch.transmit(&msg).expect("transmits");
    });
    let traced_s = best_of(&|| {
        ch.transmit_traced(&msg, 4096).expect("transmits");
    });
    println!(
        "ablation: 32-bit L1 transmit untraced {disabled_s:.3}s, traced {traced_s:.3}s \
         -> disabled/traced = {:.3}",
        disabled_s / traced_s
    );
    if !quick() {
        // The traced run does strictly more work (it records every event),
        // so the disabled path staying within 2% of it bounds the hook's
        // disabled-path cost well under the 2% budget.
        assert!(
            disabled_s <= traced_s * 1.02,
            "tracing-disabled path must be within 2% of the traced run, \
             got disabled {disabled_s:.3}s vs traced {traced_s:.3}s"
        );
    }

    // --- 4. Fault-hook overhead: no injector vs a zero-intensity plan. ---
    let sync_msg = Message::pseudo_random(24, 11);
    let sync_ch = gpgpu_covert::sync_channel::SyncChannel::new(presets::tesla_k40c());
    let quiet_plan = gpgpu_sim::FaultPlan::new(0xAB1A)
        .with_intensity(0.0)
        .with_kinds(gpgpu_sim::FaultKinds::all());
    let bare = sync_ch.clone().transmit(&sync_msg).expect("transmits");
    let quiet = sync_ch.clone().with_faults(quiet_plan).transmit(&sync_msg).expect("transmits");
    assert_eq!(
        (bare.cycles, &bare.received),
        (quiet.cycles, &quiet.received),
        "a zero-intensity fault plan must not perturb the run"
    );
    let fault_free_s = best_of(&|| {
        sync_ch.clone().transmit(&sync_msg).expect("transmits");
    });
    let hooked_s = best_of(&|| {
        sync_ch.clone().with_faults(quiet_plan).transmit(&sync_msg).expect("transmits");
    });
    println!(
        "ablation: 24-bit sync transmit no-injector {fault_free_s:.3}s, quiet-injector \
         {hooked_s:.3}s -> disabled/hooked = {:.3}",
        fault_free_s / hooked_s
    );
    if !quick() {
        // The quiet-injector run simulates the identical protocol but pays
        // the window arithmetic at every hook site, so the no-injector path
        // staying within 2% of it bounds the disabled-hook cost.
        assert!(
            fault_free_s <= hooked_s * 1.02,
            "fault-disabled path must be within 2% of the quiet-injector run, \
             got disabled {fault_free_s:.3}s vs hooked {hooked_s:.3}s"
        );
    }

    // --- 5. Data-oriented core vs the seed path, with a JSON artifact. ---
    // Seed configuration: dense engine, pooling off — every transmission
    // builds its device from scratch, as the seed code did. Optimized:
    // event-driven engine over the SoA core, devices pooled and restored
    // from pristine snapshots between trials.
    // Interleaved like section 1, for the same drift immunity.
    let run_arm = |engine: EngineMode, pooled: bool| -> (Vec<(f64, f64)>, f64) {
        gpgpu_covert::pool::set_disabled(!pooled);
        gpgpu_covert::pool::clear();
        let start = Instant::now();
        let pts = fig5_sweep(engine);
        (pts, start.elapsed().as_secs_f64())
    };
    let mut seed_s = f64::INFINITY;
    let mut opt_s = f64::INFINITY;
    let (mut seed_pts, mut opt_pts) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        let (pts, t) = run_arm(EngineMode::Dense, false);
        seed_pts = pts;
        seed_s = seed_s.min(t);
        let (pts, t) = run_arm(EngineMode::EventDriven, true);
        opt_pts = pts;
        opt_s = opt_s.min(t);
    }
    gpgpu_covert::pool::set_disabled(false);
    assert_eq!(seed_pts, opt_pts, "the data-oriented stack changed the Figure-5 series");
    let core_speedup = seed_s / opt_s;
    println!(
        "ablation: fig5 sweep seed path {seed_s:.3}s, data-oriented {opt_s:.3}s \
         -> {core_speedup:.2}x"
    );
    if !quick() {
        assert!(
            core_speedup >= 2.0,
            "the data-oriented core must be >= 2x the seed path on the Fig 5 sweep, \
             got {core_speedup:.2}x"
        );
    }

    // --- 6. Analytical pre-pruning of the same Figure-5 sweep. ---
    // The closed-form model is characterized once from the cycle engine (a
    // one-time cost, timed and printed separately — it amortizes across
    // every sweep that reuses the table). At sweep time it flags which grid
    // cells fall in the BER transition band: only those are simulated, the
    // rest come from the closed form. The contract: simulated cells are
    // bit-identical to the unpruned sweep, filled cells stay within the
    // analytical BER band, and skipping the settled cells cuts wall clock.
    let grid: [u64; 6] = [20, 12, 8, 4, 2, 1];
    let sweep_msg = Message::pseudo_random(64, 3);
    let char_start = Instant::now();
    let model = AnalyticalModel::characterize_families(&presets::tesla_k40c(), &["l1"])
        .expect("l1 characterization succeeds");
    let char_s = char_start.elapsed().as_secs_f64();
    let channel = L1Channel::new(presets::tesla_k40c())
        .with_tuning(DeviceTuning { engine: EngineMode::EventDriven, ..DeviceTuning::none() });
    let runner = TrialRunner::sequential();
    let mut unpruned_s = f64::INFINITY;
    let mut pruned_s = f64::INFINITY;
    let (mut unpruned_pts, mut pruned_pts) = (Vec::new(), Vec::new());
    let mut mask = Vec::new();
    for _ in 0..reps {
        let start = Instant::now();
        unpruned_pts =
            channel.error_rate_sweep_on(&runner, &sweep_msg, &grid).expect("unpruned sweep runs");
        unpruned_s = unpruned_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let (pts, m) = model
            .pruned_error_rate_sweep(&runner, &channel, "l1", &sweep_msg, &grid)
            .expect("pruned sweep runs");
        pruned_s = pruned_s.min(start.elapsed().as_secs_f64());
        pruned_pts = pts;
        mask = m;
    }
    let cells_simulated = mask.iter().filter(|&&keep| keep).count();
    assert!(
        cells_simulated > 0 && cells_simulated < grid.len(),
        "the model must prune some cells but not all (simulated {cells_simulated}/{})",
        grid.len()
    );
    let mut max_ber_err: f64 = 0.0;
    for (i, &keep) in mask.iter().enumerate() {
        if keep {
            assert_eq!(
                unpruned_pts[i], pruned_pts[i],
                "a simulated cell must be bit-identical to the unpruned sweep"
            );
        } else {
            max_ber_err = max_ber_err.max((unpruned_pts[i].1 - pruned_pts[i].1).abs());
        }
    }
    assert!(
        max_ber_err <= 0.12,
        "a model-filled cell left the analytical BER band: max error {max_ber_err:.4}"
    );
    let pruned_speedup = unpruned_s / pruned_s;
    println!(
        "ablation: fig5 sweep unpruned {unpruned_s:.3}s, pruned {pruned_s:.3}s \
         ({cells_simulated}/{} cells simulated; one-time characterization {char_s:.3}s) \
         -> {pruned_speedup:.2}x, max filled-cell BER error {max_ber_err:.4}",
        grid.len()
    );
    if !quick() {
        assert!(
            pruned_speedup >= 1.0,
            "the pruned sweep must not be slower than the unpruned one, got {pruned_speedup:.2}x"
        );
    }

    // --- 6b. The same pruned-sweep contract on the sub-core Ampere device:
    // the arch-generic characterization must fit the modern core well enough
    // that filled cells stay in the BER band and no confident verdict flips.
    let ampere_model = AnalyticalModel::characterize_families(&presets::rtx_a4000(), &["l1"])
        .expect("ampere l1 characterization succeeds");
    let ampere_channel = L1Channel::new(presets::rtx_a4000())
        .with_tuning(DeviceTuning { engine: EngineMode::EventDriven, ..DeviceTuning::none() });
    let ampere_unpruned =
        ampere_channel.error_rate_sweep_on(&runner, &sweep_msg, &grid).expect("ampere sweep runs");
    let (ampere_pruned, ampere_mask) = ampere_model
        .pruned_error_rate_sweep(&runner, &ampere_channel, "l1", &sweep_msg, &grid)
        .expect("ampere pruned sweep runs");
    let ampere_simulated = ampere_mask.iter().filter(|&&keep| keep).count();
    let mut ampere_max_ber_err: f64 = 0.0;
    let mut ampere_verdicts_agree = true;
    for (i, &keep) in ampere_mask.iter().enumerate() {
        if keep {
            assert_eq!(
                ampere_unpruned[i], ampere_pruned[i],
                "an ampere simulated cell must be bit-identical to the unpruned sweep"
            );
        } else {
            ampere_max_ber_err =
                ampere_max_ber_err.max((ampere_unpruned[i].1 - ampere_pruned[i].1).abs());
            let confident = ampere_unpruned[i].1 <= 0.05 || ampere_unpruned[i].1 >= 0.35;
            if confident && ((ampere_unpruned[i].1 > 0.2) != (ampere_pruned[i].1 > 0.2)) {
                ampere_verdicts_agree = false;
            }
        }
    }
    assert!(
        ampere_max_ber_err <= 0.12,
        "an ampere model-filled cell left the analytical BER band: {ampere_max_ber_err:.4}"
    );
    assert!(ampere_verdicts_agree, "an ampere filled cell flipped a confident verdict");
    println!(
        "ablation: ampere fig5 sweep {ampere_simulated}/{} cells simulated, \
         max filled-cell BER error {ampere_max_ber_err:.4}, verdict agreement: yes",
        grid.len()
    );

    let json = format!(
        "{{\n  \"workload\": \"fig5_l1_iteration_sweep\",\n  \"seed_path_s\": {seed_s:.6},\n  \
         \"optimized_s\": {opt_s:.6},\n  \"speedup\": {core_speedup:.4},\n  \
         \"points\": {},\n  \"quick\": {},\n  \"pruned\": {{\n    \"cells_total\": {},\n    \
         \"cells_simulated\": {cells_simulated},\n    \"unpruned_s\": {unpruned_s:.6},\n    \
         \"pruned_s\": {pruned_s:.6},\n    \"speedup\": {pruned_speedup:.4},\n    \
         \"max_ber_err\": {max_ber_err:.6}\n  }},\n  \"ampere\": {{\n    \"device\": \"RTX A4000\",\n    \
         \"cells_total\": {},\n    \"cells_simulated\": {ampere_simulated},\n    \
         \"max_ber_err\": {ampere_max_ber_err:.6},\n    \
         \"verdicts_agree\": {ampere_verdicts_agree}\n  }}\n}}\n",
        seed_pts.len(),
        quick(),
        grid.len(),
        grid.len()
    );
    // Anchor at the workspace root regardless of the bench's cwd (cargo
    // runs benches from the package directory).
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(out, json).expect("BENCH_sweep.json is writable");

    // --- 7. Zero heap allocations per trial after warmup. ---
    // The trial loop a sweep cell runs: reset the device in place, launch a
    // prebuilt kernel (Arc-backed spec, so clone is a refcount bump), run
    // to idle and read the results through the borrowed accessor. After
    // the warmup trial has sized every arena, the loop must not touch the
    // heap at all.
    {
        let spec = presets::tesla_k40c();
        let mut dev = gpgpu_sim::Device::new(spec.clone());
        let mut b = gpgpu_isa::ProgramBuilder::new();
        b.repeat(gpgpu_isa::Reg(20), 32, |b| {
            b.mov_imm(gpgpu_isa::Reg(0), 64);
            b.const_load(gpgpu_isa::Reg(0));
            b.add_imm(gpgpu_isa::Reg(1), gpgpu_isa::Reg(1), 1);
        });
        b.push_result(gpgpu_isa::Reg(1));
        let kernel = gpgpu_sim::KernelSpec::new(
            "trial",
            b.build().expect("assembles"),
            gpgpu_spec::LaunchConfig::new(spec.num_sms, 64),
        );
        let trials = if quick() { 8 } else { 32 };
        let mut max_delta = 0u64;
        let mut checksum = 0u64;
        for trial in 0..trials {
            let before = allocations();
            dev.reset_for_trial();
            let k = dev.launch(0, kernel.clone()).expect("launches");
            dev.run_until_idle(10_000_000).expect("completes");
            let sum: u64 = dev
                .block_records(k)
                .expect("complete")
                .iter()
                .flat_map(|blk| blk.warp_results.iter().flatten())
                .sum();
            let delta = allocations() - before;
            // Trials 0 and 1 may size arenas (cold tables, first recycle);
            // from the second reuse on the loop must be allocation-free.
            if trial >= 2 {
                max_delta = max_delta.max(delta);
            }
            checksum = checksum.wrapping_add(sum);
            assert!(sum > 0, "the trial kernel pushed results");
        }
        println!(
            "ablation: {trials} reset_for_trial trials, max allocations/trial after warmup: \
             {max_delta} (checksum {checksum})"
        );
        assert_eq!(
            max_delta, 0,
            "a warmed-up reset_for_trial loop must perform zero heap allocations per trial"
        );
    }

    c.bench_function("engine_event_driven_fig5_sweep", |b| {
        b.iter(|| fig5_sweep(EngineMode::EventDriven))
    });
    c.bench_function("engine_dense_fig5_sweep", |b| b.iter(|| fig5_sweep(EngineMode::Dense)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
