//! Fault sweep: BER and goodput of the synchronized L1 channel vs fault
//! intensity, comparing the raw channel against Hamming-FEC coding and
//! CRC-8/ARQ framing (Figure-5-style robustness curves).

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_bench::data::fault_sweep;

use gpgpu_bench::quick;

fn bench(c: &mut Criterion) {
    let (bits, intensities): (usize, &[f64]) =
        if quick() { (96, &[0.0, 1.0]) } else { (96, &[0.0, 0.25, 0.5, 0.75, 1.0]) };
    let pts = fault_sweep(bits, intensities);
    println!(
        "fault_sweep raw:  {:?}",
        pts.iter().map(|p| (p.intensity, p.raw_ber)).collect::<Vec<_>>()
    );
    println!(
        "fault_sweep fec:  {:?}",
        pts.iter().map(|p| (p.intensity, p.fec_ber)).collect::<Vec<_>>()
    );
    println!(
        "fault_sweep arq:  {:?}",
        pts.iter().map(|p| (p.intensity, p.arq_ber)).collect::<Vec<_>>()
    );
    println!(
        "fault_sweep goodput (raw/fec/arq Kbps): {:?}",
        pts.iter()
            .map(|p| (p.intensity, p.raw_goodput_kbps, p.fec_goodput_kbps, p.arq_goodput_kbps))
            .collect::<Vec<_>>()
    );
    // Shape: clean at zero intensity; the storm must hurt the raw channel;
    // ARQ must fully repair every intensity in the sweep. FEC is *not*
    // asserted to beat raw: fault bursts flip multiple bits per Hamming
    // codeword, where the single-error corrector miscorrects — the curve
    // shows exactly why burst faults need retransmission, not FEC alone.
    let clean = &pts[0];
    let storm = pts.last().unwrap();
    assert_eq!(clean.raw_ber, 0.0, "the channel is error-free without faults");
    assert_eq!(clean.fec_ber, 0.0, "FEC decode is exact without faults");
    assert!(
        storm.raw_ber > 0.05,
        "full-intensity raw BER must be substantial, got {}",
        storm.raw_ber
    );
    assert!(storm.fec_ber > 0.0, "the storm also corrupts the FEC-coded stream");
    for p in &pts {
        assert_eq!(p.arq_ber, 0.0, "ARQ must deliver BER 0 at intensity {}", p.intensity);
    }
    assert!(storm.arq_goodput_kbps < clean.arq_goodput_kbps, "retransmissions must cost goodput");

    c.bench_function("fault_sweep_two_point", |b| b.iter(|| fault_sweep(48, &[0.0, 1.0])));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
