//! NVLink cross-GPU channel: bandwidth vs symbol time over a dual-Kepler
//! topology. The link is slot-arbitrated like an FU issue port, so the
//! channel inherits the paper's bandwidth/robustness trade-off: stretching
//! the probe window lowers bandwidth monotonically while every operating
//! point on a clean fabric stays error-free (the curve NVBleed measures on
//! real NVLink hardware — see `PAPERS.md`).

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_bench::data::nvlink_bandwidth_sweep;
use gpgpu_bench::report::render_series;

use gpgpu_bench::quick;

fn bench(c: &mut Criterion) {
    // The sweep starts at the default window (2048 cycles): below it the
    // probe batch itself dominates the symbol time and the curve flattens.
    let (bits, windows): (usize, &[u64]) = if quick() {
        (16, &[2_048, 8_192, 32_768])
    } else {
        (32, &[2_048, 4_096, 8_192, 16_384, 32_768, 65_536])
    };
    let pts = nvlink_bandwidth_sweep(bits, windows);
    let series: Vec<(f64, f64)> =
        pts.iter().map(|p| (p.window_cycles as f64, p.bandwidth_kbps)).collect();
    println!(
        "{}",
        render_series("NVLink bandwidth vs symbol time", "window cycles", "Kbps", &series)
    );
    // Shape: error-free everywhere on the clean fabric, bandwidth strictly
    // falling as the window stretches.
    for p in &pts {
        assert_eq!(p.ber, 0.0, "clean dual-GPU link must be error-free: {p:?}");
    }
    for w in pts.windows(2) {
        assert!(
            w[1].bandwidth_kbps < w[0].bandwidth_kbps,
            "stretching the window must cost bandwidth: {w:?}"
        );
    }

    c.bench_function("nvlink_16bits_default_window", |b| {
        b.iter(|| nvlink_bandwidth_sweep(16, &[2_048]))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
