//! Figure 2: L1 constant-cache characterization sweep (stride 64 B).

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_bench::report::count_steps;
use gpgpu_covert::microbench::{cache_sweep, fig2_sizes, recover_cache_geometry};
use gpgpu_spec::presets;

fn bench(c: &mut Criterion) {
    // Regenerate the figure once and validate its shape.
    let series = gpgpu_bench::data::fig02();
    let steps = count_steps(&series, 3.0);
    println!("fig02: {} points, {} steps (paper: 8 sets)", series.len(), steps);
    assert_eq!(steps, 8);
    let sweep = cache_sweep(&presets::tesla_k40c(), 64, &fig2_sizes()).unwrap();
    let g = recover_cache_geometry(&sweep).unwrap();
    assert_eq!((g.size_bytes, g.line_bytes, g.num_sets, g.ways), (2048, 64, 8, 4));

    let sizes: Vec<u64> = fig2_sizes().into_iter().step_by(8).collect();
    c.bench_function("fig02_l1_stride_sweep", |b| {
        b.iter(|| cache_sweep(&presets::tesla_k40c(), 64, &sizes).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
