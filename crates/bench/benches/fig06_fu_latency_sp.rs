//! Figure 6: single-precision FU latency vs warp count, all architectures.

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_covert::microbench::fu_latency_sweep;
use gpgpu_spec::{presets, FuOpKind};

fn bench(c: &mut Criterion) {
    for spec in presets::all() {
        for op in [FuOpKind::SpSinf, FuOpKind::SpSqrt, FuOpKind::SpAdd, FuOpKind::SpMul] {
            let curve = gpgpu_bench::data::fu_curve(&spec, op, 32);
            println!("fig06 {} {}: 1w {:.1} -> 32w {:.1}", spec.name, op, curve[0].1, curve[31].1);
            // Monotonic non-decreasing within tolerance.
            assert!(curve.windows(2).all(|w| w[1].1 >= w[0].1 - 1.5), "{}/{op}", spec.name);
        }
        // Shape: __sinf and sqrt step up; the step reflects scheduler count.
        let sinf = gpgpu_bench::data::fu_curve(&spec, FuOpKind::SpSinf, 32);
        assert!(sinf[31].1 > sinf[0].1 * 1.5, "{}", spec.name);
    }

    c.bench_function("fig06_sinf_sweep_kepler", |b| {
        b.iter(|| {
            fu_latency_sweep(&presets::tesla_k40c(), FuOpKind::SpSinf, &[1, 8, 16, 32]).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
