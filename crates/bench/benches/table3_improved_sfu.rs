//! Table 3: the SFU channel parallelized across warp schedulers and SMs.

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_bench::report::render_rows;
use gpgpu_covert::bits::Message;
use gpgpu_covert::parallel::ParallelSfuChannel;
use gpgpu_spec::presets;

fn bench(c: &mut Criterion) {
    let rows = gpgpu_bench::data::table3(120);
    println!("{}", render_rows("Table 3", &rows));
    for device_rows in rows.chunks(3) {
        for w in device_rows.windows(2) {
            assert!(w[1].measured > w[0].measured, "{w:?}");
        }
    }
    let combined = gpgpu_bench::data::combined_rows(32);
    println!("{}", render_rows("combined L1+SFU", &combined));

    let msg = Message::pseudo_random(60, 13);
    c.bench_function("table3_parallel_sfu_60bits_kepler", |b| {
        b.iter(|| {
            ParallelSfuChannel::new(presets::tesla_k40c())
                .with_parallel_sms(15)
                .unwrap()
                .transmit(&msg)
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
