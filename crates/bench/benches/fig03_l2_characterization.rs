//! Figure 3: L2 constant-cache characterization sweep (stride 256 B).

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_bench::report::count_steps;
use gpgpu_covert::microbench::{cache_sweep, fig3_sizes, recover_cache_geometry};
use gpgpu_spec::presets;

fn bench(c: &mut Criterion) {
    let series = gpgpu_bench::data::fig03();
    let steps = count_steps(&series, 3.0);
    println!("fig03: {} points, {} steps (paper: 16 sets)", series.len(), steps);
    assert_eq!(steps, 16);
    let sweep = cache_sweep(&presets::tesla_k40c(), 256, &fig3_sizes()).unwrap();
    let g = recover_cache_geometry(&sweep).unwrap();
    assert_eq!((g.size_bytes, g.line_bytes, g.num_sets, g.ways), (32 * 1024, 256, 16, 8));

    let sizes: Vec<u64> = fig3_sizes().into_iter().step_by(8).collect();
    c.bench_function("fig03_l2_stride_sweep", |b| {
        b.iter(|| cache_sweep(&presets::tesla_k40c(), 256, &sizes).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
