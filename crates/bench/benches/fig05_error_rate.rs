//! Figure 5: bit-error rate vs bandwidth as iterations per bit shrink.

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_covert::cache_channel::{L1Channel, L2Channel};
use gpgpu_spec::presets;

fn bench(c: &mut Criterion) {
    for (name, ch) in [
        ("Kepler L1", L1Channel::new(presets::tesla_k40c())),
        ("Kepler L2", L2Channel::new(presets::tesla_k40c())),
        ("Maxwell L1", L1Channel::new(presets::quadro_m4000())),
        ("Maxwell L2", L2Channel::new(presets::quadro_m4000())),
    ] {
        let pts = gpgpu_bench::data::fig05(ch, 64, &[20, 8, 4, 2, 1]);
        println!("fig05 {name}: {pts:?}");
        // Shape: error-free at the paper operating point, errors at the top
        // bandwidth, bandwidth strictly rising.
        assert_eq!(pts[0].1, 0.0);
        assert!(pts.last().unwrap().1 > 0.0);
        assert!(pts.windows(2).all(|w| w[1].0 > w[0].0));
    }

    let ch = L1Channel::new(presets::tesla_k40c());
    let msg = gpgpu_covert::bits::Message::pseudo_random(24, 3);
    c.bench_function("fig05_iteration_sweep_24bits", |b| {
        b.iter(|| ch.error_rate_sweep(&msg, &[20, 4, 1]).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
