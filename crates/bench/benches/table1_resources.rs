//! Table 1: per-SM resource counts of the three device presets.

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_bench::report::render_rows;
use gpgpu_covert::colocation::reverse_engineer_warp_scheduler;
use gpgpu_spec::presets;

fn bench(c: &mut Criterion) {
    let rows = gpgpu_bench::data::table1();
    println!("{}", render_rows("Table 1", &rows));
    for row in &rows {
        assert_eq!(row.paper, Some(row.measured), "{row:?}");
    }

    // The scheduler counts are also *measurable* from latency steps alone.
    c.bench_function("table1_infer_scheduler_count_kepler", |b| {
        b.iter(|| {
            let r = reverse_engineer_warp_scheduler(&presets::tesla_k40c()).unwrap();
            assert_eq!(r.inferred_num_schedulers, 4);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
