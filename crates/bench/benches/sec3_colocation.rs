//! Section 3: reverse engineering the block and warp schedulers.

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_covert::colocation::reverse_engineer_block_scheduler;
use gpgpu_spec::presets;

fn bench(c: &mut Criterion) {
    println!("{}", gpgpu_bench::data::sec3_summary());
    for spec in presets::all() {
        let r = reverse_engineer_block_scheduler(&spec).unwrap();
        assert!(r.is_leftover_policy(), "{}", spec.name);
    }

    c.bench_function("sec3_block_scheduler_probe_kepler", |b| {
        b.iter(|| reverse_engineer_block_scheduler(&presets::tesla_k40c()).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
