//! Section 9: the paper's proposed mitigations, implemented and evaluated.

use criterion::{criterion_group, criterion_main, Criterion};
use gpgpu_covert::bits::Message;
use gpgpu_covert::mitigations::{evaluate_against_family, ChannelFamily};
use gpgpu_covert::whitespace::discover_and_transmit;
use gpgpu_spec::presets;
use gpgpu_spec::DefenseSpec;

fn bench(c: &mut Criterion) {
    let spec = presets::tesla_k40c();
    let msg = Message::pseudo_random(16, 0xA1);

    for defense in ["partition=2", "fuzz=4096"] {
        let defense = DefenseSpec::from_spec(defense).unwrap();
        let r = evaluate_against_family(&spec, ChannelFamily::L1, &defense, &msg, None).unwrap();
        println!(
            "sec9 {defense}: baseline BER {:.1}% -> mitigated BER {:.1}%",
            r.baseline.ber * 100.0,
            r.mitigated.ber * 100.0
        );
        assert!(r.is_effective(0.2), "{defense} should break the L1 channel");
    }
    let defense = DefenseSpec::from_spec("randsched=0xd1ce").unwrap();
    let r =
        evaluate_against_family(&spec, ChannelFamily::ParallelSfu, &defense, &msg, None).unwrap();
    println!(
        "sec9 {defense}: baseline BER {:.1}% -> mitigated BER {:.1}%",
        r.baseline.ber * 100.0,
        r.mitigated.ber * 100.0
    );
    assert!(r.baseline.is_error_free() && r.mitigated.ber > 0.1);

    // Whitespace discovery (the Section-8 noise-avoidance alternative).
    let w = discover_and_transmit(&spec, &msg, &[0, 1, 2], 20).unwrap();
    println!(
        "sec8 whitespace: trojan chose {:?}, spy chose {:?}, BER {:.1}%",
        w.trojan_choice,
        w.spy_choice,
        w.outcome.as_ref().map(|o| o.ber * 100.0).unwrap_or(100.0)
    );
    assert_eq!(w.trojan_choice, w.spy_choice);
    assert!(w.outcome.unwrap().is_error_free());

    let partition = DefenseSpec::from_spec("partition=2").unwrap();
    c.bench_function("sec9_partitioning_eval_16bits", |b| {
        b.iter(|| {
            evaluate_against_family(&spec, ChannelFamily::L1, &partition, &msg, None).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
