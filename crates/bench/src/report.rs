//! Plain-text report rendering: fixed-width tables and ASCII sparklines for
//! latency series, with paper-reference values beside measurements, plus
//! the per-SM/per-scheduler/per-set contention profile derived from an
//! event trace (`--profile` in the CLI).

use gpgpu_mem::ConstLevel;
use gpgpu_sim::{TraceEvent, TraceRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (e.g. `"Kepler L1 baseline"`).
    pub label: String,
    /// The value the paper reports, if it gives one.
    pub paper: Option<f64>,
    /// Our measured value.
    pub measured: f64,
    /// Unit string for both values.
    pub unit: &'static str,
}

impl Row {
    /// Convenience constructor.
    pub fn new(
        label: impl Into<String>,
        paper: Option<f64>,
        measured: f64,
        unit: &'static str,
    ) -> Self {
        Row { label: label.into(), paper, measured, unit }
    }

    /// measured / paper, when a paper value exists.
    pub fn ratio(&self) -> Option<f64> {
        self.paper.filter(|&p| p != 0.0).map(|p| self.measured / p)
    }
}

/// Renders a paper-vs-measured table.
pub fn render_rows(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ =
        writeln!(out, "  {:<44} {:>12} {:>12} {:>8}", "experiment", "paper", "measured", "ratio");
    for r in rows {
        let paper =
            r.paper.map(|p| format!("{p:.1} {}", r.unit)).unwrap_or_else(|| "-".to_string());
        let ratio = r.ratio().map(|x| format!("{x:.2}x")).unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "  {:<44} {:>12} {:>9.1} {} {:>6}",
            r.label, paper, r.measured, r.unit, ratio
        );
    }
    out
}

/// Renders an `(x, y)` series as an aligned two-column listing plus a crude
/// ASCII sparkline (enough to see the staircases of Figures 2/3/6/7).
pub fn render_series(title: &str, x_label: &str, y_label: &str, series: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    if series.is_empty() {
        let _ = writeln!(out, "  (no data)");
        return out;
    }
    let (min, max) = series
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, y)| (lo.min(y), hi.max(y)));
    let span = (max - min).max(1e-9);
    let _ = writeln!(out, "  {x_label:>12}  {y_label:>12}");
    for &(x, y) in series {
        let fill = (((y - min) / span) * 40.0).round() as usize;
        let _ = writeln!(out, "  {x:>12.0}  {y:>12.1}  |{}", "#".repeat(fill));
    }
    out
}

/// Renders a plain-text contention profile from a recorded event trace:
/// per-SM activity (blocks hosted, warp issues, constant accesses by
/// level, L1 evictions), per-warp-scheduler issue counts, per-set eviction
/// histograms for the L1s and the shared L2, and a per-kernel summary —
/// the aggregate view behind the paper's Figure-4-style analysis.
///
/// `kernel_names` maps kernel ids to diagnostic names (ids past the end
/// render as `kernel<N>`).
pub fn render_contention_profile(records: &[TraceRecord], kernel_names: &[String]) -> String {
    let name_of = |k: u32| -> String {
        kernel_names.get(k as usize).cloned().unwrap_or_else(|| format!("kernel{k}"))
    };

    #[derive(Default)]
    struct SmStats {
        blocks: u64,
        preempted: u64,
        issues: u64,
        l1_hits: u64,
        l2_hits: u64,
        mem_misses: u64,
        l1_evictions: u64,
    }
    #[derive(Default)]
    struct KernelStats {
        launches: u64,
        completes: u64,
        blocks: u64,
        issues: u64,
        atomic_queue_cycles: u64,
        atomic_transactions: u64,
        gmem_transactions: u64,
        gmem_queue_cycles: u64,
    }

    let mut per_sm: BTreeMap<u32, SmStats> = BTreeMap::new();
    let mut per_sched: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut l1_set_evictions: BTreeMap<u64, u64> = BTreeMap::new();
    let mut l2_set_evictions: BTreeMap<u64, u64> = BTreeMap::new();
    let mut per_kernel: BTreeMap<u32, KernelStats> = BTreeMap::new();
    // link index -> (transfers, flits, queue cycles)
    let mut per_link: BTreeMap<u32, (u64, u64, u64)> = BTreeMap::new();

    for r in records {
        match r.event {
            TraceEvent::KernelLaunch { kernel, .. } => {
                per_kernel.entry(kernel).or_default().launches += 1;
            }
            TraceEvent::KernelComplete { kernel } => {
                per_kernel.entry(kernel).or_default().completes += 1;
            }
            TraceEvent::BlockPlaced { kernel, sm, .. } => {
                per_sm.entry(sm).or_default().blocks += 1;
                per_kernel.entry(kernel).or_default().blocks += 1;
            }
            TraceEvent::BlockPreempted { sm, .. } => {
                per_sm.entry(sm).or_default().preempted += 1;
            }
            TraceEvent::BlockFinished { .. } => {}
            TraceEvent::WarpIssue { sm, scheduler, kernel, .. } => {
                per_sm.entry(sm).or_default().issues += 1;
                *per_sched.entry((sm, scheduler)).or_default() += 1;
                per_kernel.entry(kernel).or_default().issues += 1;
            }
            TraceEvent::ConstAccess { sm, level, .. } => {
                let s = per_sm.entry(sm).or_default();
                match level {
                    ConstLevel::L1 => s.l1_hits += 1,
                    ConstLevel::L2 => s.l2_hits += 1,
                    ConstLevel::Memory => s.mem_misses += 1,
                }
            }
            TraceEvent::CacheEviction { sm, set, .. } => match sm {
                Some(sm) => {
                    per_sm.entry(sm).or_default().l1_evictions += 1;
                    *l1_set_evictions.entry(set).or_default() += 1;
                }
                None => *l2_set_evictions.entry(set).or_default() += 1,
            },
            TraceEvent::AtomicContention { kernel, queue_cycles, transactions, .. } => {
                let k = per_kernel.entry(kernel).or_default();
                k.atomic_queue_cycles += queue_cycles;
                k.atomic_transactions += transactions;
            }
            TraceEvent::GlobalAccess { kernel, transactions, queue_cycles, .. } => {
                let k = per_kernel.entry(kernel).or_default();
                k.gmem_transactions += transactions;
                k.gmem_queue_cycles += queue_cycles;
            }
            TraceEvent::BarrierArrive { .. } | TraceEvent::BarrierRelease { .. } => {}
            TraceEvent::LinkTransfer { link, flits, queue_cycles, .. } => {
                let l = per_link.entry(link).or_default();
                l.0 += 1;
                l.1 += flits;
                l.2 += queue_cycles;
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "== contention profile ({} events) ==", records.len());

    let _ = writeln!(
        out,
        "  {:<5} {:>7} {:>9} {:>7} {:>8} {:>8} {:>8} {:>9}",
        "sm", "blocks", "preempted", "issues", "L1-hit", "L2-hit", "mem", "L1-evict"
    );
    for (sm, s) in &per_sm {
        let _ = writeln!(
            out,
            "  {:<5} {:>7} {:>9} {:>7} {:>8} {:>8} {:>8} {:>9}",
            format!("SM{sm}"),
            s.blocks,
            s.preempted,
            s.issues,
            s.l1_hits,
            s.l2_hits,
            s.mem_misses,
            s.l1_evictions
        );
    }

    if !per_sched.is_empty() {
        let _ = writeln!(out, "  warp issues per scheduler:");
        for ((sm, sched), n) in &per_sched {
            let _ = writeln!(out, "    SM{sm}.sched{sched}: {n}");
        }
    }
    if !l1_set_evictions.is_empty() {
        let _ = writeln!(out, "  L1 evictions per set:");
        for (set, n) in &l1_set_evictions {
            let _ = writeln!(out, "    set {set:>3}: {n}");
        }
    }
    if !l2_set_evictions.is_empty() {
        let _ = writeln!(out, "  L2 evictions per set:");
        for (set, n) in &l2_set_evictions {
            let _ = writeln!(out, "    set {set:>3}: {n}");
        }
    }
    if !per_link.is_empty() {
        let _ = writeln!(out, "  inter-device link traffic:");
        for (link, (transfers, flits, queue)) in &per_link {
            let _ = writeln!(
                out,
                "    link {link}: {transfers} transfers, {flits} flits, {queue} queue cycles"
            );
        }
    }
    if !per_kernel.is_empty() {
        let _ = writeln!(out, "  per kernel:");
        for (k, s) in &per_kernel {
            let _ = writeln!(
                out,
                "    {:<10} launches {} completes {} blocks {} issues {}",
                name_of(*k),
                s.launches,
                s.completes,
                s.blocks,
                s.issues
            );
            if s.atomic_transactions + s.gmem_transactions > 0 {
                let _ = writeln!(
                    out,
                    "    {:<10} atomics: {} txns / {} queue cycles; gmem: {} txns / {} queue cycles",
                    "", s.atomic_transactions, s.atomic_queue_cycles, s.gmem_transactions, s.gmem_queue_cycles
                );
            }
        }
    }
    out
}

/// Counts upward steps (rises above `eps`) in a series — the paper reads
/// the set count of a cache straight off this number.
pub fn count_steps(series: &[(f64, f64)], eps: f64) -> usize {
    series.windows(2).filter(|w| w[1].1 > w[0].1 + eps).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_with_and_without_paper_values() {
        let rows = vec![Row::new("a", Some(42.0), 43.8, "Kbps"), Row::new("b", None, 7.0, "Kbps")];
        let s = render_rows("t", &rows);
        assert!(s.contains("42.0 Kbps"));
        assert!(s.contains("1.04x"));
        assert!(s.contains('-'));
    }

    #[test]
    fn ratio_handles_missing_paper_value() {
        assert!(Row::new("x", None, 1.0, "").ratio().is_none());
        assert_eq!(Row::new("x", Some(2.0), 4.0, "").ratio(), Some(2.0));
    }

    #[test]
    fn series_rendering_is_total() {
        let s = render_series("t", "x", "y", &[(1.0, 49.0), (2.0, 112.0)]);
        assert!(s.contains("49.0"));
        assert!(render_series("t", "x", "y", &[]).contains("no data"));
    }

    #[test]
    fn contention_profile_aggregates_by_sm_scheduler_and_set() {
        let names = vec!["spy".to_string(), "trojan".to_string()];
        let records = vec![
            TraceRecord {
                cycle: 0,
                event: TraceEvent::KernelLaunch { kernel: 0, stream: 0, arrival: 0 },
            },
            TraceRecord { cycle: 1, event: TraceEvent::BlockPlaced { kernel: 0, block: 0, sm: 3 } },
            TraceRecord {
                cycle: 2,
                event: TraceEvent::WarpIssue { sm: 3, scheduler: 1, kernel: 0, block: 0, warp: 0 },
            },
            TraceRecord {
                cycle: 2,
                event: TraceEvent::ConstAccess { sm: 3, kernel: 0, set: 5, level: ConstLevel::L2 },
            },
            TraceRecord {
                cycle: 3,
                event: TraceEvent::CacheEviction { sm: Some(3), set: 5, evictor: 1, victim: 0 },
            },
            TraceRecord {
                cycle: 4,
                event: TraceEvent::CacheEviction { sm: None, set: 9, evictor: 1, victim: 0 },
            },
            TraceRecord {
                cycle: 5,
                event: TraceEvent::AtomicContention {
                    sm: 3,
                    kernel: 1,
                    queue_cycles: 64,
                    transactions: 2,
                },
            },
            TraceRecord { cycle: 9, event: TraceEvent::KernelComplete { kernel: 0 } },
        ];
        let s = render_contention_profile(&records, &names);
        assert!(s.contains("8 events"), "{s}");
        assert!(s.contains("SM3"), "{s}");
        assert!(s.contains("SM3.sched1: 1"), "{s}");
        assert!(s.contains("L1 evictions per set"), "{s}");
        assert!(s.contains("L2 evictions per set"), "{s}");
        assert!(s.contains("spy"), "{s}");
        assert!(s.contains("atomics: 2 txns / 64 queue cycles"), "{s}");
        // Unknown kernel ids fall back to a synthetic name.
        let s = render_contention_profile(
            &[TraceRecord { cycle: 0, event: TraceEvent::KernelComplete { kernel: 7 } }],
            &[],
        );
        assert!(s.contains("kernel7"), "{s}");
    }

    #[test]
    fn step_counting() {
        let series = vec![(0.0, 49.0), (1.0, 49.0), (2.0, 60.0), (3.0, 70.0), (4.0, 70.0)];
        assert_eq!(count_steps(&series, 3.0), 2);
    }
}
