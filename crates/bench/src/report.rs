//! Plain-text report rendering: fixed-width tables and ASCII sparklines for
//! latency series, with paper-reference values beside measurements.

use std::fmt::Write as _;

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (e.g. `"Kepler L1 baseline"`).
    pub label: String,
    /// The value the paper reports, if it gives one.
    pub paper: Option<f64>,
    /// Our measured value.
    pub measured: f64,
    /// Unit string for both values.
    pub unit: &'static str,
}

impl Row {
    /// Convenience constructor.
    pub fn new(
        label: impl Into<String>,
        paper: Option<f64>,
        measured: f64,
        unit: &'static str,
    ) -> Self {
        Row { label: label.into(), paper, measured, unit }
    }

    /// measured / paper, when a paper value exists.
    pub fn ratio(&self) -> Option<f64> {
        self.paper.filter(|&p| p != 0.0).map(|p| self.measured / p)
    }
}

/// Renders a paper-vs-measured table.
pub fn render_rows(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ =
        writeln!(out, "  {:<44} {:>12} {:>12} {:>8}", "experiment", "paper", "measured", "ratio");
    for r in rows {
        let paper =
            r.paper.map(|p| format!("{p:.1} {}", r.unit)).unwrap_or_else(|| "-".to_string());
        let ratio = r.ratio().map(|x| format!("{x:.2}x")).unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "  {:<44} {:>12} {:>9.1} {} {:>6}",
            r.label, paper, r.measured, r.unit, ratio
        );
    }
    out
}

/// Renders an `(x, y)` series as an aligned two-column listing plus a crude
/// ASCII sparkline (enough to see the staircases of Figures 2/3/6/7).
pub fn render_series(title: &str, x_label: &str, y_label: &str, series: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    if series.is_empty() {
        let _ = writeln!(out, "  (no data)");
        return out;
    }
    let (min, max) = series
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, y)| (lo.min(y), hi.max(y)));
    let span = (max - min).max(1e-9);
    let _ = writeln!(out, "  {x_label:>12}  {y_label:>12}");
    for &(x, y) in series {
        let fill = (((y - min) / span) * 40.0).round() as usize;
        let _ = writeln!(out, "  {x:>12.0}  {y:>12.1}  |{}", "#".repeat(fill));
    }
    out
}

/// Counts upward steps (rises above `eps`) in a series — the paper reads
/// the set count of a cache straight off this number.
pub fn count_steps(series: &[(f64, f64)], eps: f64) -> usize {
    series.windows(2).filter(|w| w[1].1 > w[0].1 + eps).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_with_and_without_paper_values() {
        let rows = vec![Row::new("a", Some(42.0), 43.8, "Kbps"), Row::new("b", None, 7.0, "Kbps")];
        let s = render_rows("t", &rows);
        assert!(s.contains("42.0 Kbps"));
        assert!(s.contains("1.04x"));
        assert!(s.contains('-'));
    }

    #[test]
    fn ratio_handles_missing_paper_value() {
        assert!(Row::new("x", None, 1.0, "").ratio().is_none());
        assert_eq!(Row::new("x", Some(2.0), 4.0, "").ratio(), Some(2.0));
    }

    #[test]
    fn series_rendering_is_total() {
        let s = render_series("t", "x", "y", &[(1.0, 49.0), (2.0, 112.0)]);
        assert!(s.contains("49.0"));
        assert!(render_series("t", "x", "y", &[]).contains("no data"));
    }

    #[test]
    fn step_counting() {
        let series = vec![(0.0, 49.0), (1.0, 49.0), (2.0, 60.0), (3.0, 70.0), (4.0, 70.0)];
        assert_eq!(count_steps(&series, 3.0), 2);
    }
}
