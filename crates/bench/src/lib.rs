//! Benchmark harness regenerating every table and figure of
//! *Constructing and Characterizing Covert Channels on GPGPUs*
//! (Naghibijouybari et al., MICRO-50 2017).
//!
//! Each experiment of the paper's evaluation has a data-generation function
//! in [`data`] returning the same rows/series the paper plots, shared by
//! the Criterion benches under `benches/` (one per table/figure) and by the
//! `figures` report binary, which prints everything with paper-reference
//! values side by side:
//!
//! ```text
//! cargo run --release -p gpgpu-bench --bin figures
//! ```

pub mod data;
pub mod report;

/// Whether quick (smoke) mode is on: `GPGPU_BENCH_QUICK=1`, the same switch
/// the vendored criterion honors for iteration counts. Unset, empty and
/// `0` mean full mode; any other value also means full mode — matching
/// criterion's strict `== "1"` check — but warns once instead of being
/// silently ignored (`GPGPU_BENCH_QUICK=true` used to quietly run the full
/// suite while looking like a smoke run).
pub fn quick() -> bool {
    let (quick, rejected) = resolve_quick(std::env::var("GPGPU_BENCH_QUICK"));
    if let Some(rejected) = rejected {
        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
        WARN_ONCE.call_once(|| {
            eprintln!(
                "warning: unrecognized GPGPU_BENCH_QUICK value `{rejected}` (expected 0 or 1); \
                 running the full benchmark"
            );
        });
    }
    quick
}

/// Testable core of [`quick`]: the resolved flag plus the rejected value,
/// if any, for the one-time warning.
fn resolve_quick(raw: Result<String, std::env::VarError>) -> (bool, Option<String>) {
    match raw.as_deref() {
        Ok("1") => (true, None),
        Ok("") | Ok("0") | Err(_) => (false, None),
        Ok(other) => (false, Some(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::resolve_quick;

    #[test]
    fn quick_env_resolution_is_typed() {
        use std::env::VarError;
        assert_eq!(resolve_quick(Ok("1".into())), (true, None));
        assert_eq!(resolve_quick(Ok("0".into())), (false, None));
        assert_eq!(resolve_quick(Ok(String::new())), (false, None));
        assert_eq!(resolve_quick(Err(VarError::NotPresent)), (false, None));
        assert_eq!(resolve_quick(Ok("true".into())), (false, Some("true".to_string())));
    }
}
