//! Benchmark harness regenerating every table and figure of
//! *Constructing and Characterizing Covert Channels on GPGPUs*
//! (Naghibijouybari et al., MICRO-50 2017).
//!
//! Each experiment of the paper's evaluation has a data-generation function
//! in [`data`] returning the same rows/series the paper plots, shared by
//! the Criterion benches under `benches/` (one per table/figure) and by the
//! `figures` report binary, which prints everything with paper-reference
//! values side by side:
//!
//! ```text
//! cargo run --release -p gpgpu-bench --bin figures
//! ```

pub mod data;
pub mod report;
