//! Data generation for every table and figure in the paper's evaluation.
//!
//! Functions here return exactly the rows/series the paper reports, with
//! the paper's published numbers attached where the text quotes them, so
//! the shape and magnitude comparison is mechanical.

use crate::report::Row;
use gpgpu_covert::atomic_channel::{AtomicChannel, AtomicScenario};
use gpgpu_covert::bits::{hamming_decode, hamming_encode, Message};
use gpgpu_covert::cache_channel::{CacheChannel, L1Channel, L2Channel};
use gpgpu_covert::colocation;
use gpgpu_covert::framing::{arq_transmit, ArqConfig, SyncPipe};
use gpgpu_covert::fu_channel::SfuChannel;
use gpgpu_covert::harness::TrialRunner;
use gpgpu_covert::linkmon::{AdaptiveLink, LinkEnvironment};
use gpgpu_covert::microbench::{cache_sweep, fig2_sizes, fig3_sizes, fu_latency_sweep};
use gpgpu_covert::noise::{run_sync_with_noise, NoiseKind};
use gpgpu_covert::nvlink_channel::NvlinkChannel;
use gpgpu_covert::parallel::{CombinedChannel, ParallelSfuChannel};
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_spec::{presets, DeviceSpec, FuOpKind, TopologySpec};

fn msg(bits: usize) -> Message {
    Message::pseudo_random(bits, 0x5EED_CAFE)
}

/// Figure 2: Kepler L1 constant-cache latency vs array size, stride 64 B.
pub fn fig02() -> Vec<(f64, f64)> {
    cache_sweep(&presets::tesla_k40c(), 64, &fig2_sizes())
        .expect("sweep runs")
        .into_iter()
        .map(|p| (p.array_bytes as f64, p.latency))
        .collect()
}

/// Figure 3: L2 constant-cache latency vs array size, stride 256 B.
pub fn fig03() -> Vec<(f64, f64)> {
    cache_sweep(&presets::tesla_k40c(), 256, &fig3_sizes())
        .expect("sweep runs")
        .into_iter()
        .map(|p| (p.array_bytes as f64, p.latency))
        .collect()
}

/// Figure 4: baseline cache-channel bandwidth, L1 and L2 on all three GPUs.
/// Paper values: L1 = 33/42/42 Kbps (also Table 2 column 1); L2 ~ 20 Kbps
/// on Kepler. Paper-figure comparison: runs on the paper trio only.
pub fn fig04(bits: usize) -> Vec<Row> {
    let m = msg(bits);
    let paper_l1 = [33.0, 42.0, 42.0];
    let paper_l2 = [None, Some(20.0), None];
    let specs = presets::paper_trio();
    // One independent device pair per GPU: fan across the trial harness.
    TrialRunner::new()
        .map(&specs, |t, spec| {
            let i = t.index;
            let l1 = L1Channel::new(spec.clone()).transmit(&m).expect("L1 transmits");
            assert_eq!(l1.ber, 0.0, "{} L1 must be error-free", spec.name);
            let l2 = L2Channel::new(spec.clone()).transmit(&m).expect("L2 transmits");
            assert_eq!(l2.ber, 0.0, "{} L2 must be error-free", spec.name);
            vec![
                Row::new(
                    format!("{} L1 channel", spec.name),
                    Some(paper_l1[i]),
                    l1.bandwidth_kbps,
                    "Kbps",
                ),
                Row::new(
                    format!("{} L2 channel", spec.name),
                    paper_l2[i],
                    l2.bandwidth_kbps,
                    "Kbps",
                ),
            ]
        })
        .into_iter()
        .flatten()
        .collect()
}

/// Aggregated cycle-engine counters over the Figure-4 workload (baseline L1
/// and L2 transmissions on all three GPUs): the `figures` report footer.
/// Fanned across the trial harness like [`fig04`], then merged.
pub fn engine_stats(bits: usize) -> gpgpu_sim::SimStats {
    let m = msg(bits);
    let specs = presets::paper_trio();
    let per_device = TrialRunner::new().map(&specs, |_, spec| {
        let mut s = gpgpu_sim::SimStats::default();
        s.merge(&L1Channel::new(spec.clone()).transmit(&m).expect("L1 transmits").stats);
        s.merge(&L2Channel::new(spec.clone()).transmit(&m).expect("L2 transmits").stats);
        s
    });
    let mut total = gpgpu_sim::SimStats::default();
    for s in &per_device {
        total.merge(s);
    }
    total
}

/// Figure 5: bit-error rate vs bandwidth as the per-bit iteration count is
/// reduced. Returns `(bandwidth_kbps, ber)` points per channel.
pub fn fig05(channel: CacheChannel, bits: usize, iterations: &[u64]) -> Vec<(f64, f64)> {
    channel.error_rate_sweep(&msg(bits), iterations).expect("sweep transmits")
}

/// Figures 6 and 7: per-op latency vs warp count for one (device, op) pair.
pub fn fu_curve(spec: &DeviceSpec, op: FuOpKind, max_warps: u32) -> Vec<(f64, f64)> {
    let counts: Vec<u32> = (1..=max_warps).collect();
    fu_latency_sweep(spec, op, &counts)
        .expect("sweep runs")
        .into_iter()
        .map(|p| (f64::from(p.warps), p.latency))
        .collect()
}

/// Figure 6 spot-check rows: the no-contention base latencies the paper
/// quotes in Section 5.2 (41/18/15 cycles for `__sinf`).
pub fn fig06_base_latency_rows() -> Vec<Row> {
    let paper = [41.0, 18.0, 15.0];
    presets::paper_trio()
        .into_iter()
        .zip(paper)
        .map(|(spec, p)| {
            let ch = SfuChannel::new(spec.clone());
            Row::new(
                format!("{} __sinf base latency", spec.name),
                Some(p),
                ch.idle_latency() as f64,
                "cycles",
            )
        })
        .collect()
}

/// Table 1: per-SM resource counts (paper values are definitionally exact
/// for the presets; the rows confirm the configuration).
pub fn table1() -> Vec<Row> {
    let mut rows = Vec::new();
    let paper: [(&str, [f64; 6]); 3] = [
        ("Tesla C2075 (Fermi)", [2.0, 2.0, 32.0, 16.0, 4.0, 16.0]),
        ("Tesla K40C (Kepler)", [4.0, 8.0, 192.0, 64.0, 32.0, 32.0]),
        ("Quadro M4000 (Maxwell)", [4.0, 8.0, 128.0, 0.0, 32.0, 32.0]),
    ];
    for (spec, (label, p)) in presets::paper_trio().into_iter().zip(paper) {
        let got = [
            f64::from(spec.sm.num_warp_schedulers),
            f64::from(spec.sm.dispatch_units),
            f64::from(spec.sm.pools.sp),
            f64::from(spec.sm.pools.dpu),
            f64::from(spec.sm.pools.sfu),
            f64::from(spec.sm.pools.ldst),
        ];
        for (name, (pv, gv)) in ["warp schedulers", "dispatch units", "SP", "DPU", "SFU", "LD/ST"]
            .iter()
            .zip(p.iter().zip(got.iter()))
        {
            rows.push(Row::new(format!("{label}: {name}"), Some(*pv), *gv, ""));
        }
    }
    rows
}

/// Figure 10: global atomic channel bandwidth, scenarios 1-3 on every
/// device preset (paper trio plus Ampere).
/// The paper's text gives no absolute numbers; the shape constraints are
/// (a) Kepler/Maxwell well above Fermi, (b) scenario 3 lowest.
pub fn fig10(bits: usize) -> Vec<Row> {
    let m = msg(bits);
    // devices x 3 scenarios, one independent transmission per cell.
    let cells: Vec<(DeviceSpec, AtomicScenario)> = presets::all()
        .into_iter()
        .flat_map(|spec| AtomicScenario::ALL.into_iter().map(move |s| (spec.clone(), s)))
        .collect();
    TrialRunner::new().map(&cells, |_, (spec, scenario)| {
        let o = AtomicChannel::new(spec.clone(), *scenario)
            .transmit(&m)
            .expect("atomic channel transmits");
        assert_eq!(o.ber, 0.0, "{} {scenario:?} must be error-free", spec.name);
        Row::new(
            format!("{} atomic: {}", spec.name, scenario.label()),
            None,
            o.bandwidth_kbps,
            "Kbps",
        )
    })
}

/// Table 2: the improved L1 channel across its four optimization stages.
pub fn table2(bits: usize) -> Vec<Row> {
    let m = msg(bits);
    // paper: (baseline, sync, sync+multibit, full) per device.
    let paper =
        [(33.0, 61.0, 207.0, 2800.0), (42.0, 75.0, 285.0, 4250.0), (42.0, 75.0, 285.0, 3700.0)];
    let specs = presets::paper_trio();
    TrialRunner::new()
        .map(&specs, |t, spec| {
            let p = paper[t.index];
            let data_sets = (spec.const_l1.geometry.num_sets() - 2).min(6) as u32;
            let baseline = L1Channel::new(spec.clone()).transmit(&m).expect("baseline");
            let sync = SyncChannel::new(spec.clone()).transmit(&m).expect("sync");
            let multi = SyncChannel::new(spec.clone())
                .with_data_sets(data_sets)
                .expect("config")
                .transmit(&m)
                .expect("multibit");
            let full = SyncChannel::new(spec.clone())
                .with_data_sets(data_sets)
                .expect("config")
                .with_parallel_sms(spec.num_sms)
                .expect("config")
                .transmit(&m)
                .expect("full");
            for o in [&baseline, &sync, &multi, &full] {
                assert_eq!(o.ber, 0.0, "{}: Table 2 channels are error-free", spec.name);
            }
            vec![
                Row::new(
                    format!("{} L1 baseline", spec.name),
                    Some(p.0),
                    baseline.bandwidth_kbps,
                    "Kbps",
                ),
                Row::new(
                    format!("{} + synchronization", spec.name),
                    Some(p.1),
                    sync.bandwidth_kbps,
                    "Kbps",
                ),
                Row::new(
                    format!("{} + multi-bit ({data_sets} sets)", spec.name),
                    Some(p.2),
                    multi.bandwidth_kbps,
                    "Kbps",
                ),
                Row::new(
                    format!("{} + all {} SMs", spec.name, spec.num_sms),
                    Some(p.3),
                    full.bandwidth_kbps,
                    "Kbps",
                ),
            ]
        })
        .into_iter()
        .flatten()
        .collect()
}

/// Section 7.1 text: multi-bit speedup vs bit-count on Kepler
/// ("by sending 2 bits, 4 bits and 6 bits concurrently, we are able to
/// achieve 1.8x, 2.9x and 3.8x bandwidth improvement").
pub fn table2_multibit_scaling(bits: usize) -> Vec<Row> {
    let spec = presets::tesla_k40c();
    let m = msg(bits);
    let single = SyncChannel::new(spec.clone()).transmit(&m).expect("single").bandwidth_kbps;
    let paper = [(2u32, 1.8), (4, 2.9), (6, 3.8)];
    paper
        .into_iter()
        .map(|(sets, p)| {
            let bw = SyncChannel::new(spec.clone())
                .with_data_sets(sets)
                .expect("config")
                .transmit(&m)
                .expect("multibit")
                .bandwidth_kbps;
            Row::new(format!("Kepler {sets}-bit speedup"), Some(p), bw / single, "x")
        })
        .collect()
}

/// Table 3: the SFU channel across its parallelization stages.
pub fn table3(bits: usize) -> Vec<Row> {
    let m = msg(bits);
    let paper = [(21.0, 28.0, 380.0), (24.0, 84.0, 1200.0), (28.0, 100.0, 1300.0)];
    let specs = presets::paper_trio();
    TrialRunner::new()
        .map(&specs, |t, spec| {
            let p = paper[t.index];
            let baseline = SfuChannel::new(spec.clone()).transmit(&m).expect("baseline");
            let sched = ParallelSfuChannel::new(spec.clone()).transmit(&m).expect("sched-parallel");
            let full = ParallelSfuChannel::new(spec.clone())
                .with_parallel_sms(spec.num_sms)
                .expect("config")
                .transmit(&m)
                .expect("full");
            for o in [&baseline, &sched, &full] {
                assert_eq!(o.ber, 0.0, "{}: Table 3 channels are error-free", spec.name);
            }
            vec![
                Row::new(
                    format!("{} SFU baseline", spec.name),
                    Some(p.0),
                    baseline.bandwidth_kbps,
                    "Kbps",
                ),
                Row::new(
                    format!("{} x warp schedulers", spec.name),
                    Some(p.1),
                    sched.bandwidth_kbps,
                    "Kbps",
                ),
                Row::new(
                    format!("{} x schedulers x SMs", spec.name),
                    Some(p.2),
                    full.bandwidth_kbps,
                    "Kbps",
                ),
            ]
        })
        .into_iter()
        .flatten()
        .collect()
}

/// Section 7 text: the combined L1+SFU two-resource channel
/// ("achieving 56 Kbps bandwidth for Kepler and Maxwell GPUs").
pub fn combined_rows(bits: usize) -> Vec<Row> {
    let m = msg(bits);
    [(presets::tesla_k40c(), 56.0), (presets::quadro_m4000(), 56.0)]
        .into_iter()
        .map(|(spec, p)| {
            let o = CombinedChannel::new(spec.clone()).transmit(&m).expect("combined");
            assert_eq!(o.ber, 0.0);
            Row::new(format!("{} combined L1+SFU", spec.name), Some(p), o.bandwidth_kbps, "Kbps")
        })
        .collect()
}

/// One point of the fault sweep: BER and goodput of the synchronized L1
/// channel at one fault intensity, for each robustness layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSweepPoint {
    /// Fault intensity (fraction of fault windows whose burst fires).
    pub intensity: f64,
    /// Bit error rate of the raw (unframed) channel.
    pub raw_ber: f64,
    /// BER after Hamming(7,4) FEC over the whole message (no framing).
    pub fec_ber: f64,
    /// Residual BER after CRC-8 framing + selective-repeat ARQ.
    pub arq_ber: f64,
    /// Goodput (correct payload bits per second) of the raw channel, Kbps.
    pub raw_goodput_kbps: f64,
    /// Goodput of the FEC-coded transmission, Kbps.
    pub fec_goodput_kbps: f64,
    /// Goodput of the ARQ transmission over all its rounds, Kbps.
    pub arq_goodput_kbps: f64,
}

/// The deterministic cache-fault plan the fault sweep scales: eviction
/// bursts + phantom-workload storms on the sync channel's first data set,
/// with the burst period sized so errors cluster within single frames
/// (the regime ARQ is built for).
pub fn fault_sweep_plan(intensity: f64) -> gpgpu_sim::FaultPlan {
    gpgpu_sim::FaultPlan::new(0xFA_0175)
        .with_intensity(intensity)
        .with_period(900_000)
        .with_burst(280_000)
        .with_target_set(2)
        .with_kinds(gpgpu_sim::FaultKinds::cache())
}

/// Fault sweep (Figure-5-style robustness curves): BER and goodput of the
/// synchronized L1 channel vs fault intensity — raw, Hamming-FEC-coded, and
/// CRC/ARQ-framed. Each intensity is an independent deterministic trial
/// fanned across the harness.
pub fn fault_sweep(bits: usize, intensities: &[f64]) -> Vec<FaultSweepPoint> {
    fault_sweep_with(bits, intensities, fault_sweep_plan(1.0))
}

/// As [`fault_sweep`], but scaling a caller-supplied base plan instead of
/// [`fault_sweep_plan`]: each point reuses the base plan's seed, timing, and
/// fault kinds with only the intensity overridden. This is what the CLI's
/// `faults --faults <spec>` path drives.
pub fn fault_sweep_with(
    bits: usize,
    intensities: &[f64],
    base: gpgpu_sim::FaultPlan,
) -> Vec<FaultSweepPoint> {
    fault_sweep_defended(bits, intensities, base, gpgpu_sim::DeviceTuning::none())
}

/// As [`fault_sweep_with`], additionally running every channel under a
/// deployed defense (a [`gpgpu_sim::DeviceTuning`], typically lowered from
/// a `DefenseSpec`). This is what the CLI's `faults --defense <spec>` path
/// drives: it shows how much of the storm-repair machinery survives once
/// the *defender* also acts.
pub fn fault_sweep_defended(
    bits: usize,
    intensities: &[f64],
    base: gpgpu_sim::FaultPlan,
    tuning: gpgpu_sim::DeviceTuning,
) -> Vec<FaultSweepPoint> {
    let m = msg(bits);
    let spec = presets::tesla_k40c();
    TrialRunner::new().map(intensities, |_, &intensity| {
        let plan = base.with_intensity(intensity);
        let goodput =
            |useful_bits: f64, cycles: u64| spec.bandwidth_kbps(1, cycles.max(1)) * useful_bits;

        let raw = SyncChannel::new(spec.clone())
            .with_tuning(tuning)
            .with_faults(plan)
            .transmit(&m)
            .expect("raw transmits");

        let coded = hamming_encode(&m);
        let fec_run = SyncChannel::new(spec.clone())
            .with_tuning(tuning)
            .with_faults(plan)
            .transmit(&coded)
            .expect("fec transmits");
        let fec_ber = m.bit_error_rate(&hamming_decode(&fec_run.received));

        let mut pipe = SyncPipe::new(SyncChannel::new(spec.clone()).with_tuning(tuning), plan);
        let cfg = ArqConfig { max_rounds: 24, ..ArqConfig::default() };
        let (arq_received, arq_report) = arq_transmit(&mut pipe, &m, &cfg).expect("arq transmits");
        let arq_ber = m.bit_error_rate(&arq_received);

        let n = m.len() as f64;
        FaultSweepPoint {
            intensity,
            raw_ber: raw.ber,
            fec_ber,
            arq_ber,
            raw_goodput_kbps: goodput(n * (1.0 - raw.ber), raw.cycles),
            fec_goodput_kbps: goodput(n * (1.0 - fec_ber), fec_run.cycles),
            arq_goodput_kbps: goodput(n * (1.0 - arq_ber), arq_report.cycles),
        }
    })
}

/// One point of the robustness sweep: the static-threshold control arm vs
/// the adaptive link layer at one combined noise + fault intensity.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessSweepPoint {
    /// Combined intensity: scales both the fault plan and the
    /// constant-cache-hog co-runner (0 = clean device).
    pub intensity: f64,
    /// BER of the static arm (thresholds pinned, ladder disabled).
    pub static_ber: f64,
    /// BER after the adaptive escalation ladder.
    pub adaptive_ber: f64,
    /// Whether the static arm CRC-validated every frame.
    pub static_delivered: bool,
    /// Whether the adaptive link delivered.
    pub adaptive_delivered: bool,
    /// Goodput of the static arm's (single) attempt, Kbps.
    pub static_goodput_kbps: f64,
    /// Goodput of the attempt the adaptive link settled on, Kbps
    /// (escalation overhead shows up in `adaptive_stages`, not here).
    pub adaptive_goodput_kbps: f64,
    /// Ladder rungs the adaptive link fired (1 = static sufficed).
    pub adaptive_stages: usize,
    /// Channel family the adaptive link settled on.
    pub adaptive_family: &'static str,
}

/// Robustness sweep: static-threshold vs adaptive-link BER and goodput as a
/// fault storm ([`fault_sweep_plan`]) and a constant-cache-hog co-runner
/// ramp up together. Each intensity is an independent deterministic trial
/// fanned across the harness.
pub fn robustness_sweep(bits: usize, intensities: &[f64]) -> Vec<RobustnessSweepPoint> {
    let m = msg(bits);
    let spec = presets::tesla_k40c();
    TrialRunner::new().map(intensities, |_, &intensity| {
        let mut env = LinkEnvironment::clean();
        if intensity > 0.0 {
            let noise_iters = ((40.0 + 30.0 * bits as f64) * intensity).ceil() as u64;
            env = env
                .with_faults(fault_sweep_plan(intensity))
                .with_noise(vec![NoiseKind::ConstantCacheHog], noise_iters);
        }
        let link = AdaptiveLink::new(spec.clone()).with_env(env);
        let s = link.transmit_static(&m).expect("static arm transmits");
        let a = link.transmit(&m).expect("adaptive link transmits");
        let goodput = |ber: f64, cycles: u64| {
            spec.bandwidth_kbps(1, cycles.max(1)) * m.len() as f64 * (1.0 - ber)
        };
        RobustnessSweepPoint {
            intensity,
            static_ber: s.diagnostic.ber,
            adaptive_ber: a.diagnostic.ber,
            static_delivered: s.diagnostic.delivered,
            adaptive_delivered: a.diagnostic.delivered,
            static_goodput_kbps: goodput(s.diagnostic.ber, s.report.cycles),
            adaptive_goodput_kbps: goodput(a.diagnostic.ber, a.report.cycles),
            adaptive_stages: a.diagnostic.stages.len(),
            adaptive_family: a.diagnostic.final_family.label(),
        }
    })
}

/// Section 3: the reverse-engineering verdicts per device.
pub fn sec3_summary() -> String {
    let mut out = String::new();
    for spec in presets::all() {
        let b = colocation::reverse_engineer_block_scheduler(&spec).expect("probe runs");
        let w = colocation::reverse_engineer_warp_scheduler(&spec).expect("probe runs");
        out.push_str(&format!(
            "{}: leftover policy = {} (RR {}, leftover {}, queues {}); warp RR over {} schedulers (inferred {})\n",
            spec.name,
            b.is_leftover_policy(),
            b.round_robin,
            b.leftover_colocation,
            b.queues_when_full,
            spec.sm.num_warp_schedulers,
            w.inferred_num_schedulers,
        ));
    }
    out
}

/// Section 8: BER of the synchronized L1 channel under constant-cache
/// noise, with and without exclusive co-location, on all devices.
pub fn sec8(bits: usize) -> Vec<Row> {
    let m = msg(bits);
    let mut rows = Vec::new();
    for spec in presets::all() {
        let open = run_sync_with_noise(&spec, &m, &[NoiseKind::ConstantCacheHog], false)
            .expect("noise run");
        rows.push(Row::new(
            format!("{} BER under cache noise, no defense", spec.name),
            None,
            open.outcome.ber * 100.0,
            "%",
        ));
        let defended = run_sync_with_noise(&spec, &m, &NoiseKind::ALL, true).expect("noise run");
        rows.push(Row::new(
            format!("{} BER under noise mixture, exclusive", spec.name),
            Some(0.0),
            defended.outcome.ber * 100.0,
            "%",
        ));
    }
    rows
}

/// One point of the NVLink bandwidth-vs-symbol-time curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvlinkSweepPoint {
    /// Minimum symbol time in cycles (the pacing knob).
    pub window_cycles: u64,
    /// Achieved bandwidth, Kbps.
    pub bandwidth_kbps: f64,
    /// Bit error rate at this operating point.
    pub ber: f64,
    /// Total simulated cycles of the transmission.
    pub cycles: u64,
}

/// NVLink bandwidth vs symbol time over a dual-Kepler topology (the
/// NVBleed-style curve): stretching the probe window trades bandwidth for
/// noise immunity exactly like the intra-GPU channels. Each window is an
/// independent deterministic trial fanned across the harness.
pub fn nvlink_bandwidth_sweep(bits: usize, windows: &[u64]) -> Vec<NvlinkSweepPoint> {
    let m = msg(bits);
    TrialRunner::new().map(windows, |_, &w| {
        let o = NvlinkChannel::new(TopologySpec::dual("kepler").expect("dual topology"))
            .expect("channel builds")
            .with_window(w)
            .transmit(&m)
            .expect("nvlink transmits");
        NvlinkSweepPoint {
            window_cycles: w,
            bandwidth_kbps: o.bandwidth_kbps,
            ber: o.ber,
            cycles: o.cycles,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig02_series_covers_the_l1_staircase() {
        let series = fig02();
        assert!(series.len() > 30);
        assert!(series.first().unwrap().1 < 55.0);
        assert!(series.last().unwrap().1 > 100.0);
    }

    #[test]
    fn table1_rows_all_match_exactly() {
        for row in table1() {
            assert_eq!(row.ratio().unwrap_or(1.0), 1.0, "{row:?}");
        }
    }

    #[test]
    fn fig06_base_latencies_match_paper() {
        for row in fig06_base_latency_rows() {
            assert_eq!(row.ratio(), Some(1.0), "{row:?}");
        }
    }

    #[test]
    fn fault_sweep_arq_repairs_the_storm() {
        let pts = fault_sweep(96, &[0.0, 1.0]);
        assert_eq!(pts.len(), 2);
        let (clean, storm) = (&pts[0], &pts[1]);
        assert_eq!(clean.raw_ber, 0.0, "no faults, no errors");
        assert!(storm.raw_ber > clean.raw_ber, "the storm must corrupt the raw channel");
        assert_eq!(storm.arq_ber, 0.0, "ARQ must fully repair the storm");
        assert!(
            storm.arq_goodput_kbps < clean.arq_goodput_kbps,
            "retransmissions cost goodput: {} vs {}",
            storm.arq_goodput_kbps,
            clean.arq_goodput_kbps
        );
    }

    #[test]
    fn nvlink_sweep_trades_bandwidth_for_symbol_time() {
        let pts = nvlink_bandwidth_sweep(16, &[2_048, 16_384]);
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.ber == 0.0), "clean link is error-free: {pts:?}");
        assert!(pts[1].bandwidth_kbps < pts[0].bandwidth_kbps, "{pts:?}");
    }

    #[test]
    fn sec3_reports_leftover_policy_everywhere() {
        let s = sec3_summary();
        assert_eq!(s.matches("leftover policy = true").count(), presets::all().len(), "{s}");
    }
}
