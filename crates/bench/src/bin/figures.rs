//! Prints every table and figure of the paper's evaluation, measured on the
//! simulator, with the paper's published values beside ours.
//!
//! ```text
//! cargo run --release -p gpgpu-bench --bin figures
//! ```

use gpgpu_bench::data;
use gpgpu_bench::report::{count_steps, render_rows, render_series};
use gpgpu_covert::cache_channel::{L1Channel, L2Channel};
use gpgpu_spec::{presets, FuOpKind};

fn main() {
    println!(
        "{}",
        render_series(
            "Figure 2: Kepler constant L1, stride 64 B",
            "bytes",
            "cycles",
            &data::fig02()
        )
    );
    let f2 = data::fig02();
    println!("  steps counted: {} (paper: 8 sets)\n", count_steps(&f2, 3.0));

    println!(
        "{}",
        render_series("Figure 3: constant L2, stride 256 B", "bytes", "cycles", &data::fig03())
    );
    let f3 = data::fig03();
    println!("  steps counted: {} (paper: 16 sets)\n", count_steps(&f3, 3.0));

    println!("{}", render_rows("Figure 4: cache channel bandwidth", &data::fig04(96)));

    println!("== Figure 5: error rate vs bandwidth (iterations sweep) ==");
    for (name, ch) in [
        ("Kepler L1", L1Channel::new(presets::tesla_k40c())),
        ("Kepler L2", L2Channel::new(presets::tesla_k40c())),
        ("Maxwell L1", L1Channel::new(presets::quadro_m4000())),
        ("Maxwell L2", L2Channel::new(presets::quadro_m4000())),
    ] {
        let pts = data::fig05(ch, 64, &[20, 12, 8, 4, 2, 1]);
        print!("  {name:<12}");
        for (bw, ber) in pts {
            print!("  {bw:.0}Kbps/{:.0}%", ber * 100.0);
        }
        println!();
    }
    println!();

    println!("== Figure 6: single-precision op latency vs warps ==");
    for spec in presets::all() {
        for op in [FuOpKind::SpSinf, FuOpKind::SpSqrt, FuOpKind::SpAdd, FuOpKind::SpMul] {
            let curve = data::fu_curve(&spec, op, 32);
            let pick = |w: usize| curve[w - 1].1;
            println!(
                "  {:<14} {:<12} 1w {:>6.1}  8w {:>6.1}  16w {:>6.1}  24w {:>6.1}  32w {:>6.1}",
                spec.name,
                op.to_string(),
                pick(1),
                pick(8),
                pick(16),
                pick(24),
                pick(32)
            );
        }
    }
    println!(
        "{}",
        render_rows("Figure 6 spot check: __sinf base latency", &data::fig06_base_latency_rows())
    );

    println!("== Figure 7: double-precision op latency vs warps (no DPUs on Maxwell) ==");
    for spec in [presets::tesla_c2075(), presets::tesla_k40c()] {
        for op in [FuOpKind::DpAdd, FuOpKind::DpMul] {
            let curve = data::fu_curve(&spec, op, 32);
            let pick = |w: usize| curve[w - 1].1;
            println!(
                "  {:<14} {:<12} 1w {:>6.1}  8w {:>6.1}  16w {:>6.1}  32w {:>6.1}",
                spec.name,
                op.to_string(),
                pick(1),
                pick(8),
                pick(16),
                pick(32)
            );
        }
    }
    println!();

    println!("{}", render_rows("Table 1: per-SM resources", &data::table1()));
    println!("{}", render_rows("Figure 10: atomic channel bandwidth", &data::fig10(48)));
    println!("{}", render_rows("Table 2: improved L1 channels", &data::table2(240)));
    println!(
        "{}",
        render_rows("Section 7: multi-bit scaling (Kepler)", &data::table2_multibit_scaling(240))
    );
    println!("{}", render_rows("Table 3: improved SFU channels", &data::table3(240)));
    println!(
        "{}",
        render_rows("Section 7: combined two-resource channel", &data::combined_rows(48))
    );

    println!("== Section 3: scheduler reverse engineering ==");
    print!("{}", data::sec3_summary());
    println!();

    println!("{}", render_rows("Section 8: noise and exclusive co-location", &data::sec8(48)));

    println!("== Engine counters (Figure 4 workload, all GPUs) ==");
    println!("  {}", data::engine_stats(96));
}
