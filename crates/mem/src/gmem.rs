//! Plain global-memory load/store timing.
//!
//! The paper found that ordinary loads and stores could *not* produce a
//! reliable covert channel ("we did not observe reliable contention in the
//! global memory... due to the high memory bandwidth"); this model exists so
//! that (a) that negative result is reproducible, and (b) noise workloads
//! can generate realistic memory traffic.

use crate::coalesce::coalesce_into;
use crate::ports::PortSet;
use gpgpu_spec::MemorySpec;

/// Detailed outcome of one warp-level global access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GmemAccess {
    /// Cycle the access completes for warp timing (data arrival for loads,
    /// issue completion for stores).
    pub completes_at: u64,
    /// Total cycles the access's transactions queued on the bandwidth pipe
    /// — 0 when the pipe was free.
    pub queue_cycles: u64,
    /// Number of coalesced transactions the access produced.
    pub transactions: u64,
}

/// Timing model for global loads and stores: transactions contend on an
/// aggregate `transactions_per_cycle` pipe, then pay the DRAM latency.
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    pipe: PortSet,
    load_latency: u64,
    segment: u64,
    /// Reusable coalescing buffer so the per-instruction path is
    /// allocation-free after the first access.
    scratch: Vec<u64>,
}

impl GlobalMemory {
    /// Builds the model from a device memory spec.
    pub fn new(mem: &MemorySpec) -> Self {
        GlobalMemory {
            pipe: PortSet::new(mem.transactions_per_cycle),
            load_latency: mem.global_load_latency,
            segment: mem.coalesce_segment,
            scratch: Vec::with_capacity(32),
        }
    }

    /// Issues a warp-level load for `lane_addrs` at `now`; returns the cycle
    /// the warp's data is complete (last transaction + DRAM latency).
    pub fn load<I>(&mut self, lane_addrs: I, now: u64) -> u64
    where
        I: IntoIterator<Item = u64>,
    {
        self.load_detailed(lane_addrs, now).completes_at
    }

    /// As [`GlobalMemory::load`], additionally reporting pipe queueing and
    /// the transaction count for tracing.
    pub fn load_detailed<I>(&mut self, lane_addrs: I, now: u64) -> GmemAccess
    where
        I: IntoIterator<Item = u64>,
    {
        let (last_start, queue_cycles, transactions) = self.issue(lane_addrs, now);
        GmemAccess { completes_at: last_start + self.load_latency, queue_cycles, transactions }
    }

    /// Issues a warp-level store at `now`; returns the cycle the *issue*
    /// completes (stores are fire-and-forget for warp timing, but still
    /// consume pipe bandwidth and so can slow other traffic).
    pub fn store<I>(&mut self, lane_addrs: I, now: u64) -> u64
    where
        I: IntoIterator<Item = u64>,
    {
        self.store_detailed(lane_addrs, now).completes_at
    }

    /// As [`GlobalMemory::store`], additionally reporting pipe queueing and
    /// the transaction count for tracing.
    pub fn store_detailed<I>(&mut self, lane_addrs: I, now: u64) -> GmemAccess
    where
        I: IntoIterator<Item = u64>,
    {
        let (last_start, queue_cycles, transactions) = self.issue(lane_addrs, now);
        GmemAccess { completes_at: last_start + 1, queue_cycles, transactions }
    }

    /// Pushes the access's coalesced transactions through the pipe;
    /// returns `(last transaction start, summed queueing, transactions)`.
    fn issue<I>(&mut self, lane_addrs: I, now: u64) -> (u64, u64, u64)
    where
        I: IntoIterator<Item = u64>,
    {
        let mut segments = std::mem::take(&mut self.scratch);
        coalesce_into(lane_addrs, self.segment, &mut segments);
        let mut last_start = now;
        let mut queue_cycles = 0;
        for _seg in &segments {
            last_start = self.pipe.acquire(now, 1);
            queue_cycles += last_start - now;
        }
        let transactions = segments.len() as u64;
        self.scratch = segments;
        (last_start, queue_cycles, transactions)
    }

    /// Number of coalesced transactions a warp access to `lane_addrs`
    /// produces (exposed so the SM can model LD/ST instruction replay:
    /// un-coalesced accesses re-issue once per transaction). Takes `&mut
    /// self` only for the internal coalescing scratch buffer; no timing
    /// state changes.
    pub fn transactions<I>(&mut self, lane_addrs: I) -> u64
    where
        I: IntoIterator<Item = u64>,
    {
        coalesce_into(lane_addrs, self.segment, &mut self.scratch);
        self.scratch.len() as u64
    }

    /// Frees the transaction pipe.
    pub fn reset(&mut self) {
        self.pipe.reset();
    }

    /// Overwrites this model's pipe occupancy with `other`'s without
    /// reallocating — the snapshot-restore path.
    ///
    /// # Panics
    ///
    /// Panics if the two models have different pipe widths.
    pub fn copy_state_from(&mut self, other: &Self) {
        self.pipe.copy_state_from(&other.pipe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySpec {
        MemorySpec {
            global_load_latency: 450,
            const_mem_latency: 250,
            atomic_base_latency: 180,
            atomic_service_cycles: 1,
            atomic_uncoalesced_penalty: 9,
            atomic_units: 8,
            coalesce_segment: 128,
            transactions_per_cycle: 4,
        }
    }

    #[test]
    fn coalesced_load_latency_is_dram_latency() {
        let mut g = GlobalMemory::new(&mem());
        let done = g.load((0..32u64).map(|i| i * 4), 0);
        assert_eq!(done, 450);
    }

    #[test]
    fn uncoalesced_load_queues_transactions() {
        let mut g = GlobalMemory::new(&mem());
        // 32 transactions / 4 per cycle: last starts at cycle 7.
        let done = g.load((0..32u64).map(|i| i * 128), 0);
        assert_eq!(done, 7 + 450);
    }

    #[test]
    fn stores_complete_at_issue() {
        let mut g = GlobalMemory::new(&mem());
        let done = g.store((0..32u64).map(|i| i * 4), 10);
        assert_eq!(done, 11);
    }

    #[test]
    fn detailed_load_reports_queueing() {
        let mut g = GlobalMemory::new(&mem());
        // 32 transactions on a 4/cycle pipe: starts 0,0,0,0,1,1,1,1,...,7.
        let d = g.load_detailed((0..32u64).map(|i| i * 128), 0);
        assert_eq!(d.transactions, 32);
        assert_eq!(d.queue_cycles, (0..8u64).map(|c| c * 4).sum::<u64>());
        assert_eq!(d.completes_at, 7 + 450);
        // Fully coalesced store: one transaction, no queueing left at t=100.
        let mut g = GlobalMemory::new(&mem());
        let d = g.store_detailed((0..32u64).map(|i| i * 4), 100);
        assert_eq!(d.transactions, 1);
        assert_eq!(d.queue_cycles, 0);
        assert_eq!(d.completes_at, 101);
    }

    #[test]
    fn bandwidth_contention_is_mild() {
        // The reason plain loads make a poor channel: even heavy competing
        // traffic shifts the observed latency by only a few cycles.
        let mut g = GlobalMemory::new(&mem());
        let alone = g.load((0..32u64).map(|i| i * 4), 0);
        g.reset();
        for w in 0..8 {
            g.load((0..32u64).map(|i| w * 4096 + i * 4), 0);
        }
        let contended = g.load((0..32u64).map(|i| (1 << 20) | (i * 4)), 0);
        let delta = contended - alone;
        assert!(delta <= 8, "load contention should be small, got {delta}");
    }
}
