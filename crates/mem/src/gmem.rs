//! Plain global-memory load/store timing.
//!
//! The paper found that ordinary loads and stores could *not* produce a
//! reliable covert channel ("we did not observe reliable contention in the
//! global memory... due to the high memory bandwidth"); this model exists so
//! that (a) that negative result is reproducible, and (b) noise workloads
//! can generate realistic memory traffic.

use crate::coalesce::coalesce;
use crate::ports::PortSet;
use gpgpu_spec::MemorySpec;

/// Timing model for global loads and stores: transactions contend on an
/// aggregate `transactions_per_cycle` pipe, then pay the DRAM latency.
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    pipe: PortSet,
    load_latency: u64,
    segment: u64,
}

impl GlobalMemory {
    /// Builds the model from a device memory spec.
    pub fn new(mem: &MemorySpec) -> Self {
        GlobalMemory {
            pipe: PortSet::new(mem.transactions_per_cycle),
            load_latency: mem.global_load_latency,
            segment: mem.coalesce_segment,
        }
    }

    /// Issues a warp-level load for `lane_addrs` at `now`; returns the cycle
    /// the warp's data is complete (last transaction + DRAM latency).
    pub fn load<I>(&mut self, lane_addrs: I, now: u64) -> u64
    where
        I: IntoIterator<Item = u64>,
    {
        let mut last_start = now;
        for _seg in coalesce(lane_addrs, self.segment) {
            last_start = self.pipe.acquire(now, 1);
        }
        last_start + self.load_latency
    }

    /// Issues a warp-level store at `now`; returns the cycle the *issue*
    /// completes (stores are fire-and-forget for warp timing, but still
    /// consume pipe bandwidth and so can slow other traffic).
    pub fn store<I>(&mut self, lane_addrs: I, now: u64) -> u64
    where
        I: IntoIterator<Item = u64>,
    {
        let mut last_start = now;
        for _seg in coalesce(lane_addrs, self.segment) {
            last_start = self.pipe.acquire(now, 1);
        }
        last_start + 1
    }

    /// Number of coalesced transactions a warp access to `lane_addrs`
    /// produces (exposed so the SM can model LD/ST instruction replay:
    /// un-coalesced accesses re-issue once per transaction).
    pub fn transactions<I>(&self, lane_addrs: I) -> u64
    where
        I: IntoIterator<Item = u64>,
    {
        coalesce(lane_addrs, self.segment).len() as u64
    }

    /// Frees the transaction pipe.
    pub fn reset(&mut self) {
        self.pipe.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySpec {
        MemorySpec {
            global_load_latency: 450,
            const_mem_latency: 250,
            atomic_base_latency: 180,
            atomic_service_cycles: 1,
            atomic_uncoalesced_penalty: 9,
            atomic_units: 8,
            coalesce_segment: 128,
            transactions_per_cycle: 4,
        }
    }

    #[test]
    fn coalesced_load_latency_is_dram_latency() {
        let mut g = GlobalMemory::new(&mem());
        let done = g.load((0..32u64).map(|i| i * 4), 0);
        assert_eq!(done, 450);
    }

    #[test]
    fn uncoalesced_load_queues_transactions() {
        let mut g = GlobalMemory::new(&mem());
        // 32 transactions / 4 per cycle: last starts at cycle 7.
        let done = g.load((0..32u64).map(|i| i * 128), 0);
        assert_eq!(done, 7 + 450);
    }

    #[test]
    fn stores_complete_at_issue() {
        let mut g = GlobalMemory::new(&mem());
        let done = g.store((0..32u64).map(|i| i * 4), 10);
        assert_eq!(done, 11);
    }

    #[test]
    fn bandwidth_contention_is_mild() {
        // The reason plain loads make a poor channel: even heavy competing
        // traffic shifts the observed latency by only a few cycles.
        let mut g = GlobalMemory::new(&mem());
        let alone = g.load((0..32u64).map(|i| i * 4), 0);
        g.reset();
        for w in 0..8 {
            g.load((0..32u64).map(|i| w * 4096 + i * 4), 0);
        }
        let contended = g.load((0..32u64).map(|i| (1 << 20) | (i * 4)), 0);
        let delta = contended - alone;
        assert!(delta <= 8, "load contention should be small, got {delta}");
    }
}
