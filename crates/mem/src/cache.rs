//! LRU set-associative cache state.

use gpgpu_spec::CacheGeometry;

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line (and, in a sectored cache, the accessed sector) was present.
    Hit,
    /// The line was absent and has been filled (evicting LRU if needed). In
    /// a sectored cache the fill validates only the accessed sector.
    Miss,
    /// Sectored caches only: the line's tag was present but the accessed
    /// sector had not been filled yet. The sector is fetched from the next
    /// level — same latency class as a miss — but no line is allocated and
    /// nothing is evicted, which is exactly why sectoring shrinks a
    /// prime+probe footprint: a partial fill no longer displaces a whole
    /// victim line. Never produced by unsectored geometries.
    SectorMiss,
}

/// An eviction performed by a fill: who filled and whose line was lost.
/// Unlike the cross-domain counters, this reports *every* eviction —
/// same-domain self-conflicts included — so a trace shows the full set
/// pressure, not only the adversarial part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Security domain that owned the evicted line.
    pub victim_domain: u32,
    /// Security domain performing the fill.
    pub evictor_domain: u32,
}

/// Detailed result of a cache access: the hit/miss outcome plus the
/// eviction the fill caused, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetAccess {
    /// Hit or miss.
    pub outcome: AccessOutcome,
    /// The eviction a miss-fill performed (`None` on hits and on fills
    /// into a non-full set).
    pub eviction: Option<Eviction>,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    /// Generation (internal access counter) at last touch; the LRU victim is
    /// the line with the smallest generation. Strictly monotonic, so recency
    /// order is total — no tie-breaking ambiguity between same-cycle
    /// accesses arriving through different ports.
    generation: u64,
    /// Security domain (kernel) that filled the line; used for contention
    /// anomaly detection (CC-Hunter-style, paper Section 9).
    domain: u32,
    /// Bitmask of valid sectors (bit `i` = sector `i` filled). Geometry
    /// validation caps sectors-per-line at 8, so `u8` always suffices; an
    /// unsectored line is born with the full mask set.
    sector_valid: u8,
}

/// An LRU set-associative cache tracking line presence (no data).
///
/// # Example
///
/// ```
/// use gpgpu_mem::{SetAssocCache, AccessOutcome};
/// use gpgpu_spec::CacheGeometry;
///
/// let mut c = SetAssocCache::new(CacheGeometry::new(2048, 64, 4).unwrap());
/// assert_eq!(c.access(0x100), AccessOutcome::Miss);
/// assert_eq!(c.access(0x100), AccessOutcome::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    sets: Vec<Vec<Line>>,
    /// Monotonic access counter driving generation-counter LRU; bumped on
    /// every access so recency updates are a single store instead of a
    /// caller-supplied timestamp with possible ties.
    tick: u64,
    /// Last cross-domain eviction pair `(evictor, victim)` per set.
    last_cross_evict: Vec<Option<(u32, u32)>>,
    /// Total evictions where the evictor's domain differed from the
    /// victim's.
    cross_domain_evictions: u64,
    /// Cross-domain evictions that *reversed* the previous pair in the same
    /// set (A evicts B, then B evicts A) — the oscillation signature a
    /// CC-Hunter-style detector alarms on (paper Section 9: "attempt to
    /// detect anomalous contention").
    eviction_alternations: u64,
    /// Line allocations (tag fills). One per [`AccessOutcome::Miss`].
    line_fills: u64,
    /// Sector fetches from the next level: one per [`AccessOutcome::Miss`]
    /// (a new line validates only the accessed sector) plus one per
    /// [`AccessOutcome::SectorMiss`]. Because a sector fills at most once
    /// per line lifetime, `sector_fills * sector_bytes <=
    /// line_fills * line_bytes` holds for every access pattern (asserted by
    /// `tests/prop_subcore.rs`), with equality for unsectored geometries.
    sector_fills: u64,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = vec![Vec::with_capacity(geometry.ways() as usize); geometry.num_sets() as usize];
        let last_cross_evict = vec![None; geometry.num_sets() as usize];
        SetAssocCache {
            geometry,
            sets,
            tick: 0,
            last_cross_evict,
            cross_domain_evictions: 0,
            eviction_alternations: 0,
            line_fills: 0,
            sector_fills: 0,
        }
    }

    /// Total evictions where evictor and victim belonged to different
    /// domains.
    pub fn cross_domain_evictions(&self) -> u64 {
        self.cross_domain_evictions
    }

    /// Cross-domain evictions that ping-ponged (A evicts B then B evicts A
    /// in the same set) — near zero for benign sharing, large for
    /// prime+probe signalling.
    pub fn eviction_alternations(&self) -> u64 {
        self.eviction_alternations
    }

    /// Line allocations performed so far (one per [`AccessOutcome::Miss`]).
    pub fn line_fills(&self) -> u64 {
        self.line_fills
    }

    /// Sector fetches performed so far (one per miss plus one per
    /// [`AccessOutcome::SectorMiss`]); equals [`SetAssocCache::line_fills`]
    /// on unsectored geometries.
    pub fn sector_fills(&self) -> u64 {
        self.sector_fills
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Accesses `addr`: returns [`AccessOutcome::Hit`] if present, otherwise
    /// fills the line (evicting the least-recently-used way if the set is
    /// full) and returns [`AccessOutcome::Miss`]. Recency is tracked by an
    /// internal generation counter, so callers no longer supply timestamps.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        let set_idx = self.geometry.set_of_addr(addr);
        self.access_in_set(addr, set_idx, 0)
    }

    /// Accesses `addr` but indexes into an explicitly chosen set — the
    /// hook used by partitioned caches, which remap each security domain
    /// into its own region of sets (paper Section 9's spatial-partitioning
    /// mitigation). The tag is still the full line address; `domain` labels
    /// the accessor for contention accounting.
    ///
    /// # Panics
    ///
    /// Panics if `set_idx >= num_sets`.
    pub fn access_in_set(&mut self, addr: u64, set_idx: u64, domain: u32) -> AccessOutcome {
        self.access_in_set_detailed(addr, set_idx, domain).outcome
    }

    /// As [`SetAssocCache::access_in_set`], additionally reporting the
    /// eviction the fill performed (if any) so tracing can attribute set
    /// pressure to an evictor/victim domain pair.
    ///
    /// # Panics
    ///
    /// Panics if `set_idx >= num_sets`.
    pub fn access_in_set_detailed(&mut self, addr: u64, set_idx: u64, domain: u32) -> SetAccess {
        let tag = self.geometry.line_of_addr(addr);
        let sector_bit = 1u8 << self.geometry.sector_of_addr(addr);
        self.tick += 1;
        let generation = self.tick;
        let set = &mut self.sets[set_idx as usize];
        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.generation = generation;
            if line.sector_valid & sector_bit != 0 {
                return SetAccess { outcome: AccessOutcome::Hit, eviction: None };
            }
            // Tag present, sector not yet filled: fetch just the sector.
            // The line keeps its allocating domain — a partial fill is not
            // an eviction, so no contention accounting fires.
            line.sector_valid |= sector_bit;
            self.sector_fills += 1;
            return SetAccess { outcome: AccessOutcome::SectorMiss, eviction: None };
        }
        // A new line validates only the accessed sector; on an unsectored
        // geometry sector 0 *is* the whole line, so the mask is full and the
        // legacy behaviour is reproduced bit-for-bit.
        self.line_fills += 1;
        self.sector_fills += 1;
        let mut eviction = None;
        if set.len() < self.geometry.ways() as usize {
            set.push(Line { tag, generation, domain, sector_valid: sector_bit });
        } else {
            let victim =
                set.iter_mut().min_by_key(|l| l.generation).expect("full set is non-empty");
            eviction = Some(Eviction { victim_domain: victim.domain, evictor_domain: domain });
            if victim.domain != domain {
                self.cross_domain_evictions += 1;
                let pair = (domain, victim.domain);
                let reversed = (victim.domain, domain);
                if self.last_cross_evict[set_idx as usize] == Some(reversed) {
                    self.eviction_alternations += 1;
                }
                self.last_cross_evict[set_idx as usize] = Some(pair);
            }
            *victim = Line { tag, generation, domain, sector_valid: sector_bit };
        }
        SetAccess { outcome: AccessOutcome::Miss, eviction }
    }

    /// Non-mutating presence check (does not update LRU).
    pub fn probe(&self, addr: u64) -> bool {
        let set_idx = self.geometry.set_of_addr(addr) as usize;
        let tag = self.geometry.line_of_addr(addr);
        self.sets[set_idx].iter().any(|l| l.tag == tag)
    }

    /// Evicts the line containing `addr`, if present. Returns whether a line
    /// was evicted.
    pub fn evict(&mut self, addr: u64) -> bool {
        let set_idx = self.geometry.set_of_addr(addr) as usize;
        let tag = self.geometry.line_of_addr(addr);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|l| l.tag == tag) {
            set.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of valid lines in set `set_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `set_idx >= num_sets`.
    pub fn set_occupancy(&self, set_idx: u64) -> usize {
        self.sets[set_idx as usize].len()
    }

    /// Drops every line in set `set_idx`, returning how many were dropped —
    /// the primitive behind transient fault-injection invalidation bursts.
    /// Unlike evictions, invalidations are attributed to no domain and do
    /// not touch the contention counters.
    ///
    /// # Panics
    ///
    /// Panics if `set_idx >= num_sets`.
    pub fn clear_set(&mut self, set_idx: u64) -> usize {
        let set = &mut self.sets[set_idx as usize];
        let n = set.len();
        set.clear();
        n
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Returns the cache to its just-constructed state — lines, the LRU
    /// generation counter and the contention-detection counters all cleared —
    /// without releasing any allocation. [`SetAssocCache::flush`] only drops
    /// lines; a reused trial device also needs the tick and the CC-Hunter
    /// counters back at zero so a reset cache is observationally identical to
    /// a fresh one.
    pub fn reset_cold(&mut self) {
        self.flush();
        self.tick = 0;
        self.last_cross_evict.fill(None);
        self.cross_domain_evictions = 0;
        self.eviction_alternations = 0;
        self.line_fills = 0;
        self.sector_fills = 0;
    }

    /// Overwrites this cache's state (lines, tick, contention counters) with
    /// `other`'s, reusing this cache's allocations. Both caches must share a
    /// geometry; sets never exceed `ways` lines, so the per-set copies stay
    /// within the capacity reserved at construction and the copy is
    /// allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn copy_state_from(&mut self, other: &Self) {
        assert_eq!(self.geometry, other.geometry, "snapshot/device cache geometry mismatch");
        for (dst, src) in self.sets.iter_mut().zip(&other.sets) {
            dst.clear();
            dst.extend_from_slice(src);
        }
        self.tick = other.tick;
        self.last_cross_evict.copy_from_slice(&other.last_cross_evict);
        self.cross_domain_evictions = other.cross_domain_evictions;
        self.eviction_alternations = other.eviction_alternations;
        self.line_fills = other.line_fills;
        self.sector_fills = other.sector_fills;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> SetAssocCache {
        // 2 KB, 4-way, 64 B lines: 8 sets, same-set stride 512.
        SetAssocCache::new(CacheGeometry::new(2048, 64, 4).unwrap())
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache();
        assert_eq!(c.access(0), AccessOutcome::Miss);
        assert_eq!(c.access(0), AccessOutcome::Hit);
        assert_eq!(c.access(63), AccessOutcome::Hit); // same line
        assert_eq!(c.access(64), AccessOutcome::Miss); // next line
    }

    #[test]
    fn lru_eviction_within_one_set() {
        let mut c = cache();
        // Fill set 0 with 4 ways (stride 512).
        for i in 0..4u64 {
            assert_eq!(c.access(i * 512), AccessOutcome::Miss);
        }
        // Fifth distinct line in set 0 evicts the LRU (addr 0).
        assert_eq!(c.access(4 * 512), AccessOutcome::Miss);
        assert!(!c.probe(0));
        assert!(c.probe(512));
        // Re-access addr 0: miss again (the prime+probe signal).
        assert_eq!(c.access(0), AccessOutcome::Miss);
    }

    #[test]
    fn lru_respects_recency_updates() {
        let mut c = cache();
        for i in 0..4u64 {
            c.access(i * 512);
        }
        // Touch the oldest line to make it newest.
        assert_eq!(c.access(0), AccessOutcome::Hit);
        // New line now evicts addr 512 (the LRU), not addr 0.
        c.access(4 * 512);
        assert!(c.probe(0));
        assert!(!c.probe(512));
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = cache();
        for i in 0..16u64 {
            c.access(i * 512); // all in set 0
        }
        assert_eq!(c.set_occupancy(0), 4);
        assert_eq!(c.set_occupancy(1), 0);
        assert_eq!(c.access(64), AccessOutcome::Miss); // set 1 untouched before
        assert_eq!(c.access(64), AccessOutcome::Hit);
    }

    #[test]
    fn evict_and_flush() {
        let mut c = cache();
        c.access(128);
        assert!(c.evict(128));
        assert!(!c.evict(128));
        c.access(128);
        c.flush();
        assert!(!c.probe(128));
    }

    #[test]
    fn detailed_access_reports_every_eviction() {
        let mut c = cache();
        // Fill set 0 (4 ways) from domain 0: misses, but no evictions yet.
        for i in 0..4u64 {
            let a = c.access_in_set_detailed(i * 512, 0, 0);
            assert_eq!(a.outcome, AccessOutcome::Miss);
            assert_eq!(a.eviction, None);
        }
        // Hit reports no eviction.
        let a = c.access_in_set_detailed(0, 0, 0);
        assert_eq!(a.outcome, AccessOutcome::Hit);
        assert_eq!(a.eviction, None);
        // Domain 1 spills the set: cross-domain eviction reported.
        let a = c.access_in_set_detailed(4 * 512, 0, 1);
        assert_eq!(a.outcome, AccessOutcome::Miss);
        assert_eq!(a.eviction, Some(Eviction { victim_domain: 0, evictor_domain: 1 }));
        assert_eq!(c.cross_domain_evictions(), 1);
        // Domain 1 again: same-domain-adjacent fill still evicts a domain-0
        // line — detailed reporting includes it, the cross counter too.
        let a = c.access_in_set_detailed(5 * 512, 0, 1);
        assert_eq!(a.eviction, Some(Eviction { victim_domain: 0, evictor_domain: 1 }));
        // Self-conflict (domain 1 evicting domain 1) is reported in the
        // detail but not in the cross-domain counter.
        for i in 6..9u64 {
            c.access_in_set_detailed(i * 512, 0, 1);
        }
        let before = c.cross_domain_evictions();
        let a = c.access_in_set_detailed(9 * 512, 0, 1);
        assert_eq!(a.eviction, Some(Eviction { victim_domain: 1, evictor_domain: 1 }));
        assert_eq!(c.cross_domain_evictions(), before);
    }

    #[test]
    fn clear_set_drops_only_that_set() {
        let mut c = cache();
        c.access(0); // set 0
        c.access(512); // set 0
        c.access(64); // set 1
        assert_eq!(c.clear_set(0), 2);
        assert!(!c.probe(0));
        assert!(!c.probe(512));
        assert!(c.probe(64));
        assert_eq!(c.clear_set(0), 0);
        // Invalidation is not an eviction: no contention accounting.
        assert_eq!(c.cross_domain_evictions(), 0);
    }

    #[test]
    fn reset_cold_matches_a_fresh_cache() {
        let mut used = cache();
        // Accumulate lines, ticks and cross-domain contention history:
        // domain 0 fills the 4-way set, then domain 1 spills it.
        for i in 0..6u64 {
            used.access_in_set_detailed(i * 512, 0, (i / 4) as u32);
        }
        assert!(used.cross_domain_evictions() > 0);
        used.reset_cold();
        let mut fresh = cache();
        // Identical access sequences must now produce identical outcomes
        // and identical contention counters.
        for i in 0..6u64 {
            let a = used.access_in_set_detailed(i * 512, 0, (i / 4) as u32);
            let b = fresh.access_in_set_detailed(i * 512, 0, (i / 4) as u32);
            assert_eq!(a, b);
        }
        assert_eq!(used.cross_domain_evictions(), fresh.cross_domain_evictions());
        assert_eq!(used.eviction_alternations(), fresh.eviction_alternations());
    }

    #[test]
    fn copy_state_from_transplants_lines_and_counters() {
        let mut src = cache();
        for i in 0..6u64 {
            src.access_in_set_detailed(i * 512, 0, (i / 4) as u32);
        }
        let mut dst = cache();
        dst.access(0x7000); // dirty the destination first
        dst.copy_state_from(&src);
        // Subsequent identical accesses diverge identically.
        let a = src.access_in_set_detailed(6 * 512, 0, 0);
        let b = dst.access_in_set_detailed(6 * 512, 0, 0);
        assert_eq!(a, b);
        assert_eq!(src.cross_domain_evictions(), dst.cross_domain_evictions());
        assert!(!dst.probe(0x7000), "pre-copy destination lines are gone");
    }

    fn sectored_cache() -> SetAssocCache {
        // 2 KB, 4-way, 64 B lines, 32 B sectors: 8 sets, 2 sectors/line.
        SetAssocCache::new(CacheGeometry::new_sectored(2048, 64, 4, 32).unwrap())
    }

    #[test]
    fn sector_miss_fills_sector_without_evicting() {
        let mut c = sectored_cache();
        // First touch allocates the line, validating only sector 0.
        assert_eq!(c.access(0), AccessOutcome::Miss);
        assert_eq!(c.access(16), AccessOutcome::Hit); // same sector
                                                      // Sector 1 of the same line: tag hit, sector invalid.
        assert_eq!(c.access(32), AccessOutcome::SectorMiss);
        assert_eq!(c.access(32), AccessOutcome::Hit);
        assert_eq!(c.line_fills(), 1);
        assert_eq!(c.sector_fills(), 2);
        // A sector fill never evicts, even with the set full.
        for i in 1..4u64 {
            c.access(i * 512);
        }
        assert_eq!(c.set_occupancy(0), 4);
        let a = c.access_in_set_detailed(512 + 32, 0, 0);
        assert_eq!(a.outcome, AccessOutcome::SectorMiss);
        assert_eq!(a.eviction, None);
        assert_eq!(c.set_occupancy(0), 4);
        assert!(c.probe(0), "partial fills must not displace resident lines");
    }

    #[test]
    fn sector_miss_touches_lru_recency() {
        let mut c = sectored_cache();
        for i in 0..4u64 {
            c.access(i * 512); // fill set 0
        }
        // Sector-miss the oldest line: it becomes the newest.
        assert_eq!(c.access(32), AccessOutcome::SectorMiss);
        c.access(4 * 512); // spills the set
        assert!(c.probe(0), "sector-missed line was freshened");
        assert!(!c.probe(512), "true LRU line was the victim");
    }

    #[test]
    fn unsectored_cache_never_sector_misses_and_fills_track_lines() {
        let mut c = cache();
        for i in 0..64u64 {
            let o = c.access((i * 16) % 4096);
            assert_ne!(o, AccessOutcome::SectorMiss);
        }
        assert_eq!(c.sector_fills(), c.line_fills());
    }

    #[test]
    fn sector_fill_bytes_never_exceed_line_fill_bytes() {
        let mut c = sectored_cache();
        // Dense strided sweep touching every sector of every line, twice.
        for _ in 0..2 {
            for a in (0..4096u64).step_by(16) {
                c.access(a);
            }
        }
        let sector_bytes = c.geometry().sector_bytes();
        let line_bytes = c.geometry().line_bytes();
        assert!(c.sector_fills() * sector_bytes <= c.line_fills() * line_bytes);
        assert!(c.sector_fills() > c.line_fills(), "sweep must exercise partial fills");
    }

    #[test]
    fn reset_cold_clears_fill_counters() {
        let mut c = sectored_cache();
        c.access(0);
        c.access(32);
        assert_eq!((c.line_fills(), c.sector_fills()), (1, 2));
        c.reset_cold();
        assert_eq!((c.line_fills(), c.sector_fills()), (0, 0));
        let mut d = sectored_cache();
        d.access(96);
        c.access(96);
        assert_eq!((c.line_fills(), c.sector_fills()), (d.line_fills(), d.sector_fills()));
    }

    #[test]
    fn whole_cache_fits_exactly() {
        let mut c = cache();
        // 2048 bytes = 32 lines; sequential fill then re-walk: all hits.
        for i in 0..32u64 {
            assert_eq!(c.access(i * 64), AccessOutcome::Miss);
        }
        for i in 0..32u64 {
            assert_eq!(c.access(i * 64), AccessOutcome::Hit);
        }
        // One more line spills a set.
        assert_eq!(c.access(32 * 64), AccessOutcome::Miss);
        assert_eq!(c.access(0), AccessOutcome::Miss); // evicted
    }
}
