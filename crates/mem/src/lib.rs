//! Memory hierarchy models for the `gpgpu-covert` simulator.
//!
//! Everything in this crate is a *passive timing model*: callers (the cycle
//! engine in `gpgpu-sim`) pass in the current cycle and receive completion
//! times back. No component keeps its own clock.
//!
//! Because every covert channel in the paper is a **timing** channel, the
//! models track *which lines are cached* and *when ports/units are busy*,
//! but not data values — no kernel in the paper consumes loaded data, only
//! latencies.
//!
//! Components:
//!
//! * [`SetAssocCache`] — LRU set-associative cache (used for constant L1/L2).
//! * [`ConstHierarchy`] — per-SM constant L1s in front of a shared constant
//!   L2, with port contention; the substrate of the paper's Section 4
//!   channels and Figure 2/3 characterization.
//! * [`coalesce`] — merges a warp's 32 lane addresses into memory
//!   transactions (128-byte segments), the mechanism behind Section 6's
//!   scenario ordering.
//! * [`AtomicSystem`] — address-interleaved atomic units with
//!   generation-dependent service (memory-side on Fermi, L2-side merging on
//!   Kepler/Maxwell).
//! * [`GlobalMemory`] — plain global load/store timing with a
//!   transactions-per-cycle bandwidth limit.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod atomics;
mod cache;
mod coalesce;
mod constmem;
mod gmem;
mod ports;

pub use atomics::{AtomicAccess, AtomicSystem};
pub use cache::{AccessOutcome, Eviction, SetAccess, SetAssocCache};
pub use coalesce::{bank_conflict_degree, coalesce};
pub use constmem::{ConstAccess, ConstHierarchy, ConstLevel};
pub use gmem::{GlobalMemory, GmemAccess};
pub use ports::PortSet;
