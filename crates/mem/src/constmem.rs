//! The constant-memory cache hierarchy: per-SM L1s over a shared L2.
//!
//! This is the substrate of the paper's Section 4 covert channels and the
//! Figure 2/3 characterization microbenchmarks. Latencies are configured as
//! *end-to-end* values per hit level — e.g. on the K40C an L1 hit observes
//! 49 cycles, an L1-miss/L2-hit 112 cycles, and a full miss 250 cycles —
//! matching the plateaus of the paper's latency plots directly.

use crate::cache::{AccessOutcome, Eviction, SetAssocCache};
use crate::ports::PortSet;
use gpgpu_spec::{CacheSpec, MemorySpec};

/// Which level of the hierarchy serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstLevel {
    /// Hit in the SM-local L1.
    L1,
    /// Missed L1, hit the shared L2.
    L2,
    /// Missed both caches; serviced by device memory.
    Memory,
}

/// Outcome of one constant-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstAccess {
    /// Cycle at which the loaded value is available to the warp.
    pub completes_at: u64,
    /// The servicing level.
    pub level: ConstLevel,
    /// The L1 set the access indexed (after partition remapping).
    pub l1_set: u64,
    /// The eviction the L1 fill performed, if any (misses only).
    pub l1_eviction: Option<Eviction>,
    /// The L2 set the access indexed; `None` when the L1 hit (no L2
    /// lookup happened).
    pub l2_set: Option<u64>,
    /// The eviction the L2 fill performed, if any.
    pub l2_eviction: Option<Eviction>,
}

/// Per-SM constant L1 caches over one device-wide constant L2.
#[derive(Debug, Clone)]
pub struct ConstHierarchy {
    l1: Vec<SetAssocCache>,
    l2: SetAssocCache,
    l1_ports: Vec<PortSet>,
    l2_ports: PortSet,
    l1_hit_latency: u64,
    l2_hit_latency: u64,
    mem_latency: u64,
    /// Static cache partitions (0 or 1 = disabled). With `P` partitions,
    /// security domain `d` may only occupy sets of region `d % P` in both
    /// levels — the Section-9 spatial-partitioning mitigation.
    partitions: u32,
}

impl ConstHierarchy {
    /// Builds the hierarchy for `num_sms` SMs from the device's cache and
    /// memory specifications.
    pub fn new(num_sms: u32, l1_spec: &CacheSpec, l2_spec: &CacheSpec, mem: &MemorySpec) -> Self {
        Self::new_partitioned(num_sms, l1_spec, l2_spec, mem, 0)
    }

    /// As [`ConstHierarchy::new`], with static partitioning enabled when
    /// `partitions > 1`.
    pub fn new_partitioned(
        num_sms: u32,
        l1_spec: &CacheSpec,
        l2_spec: &CacheSpec,
        mem: &MemorySpec,
        partitions: u32,
    ) -> Self {
        ConstHierarchy {
            l1: (0..num_sms).map(|_| SetAssocCache::new(l1_spec.geometry)).collect(),
            l2: SetAssocCache::new(l2_spec.geometry),
            l1_ports: (0..num_sms).map(|_| PortSet::new(l1_spec.ports_per_cycle)).collect(),
            l2_ports: PortSet::new(l2_spec.ports_per_cycle),
            l1_hit_latency: l1_spec.hit_latency,
            l2_hit_latency: l2_spec.hit_latency,
            mem_latency: mem.const_mem_latency,
            partitions,
        }
    }

    /// The set a `domain`'s access to `addr` indexes in a cache of
    /// `num_sets` sets: the geometric set when unpartitioned, otherwise
    /// folded into the domain's region.
    fn effective_set(&self, num_sets: u64, geometric_set: u64, domain: u32) -> u64 {
        if self.partitions <= 1 {
            return geometric_set;
        }
        let parts = u64::from(self.partitions).min(num_sets);
        let region = (num_sets / parts).max(1);
        let base = (u64::from(domain) % parts) * region;
        base + geometric_set % region
    }

    /// Performs a warp-level constant load on SM `sm` at cycle `now` on
    /// behalf of security domain `domain` (the kernel id; only meaningful
    /// under partitioning).
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range.
    pub fn access(&mut self, sm: usize, addr: u64, now: u64, domain: u32) -> ConstAccess {
        // One L1 lookup per cycle per SM (single constant-cache port).
        let start = self.l1_ports[sm].acquire(now, 1);
        let l1_set = self.effective_set(
            self.l1[sm].geometry().num_sets(),
            self.l1[sm].geometry().set_of_addr(addr),
            domain,
        );
        let l1_access = self.l1[sm].access_in_set_detailed(addr, l1_set, domain);
        match l1_access.outcome {
            AccessOutcome::Hit => ConstAccess {
                completes_at: start + self.l1_hit_latency,
                level: ConstLevel::L1,
                l1_set,
                l1_eviction: None,
                l2_set: None,
                l2_eviction: None,
            },
            // A sectored L1's SectorMiss fetches through the L2 exactly like
            // a full miss (the 32 B sector and the 128 B line observe the
            // same next-level latency), but allocates no line and therefore
            // never evicts — `l1_access.eviction` is always `None` here.
            AccessOutcome::Miss | AccessOutcome::SectorMiss => {
                // L2 lookup contends on the shared L2 ports. Port occupancy
                // of 1 cycle models the paper's observation that parallel
                // per-set L2 channels scale ~8x (ports), not 16x (sets).
                let l2_start = self.l2_ports.acquire(start + 1, 1);
                let queue_delay = l2_start - (start + 1);
                let l2_set = self.effective_set(
                    self.l2.geometry().num_sets(),
                    self.l2.geometry().set_of_addr(addr),
                    domain,
                );
                let l2_access = self.l2.access_in_set_detailed(addr, l2_set, domain);
                let completes_at = match l2_access.outcome {
                    AccessOutcome::Hit => start + self.l2_hit_latency + queue_delay,
                    AccessOutcome::Miss | AccessOutcome::SectorMiss => {
                        start + self.mem_latency + queue_delay
                    }
                };
                ConstAccess {
                    completes_at,
                    level: match l2_access.outcome {
                        AccessOutcome::Hit => ConstLevel::L2,
                        AccessOutcome::Miss | AccessOutcome::SectorMiss => ConstLevel::Memory,
                    },
                    l1_set,
                    l1_eviction: l1_access.eviction,
                    l2_set: Some(l2_set),
                    l2_eviction: l2_access.eviction,
                }
            }
        }
    }

    /// Total cross-domain eviction alternations across every L1 and the
    /// L2 — the CC-Hunter-style anomaly score (paper Section 9).
    pub fn eviction_alternations(&self) -> u64 {
        self.l1.iter().map(|c| c.eviction_alternations()).sum::<u64>()
            + self.l2.eviction_alternations()
    }

    /// Total cross-domain evictions across every cache level.
    pub fn cross_domain_evictions(&self) -> u64 {
        self.l1.iter().map(|c| c.cross_domain_evictions()).sum::<u64>()
            + self.l2.cross_domain_evictions()
    }

    /// Drops every line of set `set_idx` in **every** SM's L1, returning the
    /// total number of lines dropped — a transient invalidation burst, the
    /// cache-level primitive of the fault-injection subsystem. Timing and
    /// contention counters are untouched: only presence state is lost, so
    /// the next probe of an invalidated line observes the L2/memory latency.
    ///
    /// # Panics
    ///
    /// Panics if `set_idx` is out of range for the L1 geometry.
    pub fn invalidate_l1_set(&mut self, set_idx: u64) -> u64 {
        self.l1.iter_mut().map(|c| c.clear_set(set_idx) as u64).sum()
    }

    /// Fills set `set_idx` of SM `sm`'s L1 with `fills` distinct synthetic
    /// lines on behalf of `domain` — a phantom workload's eviction storm.
    /// `salt` diversifies the synthetic addresses so consecutive storms
    /// insert fresh lines instead of hitting their own. The fills go through
    /// the normal access path, so LRU state and eviction counters behave
    /// exactly as they would for a real co-resident workload.
    ///
    /// # Panics
    ///
    /// Panics if `sm` or `set_idx` is out of range.
    pub fn phantom_fill_l1_set(
        &mut self,
        sm: usize,
        set_idx: u64,
        fills: u64,
        domain: u32,
        salt: u64,
    ) {
        // High address bits keep the synthetic lines disjoint from any real
        // allocation; the line size lower-bounds the per-fill stride. A salt
        // collision only turns a fill into a harmless hit.
        let line = self.l1[sm].geometry().line_bytes();
        let base = (1u64 << 40) ^ (salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) & !0xFFFF);
        for i in 0..fills {
            self.l1[sm].access_in_set_detailed(base + i * line, set_idx, domain);
        }
    }

    /// Read-only view of one SM's L1 (for tests and diagnostics).
    pub fn l1(&self, sm: usize) -> &SetAssocCache {
        &self.l1[sm]
    }

    /// Read-only view of the shared L2.
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }

    /// Flushes every cache level and frees all ports (used between kernel
    /// launches in experiments that require a cold hierarchy).
    pub fn flush(&mut self) {
        for c in &mut self.l1 {
            c.flush();
        }
        self.l2.flush();
        for p in &mut self.l1_ports {
            p.reset();
        }
        self.l2_ports.reset();
    }

    /// Returns the whole hierarchy to its just-constructed state without
    /// releasing any allocation: every cache reset cold (lines, LRU ticks
    /// *and* contention counters — [`ConstHierarchy::flush`] keeps the
    /// latter) and every port freed. The per-trial device reset path.
    pub fn reset_cold(&mut self) {
        for c in &mut self.l1 {
            c.reset_cold();
        }
        self.l2.reset_cold();
        for p in &mut self.l1_ports {
            p.reset();
        }
        self.l2_ports.reset();
    }

    /// Overwrites this hierarchy's mutable state (cache lines, LRU ticks,
    /// contention counters, port horizons) with `other`'s, reusing this
    /// hierarchy's allocations — the snapshot-restore path. Latency
    /// configuration and partitioning are construction-time constants and
    /// must already agree.
    ///
    /// # Panics
    ///
    /// Panics if the two hierarchies were built from different specs
    /// (different SM counts or cache geometries).
    pub fn copy_state_from(&mut self, other: &Self) {
        assert_eq!(self.l1.len(), other.l1.len(), "snapshot/device SM count mismatch");
        for (dst, src) in self.l1.iter_mut().zip(&other.l1) {
            dst.copy_state_from(src);
        }
        self.l2.copy_state_from(&other.l2);
        for (dst, src) in self.l1_ports.iter_mut().zip(&other.l1_ports) {
            dst.copy_state_from(src);
        }
        self.l2_ports.copy_state_from(&other.l2_ports);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_spec::presets;

    fn hierarchy() -> ConstHierarchy {
        let d = presets::tesla_k40c();
        ConstHierarchy::new(d.num_sms, &d.const_l1, &d.const_l2, &d.mem)
    }

    #[test]
    fn latency_plateaus_match_k40c_calibration() {
        let mut h = hierarchy();
        // Cold: full miss -> 250 cycles.
        let a = h.access(0, 0x40, 0, 0);
        assert_eq!(a.level, ConstLevel::Memory);
        assert_eq!(a.completes_at, 250);
        // Warm L1 -> 49 cycles.
        let a = h.access(0, 0x40, 1000, 0);
        assert_eq!(a.level, ConstLevel::L1);
        assert_eq!(a.completes_at, 1000 + 49);
        // Another SM misses its own L1 but hits the shared L2 -> 112.
        let a = h.access(1, 0x40, 2000, 0);
        assert_eq!(a.level, ConstLevel::L2);
        assert_eq!(a.completes_at, 2000 + 112);
    }

    #[test]
    fn l1s_are_private_per_sm() {
        let mut h = hierarchy();
        h.access(0, 0x80, 0, 0);
        assert!(h.l1(0).probe(0x80));
        assert!(!h.l1(1).probe(0x80));
        assert!(h.l2().probe(0x80));
    }

    #[test]
    fn l1_port_serializes_same_cycle_accesses() {
        let mut h = hierarchy();
        h.access(0, 0x0, 0, 0);
        h.access(0, 0x0, 500, 0); // warm
        let a = h.access(0, 0x0, 1000, 0);
        let b = h.access(0, 0x40, 1000, 0); // same cycle, same SM
        assert_eq!(a.completes_at, 1049);
        assert!(b.completes_at > a.completes_at, "port should serialize");
    }

    #[test]
    fn l1_eviction_creates_l2_latency_signal() {
        // The prime+probe primitive: trojan fills set 0, spy's next probe of
        // its own set-0 lines observes L2 latency instead of L1.
        let mut h = hierarchy();
        let stride = 512; // same-set stride of the 2 KB 4-way L1
                          // Spy warms 4 lines of set 0 (addresses 0,512,1024,1536).
        for w in 0..4u64 {
            h.access(0, w * stride, w, 0);
        }
        for w in 0..4u64 {
            let a = h.access(0, w * stride, 100 + w, 0);
            assert_eq!(a.level, ConstLevel::L1);
        }
        // Trojan (same SM, different array at 1 MB offset) fills set 0.
        let trojan_base = 1 << 20;
        for w in 0..4u64 {
            h.access(0, trojan_base + w * stride, 200 + w, 0);
        }
        // Spy probes again: all four lines were evicted -> L2 level.
        for w in 0..4u64 {
            let a = h.access(0, w * stride, 300 + w, 0);
            assert_eq!(a.level, ConstLevel::L2, "line {w} should have been evicted");
        }
    }

    #[test]
    fn access_reports_sets_and_evictions() {
        let mut h = hierarchy();
        // Cold miss: both sets reported, nothing to evict yet.
        let a = h.access(0, 0x0, 0, 0);
        assert_eq!(a.l1_set, 0);
        assert_eq!(a.l2_set, Some(0));
        assert_eq!(a.l1_eviction, None);
        // Warm hit: no L2 lookup.
        let a = h.access(0, 0x0, 100, 0);
        assert_eq!(a.level, ConstLevel::L1);
        assert_eq!(a.l2_set, None);
        assert_eq!(a.l2_eviction, None);
        // Domain 1 fills L1 set 0 past capacity (4 ways, stride 512; one
        // way already holds domain 0's line): the fourth fill spills the
        // set and evicts domain 0's LRU line, and the detail says so.
        for w in 0..3u64 {
            let a = h.access(0, (1 << 20) + w * 512, 200 + w, 1);
            assert_eq!(a.l1_eviction, None);
        }
        let a = h.access(0, (1 << 20) + 3 * 512, 300, 1);
        assert_eq!(
            a.l1_eviction,
            Some(Eviction { victim_domain: 0, evictor_domain: 1 }),
            "fourth set-0 fill should report the cross-domain L1 eviction"
        );
    }

    #[test]
    fn invalidation_bursts_and_storms_degrade_probes() {
        let mut h = hierarchy();
        // Warm a set-0 line on two SMs.
        h.access(0, 0x0, 0, 0);
        h.access(1, 0x0, 10, 0);
        assert_eq!(h.invalidate_l1_set(0), 2);
        // Next probes fall back to the (still warm) L2.
        assert_eq!(h.access(0, 0x0, 100, 0).level, ConstLevel::L2);
        assert_eq!(h.access(1, 0x0, 110, 0).level, ConstLevel::L2);
        // A phantom storm filling the whole set evicts the refilled line,
        // but only on the stormed SM.
        let ways = h.l1(0).geometry().ways();
        h.phantom_fill_l1_set(0, 0, ways, u32::MAX, 7);
        assert_eq!(h.access(0, 0x0, 300, 0).level, ConstLevel::L2);
        assert_eq!(h.access(1, 0x0, 310, 0).level, ConstLevel::L1);
    }

    #[test]
    fn flush_restores_cold_state() {
        let mut h = hierarchy();
        h.access(0, 0x40, 0, 0);
        h.flush();
        let a = h.access(0, 0x40, 10, 0);
        assert_eq!(a.level, ConstLevel::Memory);
    }

    #[test]
    fn reset_cold_is_observationally_a_fresh_hierarchy() {
        let mut used = hierarchy();
        // Mixed-domain traffic accrues lines, tick history and contention:
        // each domain fills the 4-way set before the next one spills it.
        for i in 0..12u64 {
            used.access(0, i * 512, i, (i / 4) as u32);
        }
        assert!(used.cross_domain_evictions() > 0);
        used.reset_cold();
        let mut fresh = hierarchy();
        for i in 0..12u64 {
            let a = used.access(0, i * 512, i, (i / 4) as u32);
            let b = fresh.access(0, i * 512, i, (i / 4) as u32);
            assert_eq!(a, b, "access {i} diverged after reset_cold");
        }
        assert_eq!(used.cross_domain_evictions(), fresh.cross_domain_evictions());
        assert_eq!(used.eviction_alternations(), fresh.eviction_alternations());
    }

    #[test]
    fn copy_state_from_replays_identically() {
        let mut src = hierarchy();
        for i in 0..8u64 {
            src.access(0, i * 512, i, (i / 4) as u32);
        }
        let mut dst = hierarchy();
        dst.access(1, 0x9000, 3, 0); // diverge the destination first
        dst.copy_state_from(&src);
        for i in 8..16u64 {
            let a = src.access(0, i * 512, i, (i / 4) as u32);
            let b = dst.access(0, i * 512, i, (i / 4) as u32);
            assert_eq!(a, b, "access {i} diverged after copy_state_from");
        }
    }
}
