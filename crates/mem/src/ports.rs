//! A small pool of identical service ports with FIFO acquisition.

/// A pool of `n` identical ports; each acquisition occupies the least-busy
/// port for a caller-specified number of cycles.
///
/// Used for L2 cache access ports (the reason the paper's 16-set parallel L2
/// channel speeds up only ~8x) and the global-memory transaction pipe.
#[derive(Debug, Clone)]
pub struct PortSet {
    busy_until: Vec<u64>,
}

impl PortSet {
    /// Creates a pool of `ports` ports, all free at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(ports: u32) -> Self {
        assert!(ports > 0, "a port set must have at least one port");
        PortSet { busy_until: vec![0; ports as usize] }
    }

    /// Number of ports in the pool.
    pub fn len(&self) -> usize {
        self.busy_until.len()
    }

    /// Whether the pool is empty (never true; see [`PortSet::new`]).
    pub fn is_empty(&self) -> bool {
        self.busy_until.is_empty()
    }

    /// Acquires the earliest-available port at or after `now`, occupying it
    /// for `occupancy` cycles. Returns the cycle at which service *starts*.
    pub fn acquire(&mut self, now: u64, occupancy: u64) -> u64 {
        let (idx, _) = self
            .busy_until
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("port set is non-empty");
        let start = now.max(self.busy_until[idx]);
        self.busy_until[idx] = start + occupancy;
        start
    }

    /// The earliest cycle at which any port is free (for diagnostics).
    pub fn earliest_free(&self) -> u64 {
        self.busy_until.iter().copied().min().unwrap_or(0)
    }

    /// Resets all ports to free.
    pub fn reset(&mut self) {
        self.busy_until.fill(0);
    }

    /// Overwrites this pool's busy horizons with `other`'s without
    /// reallocating — the snapshot-restore path.
    ///
    /// # Panics
    ///
    /// Panics if the pools have different port counts.
    pub fn copy_state_from(&mut self, other: &Self) {
        self.busy_until.copy_from_slice(&other.busy_until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_port_serializes() {
        let mut p = PortSet::new(1);
        assert_eq!(p.acquire(10, 5), 10);
        assert_eq!(p.acquire(10, 5), 15);
        assert_eq!(p.acquire(100, 5), 100);
    }

    #[test]
    fn multiple_ports_run_in_parallel() {
        let mut p = PortSet::new(2);
        assert_eq!(p.acquire(0, 10), 0);
        assert_eq!(p.acquire(0, 10), 0); // second port
        assert_eq!(p.acquire(0, 10), 10); // queues behind the earlier
    }

    #[test]
    fn reset_frees_everything() {
        let mut p = PortSet::new(1);
        p.acquire(0, 1000);
        p.reset();
        assert_eq!(p.acquire(0, 1), 0);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_panics() {
        PortSet::new(0);
    }
}
