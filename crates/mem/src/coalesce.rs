//! The memory-access coalescer.

/// Merges a warp's lane addresses into the set of unique memory segments
/// ("transactions") of `segment_bytes` each, returned as sorted segment base
/// addresses.
///
/// This is the behaviour CUDA hardware applies to every warp memory
/// instruction; the number of transactions it produces is what separates the
/// paper's coalesced (scenarios 1-2) from un-coalesced (scenario 3) atomic
/// channels in Figure 10.
///
/// # Panics
///
/// Panics if `segment_bytes` is zero.
///
/// # Example
///
/// ```
/// use gpgpu_mem::coalesce;
///
/// // 32 consecutive 4-byte accesses: one 128-byte transaction.
/// let addrs: Vec<u64> = (0..32).map(|i| 0x1000 + i * 4).collect();
/// assert_eq!(coalesce(addrs.iter().copied(), 128).len(), 1);
///
/// // 32 accesses strided by 128 bytes: 32 transactions.
/// let addrs: Vec<u64> = (0..32).map(|i| 0x1000 + i * 128).collect();
/// assert_eq!(coalesce(addrs.iter().copied(), 128).len(), 32);
/// ```
pub fn coalesce<I>(lane_addrs: I, segment_bytes: u64) -> Vec<u64>
where
    I: IntoIterator<Item = u64>,
{
    assert!(segment_bytes > 0, "coalescing segment must be positive");
    let mut segments: Vec<u64> = lane_addrs.into_iter().map(|a| a - (a % segment_bytes)).collect();
    segments.sort_unstable();
    segments.dedup();
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_address_is_one_transaction() {
        let addrs = std::iter::repeat_n(0x2000u64, 32);
        assert_eq!(coalesce(addrs, 128), vec![0x2000]);
    }

    #[test]
    fn straddling_accesses_produce_two_transactions() {
        // 32 x 4-byte accesses starting 64 bytes into a segment.
        let addrs = (0..32u64).map(|i| 64 + i * 4);
        assert_eq!(coalesce(addrs, 128), vec![0, 128]);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(coalesce(std::iter::empty(), 128).is_empty());
    }

    #[test]
    fn output_is_sorted_and_deduplicated() {
        let addrs = [300u64, 10, 300, 200, 130];
        assert_eq!(coalesce(addrs, 128), vec![0, 128, 256]);
    }

    #[test]
    #[should_panic(expected = "segment must be positive")]
    fn zero_segment_panics() {
        coalesce([1u64], 0);
    }
}

/// Shared-memory bank conflict degree of a warp access: lane addresses map
/// to `num_banks` word-interleaved banks; the degree is the largest number
/// of *distinct words* any one bank must serve (same-word lanes broadcast).
/// Degree 1 is conflict-free; degree 32 fully serializes the warp.
///
/// The paper's Section 10 discusses Jiang et al.'s bank-conflict timing
/// side channel and reports the negative result that these conflicts do
/// not transfer to a *competing* kernel — which this workspace reproduces.
///
/// # Panics
///
/// Panics if `num_banks` or `word_bytes` is zero.
pub fn bank_conflict_degree<I>(lane_addrs: I, num_banks: u32, word_bytes: u64) -> u32
where
    I: IntoIterator<Item = u64>,
{
    assert!(num_banks > 0 && word_bytes > 0, "banks and word size must be positive");
    let mut per_bank: Vec<Vec<u64>> = vec![Vec::new(); num_banks as usize];
    for addr in lane_addrs {
        let word = addr / word_bytes;
        let bank = (word % u64::from(num_banks)) as usize;
        if !per_bank[bank].contains(&word) {
            per_bank[bank].push(word);
        }
    }
    per_bank.iter().map(|w| w.len() as u32).max().unwrap_or(0).max(1)
}

#[cfg(test)]
mod bank_tests {
    use super::*;

    #[test]
    fn consecutive_words_are_conflict_free() {
        let addrs = (0..32u64).map(|i| i * 4);
        assert_eq!(bank_conflict_degree(addrs, 32, 4), 1);
    }

    #[test]
    fn same_word_broadcasts() {
        let addrs = std::iter::repeat_n(128u64, 32);
        assert_eq!(bank_conflict_degree(addrs, 32, 4), 1);
    }

    #[test]
    fn stride_of_num_banks_fully_serializes() {
        // Lane i -> word i*32: every lane in bank 0.
        let addrs = (0..32u64).map(|i| i * 32 * 4);
        assert_eq!(bank_conflict_degree(addrs, 32, 4), 32);
    }

    #[test]
    fn two_way_conflict() {
        // Lane i -> word 2i: the 16 even banks each serve 2 distinct words.
        let addrs = (0..32u64).map(|i| i * 2 * 4);
        assert_eq!(bank_conflict_degree(addrs, 32, 4), 2);
    }

    #[test]
    fn empty_input_degree_is_one() {
        assert_eq!(bank_conflict_degree(std::iter::empty(), 32, 4), 1);
    }
}
