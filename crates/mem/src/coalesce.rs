//! The memory-access coalescer.

/// Merges a warp's lane addresses into the set of unique memory segments
/// ("transactions") of `segment_bytes` each, returned as sorted segment base
/// addresses.
///
/// This is the behaviour CUDA hardware applies to every warp memory
/// instruction; the number of transactions it produces is what separates the
/// paper's coalesced (scenarios 1-2) from un-coalesced (scenario 3) atomic
/// channels in Figure 10.
///
/// # Panics
///
/// Panics if `segment_bytes` is zero.
///
/// # Example
///
/// ```
/// use gpgpu_mem::coalesce;
///
/// // 32 consecutive 4-byte accesses: one 128-byte transaction.
/// let addrs: Vec<u64> = (0..32).map(|i| 0x1000 + i * 4).collect();
/// assert_eq!(coalesce(addrs.iter().copied(), 128).len(), 1);
///
/// // 32 accesses strided by 128 bytes: 32 transactions.
/// let addrs: Vec<u64> = (0..32).map(|i| 0x1000 + i * 128).collect();
/// assert_eq!(coalesce(addrs.iter().copied(), 128).len(), 32);
/// ```
pub fn coalesce<I>(lane_addrs: I, segment_bytes: u64) -> Vec<u64>
where
    I: IntoIterator<Item = u64>,
{
    let mut segments = Vec::new();
    coalesce_into(lane_addrs, segment_bytes, &mut segments);
    segments
}

/// As [`coalesce`], writing the sorted deduplicated segment bases into a
/// caller-provided buffer (cleared first) instead of allocating a fresh
/// `Vec` — the hot-loop variant the simulator's per-instruction memory path
/// uses so steady-state trials stay allocation-free.
///
/// # Panics
///
/// Panics if `segment_bytes` is zero.
pub fn coalesce_into<I>(lane_addrs: I, segment_bytes: u64, segments: &mut Vec<u64>)
where
    I: IntoIterator<Item = u64>,
{
    assert!(segment_bytes > 0, "coalescing segment must be positive");
    segments.clear();
    segments.extend(lane_addrs.into_iter().map(|a| a - (a % segment_bytes)));
    segments.sort_unstable();
    segments.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_address_is_one_transaction() {
        let addrs = std::iter::repeat_n(0x2000u64, 32);
        assert_eq!(coalesce(addrs, 128), vec![0x2000]);
    }

    #[test]
    fn straddling_accesses_produce_two_transactions() {
        // 32 x 4-byte accesses starting 64 bytes into a segment.
        let addrs = (0..32u64).map(|i| 64 + i * 4);
        assert_eq!(coalesce(addrs, 128), vec![0, 128]);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(coalesce(std::iter::empty(), 128).is_empty());
    }

    #[test]
    fn output_is_sorted_and_deduplicated() {
        let addrs = [300u64, 10, 300, 200, 130];
        assert_eq!(coalesce(addrs, 128), vec![0, 128, 256]);
    }

    #[test]
    #[should_panic(expected = "segment must be positive")]
    fn zero_segment_panics() {
        coalesce([1u64], 0);
    }

    #[test]
    fn coalesce_into_reuses_the_buffer_and_matches_coalesce() {
        let mut buf = vec![0xDEAD; 7]; // stale contents must be cleared
        let addrs = [300u64, 10, 300, 200, 130];
        coalesce_into(addrs, 128, &mut buf);
        assert_eq!(buf, coalesce(addrs, 128));
        coalesce_into(std::iter::empty(), 128, &mut buf);
        assert!(buf.is_empty());
    }
}

/// Shared-memory bank conflict degree of a warp access: lane addresses map
/// to `num_banks` word-interleaved banks; the degree is the largest number
/// of *distinct words* any one bank must serve (same-word lanes broadcast).
/// Degree 1 is conflict-free; degree 32 fully serializes the warp.
///
/// The paper's Section 10 discusses Jiang et al.'s bank-conflict timing
/// side channel and reports the negative result that these conflicts do
/// not transfer to a *competing* kernel — which this workspace reproduces.
///
/// # Panics
///
/// Panics if `num_banks` or `word_bytes` is zero.
pub fn bank_conflict_degree<I>(lane_addrs: I, num_banks: u32, word_bytes: u64) -> u32
where
    I: IntoIterator<Item = u64>,
{
    assert!(num_banks > 0 && word_bytes > 0, "banks and word size must be positive");
    // A warp access has at most 32 lanes, so the distinct-word set fits in a
    // stack buffer and the hot path never touches the heap; larger inputs
    // (only reachable through direct library use) spill to a Vec.
    let mut words = [0u64; 64];
    let mut n = 0usize;
    let mut spill: Vec<u64> = Vec::new();
    for addr in lane_addrs {
        let word = addr / word_bytes;
        if words[..n].contains(&word) || spill.contains(&word) {
            continue;
        }
        if n < words.len() {
            words[n] = word;
            n += 1;
        } else {
            spill.push(word);
        }
    }
    let banks = u64::from(num_banks);
    let bank_load = |w: u64| -> u32 {
        let bank = w % banks;
        words[..n].iter().chain(spill.iter()).filter(|&&x| x % banks == bank).count() as u32
    };
    words[..n].iter().chain(spill.iter()).map(|&w| bank_load(w)).max().unwrap_or(0).max(1)
}

#[cfg(test)]
mod bank_tests {
    use super::*;

    #[test]
    fn consecutive_words_are_conflict_free() {
        let addrs = (0..32u64).map(|i| i * 4);
        assert_eq!(bank_conflict_degree(addrs, 32, 4), 1);
    }

    #[test]
    fn same_word_broadcasts() {
        let addrs = std::iter::repeat_n(128u64, 32);
        assert_eq!(bank_conflict_degree(addrs, 32, 4), 1);
    }

    #[test]
    fn stride_of_num_banks_fully_serializes() {
        // Lane i -> word i*32: every lane in bank 0.
        let addrs = (0..32u64).map(|i| i * 32 * 4);
        assert_eq!(bank_conflict_degree(addrs, 32, 4), 32);
    }

    #[test]
    fn two_way_conflict() {
        // Lane i -> word 2i: the 16 even banks each serve 2 distinct words.
        let addrs = (0..32u64).map(|i| i * 2 * 4);
        assert_eq!(bank_conflict_degree(addrs, 32, 4), 2);
    }

    #[test]
    fn empty_input_degree_is_one() {
        assert_eq!(bank_conflict_degree(std::iter::empty(), 32, 4), 1);
    }

    #[test]
    fn oversized_inputs_spill_past_the_stack_buffer_correctly() {
        // 96 distinct words, three per bank: exercises the heap spill path.
        let addrs = (0..96u64).map(|i| i * 4);
        assert_eq!(bank_conflict_degree(addrs, 32, 4), 3);
    }
}
