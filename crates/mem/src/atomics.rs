//! Atomic-operation units.
//!
//! The paper's Section 6 channel works because atomic units are few and
//! slow enough to produce measurable queueing between kernels. Two
//! generation-specific behaviours are modelled (both from the paper):
//!
//! * **Fermi** services atomics at the memory controller at ~9 cycles per
//!   lane operation.
//! * **Kepler/Maxwell** service atomics at the L2 at one lane operation per
//!   clock — but only for *coalesced* traffic; a lane alone in its segment
//!   misses the merged fast path and pays a slow-path penalty.

use gpgpu_spec::MemorySpec;

/// Fixed per-transaction turnaround (cycles) of memory-side atomic units.
const FERMI_TXN_TURNAROUND: u64 = 24;

/// Detailed outcome of one warp-level atomic access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomicAccess {
    /// Cycle the last lane completes (the warp resumes then).
    pub completes_at: u64,
    /// Total cycles the access's transactions spent queued behind busy
    /// units — 0 when uncontended. This is the Section-6 contention signal
    /// a trace wants to see directly.
    pub queue_cycles: u64,
    /// Number of coalesced transactions the warp access produced.
    pub transactions: u64,
}

/// The device's pool of address-interleaved atomic units.
///
/// Occupancy model: every lane's read-modify-write costs `service_cycles`
/// at its unit (1 on Kepler/Maxwell — "one operation per clock" — and ~9 on
/// Fermi). On L2-atomic devices a *lone* lane in its segment misses the
/// merged fast path and is charged a slow-path penalty instead — the
/// paper's observation that "poor coalescing significantly reduces the
/// possibility of using the faster L2-level atomic operation support".
#[derive(Debug, Clone)]
pub struct AtomicSystem {
    /// busy-until time per unit.
    units: Vec<u64>,
    service_cycles: u64,
    base_latency: u64,
    segment: u64,
    /// Whether this device has L2-side atomics with same-segment merging
    /// (Kepler+). When false (Fermi) every lane pays `service_cycles` with
    /// no fast/slow distinction.
    merges_same_segment: bool,
    /// Slow-path multiplier for un-merged single-lane groups on L2-atomic
    /// devices.
    uncoalesced_penalty: u64,
    /// Reusable lane-address buffer so per-access grouping is
    /// allocation-free after the first access.
    lane_buf: Vec<u64>,
    /// Reusable (segment base, lane count) grouping buffer.
    group_buf: Vec<(u64, u64)>,
}

impl AtomicSystem {
    /// Builds the atomic system from a device memory spec.
    pub fn new(mem: &MemorySpec, merges_same_segment: bool) -> Self {
        AtomicSystem {
            units: vec![0; mem.atomic_units as usize],
            service_cycles: mem.atomic_service_cycles,
            base_latency: mem.atomic_base_latency,
            segment: mem.coalesce_segment,
            merges_same_segment,
            uncoalesced_penalty: mem.atomic_uncoalesced_penalty,
            lane_buf: Vec::with_capacity(32),
            group_buf: Vec::with_capacity(32),
        }
    }

    /// Issues a warp-level atomic whose lanes touch `lane_addrs`, starting
    /// at cycle `now`. Returns the cycle at which the *last* lane completes
    /// (the warp resumes then; atomics are blocking in the paper's kernels).
    pub fn access<I>(&mut self, lane_addrs: I, now: u64) -> u64
    where
        I: IntoIterator<Item = u64>,
    {
        self.access_detailed(lane_addrs, now).completes_at
    }

    /// As [`AtomicSystem::access`], additionally reporting how long the
    /// access queued behind busy units and how many transactions it
    /// produced, so tracing can show contention directly.
    pub fn access_detailed<I>(&mut self, lane_addrs: I, now: u64) -> AtomicAccess
    where
        I: IntoIterator<Item = u64>,
    {
        let mut lanes = std::mem::take(&mut self.lane_buf);
        let mut groups = std::mem::take(&mut self.group_buf);
        lanes.clear();
        lanes.extend(lane_addrs);
        // Group lanes by coalescing segment: sorting then run-length
        // counting yields the coalescer's (sorted, deduplicated) segment
        // order with per-segment lane counts, without heap allocation.
        lanes.sort_unstable();
        groups.clear();
        for &a in &lanes {
            let seg = a - (a % self.segment);
            match groups.last_mut() {
                Some((s, c)) if *s == seg => *c += 1,
                _ => groups.push((seg, 1)),
            }
        }
        let transactions = groups.len() as u64;
        let mut last = now;
        let mut queue_cycles = 0;
        for &(seg, count) in &groups {
            let unit = ((seg / self.segment) % self.units.len() as u64) as usize;
            let occupancy = if self.merges_same_segment {
                if count == 1 {
                    // Lone lane: the merged L2 fast path does not apply.
                    self.service_cycles * self.uncoalesced_penalty
                } else {
                    self.service_cycles * count
                }
            } else {
                // Memory-side atomics (Fermi): each *transaction* pays a
                // fixed read-modify-write turnaround at the controller on
                // top of the per-lane service, so poorly coalesced traffic
                // costs more total unit time even though it spreads over
                // more units.
                self.service_cycles * count + FERMI_TXN_TURNAROUND
            };
            let start = now.max(self.units[unit]);
            queue_cycles += start - now;
            self.units[unit] = start + occupancy;
            last = last.max(start + occupancy + self.base_latency);
        }
        self.lane_buf = lanes;
        self.group_buf = groups;
        AtomicAccess { completes_at: last, queue_cycles, transactions }
    }

    /// Earliest cycle at which all units are idle (diagnostics).
    pub fn drained_at(&self) -> u64 {
        self.units.iter().copied().max().unwrap_or(0)
    }

    /// Frees all units.
    pub fn reset(&mut self) {
        self.units.fill(0);
    }

    /// Overwrites this system's unit occupancy with `other`'s without
    /// reallocating — the snapshot-restore path.
    ///
    /// # Panics
    ///
    /// Panics if the two systems have different unit counts.
    pub fn copy_state_from(&mut self, other: &Self) {
        self.units.copy_from_slice(&other.units);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kepler_mem() -> MemorySpec {
        MemorySpec {
            global_load_latency: 450,
            const_mem_latency: 250,
            atomic_base_latency: 180,
            atomic_service_cycles: 1,
            atomic_uncoalesced_penalty: 9,
            atomic_units: 8,
            coalesce_segment: 128,
            transactions_per_cycle: 6,
        }
    }

    fn fermi_mem() -> MemorySpec {
        MemorySpec {
            global_load_latency: 520,
            const_mem_latency: 245,
            atomic_base_latency: 340,
            atomic_service_cycles: 9,
            atomic_uncoalesced_penalty: 1,
            atomic_units: 4,
            coalesce_segment: 128,
            transactions_per_cycle: 4,
        }
    }

    #[test]
    fn kepler_same_address_warp_is_one_lane_per_clock() {
        let mut a = AtomicSystem::new(&kepler_mem(), true);
        let done = a.access(std::iter::repeat_n(0x1000, 32), 0);
        assert_eq!(done, 32 + 180); // one op per clock + round trip
    }

    #[test]
    fn fermi_same_address_warp_serializes_lanes() {
        let mut a = AtomicSystem::new(&fermi_mem(), false);
        let done = a.access(std::iter::repeat_n(0x1000, 32), 0);
        // 32 lanes x 9 cycles + per-transaction turnaround + round trip.
        assert_eq!(done, 32 * 9 + 24 + 340);
    }

    #[test]
    fn uncoalesced_spread_pays_the_slow_path() {
        let mut a = AtomicSystem::new(&kepler_mem(), true);
        // 32 lone lanes, one per 128 B segment; 8 units x 4 groups each at
        // the 9-cycle slow path -> 36 cycles of queueing on every unit.
        let done = a.access((0..32u64).map(|i| i * 128), 0);
        assert_eq!(done, 4 * 9 + 180);
        // Compare: coalesced consecutive lanes ride the fast path.
        let mut b = AtomicSystem::new(&kepler_mem(), true);
        let done_coalesced = b.access((0..32u64).map(|i| i * 4), 0);
        assert!(done_coalesced < done, "{done_coalesced} vs {done}");
    }

    #[test]
    fn detailed_access_reports_queueing_and_transactions() {
        let mut a = AtomicSystem::new(&kepler_mem(), true);
        // Uncontended warp: no queueing, one coalesced transaction.
        let d = a.access_detailed(std::iter::repeat_n(0x0u64, 32), 0);
        assert_eq!(d.queue_cycles, 0);
        assert_eq!(d.transactions, 1);
        // Second warp to the same segment at the same cycle queues behind
        // the first warp's 32 cycles of unit occupancy.
        let d2 = a.access_detailed(std::iter::repeat_n(0x0u64, 32), 0);
        assert_eq!(d2.queue_cycles, 32);
        assert_eq!(d2.completes_at, d.completes_at + 32);
        // Spread lanes: 32 segments -> 32 transactions.
        let mut b = AtomicSystem::new(&kepler_mem(), true);
        let d3 = b.access_detailed((0..32u64).map(|i| i * 128), 0);
        assert_eq!(d3.transactions, 32);
    }

    #[test]
    fn contention_between_two_warps_is_observable() {
        let mut a = AtomicSystem::new(&kepler_mem(), true);
        let alone = a.access(std::iter::repeat_n(0x0, 32), 0);
        a.reset();
        // A trojan warp hammers the same segment first.
        for _ in 0..16 {
            a.access(std::iter::repeat_n(0x0, 32), 0);
        }
        let contended = a.access(std::iter::repeat_n(0x0, 32), 0);
        assert!(contended > alone, "trojan queueing must delay the spy: {contended} vs {alone}");
    }

    #[test]
    fn different_segments_use_different_units() {
        let mut a = AtomicSystem::new(&kepler_mem(), true);
        let d1 = a.access(std::iter::repeat_n(0u64, 32), 0);
        // Different unit: no queueing even though issued at the same cycle.
        let d2 = a.access(std::iter::repeat_n(128u64, 32), 0);
        assert_eq!(d1, d2);
    }

    #[test]
    fn reset_clears_queues() {
        let mut a = AtomicSystem::new(&kepler_mem(), true);
        for _ in 0..100 {
            a.access([0u64], 0);
        }
        assert!(a.drained_at() > 0);
        a.reset();
        assert_eq!(a.drained_at(), 0);
    }
}
