//! Property tests for the memory-hierarchy models.

use gpgpu_mem::{coalesce, AccessOutcome, PortSet, SetAssocCache};
use gpgpu_spec::CacheGeometry;
use proptest::prelude::*;

proptest! {
    /// Coalescing: output count never exceeds input count, every input
    /// address falls inside some output segment, outputs are sorted/unique.
    #[test]
    fn coalesce_covers_and_dedups(
        addrs in proptest::collection::vec(0u64..1 << 20, 0..64),
        seg_log in 5u32..10,
    ) {
        let seg = 1u64 << seg_log;
        let out = coalesce(addrs.iter().copied(), seg);
        prop_assert!(out.len() <= addrs.len().max(1));
        for &a in &addrs {
            prop_assert!(out.contains(&(a - a % seg)));
        }
        prop_assert!(out.windows(2).all(|w| w[0] < w[1]));
        for &s in &out {
            prop_assert_eq!(s % seg, 0);
        }
    }

    /// PortSet: service start is never before the request, and with one
    /// port, starts are strictly serialized by occupancy.
    #[test]
    fn single_port_serializes_strictly(
        reqs in proptest::collection::vec((0u64..10_000, 1u64..100), 1..64),
    ) {
        let mut p = PortSet::new(1);
        let mut prev_end = 0u64;
        // Issue in nondecreasing time order (as the engine does).
        let mut sorted = reqs.clone();
        sorted.sort_by_key(|&(t, _)| t);
        for (now, occ) in sorted {
            let start = p.acquire(now, occ);
            prop_assert!(start >= now);
            prop_assert!(start >= prev_end);
            prev_end = start + occ;
        }
    }

    /// PortSet with n ports never runs more than n services concurrently.
    #[test]
    fn port_capacity_respected(
        n in 1u32..8,
        reqs in proptest::collection::vec(1u64..50, 1..64),
    ) {
        let mut p = PortSet::new(n);
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for occ in reqs {
            let start = p.acquire(0, occ);
            intervals.push((start, start + occ));
        }
        // At any service start, count overlapping intervals.
        for &(s, _) in &intervals {
            let overlapping = intervals.iter().filter(|&&(a, b)| a <= s && s < b).count();
            prop_assert!(overlapping <= n as usize, "{overlapping} > {n}");
        }
    }

    /// Cache: occupancy bounded by ways; hit after access; flush empties.
    #[test]
    fn cache_fundamentals(
        addrs in proptest::collection::vec(0u64..64 * 1024, 1..200),
    ) {
        let geom = CacheGeometry::new(4096, 64, 4).unwrap();
        let mut c = SetAssocCache::new(geom);
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.probe(a), "just-accessed line must be present");
        }
        for s in 0..geom.num_sets() {
            prop_assert!(c.set_occupancy(s) <= geom.ways() as usize);
        }
        c.flush();
        for s in 0..geom.num_sets() {
            prop_assert_eq!(c.set_occupancy(s), 0);
        }
    }

    /// Filling a set with `ways` fresh lines evicts all previous tenants —
    /// the prime+probe primitive the whole paper rests on.
    #[test]
    fn full_set_fill_always_evicts(
        set in 0u64..8,
        victim_base in 0u64..4,
        attacker_base in 4u64..8,
    ) {
        let geom = CacheGeometry::new(2048, 64, 4).unwrap();
        let mut c = SetAssocCache::new(geom);
        let span = geom.same_set_stride() * geom.ways();
        let addr = |base: u64, way: u64| base * span + set * geom.line_bytes() + way * geom.same_set_stride();
        // Victim fills the set.
        for w in 0..geom.ways() {
            c.access(addr(victim_base, w));
        }
        // Attacker fills the same set with distinct tags.
        for w in 0..geom.ways() {
            prop_assert_eq!(c.access(addr(attacker_base, w)), AccessOutcome::Miss);
        }
        // Every victim line is gone.
        for w in 0..geom.ways() {
            prop_assert!(!c.probe(addr(victim_base, w)));
        }
    }
}
