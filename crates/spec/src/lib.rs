//! Device specifications for the `gpgpu-covert` GPGPU simulator.
//!
//! This crate is the bottom layer of the workspace: it describes *what the
//! hardware looks like* — streaming-multiprocessor (SM) resources, functional
//! unit pools and their timing, cache geometries, memory-system parameters,
//! and whole-device presets for the three GPUs evaluated in the paper
//! (Naghibijouybari et al., *Constructing and Characterizing Covert Channels
//! on GPGPUs*, MICRO-50 2017) plus a modern sub-core device for forward
//! projection:
//!
//! * NVIDIA **Tesla C2075** (Fermi)
//! * NVIDIA **Tesla K40C** (Kepler)
//! * NVIDIA **Quadro M4000** (Maxwell)
//! * NVIDIA **RTX A4000** (Ampere — sub-core issue partitions, fixed-latency
//!   dependence hints, sectored L1; see [`subcore`])
//!
//! The per-SM resource counts come straight from the paper's Table 1; the
//! functional-unit pipeline depths are calibrated so that the contention
//! model in `gpgpu-sim` reproduces the latency plots of Figures 6 and 7 and
//! the channel latencies quoted in Section 5.2 (e.g. Kepler `__sinf`:
//! 18 cycles idle → 24 cycles under trojan contention).
//!
//! # Example
//!
//! ```
//! use gpgpu_spec::presets;
//!
//! let k40c = presets::tesla_k40c();
//! assert_eq!(k40c.num_sms, 15);
//! assert_eq!(k40c.sm.num_warp_schedulers, 4);
//! assert_eq!(k40c.const_l1.geometry.num_sets(), 8);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod arch;
pub mod cache;
pub mod defense;
pub mod device;
pub mod error;
pub mod fu;
pub mod launch;
pub mod mem;
pub mod presets;
pub mod sm;
pub mod subcore;
pub mod sweep;
pub mod topology;

pub use arch::{Architecture, FuOpKind, FuUnit};
pub use cache::{CacheGeometry, CacheSpec};
pub use defense::{DefenseComponent, DefenseSpec};
pub use device::DeviceSpec;
pub use error::SpecError;
pub use fu::{FuPools, FuTiming};
pub use launch::{BlockResources, LaunchConfig};
pub use mem::MemorySpec;
pub use sm::SmSpec;
pub use subcore::{ArchDescriptor, DependenceMode, SubCoreSpec};
pub use sweep::{SweepCell, SweepRequest};
pub use topology::{LinkSpec, TopologySpec};

/// Number of threads in a warp. Constant across every NVIDIA architecture
/// the paper evaluates (and every CUDA GPU shipped to date).
pub const WARP_SIZE: u32 = 32;
