//! Whole-device specification.

use crate::arch::{Architecture, FuOpKind};
use crate::cache::CacheSpec;
use crate::error::SpecError;
use crate::mem::MemorySpec;
use crate::sm::SmSpec;
use crate::subcore::SubCoreSpec;

/// Complete static description of a GPGPU device.
///
/// Construct one via [`crate::presets`] (the paper's three GPUs) or by
/// filling the fields for a hypothetical device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"Tesla K40C"`.
    pub name: String,
    /// Microarchitecture generation.
    pub architecture: Architecture,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// SM core clock in Hz (used only to convert simulated cycles into
    /// wall-clock bandwidth figures).
    pub clock_hz: u64,
    /// Per-SM resources.
    pub sm: SmSpec,
    /// Sub-core (issue-partition) decomposition of each SM. Legacy devices
    /// use [`SubCoreSpec::shared_issue`] (one scoreboarded sub-core per warp
    /// scheduler); Ampere-class devices set fixed-latency dependence hints.
    pub sub_core: SubCoreSpec,
    /// Per-SM constant L1 cache.
    pub const_l1: CacheSpec,
    /// Device-wide constant L2 cache (shared by all SMs).
    pub const_l2: CacheSpec,
    /// Global-memory system.
    pub mem: MemorySpec,
    /// Host-side cost of launching one kernel, in device cycles. Dominates
    /// the baseline (relaunch-per-bit) channels of Section 4 and is exactly
    /// the overhead the synchronized protocol of Section 7 removes.
    pub launch_overhead_cycles: u64,
}

impl DeviceSpec {
    /// Checks that `op` can execute on this device.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnsupportedUnit`] if the device has zero units of the
    /// class `op` requires — e.g. double-precision ops on the Quadro M4000,
    /// which the paper's Figure 7 therefore omits.
    pub fn supports_op(&self, op: FuOpKind) -> Result<(), SpecError> {
        let unit = op.unit();
        if self.sm.pools.count(unit) == 0 {
            return Err(SpecError::UnsupportedUnit {
                unit: unit.to_string(),
                device: self.name.clone(),
            });
        }
        Ok(())
    }

    /// Converts a cycle count into seconds on this device's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }

    /// Bandwidth in bits/second for `bits` transferred over `cycles`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn bandwidth_bps(&self, bits: u64, cycles: u64) -> f64 {
        assert!(cycles > 0, "bandwidth over zero cycles is undefined");
        bits as f64 / self.cycles_to_seconds(cycles)
    }

    /// Bandwidth in kilobits/second (the unit of the paper's figures).
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn bandwidth_kbps(&self, bits: u64, cycles: u64) -> f64 {
        self.bandwidth_bps(bits, cycles) / 1e3
    }
}

#[cfg(test)]
mod tests {
    use crate::presets;
    use crate::FuOpKind;

    #[test]
    fn maxwell_rejects_double_precision() {
        let m4000 = presets::quadro_m4000();
        assert!(m4000.supports_op(FuOpKind::DpAdd).is_err());
        assert!(m4000.supports_op(FuOpKind::SpSinf).is_ok());
    }

    #[test]
    fn fermi_and_kepler_support_double_precision() {
        assert!(presets::tesla_c2075().supports_op(FuOpKind::DpMul).is_ok());
        assert!(presets::tesla_k40c().supports_op(FuOpKind::DpMul).is_ok());
    }

    #[test]
    fn bandwidth_math() {
        let k = presets::tesla_k40c();
        // 745 MHz: 745_000 cycles = 1 ms; 42 bits in 1 ms = 42 Kbps.
        let kbps = k.bandwidth_kbps(42, 745_000);
        assert!((kbps - 42.0).abs() < 1e-9, "{kbps}");
    }

    #[test]
    #[should_panic(expected = "zero cycles")]
    fn bandwidth_zero_cycles_panics() {
        presets::tesla_k40c().bandwidth_kbps(1, 0);
    }
}
