//! Sweep-request specifications: a whole characterization grid as one
//! validated, serializable spec object.
//!
//! The paper's methodology is built on repeated sweeps — Figure-5 error-rate
//! grids, Table-2/3 characterizations — and every axis of those sweeps
//! already has a canonical textual grammar in this workspace (`--defense`
//! specs, `--topology` specs, fault-plan specs). A [`SweepRequest`] names
//! the *cross product*: channel family × device × fault plan × defense ×
//! symbol time, plus the message shape, as one string the sweep service
//! (`gpgpu-serve`) can shard into cells and memoize. Like the other
//! grammars it round-trips exactly:
//!
//! ```text
//! device=kepler;family=l1+atomic;iters=1+4+20;bits=16;seed=0x5eed;faults=none;defense=none|partition=2;topology=none
//! ```
//!
//! Top-level fields are `;`-separated because axis *values* (defense,
//! topology and fault sub-specs) contain commas; multi-valued axes whose
//! values are comma-free (`device`, `family`, `iters`) separate values with
//! `+`, and the sub-spec axes (`faults`, `defense`) separate values with
//! `|`. Every field is optional and defaults to the smallest sensible
//! sweep; `none` denotes the empty fault plan / defense / topology.
//!
//! Fault sub-specs are carried *opaquely* at this layer (their parser lives
//! above, in `gpgpu-sim`); defense and topology sub-specs are validated and
//! canonicalized here. The service layer canonicalizes fault strings when
//! it builds cache keys, so two spellings of the same plan still dedupe.
//!
//! # Example
//!
//! ```
//! use gpgpu_spec::sweep::SweepRequest;
//!
//! let r = SweepRequest::from_spec("family=l1+atomic;iters=4+1").unwrap();
//! assert_eq!(SweepRequest::from_spec(&r.to_spec()).unwrap(), r);
//! assert_eq!(r.cells().len(), 4); // 2 families x 2 symbol times
//! ```

use crate::defense::DefenseSpec;
use crate::error::SpecError;
use crate::presets;
use crate::topology::TopologySpec;
use std::fmt;

/// The channel-family labels a sweep may name, in canonical order. These
/// mirror `ChannelFamily::ALL` in `gpgpu-covert`; the spec layer owns the
/// vocabulary so requests validate without a simulator dependency.
pub const FAMILY_LABELS: [&str; 5] = ["l1", "sync", "parallel-sfu", "atomic", "nvlink"];

/// A validated sweep grid: the cross product of devices × families × fault
/// plans × defenses × symbol times, over one pseudo-random message shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRequest {
    /// Device aliases (canonicalized through [`presets::by_name`]), the
    /// architecture axis. At least one; duplicates rejected.
    pub devices: Vec<String>,
    /// Channel-family labels from [`FAMILY_LABELS`]. At least one;
    /// duplicates rejected.
    pub families: Vec<String>,
    /// Per-bit iteration counts — the Figure-5 symbol-time axis. At least
    /// one; all positive; duplicates rejected.
    pub iterations: Vec<u64>,
    /// Message length in bits (one pseudo-random message per request).
    pub bits: u32,
    /// Seed for the pseudo-random message.
    pub seed: u64,
    /// Fault-plan sub-specs, the noise axis; `"none"` is the clean run.
    /// Opaque at this layer (validated by the service against the
    /// `gpgpu-sim` fault grammar). Duplicates rejected.
    pub faults: Vec<String>,
    /// Defense sub-specs, canonicalized through [`DefenseSpec`]; `"none"`
    /// is the undefended baseline. Duplicates (after canonicalization)
    /// rejected.
    pub defenses: Vec<String>,
    /// Topology sub-spec for nvlink cells, canonicalized through
    /// [`TopologySpec`]; `"none"` means single-GPU (nvlink cells then fail
    /// with a typed per-cell error rather than aborting the sweep).
    pub topology: String,
}

/// One point of a [`SweepRequest`] grid, in enumeration order. The cell
/// carries fully-resolved axis values; [`SweepCell::key`] renders the
/// canonical identity string the result cache is addressed by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCell {
    /// Canonical device alias.
    pub device: String,
    /// Channel-family label.
    pub family: String,
    /// Per-bit iteration count (symbol-time knob).
    pub iterations: u64,
    /// Message length in bits.
    pub bits: u32,
    /// Message seed.
    pub seed: u64,
    /// Fault-plan sub-spec (`"none"` = clean).
    pub faults: String,
    /// Canonical defense sub-spec (`"none"` = baseline).
    pub defense: String,
    /// Canonical topology sub-spec (`"none"` = single GPU).
    pub topology: String,
}

impl SweepCell {
    /// The canonical identity string of this cell: every axis value in
    /// fixed order. Distinct cells render distinct keys because each
    /// component grammar round-trips exactly (the `prop_serve` injectivity
    /// property), which is what makes the string safe to content-address.
    pub fn key(&self) -> String {
        format!(
            "device={};family={};iters={};bits={};seed={:#x};faults={};defense={};topology={}",
            self.device,
            self.family,
            self.iterations,
            self.bits,
            self.seed,
            self.faults,
            self.defense,
            self.topology,
        )
    }
}

impl fmt::Display for SweepCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key())
    }
}

/// Default symbol-time axis (the paper's error-free operating point).
const DEFAULT_ITERATIONS: u64 = 20;
/// Default message length.
const DEFAULT_BITS: u32 = 16;
/// Default message seed (matches the harness's seed prefix).
const DEFAULT_SEED: u64 = 0x5EED;

impl Default for SweepRequest {
    fn default() -> Self {
        SweepRequest {
            devices: vec!["kepler".to_string()],
            families: vec!["l1".to_string()],
            iterations: vec![DEFAULT_ITERATIONS],
            bits: DEFAULT_BITS,
            seed: DEFAULT_SEED,
            faults: vec!["none".to_string()],
            defenses: vec!["none".to_string()],
            topology: "none".to_string(),
        }
    }
}

impl SweepRequest {
    /// Validates axis contents: non-empty axes, known device aliases and
    /// family labels, positive iteration counts and bits, parseable defense
    /// and topology sub-specs, and no duplicate axis values (a doubled axis
    /// value is a typo, not intent — and it would alias cache cells).
    ///
    /// # Errors
    ///
    /// [`SpecError::InvalidSweep`] naming the offending field.
    pub fn validate(&self) -> Result<(), SpecError> {
        let invalid = |reason: String| Err(SpecError::InvalidSweep { reason });
        if self.devices.is_empty() {
            return invalid("device axis is empty".into());
        }
        if self.families.is_empty() {
            return invalid("family axis is empty".into());
        }
        if self.iterations.is_empty() {
            return invalid("iters axis is empty".into());
        }
        if self.faults.is_empty() {
            return invalid("faults axis is empty".into());
        }
        if self.defenses.is_empty() {
            return invalid("defense axis is empty".into());
        }
        if self.bits == 0 {
            return invalid("bits must be positive".into());
        }
        for d in &self.devices {
            if presets::by_name(d).is_none() {
                return invalid(format!("unknown device alias `{d}`"));
            }
        }
        for f in &self.families {
            if !FAMILY_LABELS.contains(&f.as_str()) {
                return invalid(format!(
                    "unknown family `{f}` (choose from {})",
                    FAMILY_LABELS.join(", ")
                ));
            }
        }
        for &it in &self.iterations {
            if it == 0 {
                return invalid("iters values must be positive".into());
            }
        }
        for f in &self.faults {
            if f.trim().is_empty() {
                return invalid("empty fault sub-spec (use `none`)".into());
            }
        }
        for d in &self.defenses {
            if d != "none" {
                DefenseSpec::from_spec(d).map_err(|e| SpecError::InvalidSweep {
                    reason: format!("defense axis: {e}"),
                })?;
            }
        }
        if self.topology != "none" {
            TopologySpec::from_spec(&self.topology)
                .map_err(|e| SpecError::InvalidSweep { reason: format!("topology: {e}") })?;
        }
        for (name, values) in [
            ("device", &self.devices),
            ("family", &self.families),
            ("faults", &self.faults),
            ("defense", &self.defenses),
        ] {
            for (i, v) in values.iter().enumerate() {
                if values[..i].contains(v) {
                    return invalid(format!("duplicate {name} axis value `{v}`"));
                }
            }
        }
        for (i, v) in self.iterations.iter().enumerate() {
            if self.iterations[..i].contains(v) {
                return invalid(format!("duplicate iters axis value `{v}`"));
            }
        }
        Ok(())
    }

    /// Parses the textual grammar (the CLI's `--request` argument):
    /// `;`-separated `key=value` fields, every field optional. See the
    /// module docs for the axis-value separators.
    ///
    /// # Errors
    ///
    /// [`SpecError::InvalidSweep`] for syntax errors, unknown keys,
    /// duplicate fields, and any [`SweepRequest::validate`] failure.
    pub fn from_spec(spec: &str) -> Result<Self, SpecError> {
        let invalid = |reason: String| SpecError::InvalidSweep { reason };
        let trimmed = spec.trim();
        if trimmed.is_empty() {
            return Err(invalid("empty sweep spec (the default grid is `default`)".into()));
        }
        let mut out = SweepRequest::default();
        if trimmed == "default" {
            return Ok(out);
        }
        let mut seen: Vec<&str> = Vec::new();
        for part in trimmed.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| invalid(format!("expected key=value, got `{part}`")))?;
            let key = key.trim();
            let value = value.trim();
            if seen.contains(&key) {
                return Err(invalid(format!("duplicate sweep field `{key}`")));
            }
            match key {
                "device" => {
                    out.devices = value
                        .split('+')
                        .map(|d| canonical_device(d.trim()))
                        .collect::<Result<_, _>>()?;
                }
                "family" => {
                    out.families = value.split('+').map(|f| f.trim().to_string()).collect();
                }
                "iters" => {
                    out.iterations = value
                        .split('+')
                        .map(|v| {
                            v.trim()
                                .parse()
                                .map_err(|_| invalid(format!("invalid iters value `{v}`")))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "bits" => {
                    out.bits =
                        value.parse().map_err(|_| invalid(format!("invalid bits `{value}`")))?;
                }
                "seed" => {
                    out.seed = parse_u64(value)
                        .ok_or_else(|| invalid(format!("invalid seed `{value}`")))?;
                }
                "faults" => {
                    out.faults = value.split('|').map(|f| f.trim().to_string()).collect();
                }
                "defense" => {
                    out.defenses = value
                        .split('|')
                        .map(|d| canonical_defense(d.trim()))
                        .collect::<Result<_, _>>()?;
                }
                "topology" => {
                    out.topology = if value == "none" {
                        "none".to_string()
                    } else {
                        TopologySpec::from_spec(value)
                            .map_err(|e| invalid(format!("topology: {e}")))?
                            .to_spec()
                    };
                }
                other => return Err(invalid(format!("unknown sweep field `{other}`"))),
            }
            // `seen` holds the canonical key name; `part` outlives the loop.
            seen.push(match key {
                "device" => "device",
                "family" => "family",
                "iters" => "iters",
                "bits" => "bits",
                "seed" => "seed",
                "faults" => "faults",
                "defense" => "defense",
                _ => "topology",
            });
        }
        out.validate()?;
        Ok(out)
    }

    /// Renders the canonical spec string: every field, fixed order, axis
    /// values in the declared order. `from_spec(to_spec(r)) == r` exactly.
    pub fn to_spec(&self) -> String {
        format!(
            "device={};family={};iters={};bits={};seed={:#x};faults={};defense={};topology={}",
            self.devices.join("+"),
            self.families.join("+"),
            self.iterations.iter().map(u64::to_string).collect::<Vec<_>>().join("+"),
            self.bits,
            self.seed,
            self.faults.join("|"),
            self.defenses.join("|"),
            self.topology,
        )
    }

    /// Enumerates the grid in deterministic order (device-major, then
    /// family, fault plan, defense, symbol time). Distinct requests whose
    /// grids overlap enumerate the shared cells with identical
    /// [`SweepCell::key`]s — that overlap is exactly what the service's
    /// content-addressed cache dedupes.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut out = Vec::with_capacity(
            self.devices.len()
                * self.families.len()
                * self.faults.len()
                * self.defenses.len()
                * self.iterations.len(),
        );
        for device in &self.devices {
            for family in &self.families {
                for faults in &self.faults {
                    for defense in &self.defenses {
                        for &iterations in &self.iterations {
                            out.push(SweepCell {
                                device: device.clone(),
                                family: family.clone(),
                                iterations,
                                bits: self.bits,
                                seed: self.seed,
                                faults: faults.clone(),
                                defense: defense.clone(),
                                topology: self.topology.clone(),
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for SweepRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_spec())
    }
}

/// Canonicalizes a device alias: any alias [`presets::by_name`] accepts maps
/// to its primary short name, so `K40C` and `kepler` address the same cells.
fn canonical_device(alias: &str) -> Result<String, SpecError> {
    let spec = presets::by_name(alias).ok_or_else(|| SpecError::InvalidSweep {
        reason: format!("unknown device alias `{alias}`"),
    })?;
    // Map back through the spec's architecture to the canonical short alias.
    Ok(spec.architecture.label().to_string())
}

/// Canonicalizes a defense sub-spec through [`DefenseSpec`].
fn canonical_defense(spec: &str) -> Result<String, SpecError> {
    if spec == "none" {
        return Ok("none".to_string());
    }
    let d = DefenseSpec::from_spec(spec)
        .map_err(|e| SpecError::InvalidSweep { reason: format!("defense axis: {e}") })?;
    if d.is_none() {
        return Ok("none".to_string());
    }
    Ok(d.to_spec())
}

/// Parses decimal or `0x` hex.
fn parse_u64(value: &str) -> Option<u64> {
    match value.strip_prefix("0x").or_else(|| value.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => value.parse().ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips() {
        let r = SweepRequest::default();
        assert_eq!(SweepRequest::from_spec(&r.to_spec()).unwrap(), r);
        assert_eq!(SweepRequest::from_spec("default").unwrap(), r);
    }

    #[test]
    fn full_grid_round_trips_and_enumerates() {
        let r = SweepRequest::from_spec(
            "device=kepler+fermi;family=l1+atomic;iters=1+4+20;bits=24;seed=0x7;\
             faults=none|seed=7,intensity=0.5;defense=none|partition=2",
        )
        .unwrap();
        assert_eq!(SweepRequest::from_spec(&r.to_spec()).unwrap(), r);
        // 2 devices x 2 families x 2 faults x 2 defenses x 3 symbol times.
        assert_eq!(r.cells().len(), 48);
        let keys: std::collections::HashSet<String> =
            r.cells().iter().map(SweepCell::key).collect();
        assert_eq!(keys.len(), 48, "grid keys must be pairwise distinct");
    }

    #[test]
    fn device_aliases_canonicalize() {
        let a = SweepRequest::from_spec("device=K40C").unwrap();
        let b = SweepRequest::from_spec("device=kepler").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.cells()[0].device, "kepler");
    }

    #[test]
    fn defense_axis_canonicalizes() {
        let r = SweepRequest::from_spec("defense=fuzz=4096,partition=2").unwrap();
        assert_eq!(r.defenses, vec!["partition=2,fuzz=4096".to_string()]);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "device=",
            "device=tpu",
            "family=l3",
            "iters=0",
            "iters=1+1",
            "bits=0",
            "defense=partition=1",
            "device=kepler;device=fermi",
            "family=l1+l1",
            "what=ever",
            "seed",
        ] {
            let err = SweepRequest::from_spec(bad).unwrap_err();
            assert!(
                matches!(err, SpecError::InvalidSweep { .. }),
                "`{bad}` must fail with InvalidSweep, got {err:?}"
            );
        }
    }

    #[test]
    fn nvlink_needs_no_topology_at_parse_time() {
        // The service degrades nvlink cells without a topology into typed
        // per-cell errors; the request itself stays valid.
        let r = SweepRequest::from_spec("family=nvlink").unwrap();
        assert_eq!(r.topology, "none");
        let t = SweepRequest::from_spec("family=nvlink;topology=devices=kepler+kepler,link=0-1")
            .unwrap();
        assert_ne!(t.topology, "none");
        assert_eq!(SweepRequest::from_spec(&t.to_spec()).unwrap(), t);
    }
}
