//! Device presets for the paper's three GPUs plus a modern Ampere part.
//!
//! Resource counts for the paper trio are the paper's Table 1; cache
//! geometries are the values the paper's Section 4.1 microbenchmarks
//! recover; functional-unit timing is calibrated in [`crate::fu::FuTiming`].
//! Launch overheads and memory timing are calibrated so the end-to-end
//! channel bandwidths land in the paper's ranges (see `EXPERIMENTS.md` for
//! paper-vs-measured). The RTX A4000 extends the matrix past the paper: its
//! sub-core decomposition and sectored L1 follow "Analyzing Modern NVIDIA
//! GPU cores" (see `crate::subcore`).

use crate::arch::Architecture;
use crate::cache::CacheSpec;
use crate::device::DeviceSpec;
use crate::fu::FuPools;
use crate::mem::MemorySpec;
use crate::sm::SmSpec;
use crate::subcore::{DependenceMode, SubCoreSpec};

/// NVIDIA Tesla C2075 (Fermi): 14 SMs, 2 warp schedulers per SM,
/// 32 SP / 16 DPU / 4 SFU / 16 LD-ST per SM, 1.15 GHz.
pub fn tesla_c2075() -> DeviceSpec {
    let sm = SmSpec {
        num_warp_schedulers: 2,
        dispatch_units: 2,
        pools: FuPools { sp: 32, dpu: 16, sfu: 4, ldst: 16 },
        max_threads: 1536,
        max_blocks: 8,
        shared_mem_bytes: 48 * 1024,
        max_shared_mem_per_block: 48 * 1024,
        registers: 32 * 1024,
    };
    DeviceSpec {
        name: "Tesla C2075".to_string(),
        architecture: Architecture::Fermi,
        num_sms: 14,
        clock_hz: 1_150_000_000,
        sub_core: SubCoreSpec::shared_issue(&sm),
        sm,
        // Fermi constant L1: 4 KB, 4-way, 64 B lines (16 sets).
        const_l1: CacheSpec::new(4 * 1024, 64, 4, 46, 1)
            .expect("Fermi constant L1 geometry is self-consistent"),
        // Constant L2: 32 KB, 8-way, 256 B lines (16 sets) on all three GPUs.
        const_l2: CacheSpec::new(32 * 1024, 256, 8, 110, 8)
            .expect("constant L2 geometry is self-consistent"),
        mem: MemorySpec {
            global_load_latency: 520,
            const_mem_latency: 245,
            atomic_base_latency: 340,
            // Fermi atomics are serviced at the memory controller, ~9x slower
            // than Kepler's L2-side units (paper Section 6).
            atomic_service_cycles: 9,
            atomic_uncoalesced_penalty: 1,
            atomic_units: 4,
            coalesce_segment: 128,
            transactions_per_cycle: 4,
        },
        launch_overhead_cycles: 15_000, // ~13 us at 1.15 GHz
    }
}

/// NVIDIA Tesla K40C (Kepler): 15 SMs, 4 warp schedulers / 8 dispatch units
/// per SM, 192 SP / 64 DPU / 32 SFU / 32 LD-ST per SM, 745 MHz.
pub fn tesla_k40c() -> DeviceSpec {
    let sm = SmSpec {
        num_warp_schedulers: 4,
        dispatch_units: 8,
        pools: FuPools { sp: 192, dpu: 64, sfu: 32, ldst: 32 },
        max_threads: 2048,
        max_blocks: 16,
        shared_mem_bytes: 48 * 1024,
        max_shared_mem_per_block: 48 * 1024,
        registers: 64 * 1024,
    };
    DeviceSpec {
        name: "Tesla K40C".to_string(),
        architecture: Architecture::Kepler,
        num_sms: 15,
        clock_hz: 745_000_000,
        sub_core: SubCoreSpec::shared_issue(&sm),
        sm,
        // Kepler constant L1: 2 KB, 4-way, 64 B lines (8 sets).
        const_l1: CacheSpec::new(2 * 1024, 64, 4, 49, 1)
            .expect("Kepler constant L1 geometry is self-consistent"),
        const_l2: CacheSpec::new(32 * 1024, 256, 8, 112, 8)
            .expect("constant L2 geometry is self-consistent"),
        mem: MemorySpec {
            global_load_latency: 450,
            const_mem_latency: 250,
            atomic_base_latency: 180,
            atomic_service_cycles: 1,
            atomic_uncoalesced_penalty: 9,
            atomic_units: 8,
            coalesce_segment: 128,
            transactions_per_cycle: 6,
        },
        launch_overhead_cycles: 8_000, // ~10.7 us at 745 MHz
    }
}

/// NVIDIA Quadro M4000 (Maxwell): 13 SMs split into four quadrants each,
/// 128 SP / 0 DPU / 32 SFU / 32 LD-ST per SM, 773 MHz.
pub fn quadro_m4000() -> DeviceSpec {
    let sm = SmSpec {
        num_warp_schedulers: 4,
        dispatch_units: 8,
        pools: FuPools { sp: 128, dpu: 0, sfu: 32, ldst: 32 },
        max_threads: 2048,
        max_blocks: 32,
        // Paper Section 8: "on our Maxwell GPU the maximum shared memory
        // per SM is twice the maximum shared memory per thread block".
        shared_mem_bytes: 96 * 1024,
        max_shared_mem_per_block: 48 * 1024,
        registers: 64 * 1024,
    };
    DeviceSpec {
        name: "Quadro M4000".to_string(),
        architecture: Architecture::Maxwell,
        num_sms: 13,
        clock_hz: 773_000_000,
        sub_core: SubCoreSpec::shared_issue(&sm),
        sm,
        // Maxwell constant L1: 2 KB, 4-way, 64 B lines (8 sets).
        const_l1: CacheSpec::new(2 * 1024, 64, 4, 49, 1)
            .expect("Maxwell constant L1 geometry is self-consistent"),
        const_l2: CacheSpec::new(32 * 1024, 256, 8, 112, 8)
            .expect("constant L2 geometry is self-consistent"),
        mem: MemorySpec {
            global_load_latency: 440,
            const_mem_latency: 250,
            atomic_base_latency: 170,
            atomic_service_cycles: 1,
            atomic_uncoalesced_penalty: 9,
            atomic_units: 8,
            coalesce_segment: 128,
            transactions_per_cycle: 6,
        },
        launch_overhead_cycles: 8_200, // ~10.6 us at 773 MHz
    }
}

/// NVIDIA RTX A4000 (Ampere, GA104-class): 48 SMs, each split into four
/// single-issue sub-cores with private 16 K register slices; dependences
/// managed by compiler fixed-latency hints; sectored constant L1 (32 B
/// sectors in 128 B lines). FP64 is modelled as absent (GA104 runs doubles
/// at 1/64 rate through a vestigial pool, like Maxwell's omission in the
/// paper's Figure 7).
pub fn rtx_a4000() -> DeviceSpec {
    let sm = SmSpec {
        num_warp_schedulers: 4,
        dispatch_units: 4, // one issue slot per sub-core (single-issue)
        pools: FuPools { sp: 128, dpu: 0, sfu: 16, ldst: 16 },
        max_threads: 1536,
        max_blocks: 16,
        shared_mem_bytes: 96 * 1024,
        max_shared_mem_per_block: 48 * 1024,
        registers: 64 * 1024,
    };
    DeviceSpec {
        name: "RTX A4000".to_string(),
        architecture: Architecture::Ampere,
        num_sms: 48,
        clock_hz: 1_560_000_000,
        sub_core: SubCoreSpec {
            sub_cores: 4,
            issue_slots: 1,
            registers_per_subcore: 16 * 1024,
            dependence: DependenceMode::FixedLatency,
        },
        sm,
        // Ampere constant L1: 4 KB, 4-way, 128 B lines (8 sets), filled at
        // 32 B sector granularity.
        const_l1: CacheSpec::new_sectored(4 * 1024, 128, 4, 32, 32, 1)
            .expect("Ampere constant L1 geometry is self-consistent"),
        const_l2: CacheSpec::new(32 * 1024, 256, 8, 100, 8)
            .expect("constant L2 geometry is self-consistent"),
        mem: MemorySpec {
            global_load_latency: 400,
            const_mem_latency: 215,
            atomic_base_latency: 150,
            atomic_service_cycles: 1,
            atomic_uncoalesced_penalty: 9,
            atomic_units: 16,
            coalesce_segment: 128,
            transactions_per_cycle: 8,
        },
        launch_overhead_cycles: 7_800, // ~5 us at 1.56 GHz
    }
}

/// Every modelled single-device GPU, in generation order (Fermi, Kepler,
/// Maxwell, Ampere) — one preset per [`Architecture::ALL`] entry, asserted
/// by a test so the matrix grows with the enum.
pub fn all() -> Vec<DeviceSpec> {
    vec![tesla_c2075(), tesla_k40c(), quadro_m4000(), rtx_a4000()]
}

/// The three GPUs the paper evaluates, in generation order. Paper-figure
/// comparisons zip this with per-GPU data from the paper, so it must *not*
/// grow when a post-paper generation is added — matrix-style consumers use
/// [`all`] instead.
pub fn paper_trio() -> Vec<DeviceSpec> {
    vec![tesla_c2075(), tesla_k40c(), quadro_m4000()]
}

/// Resolves a user-supplied device name or alias to its preset.
///
/// Accepts the architecture name, the short model name, or the full
/// marketing name, case-insensitively: `fermi`/`c2075`/`tesla-c2075`,
/// `kepler`/`k40c`/`tesla-k40c`, `maxwell`/`m4000`/`quadro-m4000`,
/// `ampere`/`a4000`/`rtx-a4000`. Returns `None` for anything else so
/// callers can produce a typed error instead of panicking on user input.
pub fn by_name(name: &str) -> Option<DeviceSpec> {
    match name.to_ascii_lowercase().as_str() {
        "fermi" | "c2075" | "tesla-c2075" | "tesla c2075" => Some(tesla_c2075()),
        "kepler" | "k40c" | "tesla-k40c" | "tesla k40c" => Some(tesla_k40c()),
        "maxwell" | "m4000" | "quadro-m4000" | "quadro m4000" => Some(quadro_m4000()),
        "ampere" | "a4000" | "rtx-a4000" | "rtx a4000" => Some(rtx_a4000()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::FuUnit;

    #[test]
    fn table1_resource_counts() {
        let f = tesla_c2075();
        assert_eq!(
            (
                f.sm.num_warp_schedulers,
                f.sm.dispatch_units,
                f.sm.pools.sp,
                f.sm.pools.dpu,
                f.sm.pools.sfu,
                f.sm.pools.ldst
            ),
            (2, 2, 32, 16, 4, 16)
        );
        let k = tesla_k40c();
        assert_eq!(
            (
                k.sm.num_warp_schedulers,
                k.sm.dispatch_units,
                k.sm.pools.sp,
                k.sm.pools.dpu,
                k.sm.pools.sfu,
                k.sm.pools.ldst
            ),
            (4, 8, 192, 64, 32, 32)
        );
        let m = quadro_m4000();
        assert_eq!(
            (
                m.sm.num_warp_schedulers,
                m.sm.dispatch_units,
                m.sm.pools.sp,
                m.sm.pools.dpu,
                m.sm.pools.sfu,
                m.sm.pools.ldst
            ),
            (4, 8, 128, 0, 32, 32)
        );
    }

    #[test]
    fn sm_counts_and_k40c_example() {
        // "the Nvidia Tesla K40C includes 15 SMs, each featuring 192
        // single-precision CUDA cores" (paper Section 2).
        assert_eq!(tesla_k40c().num_sms, 15);
        assert_eq!(tesla_c2075().num_sms, 14);
        assert_eq!(quadro_m4000().num_sms, 13);
        assert_eq!(rtx_a4000().num_sms, 48);
    }

    #[test]
    fn cache_geometries_match_section_4_1() {
        let k = tesla_k40c();
        assert_eq!(k.const_l1.geometry.size_bytes(), 2048);
        assert_eq!(k.const_l1.geometry.ways(), 4);
        assert_eq!(k.const_l1.geometry.line_bytes(), 64);
        assert_eq!(k.const_l2.geometry.size_bytes(), 32 * 1024);
        assert_eq!(k.const_l2.geometry.ways(), 8);
        assert_eq!(k.const_l2.geometry.line_bytes(), 256);
        // Fermi's L1 is 4 KB; its L2 matches Kepler/Maxwell.
        let f = tesla_c2075();
        assert_eq!(f.const_l1.geometry.size_bytes(), 4096);
        assert_eq!(f.const_l2.geometry, tesla_k40c().const_l2.geometry);
    }

    #[test]
    fn only_the_ampere_l1_is_sectored() {
        for d in paper_trio() {
            assert!(!d.const_l1.geometry.is_sectored(), "{}", d.name);
            assert!(!d.const_l2.geometry.is_sectored(), "{}", d.name);
        }
        let a = rtx_a4000();
        assert!(a.const_l1.geometry.is_sectored());
        assert_eq!(a.const_l1.geometry.sector_bytes(), 32);
        assert_eq!(a.const_l1.geometry.sectors_per_line(), 4);
        assert_eq!(a.const_l1.geometry.num_sets(), 8);
        assert!(!a.const_l2.geometry.is_sectored(), "only the L1 is sectored");
    }

    #[test]
    fn sub_core_specs_mirror_sm_schedulers_and_descriptors() {
        for d in all() {
            d.sub_core.validate_against(&d.sm).unwrap_or_else(|e| panic!("{}: {e}", d.name));
            assert_eq!(
                d.sub_core,
                d.architecture.descriptor().sub_core,
                "{}: preset sub-core departs from the canonical arch descriptor",
                d.name
            );
            let sector = d.architecture.descriptor().l1_sector;
            let geom = d.const_l1.geometry;
            match sector {
                None => assert!(!geom.is_sectored(), "{}", d.name),
                Some((bytes, per_line)) => {
                    assert_eq!(geom.sector_bytes(), bytes, "{}", d.name);
                    assert_eq!(geom.sectors_per_line(), per_line, "{}", d.name);
                }
            }
        }
    }

    #[test]
    fn atomic_throughput_ratio_is_9x() {
        let f = tesla_c2075();
        let k = tesla_k40c();
        assert_eq!(f.mem.atomic_service_cycles / k.mem.atomic_service_cycles, 9);
    }

    #[test]
    fn maxwell_shared_memory_is_double_block_max() {
        let m = quadro_m4000();
        assert_eq!(m.sm.shared_mem_bytes, 2 * m.sm.max_shared_mem_per_block);
        let k = tesla_k40c();
        assert_eq!(k.sm.shared_mem_bytes, k.sm.max_shared_mem_per_block);
    }

    #[test]
    fn maxwell_and_ampere_have_no_dpus() {
        assert_eq!(quadro_m4000().sm.pools.count(FuUnit::Dpu), 0);
        assert_eq!(rtx_a4000().sm.pools.count(FuUnit::Dpu), 0);
    }

    #[test]
    fn all_returns_generation_order_and_tracks_the_arch_enum() {
        let devices = all();
        let names: Vec<&str> = devices.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["Tesla C2075", "Tesla K40C", "Quadro M4000", "RTX A4000"]);
        // One preset per architecture, in enum order — the property that
        // lets matrix consumers iterate `Architecture::ALL`.
        assert_eq!(devices.len(), Architecture::ALL.len());
        for (d, a) in devices.iter().zip(Architecture::ALL) {
            assert_eq!(d.architecture, a);
        }
        let trio: Vec<String> = paper_trio().into_iter().map(|d| d.name).collect();
        assert_eq!(trio, vec!["Tesla C2075", "Tesla K40C", "Quadro M4000"]);
    }

    #[test]
    fn by_name_resolves_aliases_case_insensitively() {
        assert_eq!(by_name("kepler").unwrap().name, "Tesla K40C");
        assert_eq!(by_name("K40C").unwrap().name, "Tesla K40C");
        assert_eq!(by_name("Tesla-K40C").unwrap().name, "Tesla K40C");
        assert_eq!(by_name("fermi").unwrap().name, "Tesla C2075");
        assert_eq!(by_name("maxwell").unwrap().name, "Quadro M4000");
        assert_eq!(by_name("quadro m4000").unwrap().name, "Quadro M4000");
        assert_eq!(by_name("ampere").unwrap().name, "RTX A4000");
        assert_eq!(by_name("A4000").unwrap().name, "RTX A4000");
        assert_eq!(by_name("rtx-a4000").unwrap().name, "RTX A4000");
        assert!(by_name("volta").is_none());
        assert!(by_name("").is_none());
    }

    #[test]
    fn every_arch_label_resolves_to_its_preset() {
        for arch in Architecture::ALL {
            let d = by_name(arch.label()).expect("every generation has a preset alias");
            assert_eq!(d.architecture, arch);
        }
    }
}
