//! Kernel launch configurations and per-block resource accounting.

use crate::error::SpecError;
use crate::sm::SmSpec;
use crate::WARP_SIZE;

/// Resources one thread block consumes on the SM it is placed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockResources {
    /// Threads per block.
    pub threads: u32,
    /// Static shared memory per block, in bytes.
    pub shared_mem_bytes: u64,
    /// Registers per thread.
    pub registers_per_thread: u32,
}

impl BlockResources {
    /// Registers consumed by the whole block.
    pub fn total_registers(&self) -> u64 {
        u64::from(self.threads) * u64::from(self.registers_per_thread)
    }

    /// Warps per block (`ceil(threads / 32)`).
    pub fn warps(&self) -> u32 {
        self.threads.div_ceil(WARP_SIZE)
    }
}

/// A kernel launch configuration: grid size plus per-block resources.
///
/// This is the attacker-controlled knob of the paper's Section 3 ("the spy
/// and the trojan can set up their kernel parameters to achieve co-location
/// on the same SM and if desired on the same warp scheduler") and Section 8
/// (resource saturation for exclusive co-location).
///
/// # Example
///
/// ```
/// use gpgpu_spec::LaunchConfig;
///
/// // The K40C co-residency recipe from Section 3.1: 15 blocks x 4 warps.
/// let cfg = LaunchConfig::new(15, 128);
/// assert_eq!(cfg.block.warps(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub grid_blocks: u32,
    /// Per-block resources.
    pub block: BlockResources,
}

impl LaunchConfig {
    /// A launch of `grid_blocks` blocks of `threads_per_block` threads with
    /// no shared memory and a nominal register footprint.
    pub fn new(grid_blocks: u32, threads_per_block: u32) -> Self {
        LaunchConfig {
            grid_blocks,
            block: BlockResources {
                threads: threads_per_block,
                shared_mem_bytes: 0,
                registers_per_thread: 16,
            },
        }
    }

    /// Builder-style: set per-block shared memory.
    pub fn with_shared_mem(mut self, bytes: u64) -> Self {
        self.block.shared_mem_bytes = bytes;
        self
    }

    /// Builder-style: set registers per thread.
    pub fn with_registers_per_thread(mut self, regs: u32) -> Self {
        self.block.registers_per_thread = regs;
        self
    }

    /// Validates that the launch is well-formed and that at least one block
    /// fits on an SM of `sm` (otherwise the kernel could never start).
    ///
    /// # Errors
    ///
    /// * [`SpecError::ZeroLaunchField`] for zero `grid_blocks` or `threads`.
    /// * [`SpecError::BlockExceedsSmResources`] if one block over-commits
    ///   threads, shared memory or registers of a whole SM.
    pub fn validate(&self, sm: &SmSpec) -> Result<(), SpecError> {
        if self.grid_blocks == 0 {
            return Err(SpecError::ZeroLaunchField { field: "grid_blocks" });
        }
        if self.block.threads == 0 {
            return Err(SpecError::ZeroLaunchField { field: "threads" });
        }
        if self.block.threads > sm.max_threads {
            return Err(SpecError::BlockExceedsSmResources {
                resource: "threads",
                requested: u64::from(self.block.threads),
                available: u64::from(sm.max_threads),
            });
        }
        if self.block.shared_mem_bytes > sm.max_shared_mem_per_block {
            return Err(SpecError::BlockExceedsSmResources {
                resource: "shared memory bytes",
                requested: self.block.shared_mem_bytes,
                available: sm.max_shared_mem_per_block,
            });
        }
        if self.block.total_registers() > u64::from(sm.registers) {
            return Err(SpecError::BlockExceedsSmResources {
                resource: "registers",
                requested: self.block.total_registers(),
                available: u64::from(sm.registers),
            });
        }
        Ok(())
    }

    /// Total warps launched across the grid.
    pub fn total_warps(&self) -> u64 {
        u64::from(self.grid_blocks) * u64::from(self.block.warps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fu::FuPools;

    fn sm() -> SmSpec {
        SmSpec {
            num_warp_schedulers: 4,
            dispatch_units: 8,
            pools: FuPools { sp: 192, dpu: 64, sfu: 32, ldst: 32 },
            max_threads: 2048,
            max_blocks: 16,
            shared_mem_bytes: 48 * 1024,
            max_shared_mem_per_block: 48 * 1024,
            registers: 65536,
        }
    }

    #[test]
    fn valid_basic_launch() {
        assert!(LaunchConfig::new(15, 128).validate(&sm()).is_ok());
    }

    #[test]
    fn rejects_zero_blocks_and_threads() {
        assert_eq!(
            LaunchConfig::new(0, 128).validate(&sm()),
            Err(SpecError::ZeroLaunchField { field: "grid_blocks" })
        );
        assert_eq!(
            LaunchConfig::new(1, 0).validate(&sm()),
            Err(SpecError::ZeroLaunchField { field: "threads" })
        );
    }

    #[test]
    fn rejects_block_larger_than_sm() {
        let cfg = LaunchConfig::new(1, 4096);
        assert!(matches!(
            cfg.validate(&sm()),
            Err(SpecError::BlockExceedsSmResources { resource: "threads", .. })
        ));
    }

    #[test]
    fn rejects_overcommitted_shared_memory() {
        let cfg = LaunchConfig::new(1, 32).with_shared_mem(64 * 1024);
        assert!(matches!(
            cfg.validate(&sm()),
            Err(SpecError::BlockExceedsSmResources { resource: "shared memory bytes", .. })
        ));
    }

    #[test]
    fn rejects_overcommitted_registers() {
        let cfg = LaunchConfig::new(1, 1024).with_registers_per_thread(128);
        assert!(matches!(
            cfg.validate(&sm()),
            Err(SpecError::BlockExceedsSmResources { resource: "registers", .. })
        ));
    }

    #[test]
    fn warp_rounding() {
        assert_eq!(LaunchConfig::new(1, 1).block.warps(), 1);
        assert_eq!(LaunchConfig::new(1, 32).block.warps(), 1);
        assert_eq!(LaunchConfig::new(1, 33).block.warps(), 2);
        assert_eq!(LaunchConfig::new(3, 128).total_warps(), 12);
    }
}
