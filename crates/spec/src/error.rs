//! Error type for specification validation.

use std::error::Error;
use std::fmt;

/// Error returned when a specification or launch configuration is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A cache geometry field is zero or not self-consistent (size must be
    /// a multiple of `line * ways`, and all must be powers of two).
    InvalidCacheGeometry {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A launch configuration requests more of a resource than one SM owns,
    /// so not even a single block could ever be scheduled.
    BlockExceedsSmResources {
        /// Which resource overflows ("threads", "shared memory", "registers", "warps").
        resource: &'static str,
        /// Amount requested by one block.
        requested: u64,
        /// Amount available on one SM.
        available: u64,
    },
    /// A launch configuration field is zero where a positive value is required.
    ZeroLaunchField {
        /// Name of the offending field.
        field: &'static str,
    },
    /// The target device has no units of the class an operation requires
    /// (e.g. double-precision ops on Maxwell).
    UnsupportedUnit {
        /// The missing unit class, as text.
        unit: String,
        /// The device name.
        device: String,
    },
    /// A multi-GPU topology spec string or structure is malformed
    /// (unknown device name, link endpoint out of range, zero timing field).
    InvalidTopology {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A defense spec string or composition is malformed (unknown key,
    /// out-of-range parameter, or two components of the same kind with
    /// different parameters).
    InvalidDefense {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A sweep-request spec string is malformed (unknown field, empty or
    /// duplicated axis value, unknown device/family, or an invalid nested
    /// defense/topology sub-spec).
    InvalidSweep {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A sub-core descriptor or arch spec string is malformed (unknown key
    /// or architecture label, missing field, or a decomposition that does
    /// not mirror the SM's scheduler fields).
    InvalidSubCore {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::InvalidCacheGeometry { reason } => {
                write!(f, "invalid cache geometry: {reason}")
            }
            SpecError::BlockExceedsSmResources { resource, requested, available } => {
                write!(f, "block requests {requested} {resource} but an SM has only {available}")
            }
            SpecError::ZeroLaunchField { field } => {
                write!(f, "launch configuration field `{field}` must be positive")
            }
            SpecError::UnsupportedUnit { unit, device } => {
                write!(f, "device `{device}` has no {unit} units")
            }
            SpecError::InvalidTopology { reason } => {
                write!(f, "invalid topology: {reason}")
            }
            SpecError::InvalidDefense { reason } => {
                write!(f, "invalid defense: {reason}")
            }
            SpecError::InvalidSweep { reason } => {
                write!(f, "invalid sweep request: {reason}")
            }
            SpecError::InvalidSubCore { reason } => {
                write!(f, "invalid sub-core spec: {reason}")
            }
        }
    }
}

impl Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let e = SpecError::ZeroLaunchField { field: "grid_blocks" };
        let s = e.to_string();
        assert!(!s.is_empty());
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpecError>();
    }
}
