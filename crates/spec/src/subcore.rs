//! Sub-core (issue-partition) descriptors.
//!
//! "Analyzing Modern NVIDIA GPU cores" documents the post-Volta SM
//! organization: each SM is split into *sub-cores*, each owning a private
//! register-file slice, a single issue slot and a private slice of the
//! functional units, with instruction dependences managed by
//! compiler-scheduled fixed-latency hints (control words) instead of a pure
//! hardware scoreboard. The three paper-era generations are the degenerate
//! case of the same decomposition: every warp scheduler is a "sub-core"
//! whose ports partition the SM pools (quadrants on Maxwell, soft-shared on
//! Fermi/Kepler) and whose dependences are scoreboarded.
//!
//! [`SubCoreSpec`] carries the per-device configuration; [`ArchDescriptor`]
//! is the per-*generation* canonical descriptor with a round-tripping
//! textual grammar (used as a content-addressable spec key, like the
//! topology/defense/sweep grammars).

use crate::arch::Architecture;
use crate::error::SpecError;
use crate::sm::SmSpec;
use std::fmt;

/// How a warp's next instruction waits for the previous one's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DependenceMode {
    /// Hardware scoreboard: the warp stalls until the full pipeline depth
    /// has drained (Fermi through Maxwell).
    Scoreboard,
    /// Compiler-scheduled fixed-latency hints (Volta and later): the
    /// compiler pads dependent consumers at schedule time, so the warp's
    /// *issue* stream is serialized only by unit occupancy while the
    /// pipeline depth stays hidden behind the hints.
    FixedLatency,
}

impl DependenceMode {
    fn grammar_token(self) -> &'static str {
        match self {
            DependenceMode::Scoreboard => "scoreboard",
            DependenceMode::FixedLatency => "fixed",
        }
    }

    fn from_grammar_token(tok: &str) -> Option<Self> {
        match tok {
            "scoreboard" => Some(DependenceMode::Scoreboard),
            "fixed" => Some(DependenceMode::FixedLatency),
            _ => None,
        }
    }
}

impl fmt::Display for DependenceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.grammar_token())
    }
}

/// Per-device sub-core configuration, carried on
/// [`crate::DeviceSpec::sub_core`].
///
/// The sub-core count and issue slots mirror the scheduler fields of
/// [`SmSpec`] (one sub-core per warp scheduler); the register-file slice is
/// an equal partition of the SM file. [`SubCoreSpec::validate_against`]
/// enforces the mirror so the engine can index ports by scheduler id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubCoreSpec {
    /// Issue partitions per SM — one per warp scheduler.
    pub sub_cores: u32,
    /// Instruction issue slots per sub-core per cycle.
    pub issue_slots: u32,
    /// 32-bit registers in this sub-core's private register-file slice.
    pub registers_per_subcore: u32,
    /// Dependence-management style.
    pub dependence: DependenceMode,
}

impl SubCoreSpec {
    /// The degenerate legacy configuration for `sm`: one scoreboarded
    /// sub-core per warp scheduler, register file equally partitioned.
    /// Fermi/Kepler/Maxwell devices are all constructed through this, which
    /// is what keeps them bit-identical to the pre-sub-core engine.
    pub fn shared_issue(sm: &SmSpec) -> SubCoreSpec {
        SubCoreSpec {
            sub_cores: sm.num_warp_schedulers,
            issue_slots: sm.dispatch_per_scheduler(),
            registers_per_subcore: sm.registers / sm.num_warp_schedulers.max(1),
            dependence: DependenceMode::Scoreboard,
        }
    }

    /// Checks the sub-core decomposition mirrors `sm`'s scheduler fields.
    ///
    /// # Errors
    ///
    /// [`SpecError::InvalidSubCore`] when the sub-core count differs from
    /// the warp-scheduler count, the issue slots differ from the dispatch
    /// width, or the register slices don't tile the SM register file.
    pub fn validate_against(&self, sm: &SmSpec) -> Result<(), SpecError> {
        let fail = |reason: String| Err(SpecError::InvalidSubCore { reason });
        if self.sub_cores != sm.num_warp_schedulers {
            return fail(format!(
                "sub-core count ({}) must equal the warp-scheduler count ({})",
                self.sub_cores, sm.num_warp_schedulers
            ));
        }
        if self.issue_slots != sm.dispatch_per_scheduler() {
            return fail(format!(
                "issue slots per sub-core ({}) must equal the dispatch width ({})",
                self.issue_slots,
                sm.dispatch_per_scheduler()
            ));
        }
        if self.sub_cores * self.registers_per_subcore != sm.registers {
            return fail(format!(
                "register slices ({} x {}) must tile the SM register file ({})",
                self.sub_cores, self.registers_per_subcore, sm.registers
            ));
        }
        Ok(())
    }
}

/// Canonical per-generation descriptor: the sub-core decomposition plus the
/// sectored-L1 geometry, with a round-tripping textual grammar.
///
/// # Example
///
/// ```
/// use gpgpu_spec::{ArchDescriptor, Architecture};
///
/// let d = Architecture::Ampere.descriptor();
/// assert_eq!(d.to_spec(), "arch=ampere;subcores=4;issue=1;regs=16384;dep=fixed;sector=32x4");
/// assert_eq!(ArchDescriptor::parse(&d.to_spec()).unwrap(), d);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArchDescriptor {
    /// The generation this descriptor describes.
    pub arch: Architecture,
    /// Sub-core decomposition (see [`SubCoreSpec`]).
    pub sub_core: SubCoreSpec,
    /// L1 sectoring as `(sector_bytes, sectors_per_line)`; `None` when
    /// fills are whole-line (the legacy generations).
    pub l1_sector: Option<(u64, u64)>,
}

impl ArchDescriptor {
    /// Renders the canonical spec string, e.g.
    /// `arch=ampere;subcores=4;issue=1;regs=16384;dep=fixed;sector=32x4`.
    pub fn to_spec(&self) -> String {
        let sector = match self.l1_sector {
            None => "none".to_string(),
            Some((bytes, per_line)) => format!("{bytes}x{per_line}"),
        };
        format!(
            "arch={};subcores={};issue={};regs={};dep={};sector={}",
            self.arch.label(),
            self.sub_core.sub_cores,
            self.sub_core.issue_slots,
            self.sub_core.registers_per_subcore,
            self.sub_core.dependence,
            sector
        )
    }

    /// Parses a spec string produced by [`ArchDescriptor::to_spec`].
    ///
    /// # Errors
    ///
    /// [`SpecError::InvalidSubCore`] on unknown keys, missing fields,
    /// malformed numbers, or an unknown architecture label.
    pub fn parse(spec: &str) -> Result<ArchDescriptor, SpecError> {
        let fail = |reason: String| Err(SpecError::InvalidSubCore { reason });
        let mut arch = None;
        let mut sub_cores = None;
        let mut issue = None;
        let mut regs = None;
        let mut dep = None;
        let mut sector = None;
        for field in spec.split(';') {
            let Some((key, value)) = field.split_once('=') else {
                return fail(format!("field `{field}` is not key=value"));
            };
            match key {
                "arch" => {
                    arch = Some(Architecture::from_label(value).ok_or_else(|| {
                        SpecError::InvalidSubCore {
                            reason: format!("unknown architecture `{value}`"),
                        }
                    })?);
                }
                "subcores" | "issue" | "regs" => {
                    let n: u32 = value.parse().map_err(|_| SpecError::InvalidSubCore {
                        reason: format!("`{key}` value `{value}` is not a number"),
                    })?;
                    match key {
                        "subcores" => sub_cores = Some(n),
                        "issue" => issue = Some(n),
                        _ => regs = Some(n),
                    }
                }
                "dep" => {
                    dep = Some(DependenceMode::from_grammar_token(value).ok_or_else(|| {
                        SpecError::InvalidSubCore {
                            reason: format!("unknown dependence mode `{value}`"),
                        }
                    })?);
                }
                "sector" => {
                    sector = Some(if value == "none" {
                        None
                    } else {
                        let Some((bytes, per_line)) = value.split_once('x') else {
                            return fail(format!("sector `{value}` is not BYTESxCOUNT or none"));
                        };
                        let parse = |s: &str| {
                            s.parse::<u64>().map_err(|_| SpecError::InvalidSubCore {
                                reason: format!("sector component `{s}` is not a number"),
                            })
                        };
                        Some((parse(bytes)?, parse(per_line)?))
                    });
                }
                _ => return fail(format!("unknown key `{key}`")),
            }
        }
        let missing = |name: &str| SpecError::InvalidSubCore {
            reason: format!("missing required field `{name}`"),
        };
        Ok(ArchDescriptor {
            arch: arch.ok_or_else(|| missing("arch"))?,
            sub_core: SubCoreSpec {
                sub_cores: sub_cores.ok_or_else(|| missing("subcores"))?,
                issue_slots: issue.ok_or_else(|| missing("issue"))?,
                registers_per_subcore: regs.ok_or_else(|| missing("regs"))?,
                dependence: dep.ok_or_else(|| missing("dep"))?,
            },
            l1_sector: sector.ok_or_else(|| missing("sector"))?,
        })
    }
}

impl Architecture {
    /// The canonical sub-core descriptor of this generation, matching the
    /// [`crate::presets`] device of the same generation (asserted by a
    /// preset test).
    pub fn descriptor(self) -> ArchDescriptor {
        let (sub_cores, issue_slots, registers_per_subcore, dependence, l1_sector) = match self {
            // Fermi: 2 schedulers sharing one 32 K register file.
            Architecture::Fermi => (2, 1, 16 * 1024, DependenceMode::Scoreboard, None),
            // Kepler: 4 schedulers, dual-issue, 64 K registers.
            Architecture::Kepler => (4, 2, 16 * 1024, DependenceMode::Scoreboard, None),
            // Maxwell: 4 quadrants, dual-issue, 64 K registers.
            Architecture::Maxwell => (4, 2, 16 * 1024, DependenceMode::Scoreboard, None),
            // Ampere: 4 single-issue sub-cores with private 16 K register
            // slices, fixed-latency dependence hints, 32 B sectors in
            // 128 B L1 lines.
            Architecture::Ampere => (4, 1, 16 * 1024, DependenceMode::FixedLatency, Some((32, 4))),
        };
        ArchDescriptor {
            arch: self,
            sub_core: SubCoreSpec { sub_cores, issue_slots, registers_per_subcore, dependence },
            l1_sector,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips_every_generation() {
        for arch in Architecture::ALL {
            let d = arch.descriptor();
            assert_eq!(ArchDescriptor::parse(&d.to_spec()).unwrap(), d, "{arch}");
        }
    }

    #[test]
    fn specs_are_injective_across_generations() {
        let specs: Vec<String> =
            Architecture::ALL.iter().map(|a| a.descriptor().to_spec()).collect();
        for (i, a) in specs.iter().enumerate() {
            for b in specs.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn only_ampere_departs_from_the_legacy_decomposition() {
        for arch in [Architecture::Fermi, Architecture::Kepler, Architecture::Maxwell] {
            let d = arch.descriptor();
            assert_eq!(d.sub_core.dependence, DependenceMode::Scoreboard, "{arch}");
            assert_eq!(d.l1_sector, None, "{arch}");
        }
        let a = Architecture::Ampere.descriptor();
        assert_eq!(a.sub_core.dependence, DependenceMode::FixedLatency);
        assert_eq!(a.l1_sector, Some((32, 4)));
        assert_eq!(a.sub_core.issue_slots, 1, "Ampere sub-cores are single-issue");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(ArchDescriptor::parse("").is_err());
        assert!(ArchDescriptor::parse(
            "arch=volta;subcores=4;issue=1;regs=1;dep=fixed;sector=none"
        )
        .is_err());
        assert!(
            ArchDescriptor::parse("arch=ampere;subcores=4;issue=1;regs=16384;dep=fixed").is_err(),
            "missing sector field"
        );
        assert!(ArchDescriptor::parse(
            "arch=ampere;subcores=4;issue=1;regs=16384;dep=fixed;sector=32"
        )
        .is_err());
        assert!(ArchDescriptor::parse(
            "arch=ampere;subcores=4;issue=1;regs=16384;dep=eager;sector=none"
        )
        .is_err());
    }

    #[test]
    fn validate_against_enforces_the_scheduler_mirror() {
        let sm = SmSpec {
            num_warp_schedulers: 4,
            dispatch_units: 4,
            pools: crate::FuPools { sp: 128, dpu: 0, sfu: 16, ldst: 16 },
            max_threads: 1536,
            max_blocks: 16,
            shared_mem_bytes: 96 * 1024,
            max_shared_mem_per_block: 48 * 1024,
            registers: 64 * 1024,
        };
        let good = SubCoreSpec {
            sub_cores: 4,
            issue_slots: 1,
            registers_per_subcore: 16 * 1024,
            dependence: DependenceMode::FixedLatency,
        };
        assert!(good.validate_against(&sm).is_ok());
        assert!(SubCoreSpec { sub_cores: 2, ..good }.validate_against(&sm).is_err());
        assert!(SubCoreSpec { issue_slots: 2, ..good }.validate_against(&sm).is_err());
        assert!(SubCoreSpec { registers_per_subcore: 8 * 1024, ..good }
            .validate_against(&sm)
            .is_err());
    }

    #[test]
    fn shared_issue_matches_legacy_descriptors() {
        let sm = SmSpec {
            num_warp_schedulers: 4,
            dispatch_units: 8,
            pools: crate::FuPools { sp: 192, dpu: 64, sfu: 32, ldst: 32 },
            max_threads: 2048,
            max_blocks: 16,
            shared_mem_bytes: 48 * 1024,
            max_shared_mem_per_block: 48 * 1024,
            registers: 64 * 1024,
        };
        let sc = SubCoreSpec::shared_issue(&sm);
        assert_eq!(sc, Architecture::Kepler.descriptor().sub_core);
        assert!(sc.validate_against(&sm).is_ok());
    }
}
