//! Functional-unit pools and per-operation timing.
//!
//! The simulator's contention model (see `gpgpu-sim`) statically partitions
//! each SM's functional units among its warp schedulers — the paper's key
//! Section 5 finding is that *"contention is isolated to warps belonging to
//! the same warp scheduler"*, on Maxwell because the quadrants physically own
//! their units, and empirically also on Fermi/Kepler despite soft sharing.
//!
//! For a warp-level operation the scheduler's share of units services the 32
//! lanes over `ceil(32 / share) * micro_ops` cycles of *issue occupancy*,
//! after which the result emerges `pipeline_depth` cycles later. A warp
//! running a dependent timing loop therefore observes
//!
//! ```text
//! latency ~= max(pipeline_depth + occupancy, warps_on_scheduler * occupancy / ports)
//! ```
//!
//! which produces exactly the flat-then-stepped curves of the paper's
//! Figures 6 and 7.

use crate::arch::{Architecture, FuOpKind, FuUnit};
use crate::WARP_SIZE;

/// Number of functional units of each class on one SM (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuPools {
    /// Single-precision CUDA cores.
    pub sp: u32,
    /// Double-precision units (0 on Maxwell).
    pub dpu: u32,
    /// Special function units.
    pub sfu: u32,
    /// Load/store units.
    pub ldst: u32,
}

impl FuPools {
    /// Units of a given class.
    pub fn count(&self, unit: FuUnit) -> u32 {
        match unit {
            FuUnit::Sp => self.sp,
            FuUnit::Dpu => self.dpu,
            FuUnit::Sfu => self.sfu,
            FuUnit::LdSt => self.ldst,
        }
    }

    /// The share of `unit`-class units available to one of `num_schedulers`
    /// warp schedulers (static partition; see module docs).
    pub fn scheduler_share(&self, unit: FuUnit, num_schedulers: u32) -> u32 {
        assert!(num_schedulers > 0, "an SM must have at least one warp scheduler");
        self.count(unit) / num_schedulers
    }

    /// How many *parallel warp-ops* of class `unit` one scheduler can keep
    /// in issue simultaneously: every full warp-width (32 units) of the
    /// scheduler's share adds a port.
    ///
    /// Kepler's 48 SP cores per scheduler round to 2 ports, which is why its
    /// single-precision Add/Mul curves stay flat through 32 warps (Figure 6)
    /// while Maxwell's 32-per-quadrant (1 port) eventually steps up.
    pub fn scheduler_ports(&self, unit: FuUnit, num_schedulers: u32) -> u32 {
        let share = self.scheduler_share(unit, num_schedulers);
        ((share + WARP_SIZE / 2) / WARP_SIZE).max(1)
    }

    /// Cycles of issue occupancy for one warp-level op of class `unit` on
    /// one scheduler's share of units, excluding micro-op expansion:
    /// `ceil(32 / min(share, 32))`.
    pub fn issue_occupancy(&self, unit: FuUnit, num_schedulers: u32) -> u32 {
        let share = self.scheduler_share(unit, num_schedulers).clamp(1, WARP_SIZE);
        WARP_SIZE.div_ceil(share)
    }
}

/// Timing of one warp-level ALU operation on a given architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuTiming {
    /// Pipeline depth in cycles: time from the end of issue to the result
    /// being available to a dependent instruction.
    pub pipeline_depth: u32,
    /// Number of micro-operations the op expands to on the unit (e.g. `sqrt`
    /// is a multi-step Newton iteration on the SFUs). Multiplies occupancy.
    pub micro_ops: u32,
}

impl FuTiming {
    /// Look up the calibrated timing for `op` on `arch`.
    ///
    /// The constants are calibrated against the paper's Figures 6-7 latency
    /// plots and the Section 5.2 channel latencies; see `DESIGN.md` and
    /// `EXPERIMENTS.md` for the paper-vs-model comparison.
    pub fn for_op(arch: Architecture, op: FuOpKind) -> FuTiming {
        use Architecture::*;
        use FuOpKind::*;
        let (pipeline_depth, micro_ops) = match (arch, op) {
            // ---- Fermi (Tesla C2075): 2 schedulers; SP share 16, SFU share 2,
            // DPU share 8.
            (Fermi, SpAdd) | (Fermi, SpMul) => (15, 1), // base ~17, steps to ~35 @32 warps
            (Fermi, SpSinf) => (25, 1),                 // base ~41, ~280 @32 warps
            (Fermi, SpSqrt) => (80, 2),                 // base ~112, ~590 @32 warps
            (Fermi, DpAdd) | (Fermi, DpMul) => (12, 1), // base ~16, ~65 @32 warps

            // ---- Kepler (Tesla K40C): 4 schedulers; SP share 48, SFU share 8,
            // DPU share 16.
            (Kepler, SpAdd) | (Kepler, SpMul) => (5, 1), // flat ~6
            (Kepler, SpSinf) => (14, 1),                 // base 18, 24 under channel contention
            (Kepler, SpSqrt) => (130, 5),                // base ~150, ~175 @32 warps
            (Kepler, DpAdd) | (Kepler, DpMul) => (6, 1), // base ~8, ~18 @32 warps

            // ---- Maxwell (Quadro M4000): 4 quadrants; SP share 32, SFU share 8,
            // no DPUs (timing entry retained for error paths).
            (Maxwell, SpAdd) | (Maxwell, SpMul) => (5, 1), // base 6, steps >= 24 warps
            (Maxwell, SpSinf) => (11, 1),                  // base 15, 20 under contention
            (Maxwell, SpSqrt) => (96, 6),                  // base ~120, ~190 @32 warps
            (Maxwell, DpAdd) | (Maxwell, DpMul) => (6, 1),

            // ---- Ampere (RTX A4000): 4 sub-cores; per-op unit timings are
            // calibrated to the Maxwell values (the quadrant and sub-core
            // datapaths are close per "Analyzing Modern NVIDIA GPU cores");
            // Ampere's observable differences come from the sub-core spec —
            // fixed-latency dependence hints and single-issue slots — not
            // from these rows. Keeping the rows identical is also what makes
            // a scoreboarded, unsectored Ampere cycle-identical to Maxwell
            // (asserted by `tests/prop_subcore.rs`).
            (Ampere, SpAdd) | (Ampere, SpMul) => (5, 1),
            (Ampere, SpSinf) => (11, 1),
            (Ampere, SpSqrt) => (96, 6),
            (Ampere, DpAdd) | (Ampere, DpMul) => (6, 1),
        };
        FuTiming { pipeline_depth, micro_ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kepler_pools() -> FuPools {
        FuPools { sp: 192, dpu: 64, sfu: 32, ldst: 32 }
    }

    fn fermi_pools() -> FuPools {
        FuPools { sp: 32, dpu: 16, sfu: 4, ldst: 16 }
    }

    fn maxwell_pools() -> FuPools {
        FuPools { sp: 128, dpu: 0, sfu: 32, ldst: 32 }
    }

    #[test]
    fn scheduler_shares_match_table1_partitions() {
        let k = kepler_pools();
        assert_eq!(k.scheduler_share(FuUnit::Sp, 4), 48);
        assert_eq!(k.scheduler_share(FuUnit::Sfu, 4), 8);
        assert_eq!(k.scheduler_share(FuUnit::Dpu, 4), 16);
        let f = fermi_pools();
        assert_eq!(f.scheduler_share(FuUnit::Sfu, 2), 2);
        assert_eq!(f.scheduler_share(FuUnit::Sp, 2), 16);
    }

    #[test]
    fn issue_occupancy_reproduces_channel_latency_deltas() {
        // Kepler __sinf: 8 SFUs per scheduler -> 4-cycle occupancy.
        // One spy warp per scheduler: 18 cycles (depth 14 + 4).
        // Spy + trojan warp on the same scheduler: 18 + 4 ... engine-level
        // queueing raises this to ~24 per the paper; here we check the
        // occupancy building block.
        let k = kepler_pools();
        assert_eq!(k.issue_occupancy(FuUnit::Sfu, 4), 4);
        let f = fermi_pools();
        assert_eq!(f.issue_occupancy(FuUnit::Sfu, 2), 16);
        let m = maxwell_pools();
        assert_eq!(m.issue_occupancy(FuUnit::Sfu, 4), 4);
    }

    #[test]
    fn kepler_sp_gets_two_ports() {
        // 48 SP per scheduler rounds to 2 ports => Add/Mul stay flat (Fig 6).
        assert_eq!(kepler_pools().scheduler_ports(FuUnit::Sp, 4), 2);
        assert_eq!(maxwell_pools().scheduler_ports(FuUnit::Sp, 4), 1);
        assert_eq!(fermi_pools().scheduler_ports(FuUnit::Sp, 2), 1);
    }

    #[test]
    fn empty_pool_occupancy_is_clamped() {
        // Maxwell has no DPUs; occupancy still returns a finite value so
        // error handling can happen at launch validation rather than here.
        let m = maxwell_pools();
        assert_eq!(m.scheduler_share(FuUnit::Dpu, 4), 0);
        assert_eq!(m.issue_occupancy(FuUnit::Dpu, 4), 32);
    }

    #[test]
    fn timing_base_latencies_match_paper() {
        // base latency = depth + occupancy (single warp, dependent loop)
        let t = FuTiming::for_op(Architecture::Kepler, FuOpKind::SpSinf);
        assert_eq!(t.pipeline_depth + kepler_pools().issue_occupancy(FuUnit::Sfu, 4), 18);
        let t = FuTiming::for_op(Architecture::Fermi, FuOpKind::SpSinf);
        assert_eq!(t.pipeline_depth + fermi_pools().issue_occupancy(FuUnit::Sfu, 2), 41);
        let t = FuTiming::for_op(Architecture::Maxwell, FuOpKind::SpSinf);
        assert_eq!(t.pipeline_depth + maxwell_pools().issue_occupancy(FuUnit::Sfu, 4), 15);
    }

    #[test]
    #[should_panic(expected = "at least one warp scheduler")]
    fn zero_schedulers_panics() {
        kepler_pools().scheduler_share(FuUnit::Sp, 0);
    }
}
