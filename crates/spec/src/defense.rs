//! Composable defense specifications: the paper's Section-9 mitigations as
//! first-class, serializable spec objects.
//!
//! The mitigation layer historically modelled one defense at a time (an enum
//! lowered straight onto one `DeviceTuning`), which made two things
//! impossible: *stacking* defenses (partitioning **and** clock fuzzing) and
//! naming a defense on the command line the way `--topology` names a fabric.
//! A [`DefenseSpec`] fixes both. It is a validated, canonically-ordered set
//! of [`DefenseComponent`]s with a compact textual grammar (the CLI's
//! `--defense` argument) that round-trips exactly:
//!
//! ```text
//! partition=2,randsched=0xd1ce,fuzz=4096
//! ```
//!
//! Each key names one component; `none` denotes the empty (baseline)
//! defense. At most one component of each kind may appear — two different
//! partition counts in one defense is a configuration contradiction, not a
//! composition — and [`DefenseSpec::compose`] enforces the same rule when
//! combining whole specs, so "partitioning + fuzzing" composes while
//! "2-way partitioning + 4-way partitioning" is a typed error.
//!
//! Lowering onto the simulator's `DeviceTuning` lives in `gpgpu-sim`
//! (`DeviceTuning::from_defense`), which merges the per-component tunings
//! with the same conflict checking.
//!
//! # Example
//!
//! ```
//! use gpgpu_spec::defense::{DefenseComponent, DefenseSpec};
//!
//! let d = DefenseSpec::from_spec("fuzz=4096,partition=2").unwrap();
//! assert_eq!(d.to_spec(), "partition=2,fuzz=4096"); // canonical order
//! assert_eq!(DefenseSpec::from_spec(&d.to_spec()).unwrap(), d);
//! assert_eq!(d.components().len(), 2);
//! assert!(DefenseSpec::none().is_none());
//! ```

use crate::error::SpecError;
use std::fmt;

/// One configurable defense mechanism, parameterized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefenseComponent {
    /// Static cache partitioning into `partitions` per-kernel set regions
    /// (spatial isolation; `partitions >= 2` to have any effect).
    CachePartitioning {
        /// Number of per-kernel cache regions.
        partitions: u32,
    },
    /// Keyed-hash warp -> scheduler assignment (scheduler entropy).
    RandomizedWarpScheduling {
        /// Hash seed (rotates per boot on a real implementation).
        seed: u64,
    },
    /// Quantized `clock()` reads (TimeWarp-style measurement entropy);
    /// `granularity >= 2`, since a 1-cycle quantum is an exact clock.
    ClockFuzzing {
        /// Quantum in cycles.
        granularity: u64,
    },
}

impl DefenseComponent {
    /// The grammar key this component serializes under.
    pub fn key(self) -> &'static str {
        match self {
            DefenseComponent::CachePartitioning { .. } => "partition",
            DefenseComponent::RandomizedWarpScheduling { .. } => "randsched",
            DefenseComponent::ClockFuzzing { .. } => "fuzz",
        }
    }

    /// Canonical ordering index (the order components render in).
    fn rank(self) -> u8 {
        match self {
            DefenseComponent::CachePartitioning { .. } => 0,
            DefenseComponent::RandomizedWarpScheduling { .. } => 1,
            DefenseComponent::ClockFuzzing { .. } => 2,
        }
    }

    /// Whether `other` is the same *kind* of defense (regardless of its
    /// parameter) — the unit of the duplicate/conflict rule.
    pub fn same_kind(self, other: DefenseComponent) -> bool {
        self.rank() == other.rank()
    }

    fn validate(self) -> Result<(), SpecError> {
        let invalid = |reason: String| Err(SpecError::InvalidDefense { reason });
        match self {
            DefenseComponent::CachePartitioning { partitions } if partitions < 2 => {
                invalid(format!("partition={partitions} is a no-op; need at least 2 regions"))
            }
            DefenseComponent::ClockFuzzing { granularity } if granularity < 2 => invalid(format!(
                "fuzz={granularity} is an exact clock; need a quantum of at least 2"
            )),
            _ => Ok(()),
        }
    }
}

impl fmt::Display for DefenseComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefenseComponent::CachePartitioning { partitions } => {
                write!(f, "partition={partitions}")
            }
            DefenseComponent::RandomizedWarpScheduling { seed } => {
                write!(f, "randsched={seed:#x}")
            }
            DefenseComponent::ClockFuzzing { granularity } => write!(f, "fuzz={granularity}"),
        }
    }
}

/// A validated, canonically-ordered combination of defenses. The empty spec
/// ([`DefenseSpec::none`]) is the undefended baseline.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DefenseSpec {
    /// The components, sorted canonically, at most one per kind.
    components: Vec<DefenseComponent>,
}

impl Default for DefenseSpec {
    fn default() -> Self {
        DefenseSpec::none()
    }
}

impl DefenseSpec {
    /// The empty defense (undefended baseline; spec string `none`).
    pub fn none() -> Self {
        DefenseSpec { components: Vec::new() }
    }

    /// Builds and validates a defense from components: each component's
    /// parameter range is checked and duplicate kinds are rejected.
    ///
    /// # Errors
    ///
    /// [`SpecError::InvalidDefense`] for an out-of-range parameter or two
    /// components of the same kind.
    pub fn new(components: impl IntoIterator<Item = DefenseComponent>) -> Result<Self, SpecError> {
        let mut spec = DefenseSpec::none();
        for c in components {
            spec = spec.with_component(c)?;
        }
        Ok(spec)
    }

    /// A single-component defense.
    ///
    /// # Errors
    ///
    /// [`SpecError::InvalidDefense`] for an out-of-range parameter.
    pub fn single(component: DefenseComponent) -> Result<Self, SpecError> {
        DefenseSpec::new([component])
    }

    /// Adds one component, keeping canonical order.
    ///
    /// # Errors
    ///
    /// [`SpecError::InvalidDefense`] for an out-of-range parameter, or when
    /// a component of the same kind is already present with a *different*
    /// parameter (identical components dedupe silently).
    pub fn with_component(mut self, component: DefenseComponent) -> Result<Self, SpecError> {
        component.validate()?;
        if let Some(existing) = self.components.iter().find(|c| c.same_kind(component)) {
            if *existing == component {
                return Ok(self);
            }
            return Err(SpecError::InvalidDefense {
                reason: format!(
                    "conflicting `{}` components: `{existing}` vs `{component}`",
                    component.key()
                ),
            });
        }
        self.components.push(component);
        self.components.sort_by_key(|c| c.rank());
        Ok(self)
    }

    /// Composes two defenses into one (set union with conflict checking):
    /// the formal model of "deploy both".
    ///
    /// # Errors
    ///
    /// [`SpecError::InvalidDefense`] when the two specs configure the same
    /// kind of defense with different parameters.
    pub fn compose(&self, other: &DefenseSpec) -> Result<DefenseSpec, SpecError> {
        let mut out = self.clone();
        for &c in &other.components {
            out = out.with_component(c)?;
        }
        Ok(out)
    }

    /// The components in canonical order.
    pub fn components(&self) -> &[DefenseComponent] {
        &self.components
    }

    /// Whether this is the empty (baseline) defense.
    pub fn is_none(&self) -> bool {
        self.components.is_empty()
    }

    /// Parses the textual grammar (the CLI's `--defense` argument):
    /// comma-separated `partition=<n>` / `randsched=<seed>` / `fuzz=<n>`
    /// keys (seed accepts `0x` hex or decimal), or the literal `none`.
    ///
    /// # Errors
    ///
    /// [`SpecError::InvalidDefense`] for syntax errors, unknown keys,
    /// unparsable values, out-of-range parameters, and duplicate kinds.
    pub fn from_spec(spec: &str) -> Result<Self, SpecError> {
        let invalid = |reason: String| SpecError::InvalidDefense { reason };
        let trimmed = spec.trim();
        if trimmed == "none" {
            return Ok(DefenseSpec::none());
        }
        if trimmed.is_empty() {
            return Err(invalid("empty defense spec (use `none` for no defense)".into()));
        }
        let mut out = DefenseSpec::none();
        for part in trimmed.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| invalid(format!("expected key=value, got `{part}`")))?;
            let value = value.trim();
            let component = match key.trim() {
                "partition" => {
                    let partitions: u32 = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid partition count `{value}`")))?;
                    DefenseComponent::CachePartitioning { partitions }
                }
                "randsched" => {
                    let seed =
                        match value.strip_prefix("0x").or_else(|| value.strip_prefix("0X")) {
                            Some(hex) => u64::from_str_radix(hex, 16),
                            None => value.parse(),
                        }
                        .map_err(|_| invalid(format!("invalid scheduler seed `{value}`")))?;
                    DefenseComponent::RandomizedWarpScheduling { seed }
                }
                "fuzz" => {
                    let granularity: u64 = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid clock quantum `{value}`")))?;
                    DefenseComponent::ClockFuzzing { granularity }
                }
                other => return Err(invalid(format!("unknown defense key `{other}`"))),
            };
            // Reject *any* repeated kind in a spec string, even a repeat of
            // the identical component: a doubled key is a typo, not intent.
            if out.components.iter().any(|c| c.same_kind(component)) {
                return Err(invalid(format!("duplicate defense key `{}`", component.key())));
            }
            out = out.with_component(component)?;
        }
        Ok(out)
    }

    /// Renders the defense in the [`DefenseSpec::from_spec`] grammar in
    /// canonical order; `from_spec(&d.to_spec())` round-trips exactly.
    pub fn to_spec(&self) -> String {
        if self.components.is_empty() {
            return "none".to_string();
        }
        self.components.iter().map(ToString::to_string).collect::<Vec<_>>().join(",")
    }
}

impl fmt::Display for DefenseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_spec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_round_trips() {
        let d = DefenseSpec::none();
        assert!(d.is_none());
        assert_eq!(d.to_spec(), "none");
        assert_eq!(DefenseSpec::from_spec("none").unwrap(), d);
        assert_eq!(DefenseSpec::default(), d);
    }

    #[test]
    fn canonical_order_is_independent_of_input_order() {
        let a = DefenseSpec::from_spec("fuzz=4096,partition=2,randsched=0xd1ce").unwrap();
        let b = DefenseSpec::from_spec("partition=2,randsched=53710,fuzz=4096").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_spec(), "partition=2,randsched=0xd1ce,fuzz=4096");
        assert_eq!(DefenseSpec::from_spec(&a.to_spec()).unwrap(), a);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "partition",
            "partition=",
            "partition=one",
            "partition=1", // a 1-region "partition" is a no-op
            "partition=0",
            "fuzz=1", // an exact clock is no defense
            "fuzz=0",
            "randsched=0xzz",
            "shield=9",
            "partition=2,partition=2", // doubled key, even if identical
            "partition=2,partition=4",
            "nonefuzz=2",
        ] {
            assert!(DefenseSpec::from_spec(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn compose_unions_and_conflicts() {
        let p = DefenseSpec::from_spec("partition=2").unwrap();
        let f = DefenseSpec::from_spec("fuzz=4096").unwrap();
        let both = p.compose(&f).unwrap();
        assert_eq!(both.to_spec(), "partition=2,fuzz=4096");
        // Identical components dedupe; conflicting parameters error.
        assert_eq!(both.compose(&p).unwrap(), both);
        let p4 = DefenseSpec::from_spec("partition=4").unwrap();
        let e = both.compose(&p4).unwrap_err();
        assert!(matches!(e, SpecError::InvalidDefense { .. }), "{e:?}");
        assert!(e.to_string().contains("partition"), "{e}");
    }

    #[test]
    fn seed_accepts_hex_and_decimal() {
        let hex = DefenseSpec::from_spec("randsched=0xD1CE").unwrap();
        let dec = DefenseSpec::from_spec("randsched=53710").unwrap();
        assert_eq!(hex, dec);
        assert_eq!(hex.to_spec(), "randsched=0xd1ce");
    }

    #[test]
    fn component_accessors() {
        let d = DefenseSpec::from_spec("partition=3,fuzz=512").unwrap();
        assert_eq!(d.components().len(), 2);
        assert_eq!(d.components()[0].key(), "partition");
        assert!(!d.is_none());
        assert!(d.components()[0].same_kind(DefenseComponent::CachePartitioning { partitions: 9 }));
        assert!(!d.components()[0].same_kind(DefenseComponent::ClockFuzzing { granularity: 9 }));
    }
}
