//! Multi-GPU topology specifications: N devices joined by NVLink-style
//! point-to-point links.
//!
//! The paper's channels all live inside one GPU, but the same
//! contention-measurement methodology extends to inter-GPU interconnects
//! (NVBleed builds covert channels on NVLink between peer GPUs). This module
//! describes *what the fabric looks like* — which devices exist and how they
//! are wired — while `gpgpu-sim`'s `Topology` executes transfers against it.
//!
//! A topology is serializable to a compact spec string (the CLI's
//! `--topology` argument):
//!
//! ```text
//! devices=kepler+kepler,link=0-1:lat=40:slot=4:lanes=2
//! ```
//!
//! `devices` lists preset aliases (resolved via [`crate::presets::by_name`]
//! and stored canonically as `fermi`/`kepler`/`maxwell`); each `link` key
//! adds one bidirectional link `A-B` with optional per-link timing fields.
//! [`TopologySpec::from_spec`] and [`TopologySpec::to_spec`] round-trip
//! exactly.
//!
//! # Example
//!
//! ```
//! use gpgpu_spec::topology::TopologySpec;
//!
//! let t = TopologySpec::dual("kepler").unwrap();
//! assert_eq!(t.devices.len(), 2);
//! assert_eq!(TopologySpec::from_spec(&t.to_spec()).unwrap(), t);
//! ```

use crate::device::DeviceSpec;
use crate::error::SpecError;
use crate::presets;

/// Default one-way link propagation latency in device cycles.
pub const DEFAULT_LINK_LATENCY: u64 = 40;

/// Default cycles one flit occupies a lane slot.
pub const DEFAULT_SLOT_CYCLES: u64 = 4;

/// Default parallel lanes (sub-links) per link.
pub const DEFAULT_LINK_LANES: u32 = 2;

/// Bytes carried per link flit (one lane slot moves one flit).
pub const FLIT_BYTES: u64 = 32;

/// One bidirectional NVLink-style link joining two devices.
///
/// Timing model: a transfer of `n` flits waits for a free lane (round-robin
/// slot arbitration in `gpgpu-sim`), occupies it for `n * slot_cycles`
/// cycles, and is delivered `latency_cycles` after its last slot (twice that
/// for request/response round trips such as remote atomics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// First endpoint (device index into [`TopologySpec::devices`]).
    pub a: u32,
    /// Second endpoint (device index).
    pub b: u32,
    /// One-way propagation latency in cycles (>= 1).
    pub latency_cycles: u64,
    /// Cycles per flit slot (>= 1) — the reciprocal link bandwidth.
    pub slot_cycles: u64,
    /// Parallel slot lanes (>= 1) — peak concurrency of the link.
    pub lanes: u32,
}

impl LinkSpec {
    /// A link between devices `a` and `b` with default timing.
    pub fn between(a: u32, b: u32) -> Self {
        LinkSpec {
            a,
            b,
            latency_cycles: DEFAULT_LINK_LATENCY,
            slot_cycles: DEFAULT_SLOT_CYCLES,
            lanes: DEFAULT_LINK_LANES,
        }
    }

    /// Sets the one-way propagation latency.
    pub fn with_latency(mut self, cycles: u64) -> Self {
        self.latency_cycles = cycles;
        self
    }

    /// Sets the cycles-per-flit slot time.
    pub fn with_slot_cycles(mut self, cycles: u64) -> Self {
        self.slot_cycles = cycles;
        self
    }

    /// Sets the lane count.
    pub fn with_lanes(mut self, lanes: u32) -> Self {
        self.lanes = lanes;
        self
    }

    /// Whether `device` is one of this link's endpoints.
    pub fn connects(&self, device: u32) -> bool {
        self.a == device || self.b == device
    }

    /// The opposite endpoint of `device`, if `device` is an endpoint.
    pub fn peer_of(&self, device: u32) -> Option<u32> {
        if device == self.a {
            Some(self.b)
        } else if device == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    fn validate(&self, index: usize, num_devices: usize) -> Result<(), SpecError> {
        let invalid = |reason: String| Err(SpecError::InvalidTopology { reason });
        if self.a as usize >= num_devices || self.b as usize >= num_devices {
            return invalid(format!(
                "link {index} joins {}-{} but only {num_devices} device(s) exist",
                self.a, self.b
            ));
        }
        if self.a == self.b {
            return invalid(format!("link {index} joins device {} to itself", self.a));
        }
        if self.latency_cycles == 0 {
            return invalid(format!("link {index} has zero latency"));
        }
        if self.slot_cycles == 0 {
            return invalid(format!("link {index} has zero slot cycles"));
        }
        if self.lanes == 0 {
            return invalid(format!("link {index} has zero lanes"));
        }
        Ok(())
    }
}

/// The canonical alias a device name is stored under (one of the
/// [`crate::arch::Architecture::label`] values), or `None` for names
/// [`presets::by_name`] cannot resolve.
pub fn canonical_alias(name: &str) -> Option<&'static str> {
    presets::by_name(name).map(|spec| spec.architecture.label())
}

/// A validated multi-GPU topology: device preset names plus the links that
/// join them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologySpec {
    /// Device preset aliases in canonical form (`fermi`/`kepler`/`maxwell`),
    /// indexed by device id.
    pub devices: Vec<String>,
    /// The links joining them.
    pub links: Vec<LinkSpec>,
}

impl TopologySpec {
    /// Builds and validates a topology from device names (any alias
    /// [`presets::by_name`] accepts) and links.
    ///
    /// # Errors
    ///
    /// [`SpecError::InvalidTopology`] for an empty device list, an unknown
    /// device name, a link endpoint out of range, a self-link, or a zero
    /// timing field.
    pub fn new<S: AsRef<str>>(devices: &[S], links: Vec<LinkSpec>) -> Result<Self, SpecError> {
        let canonical = devices
            .iter()
            .map(|name| {
                canonical_alias(name.as_ref()).map(str::to_string).ok_or_else(|| {
                    SpecError::InvalidTopology {
                        reason: format!("unknown device `{}`", name.as_ref()),
                    }
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let spec = TopologySpec { devices: canonical, links };
        spec.validate()?;
        Ok(spec)
    }

    /// The canonical two-GPU topology: two identical devices joined by one
    /// default-timed link — the NVBleed-style peer-to-peer setup.
    ///
    /// # Errors
    ///
    /// [`SpecError::InvalidTopology`] for an unknown device name.
    pub fn dual(name: &str) -> Result<Self, SpecError> {
        TopologySpec::new(&[name, name], vec![LinkSpec::between(0, 1)])
    }

    /// Re-checks every structural constraint (useful after mutating the
    /// public fields directly).
    ///
    /// # Errors
    ///
    /// [`SpecError::InvalidTopology`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.devices.is_empty() {
            return Err(SpecError::InvalidTopology {
                reason: "a topology needs at least one device".into(),
            });
        }
        for name in &self.devices {
            if canonical_alias(name) != Some(name.as_str()) {
                return Err(SpecError::InvalidTopology {
                    reason: format!("unknown or non-canonical device `{name}`"),
                });
            }
        }
        for (i, link) in self.links.iter().enumerate() {
            link.validate(i, self.devices.len())?;
        }
        Ok(())
    }

    /// Resolves every device alias to its full [`DeviceSpec`].
    ///
    /// # Errors
    ///
    /// [`SpecError::InvalidTopology`] if a name no longer resolves (possible
    /// only after direct field mutation).
    pub fn device_specs(&self) -> Result<Vec<DeviceSpec>, SpecError> {
        self.devices
            .iter()
            .map(|name| {
                presets::by_name(name).ok_or_else(|| SpecError::InvalidTopology {
                    reason: format!("unknown device `{name}`"),
                })
            })
            .collect()
    }

    /// The links that have `device` as an endpoint.
    pub fn links_of(&self, device: u32) -> Vec<(usize, LinkSpec)> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.connects(device))
            .map(|(i, l)| (i, *l))
            .collect()
    }

    /// Parses the textual spec grammar (the CLI's `--topology` argument):
    /// comma-separated keys `devices=<alias>+<alias>+...` and, per link,
    /// `link=<a>-<b>[:lat=<n>][:slot=<n>][:lanes=<n>]`. Omitted link fields
    /// keep the [`LinkSpec::between`] defaults.
    ///
    /// # Errors
    ///
    /// [`SpecError::InvalidTopology`] for syntax errors and every structural
    /// violation [`TopologySpec::new`] rejects.
    pub fn from_spec(spec: &str) -> Result<Self, SpecError> {
        let invalid = |reason: String| SpecError::InvalidTopology { reason };
        let mut devices: Vec<String> = Vec::new();
        let mut links: Vec<LinkSpec> = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| invalid(format!("expected key=value, got `{part}`")))?;
            match key.trim() {
                "devices" => {
                    for name in value.split('+').map(str::trim) {
                        devices.push(name.to_string());
                    }
                }
                "link" => {
                    let mut fields = value.split(':').map(str::trim);
                    let endpoints = fields
                        .next()
                        .ok_or_else(|| invalid(format!("empty link spec `{value}`")))?;
                    let (a, b) = endpoints
                        .split_once('-')
                        .ok_or_else(|| invalid(format!("expected `a-b`, got `{endpoints}`")))?;
                    let a: u32 = a
                        .trim()
                        .parse()
                        .map_err(|_| invalid(format!("invalid link endpoint `{a}`")))?;
                    let b: u32 = b
                        .trim()
                        .parse()
                        .map_err(|_| invalid(format!("invalid link endpoint `{b}`")))?;
                    let mut link = LinkSpec::between(a, b);
                    for field in fields {
                        let (fk, fv) = field.split_once('=').ok_or_else(|| {
                            invalid(format!("expected field=value, got `{field}`"))
                        })?;
                        let n: u64 = fv
                            .trim()
                            .parse()
                            .map_err(|_| invalid(format!("invalid link field value `{fv}`")))?;
                        match fk.trim() {
                            "lat" => link.latency_cycles = n,
                            "slot" => link.slot_cycles = n,
                            "lanes" => {
                                link.lanes = u32::try_from(n)
                                    .map_err(|_| invalid(format!("lane count {n} exceeds u32")))?;
                            }
                            other => {
                                return Err(invalid(format!("unknown link field `{other}`")));
                            }
                        }
                    }
                    links.push(link);
                }
                other => return Err(invalid(format!("unknown topology key `{other}`"))),
            }
        }
        TopologySpec::new(&devices, links)
    }

    /// Renders the topology in the [`TopologySpec::from_spec`] grammar with
    /// every field explicit; `from_spec(&t.to_spec())` round-trips exactly.
    pub fn to_spec(&self) -> String {
        let mut out = format!("devices={}", self.devices.join("+"));
        for l in &self.links {
            out.push_str(&format!(
                ",link={}-{}:lat={}:slot={}:lanes={}",
                l.a, l.b, l.latency_cycles, l.slot_cycles, l.lanes
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_builds_and_round_trips() {
        let t = TopologySpec::dual("kepler").unwrap();
        assert_eq!(t.devices, vec!["kepler", "kepler"]);
        assert_eq!(t.links.len(), 1);
        assert_eq!(TopologySpec::from_spec(&t.to_spec()).unwrap(), t);
    }

    #[test]
    fn aliases_canonicalize() {
        let t = TopologySpec::new(&["Tesla K40C", "fermi", "m4000"], vec![]).unwrap();
        assert_eq!(t.devices, vec!["kepler", "fermi", "maxwell"]);
        assert_eq!(t.device_specs().unwrap()[0].name, "Tesla K40C");
    }

    #[test]
    fn from_spec_parses_fields_and_defaults() {
        let t = TopologySpec::from_spec("devices=kepler+maxwell,link=0-1:lat=100:lanes=4").unwrap();
        assert_eq!(t.links[0].latency_cycles, 100);
        assert_eq!(t.links[0].lanes, 4);
        assert_eq!(t.links[0].slot_cycles, DEFAULT_SLOT_CYCLES, "omitted field keeps default");
        assert_eq!(TopologySpec::from_spec(&t.to_spec()).unwrap(), t);
    }

    #[test]
    fn spec_rejects_malformed_input() {
        for bad in [
            "devices=",
            "devices=voodoo2",
            "devices=kepler,link=0-1",        // endpoint out of range
            "devices=kepler+kepler,link=0-0", // self link
            "devices=kepler+kepler,link=0-1:lat=0",
            "devices=kepler+kepler,link=0-1:slot=0",
            "devices=kepler+kepler,link=0-1:lanes=0",
            "devices=kepler+kepler,link=0:1",
            "devices=kepler+kepler,link=0-1:warp=9",
            "devices=kepler+kepler,bridge=0-1",
            "kepler",
            "",
        ] {
            assert!(TopologySpec::from_spec(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn error_names_the_violation() {
        let e = TopologySpec::from_spec("devices=kepler+kepler,link=0-7").unwrap_err();
        assert!(e.to_string().contains("invalid topology"), "{e}");
        assert!(e.to_string().contains("0-7"), "{e}");
    }

    #[test]
    fn link_helpers() {
        let l = LinkSpec::between(2, 5).with_latency(9).with_slot_cycles(3).with_lanes(7);
        assert!(l.connects(2) && l.connects(5) && !l.connects(3));
        assert_eq!(l.peer_of(2), Some(5));
        assert_eq!(l.peer_of(5), Some(2));
        assert_eq!(l.peer_of(4), None);
        assert_eq!((l.latency_cycles, l.slot_cycles, l.lanes), (9, 3, 7));
    }

    #[test]
    fn links_of_filters_by_endpoint() {
        let t = TopologySpec::new(
            &["kepler", "kepler", "kepler"],
            vec![LinkSpec::between(0, 1), LinkSpec::between(1, 2)],
        )
        .unwrap();
        assert_eq!(t.links_of(0).len(), 1);
        assert_eq!(t.links_of(1).len(), 2);
        let (idx, link) = t.links_of(2)[0];
        assert_eq!((idx, link.a, link.b), (1, 1, 2));
    }
}
