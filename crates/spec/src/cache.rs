//! Cache geometry and timing descriptions.
//!
//! The covert channels of the paper's Section 4 operate on the *constant
//! memory* cache hierarchy: a small per-SM L1 and a chip-wide L2 shared by
//! all SMs. Both are classic set-associative caches; the offline attack step
//! (Section 4.1, after Wong et al.) recovers exactly the parameters held in
//! [`CacheGeometry`] from latency measurements, which is why they are modelled
//! explicitly here.

use crate::error::SpecError;

/// Geometry of a set-associative cache.
///
/// # Example
///
/// ```
/// use gpgpu_spec::CacheGeometry;
///
/// // The Kepler/Maxwell constant L1: 2 KB, 4-way, 64-byte lines => 8 sets.
/// let l1 = CacheGeometry::new(2048, 64, 4).unwrap();
/// assert_eq!(l1.num_sets(), 8);
/// assert_eq!(l1.set_of_addr(512), 0); // 512 / 64 = line 8, 8 % 8 = set 0
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    line_bytes: u64,
    ways: u64,
    /// Fill granularity. Equal to `line_bytes` on the unsectored legacy
    /// caches; smaller on sectored caches (Ampere L1), where a miss fetches
    /// only the accessed sector of the allocated line.
    sector_bytes: u64,
}

impl CacheGeometry {
    /// Creates an unsectored geometry (fills are whole lines) after
    /// validating self-consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidCacheGeometry`] if any field is zero, any
    /// field is not a power of two, or `size` is not `line * ways * sets`
    /// for an integral power-of-two number of sets.
    pub fn new(size_bytes: u64, line_bytes: u64, ways: u64) -> Result<Self, SpecError> {
        Self::new_sectored(size_bytes, line_bytes, ways, line_bytes)
    }

    /// Creates a geometry with sector-granularity fills: a miss allocates
    /// the line but fetches only `sector_bytes` of it.
    ///
    /// # Errors
    ///
    /// As [`CacheGeometry::new`], plus [`SpecError::InvalidCacheGeometry`]
    /// when `sector_bytes` is zero, not a power of two, larger than the
    /// line, or yields more than 8 sectors per line (the valid-mask width
    /// the cache model carries per line).
    pub fn new_sectored(
        size_bytes: u64,
        line_bytes: u64,
        ways: u64,
        sector_bytes: u64,
    ) -> Result<Self, SpecError> {
        let fail = |reason: String| Err(SpecError::InvalidCacheGeometry { reason });
        if size_bytes == 0 || line_bytes == 0 || ways == 0 {
            return fail("size, line and ways must all be positive".to_string());
        }
        if !size_bytes.is_power_of_two() || !line_bytes.is_power_of_two() {
            return fail(format!(
                "size ({size_bytes}) and line ({line_bytes}) must be powers of two"
            ));
        }
        if sector_bytes == 0 || !sector_bytes.is_power_of_two() || sector_bytes > line_bytes {
            return fail(format!(
                "sector ({sector_bytes}) must be a positive power of two no larger than the \
                 line ({line_bytes})"
            ));
        }
        if line_bytes / sector_bytes > 8 {
            return fail(format!(
                "at most 8 sectors per line are supported ({line_bytes}/{sector_bytes})"
            ));
        }
        let way_bytes = line_bytes * ways;
        if !size_bytes.is_multiple_of(way_bytes) {
            return fail(format!(
                "size ({size_bytes}) must be a multiple of line*ways ({way_bytes})"
            ));
        }
        let sets = size_bytes / way_bytes;
        if !sets.is_power_of_two() {
            return fail(format!("derived set count ({sets}) must be a power of two"));
        }
        Ok(CacheGeometry { size_bytes, line_bytes, ways, sector_bytes })
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Associativity (number of ways per set).
    pub fn ways(&self) -> u64 {
        self.ways
    }

    /// Number of sets (`size / (line * ways)`).
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.ways)
    }

    /// The set index a byte address maps to (modulo indexing, as on the
    /// constant caches the paper characterizes).
    pub fn set_of_addr(&self, addr: u64) -> u64 {
        (addr / self.line_bytes) % self.num_sets()
    }

    /// The line-aligned tag address (address of the first byte of the line).
    pub fn line_of_addr(&self, addr: u64) -> u64 {
        addr - (addr % self.line_bytes)
    }

    /// The stride that walks successive addresses into the *same* set:
    /// one full "way span" (`sets * line`).
    ///
    /// Filling a single set — the paper's trick to contend on one set only,
    /// "reducing the memory traffic and accelerating the attack" — takes
    /// `ways` accesses at this stride.
    pub fn same_set_stride(&self) -> u64 {
        self.num_sets() * self.line_bytes
    }

    /// Fill granularity in bytes (equals the line size when unsectored).
    pub fn sector_bytes(&self) -> u64 {
        self.sector_bytes
    }

    /// Sectors per line (`line / sector`); 1 when unsectored.
    pub fn sectors_per_line(&self) -> u64 {
        self.line_bytes / self.sector_bytes
    }

    /// Whether fills are sector-granularity (sector smaller than the line).
    pub fn is_sectored(&self) -> bool {
        self.sector_bytes < self.line_bytes
    }

    /// The index (0-based, within its line) of the sector holding `addr`.
    pub fn sector_of_addr(&self, addr: u64) -> u64 {
        (addr % self.line_bytes) / self.sector_bytes
    }
}

/// A cache level: geometry plus access timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSpec {
    /// Size/line/ways description.
    pub geometry: CacheGeometry,
    /// Latency (cycles) of a hit in this level, as observed by the warp.
    pub hit_latency: u64,
    /// Number of accesses this level can accept per cycle (port limit).
    /// Port contention is the reason the paper sees only ~8x (not 16x)
    /// speedup for the 16-set parallel L2 channel.
    pub ports_per_cycle: u32,
}

impl CacheSpec {
    /// Convenience constructor.
    ///
    /// # Errors
    ///
    /// Propagates [`SpecError::InvalidCacheGeometry`] from
    /// [`CacheGeometry::new`].
    pub fn new(
        size_bytes: u64,
        line_bytes: u64,
        ways: u64,
        hit_latency: u64,
        ports_per_cycle: u32,
    ) -> Result<Self, SpecError> {
        Ok(CacheSpec {
            geometry: CacheGeometry::new(size_bytes, line_bytes, ways)?,
            hit_latency,
            ports_per_cycle,
        })
    }

    /// As [`CacheSpec::new`] with sector-granularity fills.
    ///
    /// # Errors
    ///
    /// Propagates [`SpecError::InvalidCacheGeometry`] from
    /// [`CacheGeometry::new_sectored`].
    pub fn new_sectored(
        size_bytes: u64,
        line_bytes: u64,
        ways: u64,
        sector_bytes: u64,
        hit_latency: u64,
        ports_per_cycle: u32,
    ) -> Result<Self, SpecError> {
        Ok(CacheSpec {
            geometry: CacheGeometry::new_sectored(size_bytes, line_bytes, ways, sector_bytes)?,
            hit_latency,
            ports_per_cycle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kepler_l1_constant_cache_geometry() {
        // 2 KB, 4-way, 64 B lines (paper Section 4.1).
        let g = CacheGeometry::new(2048, 64, 4).unwrap();
        assert_eq!(g.num_sets(), 8);
        assert_eq!(g.same_set_stride(), 512); // the paper primes L1 with stride 512
    }

    #[test]
    fn l2_constant_cache_geometry() {
        // 32 KB, 8-way, 256 B lines => 16 sets, same-set stride 4096.
        let g = CacheGeometry::new(32 * 1024, 256, 8).unwrap();
        assert_eq!(g.num_sets(), 16);
        assert_eq!(g.same_set_stride(), 4096); // paper: "stride value of 4096 bytes (16 sets x 256 bytes)"
    }

    #[test]
    fn fermi_l1_constant_cache_geometry() {
        // 4 KB, 4-way, 64 B lines => 16 sets.
        let g = CacheGeometry::new(4096, 64, 4).unwrap();
        assert_eq!(g.num_sets(), 16);
    }

    #[test]
    fn set_mapping_wraps_modulo() {
        let g = CacheGeometry::new(2048, 64, 4).unwrap();
        assert_eq!(g.set_of_addr(0), 0);
        assert_eq!(g.set_of_addr(64), 1);
        assert_eq!(g.set_of_addr(512), 0);
        assert_eq!(g.set_of_addr(513), 0);
        assert_eq!(g.set_of_addr(575), 0);
        assert_eq!(g.set_of_addr(576), 1);
    }

    #[test]
    fn line_alignment() {
        let g = CacheGeometry::new(2048, 64, 4).unwrap();
        assert_eq!(g.line_of_addr(0), 0);
        assert_eq!(g.line_of_addr(63), 0);
        assert_eq!(g.line_of_addr(64), 64);
        assert_eq!(g.line_of_addr(130), 128);
    }

    #[test]
    fn rejects_zero_fields() {
        assert!(CacheGeometry::new(0, 64, 4).is_err());
        assert!(CacheGeometry::new(2048, 0, 4).is_err());
        assert!(CacheGeometry::new(2048, 64, 0).is_err());
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(CacheGeometry::new(3000, 64, 4).is_err());
        assert!(CacheGeometry::new(2048, 96, 4).is_err());
    }

    #[test]
    fn rejects_inconsistent_size() {
        // 2048 bytes with 64-byte lines and 3 ways: 2048 % 192 != 0.
        assert!(CacheGeometry::new(2048, 64, 3).is_err());
    }

    #[test]
    fn unsectored_geometry_degenerates_to_one_sector_per_line() {
        let g = CacheGeometry::new(2048, 64, 4).unwrap();
        assert_eq!(g.sector_bytes(), 64);
        assert_eq!(g.sectors_per_line(), 1);
        assert!(!g.is_sectored());
        assert_eq!(g.sector_of_addr(63), 0);
    }

    #[test]
    fn ampere_style_sectored_geometry() {
        // 4 KB, 4-way, 128 B lines, 32 B sectors => 8 sets, 4 sectors/line.
        let g = CacheGeometry::new_sectored(4096, 128, 4, 32).unwrap();
        assert_eq!(g.num_sets(), 8);
        assert_eq!(g.sectors_per_line(), 4);
        assert!(g.is_sectored());
        assert_eq!(g.sector_of_addr(0), 0);
        assert_eq!(g.sector_of_addr(33), 1);
        assert_eq!(g.sector_of_addr(127), 3);
        assert_eq!(g.sector_of_addr(128), 0); // next line
    }

    #[test]
    fn rejects_bad_sector_geometry() {
        assert!(CacheGeometry::new_sectored(4096, 128, 4, 0).is_err());
        assert!(CacheGeometry::new_sectored(4096, 128, 4, 48).is_err()); // not a power of two
        assert!(CacheGeometry::new_sectored(4096, 128, 4, 256).is_err()); // larger than line
        assert!(CacheGeometry::new_sectored(4096, 128, 4, 8).is_err()); // 16 sectors > mask width
        assert!(CacheGeometry::new_sectored(4096, 128, 4, 16).is_ok()); // 8 sectors: boundary
    }

    #[test]
    fn filling_one_set_takes_ways_accesses() {
        let g = CacheGeometry::new(2048, 64, 4).unwrap();
        let stride = g.same_set_stride();
        // `ways` addresses at same-set stride all land in set 0 and exactly
        // fill it.
        let sets: Vec<u64> = (0..g.ways()).map(|i| g.set_of_addr(i * stride)).collect();
        assert!(sets.iter().all(|&s| s == 0));
        assert_eq!(sets.len() as u64, g.ways());
    }
}
