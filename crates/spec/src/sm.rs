//! Streaming-multiprocessor (SM) resources and limits.

use crate::fu::FuPools;
use crate::WARP_SIZE;

/// Static description of one streaming multiprocessor.
///
/// The *limits* (`max_threads`, `max_blocks`, `shared_mem_bytes`,
/// `registers`) drive the leftover-policy block scheduler in `gpgpu-sim`:
/// a thread block is placed on an SM only if all four fit, which is exactly
/// the mechanism the paper manipulates in Section 8 to force *exclusive*
/// co-location (e.g. one spy block claiming all shared memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmSpec {
    /// Number of warp schedulers (paper Table 1: 2 on Fermi, 4 on
    /// Kepler/Maxwell).
    pub num_warp_schedulers: u32,
    /// Number of instruction dispatch units (Table 1).
    pub dispatch_units: u32,
    /// Functional-unit pools (Table 1).
    pub pools: FuPools,
    /// Maximum resident threads.
    pub max_threads: u32,
    /// Maximum resident thread blocks.
    pub max_blocks: u32,
    /// Shared memory capacity in bytes.
    pub shared_mem_bytes: u64,
    /// Maximum shared memory one thread block may request. On Fermi/Kepler
    /// this equals [`SmSpec::shared_mem_bytes`] (one block can monopolize the
    /// SM); on Maxwell it is half of it — the paper's Section 8 notes both
    /// spy *and* trojan must then claim a full block-max to lock the SM.
    pub max_shared_mem_per_block: u64,
    /// Register file size (32-bit registers).
    pub registers: u32,
}

impl SmSpec {
    /// Maximum resident warps (`max_threads / 32`).
    pub fn max_warps(&self) -> u32 {
        self.max_threads / WARP_SIZE
    }

    /// Dispatch slots per warp scheduler per cycle.
    pub fn dispatch_per_scheduler(&self) -> u32 {
        (self.dispatch_units / self.num_warp_schedulers).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kepler_sm() -> SmSpec {
        SmSpec {
            num_warp_schedulers: 4,
            dispatch_units: 8,
            pools: FuPools { sp: 192, dpu: 64, sfu: 32, ldst: 32 },
            max_threads: 2048,
            max_blocks: 16,
            shared_mem_bytes: 48 * 1024,
            max_shared_mem_per_block: 48 * 1024,
            registers: 65536,
        }
    }

    #[test]
    fn max_warps_is_threads_over_warp_size() {
        assert_eq!(kepler_sm().max_warps(), 64);
    }

    #[test]
    fn dispatch_per_scheduler_kepler_is_dual_issue() {
        assert_eq!(kepler_sm().dispatch_per_scheduler(), 2);
    }
}
