//! Global-memory system parameters: DRAM latency/bandwidth, coalescing
//! segment size, and atomic-unit timing.
//!
//! Section 6 of the paper builds covert channels on *atomic* operations
//! because plain loads/stores cannot create measurable contention (the
//! memory bandwidth is too high), while the atomic units are few and slow.
//! Two generation-specific facts matter and are captured here:
//!
//! * On Fermi, atomics are serviced at the memory controller; on Kepler and
//!   Maxwell they execute at the L2, with same-address throughput improved
//!   "by 9x to one operation per clock cycle".
//! * Un-coalesced access patterns multiply the number of memory transactions
//!   per warp instruction, slowing the channel (Figure 10, scenario 3).

/// Parameters of the global-memory system of one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemorySpec {
    /// Round-trip latency (cycles) of a global load that misses all caches.
    pub global_load_latency: u64,
    /// Latency (cycles) of the constant-memory backing store, observed on a
    /// constant L2 miss (the upper plateau of the paper's Figure 3).
    pub const_mem_latency: u64,
    /// Round-trip latency (cycles) of one atomic operation with no queueing.
    pub atomic_base_latency: u64,
    /// Service interval (cycles per *lane* operation) of one atomic unit:
    /// 1 on Kepler/Maxwell ("one operation per clock", L2-side atomics),
    /// ~9 on Fermi (memory-side atomics).
    pub atomic_service_cycles: u64,
    /// Slow-path multiplier applied on L2-atomic devices when a lane is
    /// alone in its coalescing segment (the merged fast path does not
    /// engage). 1 on Fermi (already slow everywhere).
    pub atomic_uncoalesced_penalty: u64,
    /// Number of independent atomic units (address-interleaved). Concurrent
    /// atomics to lines owned by different units do not contend.
    pub atomic_units: u32,
    /// Coalescing segment size in bytes; the coalescer merges the 32 lane
    /// addresses of a warp memory instruction into unique segments of this
    /// size, each becoming one memory transaction.
    pub coalesce_segment: u64,
    /// Number of global-memory transactions the memory system accepts per
    /// cycle (aggregate issue bandwidth across SMs).
    pub transactions_per_cycle: u32,
}

impl MemorySpec {
    /// Which atomic unit services a given byte address (line-interleaved).
    pub fn atomic_unit_of(&self, addr: u64) -> u32 {
        ((addr / self.coalesce_segment) % u64::from(self.atomic_units)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MemorySpec {
        MemorySpec {
            global_load_latency: 450,
            const_mem_latency: 250,
            atomic_base_latency: 200,
            atomic_service_cycles: 1,
            atomic_uncoalesced_penalty: 9,
            atomic_units: 8,
            coalesce_segment: 128,
            transactions_per_cycle: 4,
        }
    }

    #[test]
    fn atomic_unit_interleaves_by_segment() {
        let m = spec();
        assert_eq!(m.atomic_unit_of(0), 0);
        assert_eq!(m.atomic_unit_of(127), 0);
        assert_eq!(m.atomic_unit_of(128), 1);
        assert_eq!(m.atomic_unit_of(128 * 8), 0); // wraps at atomic_units
    }

    #[test]
    fn distinct_segments_map_to_distinct_units_until_wrap() {
        let m = spec();
        let units: Vec<u32> = (0..8).map(|i| m.atomic_unit_of(i * 128)).collect();
        let mut sorted = units.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "first 8 segments hit 8 distinct units: {units:?}");
    }
}
