//! Architecture generations, functional-unit classes and warp-level ALU
//! operation kinds.

use std::fmt;

/// NVIDIA microarchitecture generation.
///
/// The paper demonstrates every channel on one GPU from each of these three
/// generations; a few behaviours differ by generation (double-precision
/// support, atomic-unit placement, warp-scheduler/functional-unit coupling)
/// and the simulator dispatches on this enum for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Architecture {
    /// Fermi (e.g. Tesla C2075): 2 warp schedulers per SM, soft-shared
    /// functional units, memory-side atomic units.
    Fermi,
    /// Kepler (e.g. Tesla K40C): 4 warp schedulers, 8 dispatch units,
    /// soft-shared functional units, L2-side atomic units (~9x Fermi
    /// atomic throughput).
    Kepler,
    /// Maxwell (e.g. Quadro M4000): SM split into four quadrants, each warp
    /// scheduler owns dedicated functional units; no double-precision units.
    Maxwell,
    /// Ampere (e.g. RTX A4000): SM split into four *sub-cores*, each with a
    /// private register-file slice and single-issue slot; dependence
    /// management uses compiler-scheduled fixed-latency hints instead of a
    /// pure scoreboard, and the L1 is sectored (32-byte fills into 128-byte
    /// lines).
    Ampere,
}

impl Architecture {
    /// All architectures modelled by this workspace, in generation order.
    /// Matrix-style consumers (arena, sweeps, figures) iterate this constant
    /// so the grid grows automatically when a generation is added.
    pub const ALL: [Architecture; 4] =
        [Architecture::Fermi, Architecture::Kepler, Architecture::Maxwell, Architecture::Ampere];

    /// Whether the warp schedulers of this generation own *dedicated*
    /// functional units (Maxwell quadrants, Ampere sub-cores) as opposed to
    /// issuing into a soft-shared pool (Fermi/Kepler).
    ///
    /// Either way the paper finds — and the simulator reproduces — that
    /// functional-unit contention is isolated to warps on the *same* warp
    /// scheduler.
    pub fn has_dedicated_scheduler_units(self) -> bool {
        matches!(self, Architecture::Maxwell | Architecture::Ampere)
    }

    /// Whether atomic operations are serviced at the L2 cache (Kepler and
    /// later) rather than at the memory controller (Fermi). L2-side atomics
    /// are roughly 9x faster for same-address traffic (paper Section 6).
    pub fn has_l2_atomics(self) -> bool {
        !matches!(self, Architecture::Fermi)
    }

    /// Lowercase canonical label, matching the alias accepted by
    /// [`crate::presets::by_name`] and the sweep/topology grammars.
    pub fn label(self) -> &'static str {
        match self {
            Architecture::Fermi => "fermi",
            Architecture::Kepler => "kepler",
            Architecture::Maxwell => "maxwell",
            Architecture::Ampere => "ampere",
        }
    }

    /// Parses a canonical lowercase label back into the generation — the
    /// inverse of [`Architecture::label`].
    pub fn from_label(label: &str) -> Option<Architecture> {
        Architecture::ALL.into_iter().find(|a| a.label() == label)
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Architecture::Fermi => "Fermi",
            Architecture::Kepler => "Kepler",
            Architecture::Maxwell => "Maxwell",
            Architecture::Ampere => "Ampere",
        };
        f.write_str(name)
    }
}

/// A class of execution resource inside an SM.
///
/// Counts per SM for each class are given in the paper's Table 1 and are
/// stored in [`crate::FuPools`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuUnit {
    /// Single-precision CUDA core.
    Sp,
    /// Double-precision unit.
    Dpu,
    /// Special function unit (`__sinf`, `__cosf`, reciprocal, used by `sqrt`).
    Sfu,
    /// Load/store unit.
    LdSt,
}

impl FuUnit {
    /// All unit classes.
    pub const ALL: [FuUnit; 4] = [FuUnit::Sp, FuUnit::Dpu, FuUnit::Sfu, FuUnit::LdSt];
}

impl fmt::Display for FuUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FuUnit::Sp => "SP",
            FuUnit::Dpu => "DPU",
            FuUnit::Sfu => "SFU",
            FuUnit::LdSt => "LD/ST",
        };
        f.write_str(name)
    }
}

/// Warp-level arithmetic operation kinds used by the paper's
/// characterization (Figures 6 and 7) and by the functional-unit covert
/// channel (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuOpKind {
    /// Single-precision floating-point add (`fadd.f32`), executes on SP cores.
    SpAdd,
    /// Single-precision floating-point multiply, executes on SP cores.
    SpMul,
    /// Fast hardware sine (`__sinf`), executes on SFUs.
    SpSinf,
    /// Single-precision square root; expands to several SFU micro-operations.
    SpSqrt,
    /// Double-precision add, executes on DPUs.
    DpAdd,
    /// Double-precision multiply, executes on DPUs.
    DpMul,
}

impl FuOpKind {
    /// All operation kinds, in the order the paper plots them.
    pub const ALL: [FuOpKind; 6] = [
        FuOpKind::SpSinf,
        FuOpKind::SpSqrt,
        FuOpKind::SpAdd,
        FuOpKind::SpMul,
        FuOpKind::DpAdd,
        FuOpKind::DpMul,
    ];

    /// The execution-resource class this operation issues to.
    pub fn unit(self) -> FuUnit {
        match self {
            FuOpKind::SpAdd | FuOpKind::SpMul => FuUnit::Sp,
            FuOpKind::SpSinf | FuOpKind::SpSqrt => FuUnit::Sfu,
            FuOpKind::DpAdd | FuOpKind::DpMul => FuUnit::Dpu,
        }
    }

    /// Whether the operation is double precision (unavailable on Maxwell,
    /// whose `DPU` pool is empty — see the paper's Figure 7 caption).
    pub fn is_double(self) -> bool {
        matches!(self, FuOpKind::DpAdd | FuOpKind::DpMul)
    }
}

impl fmt::Display for FuOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FuOpKind::SpAdd => "Add",
            FuOpKind::SpMul => "Mul",
            FuOpKind::SpSinf => "__sinf",
            FuOpKind::SpSqrt => "sqrt",
            FuOpKind::DpAdd => "Add (double)",
            FuOpKind::DpMul => "Mul (double)",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_match_paper_labels() {
        assert_eq!(FuOpKind::SpSinf.to_string(), "__sinf");
        assert_eq!(FuOpKind::DpMul.to_string(), "Mul (double)");
        assert_eq!(Architecture::Kepler.to_string(), "Kepler");
        assert_eq!(FuUnit::LdSt.to_string(), "LD/ST");
    }

    #[test]
    fn op_unit_mapping() {
        assert_eq!(FuOpKind::SpAdd.unit(), FuUnit::Sp);
        assert_eq!(FuOpKind::SpMul.unit(), FuUnit::Sp);
        assert_eq!(FuOpKind::SpSinf.unit(), FuUnit::Sfu);
        assert_eq!(FuOpKind::SpSqrt.unit(), FuUnit::Sfu);
        assert_eq!(FuOpKind::DpAdd.unit(), FuUnit::Dpu);
        assert_eq!(FuOpKind::DpMul.unit(), FuUnit::Dpu);
    }

    #[test]
    fn double_precision_flags() {
        assert!(FuOpKind::DpAdd.is_double());
        assert!(FuOpKind::DpMul.is_double());
        assert!(!FuOpKind::SpSqrt.is_double());
    }

    #[test]
    fn atomics_placement_by_generation() {
        assert!(!Architecture::Fermi.has_l2_atomics());
        assert!(Architecture::Kepler.has_l2_atomics());
        assert!(Architecture::Maxwell.has_l2_atomics());
        assert!(Architecture::Ampere.has_l2_atomics());
    }

    #[test]
    fn dedicated_units_start_at_maxwell() {
        assert!(Architecture::Maxwell.has_dedicated_scheduler_units());
        assert!(Architecture::Ampere.has_dedicated_scheduler_units());
        assert!(!Architecture::Fermi.has_dedicated_scheduler_units());
        assert!(!Architecture::Kepler.has_dedicated_scheduler_units());
    }

    #[test]
    fn labels_round_trip_for_every_generation() {
        for arch in Architecture::ALL {
            assert_eq!(Architecture::from_label(arch.label()), Some(arch));
        }
        assert_eq!(Architecture::from_label("volta"), None);
        assert_eq!(Architecture::from_label("Ampere"), None, "labels are lowercase-canonical");
    }
}
