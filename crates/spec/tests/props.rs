//! Property tests for the specification layer.

use gpgpu_spec::{BlockResources, CacheGeometry, FuPools, FuUnit, LaunchConfig, WARP_SIZE};
use proptest::prelude::*;

/// Strategy over valid power-of-two cache geometries.
fn geometries() -> impl Strategy<Value = CacheGeometry> {
    (0u32..4, 5u32..9, 0u32..3).prop_map(|(sets_log, line_log, ways_log)| {
        let sets = 1u64 << (sets_log + 1);
        let line = 1u64 << line_log;
        let ways = 1u64 << ways_log;
        CacheGeometry::new(sets * line * ways, line, ways).expect("constructed geometry is valid")
    })
}

proptest! {
    #[test]
    fn set_index_is_always_in_range(geom in geometries(), addr in any::<u64>() ) {
        prop_assert!(geom.set_of_addr(addr) < geom.num_sets());
    }

    #[test]
    fn line_address_is_aligned_and_covers(geom in geometries(), addr in any::<u64>()) {
        let line = geom.line_of_addr(addr);
        prop_assert_eq!(line % geom.line_bytes(), 0);
        prop_assert!(line <= addr && addr < line + geom.line_bytes());
    }

    #[test]
    fn same_set_stride_preserves_set(geom in geometries(), addr in 0u64..1_000_000, k in 0u64..64) {
        let a = addr + k * geom.same_set_stride();
        prop_assert_eq!(geom.set_of_addr(a), geom.set_of_addr(addr % geom.same_set_stride() + (addr / geom.same_set_stride()) * geom.same_set_stride()));
        prop_assert_eq!(geom.set_of_addr(a), geom.set_of_addr(addr));
    }

    #[test]
    fn geometry_identity(geom in geometries()) {
        prop_assert_eq!(
            geom.num_sets() * geom.line_bytes() * geom.ways(),
            geom.size_bytes()
        );
    }

    #[test]
    fn scheduler_shares_partition_the_pool(
        sp in 0u32..512, dpu in 0u32..128, sfu in 0u32..64, ldst in 0u32..64,
        nsched in 1u32..8,
    ) {
        let pools = FuPools { sp, dpu, sfu, ldst };
        for unit in FuUnit::ALL {
            let share = pools.scheduler_share(unit, nsched);
            prop_assert!(share * nsched <= pools.count(unit));
            // Occupancy is within [1, 32].
            let occ = pools.issue_occupancy(unit, nsched);
            prop_assert!((1..=WARP_SIZE).contains(&occ));
            prop_assert!(pools.scheduler_ports(unit, nsched) >= 1);
        }
    }

    #[test]
    fn block_resources_warps_round_up(threads in 1u32..4096) {
        let r = BlockResources { threads, shared_mem_bytes: 0, registers_per_thread: 0 };
        prop_assert!(r.warps() * WARP_SIZE >= threads);
        prop_assert!((r.warps() - 1) * WARP_SIZE < threads);
    }

    #[test]
    fn launch_validation_never_panics(
        blocks in 0u32..64, threads in 0u32..8192,
        shared in 0u64..256*1024, regs in 0u32..256,
    ) {
        let cfg = LaunchConfig::new(blocks, threads)
            .with_shared_mem(shared)
            .with_registers_per_thread(regs);
        let spec = gpgpu_spec::presets::tesla_k40c();
        let _ = cfg.validate(&spec.sm); // any result is fine; no panic
    }
}
