//! # gpgpu-covert — covert channels on GPGPUs
//!
//! A full reproduction of **"Constructing and Characterizing Covert Channels
//! on GPGPUs"** (Naghibijouybari, Khasawneh, Abu-Ghazaleh — MICRO-50, 2017)
//! on top of the pure-Rust cycle-level simulator in [`gpgpu_sim`].
//!
//! The paper builds covert channels between two concurrently-running GPU
//! kernels (a *trojan* that knows a secret and a *spy* that receives it)
//! through contention on shared hardware: the constant caches, the special
//! function units, and the global-memory atomic units. This crate implements
//! every step of the attack:
//!
//! | Module | Paper section | What it does |
//! |---|---|---|
//! | [`colocation`] | §3, §8 | reverse engineer the block/warp schedulers; force (exclusive) co-location |
//! | [`microbench`]  | §4.1, §5.1 | recover cache geometry (Figs 2-3) and FU latency curves (Figs 6-7) |
//! | [`cache_channel`] | §4 | baseline L1/L2 prime+probe channels with per-bit kernel relaunch (Fig 4-5) |
//! | [`fu_channel`] | §5 | SFU (`__sinf`) contention channel |
//! | [`atomic_channel`] | §6 | global-memory atomic channels, scenarios 1-3 (Fig 10) |
//! | [`sync_channel`] | §7.1 | synchronized channel with the Figure-11 handshake; multi-bit and multi-SM parallel variants (Table 2) |
//! | [`nvlink_channel`] | — | cross-GPU channel over contended NVLink-style links (NVBleed-class, see `PAPERS.md`) |
//! | [`parallel`] | §7 | per-warp-scheduler and per-SM SFU parallelism (Table 3); combined L1+SFU channel |
//! | [`side_channel`] | §10 | the negative results: coalescing and bank-conflict self-timing artifacts do not transfer to competing kernels |
//! | [`noise`] | §8 | Rodinia-like interfering workloads and exclusive co-location |
//! | [`whitespace`] | §8 | dynamic idle-set discovery ("whitespace communication") |
//! | [`mitigations`] | §9 | composable defenses (cache partitioning, scheduler randomization, clock fuzzing) evaluated against every channel family |
//! | [`arena`] | §9 | attack/defense tournament: every family plus the adaptive ladder vs every defense combination, as a residual-bandwidth matrix |
//! | [`bits`] | §5, §8 | messages, bit-error rate, Hamming(7,4) error correction |
//! | [`framing`] | §7.1 | CRC-8 frames with preamble resynchronization and selective-repeat ARQ over faulted channels |
//! | [`calibrate`] | §8 | pilot-symbol handshake fitting decode thresholds online |
//! | [`linkmon`] | §8 | link-quality monitor + degradation ladder (re-calibrate, stretch, channel-family fallback) |
//! | [`analytic`] | — | closed-form bandwidth/BER predictor characterized from the cycle engine; sweep pre-pruner |
//! | [`harness`] | — | deterministic multi-threaded trial runner powering every sweep |
//! | [`pool`] | — | thread-local device pool: per-trial runs reuse warmed allocations behind pristine snapshots |
//!
//! # Quickstart
//!
//! ```
//! use gpgpu_covert::cache_channel::L1Channel;
//! use gpgpu_covert::bits::Message;
//! use gpgpu_spec::presets;
//!
//! let channel = L1Channel::new(presets::tesla_k40c());
//! let message = Message::from_bytes(b"hi");
//! let outcome = channel.transmit(&message)?;
//! assert_eq!(outcome.received, message);      // error-free
//! assert!(outcome.bandwidth_kbps > 1.0);      // tens of Kbps on the K40C
//! # Ok::<(), gpgpu_covert::CovertError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod analytic;
pub mod arena;
pub mod atomic_channel;
pub mod bits;
pub mod cache_channel;
pub mod calibrate;
pub mod channel;
pub mod colocation;
mod error;
pub mod framing;
pub mod fu_channel;
pub mod harness;
pub mod kernels;
pub mod linkmon;
pub mod microbench;
pub mod mitigations;
pub mod noise;
pub mod nvlink_channel;
pub mod parallel;
pub mod pool;
pub mod side_channel;
pub mod sync_channel;
pub mod whitespace;

pub use channel::{ChannelOutcome, TraceCapture};
pub use error::CovertError;
