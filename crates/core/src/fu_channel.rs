//! Functional-unit covert channels (paper Section 5).
//!
//! The trojan creates contention for the issue bandwidth of the special
//! function units; the spy observes its own `__sinf` bursts slow down.
//! Contention is isolated to warps on the *same warp scheduler*, so the spy
//! and trojan choose warp counts that place one warp of each on every
//! scheduler (the per-architecture counts of Section 5.2), and the parallel
//! variant in [`crate::parallel`] sends one bit per scheduler.

use crate::bits::Message;
use crate::calibrate::{pilot_pattern, Calibration};
use crate::channel::{transmit_per_bit, ChannelOutcome};
use crate::kernels::emit_timed_fu_burst;
use crate::CovertError;
use gpgpu_isa::{ProgramBuilder, Reg};
use gpgpu_spec::{Architecture, DeviceSpec, FuOpKind, FuTiming, LaunchConfig};

/// Default `__sinf` ops per timed spy burst.
pub const DEFAULT_OPS_PER_ITER: u64 = 96;

/// Default timed bursts (iterations) per bit.
pub const DEFAULT_ITERATIONS: u64 = 10;

/// The Section-5.2 per-block warp counts: "each block of the spy and the
/// trojan use 3 warps, 12 warps and 10 warps, for the Fermi, Kepler and
/// Maxwell architectures respectively". Ampere post-dates the paper; its
/// count (two warps per single-issue sub-core) is the forward projection of
/// the same rule — enough co-located warps that one kernel's presence moves
/// the other's burst latency past a contention step.
pub fn paper_warps_per_block(arch: Architecture) -> u32 {
    match arch {
        Architecture::Fermi => 3,
        Architecture::Kepler => 12,
        Architecture::Maxwell => 10,
        Architecture::Ampere => 8,
    }
}

/// A baseline (per-bit relaunch) SFU contention channel.
#[derive(Debug, Clone)]
pub struct SfuChannel {
    spec: DeviceSpec,
    /// Operation measured (default `__sinf`; `sqrt` works too but is slower).
    pub op: FuOpKind,
    /// Ops per timed burst.
    pub ops_per_iter: u64,
    /// Timed bursts per bit.
    pub iterations: u64,
    /// Warps per block for both kernels.
    pub warps_per_block: u32,
    /// Launch jitter `(max_cycles, seed)`.
    pub jitter: Option<(u64, u64)>,
    /// Deterministic fault plan installed on the device for the run.
    pub fault_plan: Option<gpgpu_sim::FaultPlan>,
    /// Noise co-runner kernels launched alongside every bit's pair.
    pub noise: Vec<gpgpu_sim::KernelSpec>,
    /// Fitted decode rule from a pilot handshake; `None` uses the static
    /// spec-derived burst threshold.
    pub calibration: Option<Calibration>,
    /// Override of the per-bit simulated-cycle watchdog budget.
    pub bit_budget: Option<u64>,
    /// Device tuning (engine mode, mitigation knobs) for the run.
    pub tuning: gpgpu_sim::DeviceTuning,
}

impl SfuChannel {
    /// A Section-5.2 channel with the paper's parameters for the device's
    /// architecture.
    pub fn new(spec: DeviceSpec) -> Self {
        let warps = paper_warps_per_block(spec.architecture);
        SfuChannel {
            spec,
            op: FuOpKind::SpSinf,
            ops_per_iter: DEFAULT_OPS_PER_ITER,
            iterations: DEFAULT_ITERATIONS,
            warps_per_block: warps,
            jitter: Some((crate::cache_channel::DEFAULT_JITTER, 0x5EED)),
            fault_plan: None,
            noise: Vec::new(),
            calibration: None,
            bit_budget: None,
            tuning: gpgpu_sim::DeviceTuning::none(),
        }
    }

    /// Sets the device tuning (engine mode, mitigation knobs).
    pub fn with_tuning(mut self, tuning: gpgpu_sim::DeviceTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Installs a deterministic fault plan for every transmission.
    pub fn with_faults(mut self, plan: gpgpu_sim::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Launches these noise co-runner kernels alongside every bit.
    pub fn with_noise(mut self, noise: Vec<gpgpu_sim::KernelSpec>) -> Self {
        self.noise = noise;
        self
    }

    /// Decodes with a fitted calibration instead of the static rule.
    pub fn with_calibration(mut self, cal: Calibration) -> Self {
        self.calibration = Some(cal);
        self
    }

    /// Overrides the per-bit simulated-cycle watchdog budget.
    pub fn with_bit_budget(mut self, budget: u64) -> Self {
        self.bit_budget = Some(budget);
        self
    }

    /// Sets the iteration count (bandwidth/robustness knob).
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Sets or disables launch jitter.
    pub fn with_jitter(mut self, jitter: Option<(u64, u64)>) -> Self {
        self.jitter = jitter;
        self
    }

    /// The device this channel targets.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Expected per-op latency with only the spy running (cycles).
    pub fn idle_latency(&self) -> u64 {
        let t = FuTiming::for_op(self.spec.architecture, self.op);
        let occ = u64::from(
            self.spec.sm.pools.issue_occupancy(self.op.unit(), self.spec.sm.num_warp_schedulers),
        ) * u64::from(t.micro_ops);
        let per_sched = u64::from(self.warps_per_block.div_ceil(self.spec.sm.num_warp_schedulers));
        (u64::from(t.pipeline_depth) + occ).max(per_sched * occ)
    }

    /// Expected per-op latency with spy + trojan contending (cycles).
    pub fn contended_latency(&self) -> u64 {
        let t = FuTiming::for_op(self.spec.architecture, self.op);
        let occ = u64::from(
            self.spec.sm.pools.issue_occupancy(self.op.unit(), self.spec.sm.num_warp_schedulers),
        ) * u64::from(t.micro_ops);
        let per_sched =
            u64::from((2 * self.warps_per_block).div_ceil(self.spec.sm.num_warp_schedulers));
        (u64::from(t.pipeline_depth) + occ).max(per_sched * occ)
    }

    /// The decode threshold: total burst cycles halfway between the idle and
    /// contended expectations.
    fn burst_threshold(&self) -> u64 {
        self.ops_per_iter * (self.idle_latency() + self.contended_latency()) / 2
    }

    /// The static spec-derived decode rule (the initial guess a pilot
    /// refines): a bit is 1 when at least a quarter of the timed bursts ran
    /// strictly slower than the idle/contended midpoint.
    pub fn static_calibration(&self) -> Calibration {
        let min_hot = ((self.iterations as usize) / 4).max(2).min(self.iterations as usize);
        // `Calibration::decode` is inclusive (`>=`); the legacy
        // `decode_from_latencies` rule was strict (`>`), hence the +1.
        Calibration::from_spec(self.burst_threshold() + 1, min_hot)
    }

    /// Runs the pilot handshake: transmits the known [`pilot_pattern`] and
    /// fits a decode rule from the raw burst latencies the spy observed,
    /// under this channel's full environment (jitter, faults, noise).
    ///
    /// # Errors
    ///
    /// Propagates transmission failures; [`CovertError::Config`] when the
    /// idle and contended latency distributions are inseparable.
    pub fn calibrate(&self, pilot_bits: usize) -> Result<Calibration, CovertError> {
        let pilot = pilot_pattern(pilot_bits);
        let msg = Message::from_bits(pilot.clone());
        let stash = std::cell::RefCell::new(Vec::with_capacity(pilot.len()));
        let decode = |samples: &[u64]| {
            stash.borrow_mut().push(samples.to_vec());
            Ok(false)
        };
        self.transmit_raw(&msg, &decode)?;
        let per_bit = stash.into_inner();
        Calibration::fit(&pilot, &per_bit)
    }

    /// Transmits `msg` over the SFU channel.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures, including
    /// [`gpgpu_sim::SimError::Launch`] for ops the device cannot execute.
    pub fn transmit(&self, msg: &Message) -> Result<ChannelOutcome, CovertError> {
        let cal = self.calibration.clone().unwrap_or_else(|| self.static_calibration());
        let decode = move |samples: &[u64]| cal.decode(samples);
        self.transmit_raw(msg, &decode)
    }

    fn transmit_raw(
        &self,
        msg: &Message,
        decode: &dyn Fn(&[u64]) -> Result<bool, CovertError>,
    ) -> Result<ChannelOutcome, CovertError> {
        self.spec.supports_op(self.op).map_err(gpgpu_sim::SimError::from)?;
        let (op, ops, iterations) = (self.op, self.ops_per_iter, self.iterations);
        let spy_program = move || {
            let mut b = ProgramBuilder::new();
            b.repeat(Reg(20), iterations, |b| {
                emit_timed_fu_burst(b, op, ops, Reg(21));
                b.push_result(Reg(21));
            });
            b.build().expect("spy program assembles")
        };
        let trojan_program = move |bit: bool| {
            let mut b = ProgramBuilder::new();
            if bit {
                // Run ~1.5x the spy's work so contention covers the spy's
                // whole measurement window despite jitter.
                b.repeat(Reg(20), iterations * 3 / 2, |b| {
                    for _ in 0..ops {
                        b.fu(op);
                    }
                });
            } else {
                crate::kernels::emit_idle_spin(&mut b, iterations * ops / 2, Reg(20));
            }
            b.build().expect("trojan program assembles")
        };
        let launch = LaunchConfig::new(self.spec.num_sms, self.warps_per_block * 32);
        let (outcome, _dev) = transmit_per_bit(
            &self.spec,
            self.tuning,
            self.jitter,
            self.fault_plan,
            &self.noise,
            msg,
            &trojan_program,
            &spy_program,
            (launch, launch),
            (0, 0),
            decode,
            self.bit_budget.unwrap_or(120_000_000),
            None,
        )?;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_spec::presets;

    #[test]
    fn paper_warp_counts() {
        assert_eq!(paper_warps_per_block(Architecture::Fermi), 3);
        assert_eq!(paper_warps_per_block(Architecture::Kepler), 12);
        assert_eq!(paper_warps_per_block(Architecture::Maxwell), 10);
    }

    #[test]
    fn latency_model_matches_section_5_2_numbers() {
        // "The latency in this case is about 41 clock cycles for Fermi (18
        // for Kepler and 15 for Maxwell) ... For sending 1 ... latency is
        // increased to 48 clock cycles for Fermi (24 for Kepler and 20 for
        // Maxwell)."
        let f = SfuChannel::new(presets::tesla_c2075());
        assert_eq!((f.idle_latency(), f.contended_latency()), (41, 48));
        let k = SfuChannel::new(presets::tesla_k40c());
        assert_eq!((k.idle_latency(), k.contended_latency()), (18, 24));
        let m = SfuChannel::new(presets::quadro_m4000());
        assert_eq!((m.idle_latency(), m.contended_latency()), (15, 20));
    }

    #[test]
    fn kepler_sfu_channel_is_error_free() {
        let ch = SfuChannel::new(presets::tesla_k40c());
        let msg = Message::from_bits([true, false, true, false, false, true]);
        let o = ch.transmit(&msg).unwrap();
        assert_eq!(o.received, msg, "got {} want {}", o.received, o.sent);
        assert!(o.bandwidth_kbps > 2.0);
    }

    #[test]
    fn rejects_double_precision_on_maxwell() {
        let mut ch = SfuChannel::new(presets::quadro_m4000());
        ch.op = FuOpKind::DpAdd;
        let msg = Message::from_bits([true]);
        assert!(ch.transmit(&msg).is_err());
    }
}
