//! Baseline cache covert channels (paper Section 4).
//!
//! The trojan transmits a 1 by filling one set of a constant cache with its
//! own lines (evicting the spy's), and a 0 by doing nothing; the spy times
//! repeated probes of its own lines in that set. Each bit uses a fresh
//! kernel-pair launch ("to simplify synchronization ... leveraging the
//! stream operations"), which caps the bandwidth at tens of Kbps — the
//! synchronized channel of [`crate::sync_channel`] removes that overhead.
//!
//! Two variants:
//!
//! * [`L1Channel`] — both kernels launch `num_sms` blocks so every SM hosts
//!   one block of each (the Section 3.1 co-residency recipe); contention is
//!   on the per-SM constant L1 (2 KB on Kepler/Maxwell, 4 KB on Fermi).
//! * [`L2Channel`] — one block each, so the kernels land on *different* SMs
//!   and communicate through the shared 32 KB constant L2 (the cross-SM
//!   channel of Section 4.3).

use crate::bits::Message;
use crate::calibrate::{pilot_pattern, Calibration};
use crate::channel::{transmit_per_bit, ChannelOutcome, TraceCapture};
use crate::harness::TrialRunner;
use crate::kernels::{emit_fill, emit_idle_spin, emit_probe_count_misses, miss_threshold, SetRef};
use crate::CovertError;
use gpgpu_isa::{ProgramBuilder, Reg};
use gpgpu_spec::{DeviceSpec, LaunchConfig};

/// Default prime+probe iterations per bit for the L1 channel (the paper's
/// error-free operating point on Kepler: "20 times for L1 channel").
pub const DEFAULT_L1_ITERATIONS: u64 = 20;

/// Default iterations per bit for the L2 channel. The paper quotes 2 as the
/// minimum on Kepler; the error-free default is higher because the L2 probe
/// is ~3x slower per iteration.
pub const DEFAULT_L2_ITERATIONS: u64 = 8;

/// Default launch jitter (cycles) modelling host-side scheduling noise.
pub const DEFAULT_JITTER: u64 = 3_000;

/// Which constant-cache level a [`CacheChannel`] contends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLevel {
    /// Per-SM constant L1 (requires SM co-residency).
    L1,
    /// Shared constant L2 (works across SMs).
    L2,
}

/// A baseline (per-bit relaunch) constant-cache covert channel.
#[derive(Debug, Clone)]
pub struct CacheChannel {
    spec: DeviceSpec,
    level: CacheLevel,
    /// Prime/probe iterations per bit. Reducing this raises bandwidth and,
    /// eventually, the error rate (Figure 5).
    pub iterations: u64,
    /// The cache set used for communication.
    pub target_set: u64,
    /// Launch jitter `(max_cycles, seed)`; `None` disables it.
    pub jitter: Option<(u64, u64)>,
    /// Device tuning (placement policy + Section-9 mitigation knobs), for
    /// mitigation-effectiveness experiments.
    pub tuning: gpgpu_sim::DeviceTuning,
    /// Deterministic fault plan installed on the device for the run
    /// (`None` leaves the fault hooks disabled — the common case).
    pub fault_plan: Option<gpgpu_sim::FaultPlan>,
    /// Noise co-runner kernels launched alongside every bit's trojan/spy
    /// pair (see [`crate::noise::noise_kernel`]); empty means a quiet device.
    pub noise: Vec<gpgpu_sim::KernelSpec>,
    /// Fitted decode rule from a pilot handshake; `None` falls back to the
    /// static spec-derived rule (see [`CacheChannel::static_calibration`]).
    pub calibration: Option<Calibration>,
    /// Override of the per-bit simulated-cycle budget (watchdog deadline);
    /// `None` uses the channel default.
    pub bit_budget: Option<u64>,
}

/// Convenience alias-constructors for the two levels.
#[derive(Debug, Clone)]
pub struct L1Channel;

#[derive(Debug, Clone)]
/// Convenience constructor for the cross-SM L2 variant.
pub struct L2Channel;

impl L1Channel {
    /// A Section-4.2 L1 channel with the paper's default parameters.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(spec: DeviceSpec) -> CacheChannel {
        CacheChannel {
            spec,
            level: CacheLevel::L1,
            iterations: DEFAULT_L1_ITERATIONS,
            target_set: 0,
            jitter: Some((DEFAULT_JITTER, 0x5EED)),
            tuning: gpgpu_sim::DeviceTuning::none(),
            fault_plan: None,
            noise: Vec::new(),
            calibration: None,
            bit_budget: None,
        }
    }
}

impl L2Channel {
    /// A Section-4.3 L2 channel with the paper's default parameters.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(spec: DeviceSpec) -> CacheChannel {
        CacheChannel {
            spec,
            level: CacheLevel::L2,
            iterations: DEFAULT_L2_ITERATIONS,
            target_set: 0,
            jitter: Some((DEFAULT_JITTER, 0x5EED)),
            tuning: gpgpu_sim::DeviceTuning::none(),
            fault_plan: None,
            noise: Vec::new(),
            calibration: None,
            bit_budget: None,
        }
    }
}

impl CacheChannel {
    /// Sets the per-bit iteration count (the Figure-5 bandwidth knob).
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Sets or disables launch jitter.
    pub fn with_jitter(mut self, jitter: Option<(u64, u64)>) -> Self {
        self.jitter = jitter;
        self
    }

    /// Selects the contended cache set.
    pub fn with_target_set(mut self, set: u64) -> Self {
        self.target_set = set;
        self
    }

    /// Applies device tuning (mitigations / placement policy).
    pub fn with_tuning(mut self, tuning: gpgpu_sim::DeviceTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Installs a deterministic fault plan for every transmission run on
    /// this channel (fault-sweep robustness experiments).
    pub fn with_faults(mut self, plan: gpgpu_sim::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Launches these noise co-runner kernels alongside every bit.
    pub fn with_noise(mut self, noise: Vec<gpgpu_sim::KernelSpec>) -> Self {
        self.noise = noise;
        self
    }

    /// Decodes with a fitted calibration instead of the static rule.
    pub fn with_calibration(mut self, cal: Calibration) -> Self {
        self.calibration = Some(cal);
        self
    }

    /// Overrides the per-bit simulated-cycle watchdog budget.
    pub fn with_bit_budget(mut self, budget: u64) -> Self {
        self.bit_budget = Some(budget);
        self
    }

    /// The device this channel targets.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    fn cache_geometry(&self) -> gpgpu_spec::CacheGeometry {
        match self.level {
            CacheLevel::L1 => self.spec.const_l1.geometry,
            CacheLevel::L2 => self.spec.const_l2.geometry,
        }
    }

    fn threshold(&self) -> u64 {
        match self.level {
            CacheLevel::L1 => {
                miss_threshold(self.spec.const_l1.hit_latency, self.spec.const_l2.hit_latency)
            }
            CacheLevel::L2 => {
                miss_threshold(self.spec.const_l2.hit_latency, self.spec.mem.const_mem_latency)
            }
        }
    }

    fn launch_config(&self) -> LaunchConfig {
        match self.level {
            // Co-residency on every SM (Section 3.1 recipe).
            CacheLevel::L1 => LaunchConfig::new(self.spec.num_sms, 32),
            // One block each => distinct SMs, communicate through L2.
            CacheLevel::L2 => LaunchConfig::new(1, 32),
        }
    }

    /// Spy and trojan array footprints in constant memory.
    fn array_bytes(&self) -> u64 {
        self.cache_geometry().size_bytes()
    }

    /// Minimum per-bit iterations observing a miss for the bit to decode
    /// as 1: a quarter of the iterations, at least 2.
    fn min_hot(&self) -> usize {
        ((self.iterations as usize) / 4).max(2).min(self.iterations as usize)
    }

    /// The static spec-derived decode rule (the initial guess a pilot
    /// refines): a bit is 1 when at least [`CacheChannel::min_hot`]
    /// iterations saw at least one probe miss.
    pub fn static_calibration(&self) -> Calibration {
        Calibration::from_spec(1, self.min_hot())
    }

    /// Runs the pilot handshake: transmits the known [`pilot_pattern`] and
    /// fits a decode rule from the per-iteration miss counts the spy
    /// observed, under this channel's full environment (tuning, jitter,
    /// faults, noise co-runners). The in-kernel probe latency threshold
    /// stays spec-derived — what drifts under contention is the *eviction*
    /// evidence, which is exactly what the fit re-learns.
    ///
    /// # Errors
    ///
    /// Propagates transmission failures; [`CovertError::Config`] when the
    /// pilot distributions are inseparable (the set is being stomped by a
    /// co-runner), which callers treat as a signal to escalate.
    pub fn calibrate(&self, pilot_bits: usize) -> Result<Calibration, CovertError> {
        let pilot = pilot_pattern(pilot_bits);
        let msg = Message::from_bits(pilot.clone());
        let stash = std::cell::RefCell::new(Vec::with_capacity(pilot.len()));
        let decode = |samples: &[u64]| {
            stash.borrow_mut().push(samples.to_vec());
            Ok(false)
        };
        self.transmit_raw(&msg, &decode, None)?;
        let per_bit = stash.into_inner();
        Calibration::fit(&pilot, &per_bit)
    }

    /// Transmits `msg`, returning the outcome (bandwidth, BER, received
    /// bits).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures ([`CovertError::Sim`]); a protocol
    /// desync is impossible in this per-bit-relaunch design.
    pub fn transmit(&self, msg: &Message) -> Result<ChannelOutcome, CovertError> {
        let (outcome, _dev) = self.transmit_impl(msg, None)?;
        Ok(outcome)
    }

    /// As [`CacheChannel::transmit`], recording a cycle-level event trace
    /// of the whole transmission into a ring buffer of `trace_capacity`
    /// records (see [`gpgpu_sim::EventTrace`]); the newest events win when
    /// the buffer overflows.
    ///
    /// # Errors
    ///
    /// As [`CacheChannel::transmit`].
    ///
    /// # Panics
    ///
    /// Panics only if the installed sink is lost or replaced mid-run,
    /// which the channel never does.
    pub fn transmit_traced(
        &self,
        msg: &Message,
        trace_capacity: usize,
    ) -> Result<(ChannelOutcome, TraceCapture), CovertError> {
        let sink = gpgpu_sim::EventTrace::with_capacity(trace_capacity);
        let (outcome, mut dev) = self.transmit_impl(msg, Some(Box::new(sink)))?;
        let kernel_names = dev.kernel_names();
        let events = *dev
            .take_trace_sink()
            .expect("the sink installed before the run is still present")
            .into_any()
            .downcast::<gpgpu_sim::EventTrace>()
            .expect("the sink is the EventTrace we installed");
        Ok((outcome, TraceCapture { events, kernel_names }))
    }

    fn transmit_impl(
        &self,
        msg: &Message,
        trace: Option<Box<dyn gpgpu_sim::TraceSink>>,
    ) -> Result<(ChannelOutcome, crate::pool::DeviceLease), CovertError> {
        let cal = self.calibration.clone().unwrap_or_else(|| self.static_calibration());
        let decode = move |samples: &[u64]| cal.decode(samples);
        self.transmit_raw(msg, &decode, trace)
    }

    fn transmit_raw(
        &self,
        msg: &Message,
        decode: &dyn Fn(&[u64]) -> Result<bool, CovertError>,
        trace: Option<Box<dyn gpgpu_sim::TraceSink>>,
    ) -> Result<(ChannelOutcome, crate::pool::DeviceLease), CovertError> {
        let geom = self.cache_geometry();
        let spy_base = 0u64;
        let trojan_base = geom.same_set_stride() * geom.ways();
        let spy_set = SetRef::new(&geom, spy_base, self.target_set);
        let trojan_set = SetRef::new(&geom, trojan_base, self.target_set);
        let threshold = self.threshold();
        let iterations = self.iterations;

        let spy_program = move || {
            let mut b = ProgramBuilder::new();
            // Warm: establish the spy's lines so a 0-bit shows zero misses.
            emit_fill(&mut b, &spy_set);
            b.repeat(Reg(20), iterations, |b| {
                emit_probe_count_misses(b, &spy_set, threshold, Reg(21));
                b.push_result(Reg(21));
            });
            b.build().expect("spy program assembles")
        };
        let trojan_program = move |bit: bool| {
            let mut b = ProgramBuilder::new();
            if bit {
                b.repeat(Reg(20), iterations, |b| {
                    emit_fill(b, &trojan_set);
                });
            } else {
                // Keep the kernel alive a comparable time without touching
                // the cache.
                emit_idle_spin(&mut b, iterations * 64, Reg(20));
            }
            b.build().expect("trojan program assembles")
        };

        transmit_per_bit(
            &self.spec,
            self.tuning,
            self.jitter,
            self.fault_plan,
            &self.noise,
            msg,
            &trojan_program,
            &spy_program,
            (self.launch_config(), self.launch_config()),
            (self.array_bytes(), self.array_bytes()),
            decode,
            self.bit_budget.unwrap_or(60_000_000),
            trace,
        )
    }

    /// Sweeps the iteration count downwards, reporting `(bandwidth_kbps,
    /// bit_error_rate)` pairs — the data behind the paper's Figure 5.
    ///
    /// Runs on the default [`TrialRunner`] (one worker per core); each sweep
    /// point is an independent transmission on its own device, so the output
    /// is bit-identical to a sequential sweep.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-indexed transmission failure.
    pub fn error_rate_sweep(
        &self,
        msg: &Message,
        iteration_counts: &[u64],
    ) -> Result<Vec<(f64, f64)>, CovertError> {
        self.error_rate_sweep_on(&TrialRunner::new(), msg, iteration_counts)
    }

    /// [`CacheChannel::error_rate_sweep`] on an explicit [`TrialRunner`]
    /// (e.g. [`TrialRunner::sequential`] for the determinism baseline).
    ///
    /// # Errors
    ///
    /// Propagates the lowest-indexed transmission failure.
    pub fn error_rate_sweep_on(
        &self,
        runner: &TrialRunner,
        msg: &Message,
        iteration_counts: &[u64],
    ) -> Result<Vec<(f64, f64)>, CovertError> {
        runner.try_map(iteration_counts, |_, &iters| {
            let ch = self.clone().with_iterations(iters);
            let o = ch.transmit(msg)?;
            Ok((o.bandwidth_kbps, o.ber))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_spec::presets;

    #[test]
    fn l1_channel_is_error_free_at_default_iterations() {
        let ch = L1Channel::new(presets::tesla_k40c());
        let msg = Message::from_bits([true, false, true, true, false, false, true, false]);
        let o = ch.transmit(&msg).unwrap();
        assert_eq!(o.received, msg, "received {} != sent {}", o.received, o.sent);
        assert!(o.is_error_free());
        assert!(o.bandwidth_kbps > 5.0, "bandwidth {}", o.bandwidth_kbps);
    }

    #[test]
    fn l2_channel_crosses_sms_error_free() {
        let ch = L2Channel::new(presets::tesla_k40c());
        let msg = Message::from_bits([true, false, false, true]);
        let o = ch.transmit(&msg).unwrap();
        assert_eq!(o.received, msg);
    }

    #[test]
    fn starving_iterations_causes_errors_on_ones() {
        // With 1 iteration and jitter, overlap fails often: 1-bits decode
        // as 0 (the Figure-5 mechanism).
        let ch = L1Channel::new(presets::tesla_k40c()).with_iterations(1);
        let msg = Message::from_bits(vec![true; 12]);
        let o = ch.transmit(&msg).unwrap();
        assert!(o.ber > 0.0, "expected errors at 1 iteration, ber={}", o.ber);
    }

    #[test]
    fn empty_message_reports_zero_cycle_transmission() {
        // No bits => no launches => the device never advances. Previously
        // the elapsed cycles were clamped to 1, yielding a 0-bit "success"
        // with an absurd implied bandwidth.
        let ch = L1Channel::new(presets::tesla_k40c());
        let msg = Message::from_bits(Vec::<bool>::new());
        assert_eq!(ch.transmit(&msg), Err(CovertError::ZeroCycleTransmission));
    }

    #[test]
    fn traced_transmit_matches_untraced_and_captures_events() {
        use gpgpu_sim::TraceEvent;
        let ch = L1Channel::new(presets::tesla_k40c()).with_iterations(2);
        let msg = Message::from_bits([true, false, true]);
        let plain = ch.transmit(&msg).unwrap();
        let (traced, capture) = ch.transmit_traced(&msg, 1 << 16).unwrap();
        // Engine counters are excluded from the comparison: installing a
        // sink disables pure-ALU batching, so the traced engine legitimately
        // *visits* the SMs more often — while computing the identical run.
        let observable = |o: &ChannelOutcome| {
            (o.sent.clone(), o.received.clone(), o.cycles, o.bandwidth_kbps, o.ber)
        };
        assert_eq!(
            observable(&plain),
            observable(&traced),
            "observing the run must not perturb it"
        );
        let records = capture.records();
        assert!(!records.is_empty());
        assert_eq!(capture.events.dropped(), 0, "capacity should hold the whole run");
        // One spy + one trojan launch per bit.
        let launches =
            records.iter().filter(|r| matches!(r.event, TraceEvent::KernelLaunch { .. })).count();
        assert_eq!(launches, 2 * msg.len());
        assert!(capture.kernel_names.iter().any(|n| n == "spy"));
        assert!(capture.kernel_names.iter().any(|n| n == "trojan"));
        // A 1-bit requires trojan evictions of the spy's set; the trace
        // must have seen them.
        assert!(records
            .iter()
            .any(|r| matches!(r.event, TraceEvent::CacheEviction { sm: Some(_), .. })));
        let json = capture.chrome_trace_json();
        assert!(json.starts_with('{') && json.ends_with("]}\n"), "chrome JSON envelope");
    }

    #[test]
    fn zero_bits_never_misread_without_noise() {
        let ch = L1Channel::new(presets::tesla_k40c()).with_iterations(2);
        let msg = Message::from_bits(vec![false; 8]);
        let o = ch.transmit(&msg).unwrap();
        assert!(o.is_error_free(), "0-bits are jitter-immune, got ber={}", o.ber);
    }
}
