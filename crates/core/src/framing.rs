//! Robust framing over noisy covert channels: preamble resynchronization,
//! CRC-8 frame checks and selective-retransmission ARQ (Section 7.1
//! hardening).
//!
//! The raw channels of this crate deliver a *bit stream* with no inherent
//! error detection: a single flipped bit silently corrupts the message, and
//! a dropped handshake round shifts every later bit. This module layers a
//! classic datalink stack on top:
//!
//! * **frames** — the message is cut into 16-bit payloads, each wrapped in
//!   a 40-bit frame: an 8-bit preamble ([`PREAMBLE`]), an 8-bit sequence
//!   number, the payload, and a CRC-8 over sequence + payload;
//! * **resynchronization** — the receiver scans the bit stream at *every*
//!   bit offset for a preamble followed by a CRC-valid body, so bit slips
//!   cost only the frames they straddle, not the rest of the stream;
//! * **CRC-8** — polynomial `0x07` (`x^8 + x^2 + x + 1`), which has Hamming
//!   distance 4 up to 119 data bits and therefore detects **all** 1- and
//!   2-bit corruptions of a 24-bit frame body;
//! * **selective-repeat ARQ** — [`arq_transmit`] retransmits only the
//!   frames whose CRC failed (or that never resynchronized), with adaptive
//!   backoff when a round loses most of its frames;
//! * **FEC composition** — [`FrameCoding::Fec`] Hamming(7,4)-encodes whole
//!   frames ([`crate::bits::hamming_encode`]), correcting isolated single
//!   flips *before* the CRC judges the frame.
//!
//! The feedback path of a real deployment (spy → trojan acknowledgements)
//! is abstracted behind [`BitPipe`]: the simulator's spy-side decode result
//! is available to the harness, which plays the role of the reverse
//! channel. [`SyncPipe`] adapts a [`SyncChannel`] (with a deterministic
//! [`FaultPlan`](gpgpu_sim::FaultPlan)) to that trait.

use crate::bits::{hamming_decode, hamming_encode, Message};
use crate::sync_channel::SyncChannel;
use crate::CovertError;

/// The 8-bit frame preamble (`10100101`): alternating-ish, not all-ones and
/// not all-zeros, so neither an idle-low nor a stuck-high channel fakes it.
pub const PREAMBLE: u8 = 0xA5;

/// Payload bits carried per frame.
pub const PAYLOAD_BITS: usize = 16;

/// Total bits per raw frame: preamble + sequence + payload + CRC-8.
pub const FRAME_BITS: usize = 8 + 8 + PAYLOAD_BITS + 8;

/// Total bits per Hamming(7,4)-coded frame (40 data bits -> 10 codewords).
pub const FEC_FRAME_BITS: usize = FRAME_BITS / 4 * 7;

/// Computes the CRC-8 (polynomial `0x07`, init `0x00`, MSB-first, no final
/// XOR — the CRC-8/SMBus variant) of a bit slice.
pub fn crc8(bits: &[bool]) -> u8 {
    let mut crc: u8 = 0;
    for &bit in bits {
        let feedback = (crc >> 7 == 1) != bit;
        crc <<= 1;
        if feedback {
            crc ^= 0x07;
        }
    }
    crc
}

fn byte_bits(byte: u8) -> [bool; 8] {
    std::array::from_fn(|i| (byte >> (7 - i)) & 1 == 1)
}

fn bits_to_byte(bits: &[bool]) -> u8 {
    bits.iter().fold(0u8, |acc, &b| (acc << 1) | u8::from(b))
}

/// How frames are encoded onto the bit pipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameCoding {
    /// Bare 40-bit frames; the CRC detects errors, ARQ repairs them.
    #[default]
    Raw,
    /// Frames Hamming(7,4)-encoded to 70 bits; isolated single-bit flips
    /// are *corrected* per codeword before the CRC judges the frame.
    Fec,
}

impl FrameCoding {
    /// On-pipe bits per frame under this coding.
    pub fn frame_bits(self) -> usize {
        match self {
            FrameCoding::Raw => FRAME_BITS,
            FrameCoding::Fec => FEC_FRAME_BITS,
        }
    }

    /// Encodes one frame (sequence number + up to [`PAYLOAD_BITS`] payload
    /// bits, zero-padded) into its on-pipe bit representation.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`PAYLOAD_BITS`].
    pub fn encode(self, seq: u8, payload: &[bool]) -> Vec<bool> {
        assert!(payload.len() <= PAYLOAD_BITS, "payload wider than a frame");
        let mut body = Vec::with_capacity(8 + PAYLOAD_BITS);
        body.extend(byte_bits(seq));
        body.extend_from_slice(payload);
        body.resize(8 + PAYLOAD_BITS, false);
        let crc = crc8(&body);
        let mut frame = Vec::with_capacity(FRAME_BITS);
        frame.extend(byte_bits(PREAMBLE));
        frame.extend(body);
        frame.extend(byte_bits(crc));
        match self {
            FrameCoding::Raw => frame,
            FrameCoding::Fec => hamming_encode(&Message::from_bits(frame)).bits().to_vec(),
        }
    }
}

/// Validates a decoded 40-bit frame: preamble, then CRC over seq + payload.
fn parse_frame(frame: &[bool]) -> Option<(u8, Vec<bool>)> {
    if frame.len() != FRAME_BITS || bits_to_byte(&frame[..8]) != PREAMBLE {
        return None;
    }
    let body = &frame[8..8 + 8 + PAYLOAD_BITS];
    if crc8(body) != bits_to_byte(&frame[8 + 8 + PAYLOAD_BITS..]) {
        return None;
    }
    Some((bits_to_byte(&frame[8..16]), frame[16..16 + PAYLOAD_BITS].to_vec()))
}

/// Scans a received bit stream for valid frames at **any** bit offset.
///
/// On a CRC-valid frame the scanner consumes the whole frame and continues;
/// otherwise it advances a single bit — this is the resynchronization rule
/// that contains a bit slip to the frames it straddles.
pub fn scan_frames(bits: &[bool], coding: FrameCoding) -> Vec<(u8, Vec<bool>)> {
    let flen = coding.frame_bits();
    let mut out = Vec::new();
    let mut i = 0;
    while i + flen <= bits.len() {
        let window = &bits[i..i + flen];
        let frame = match coding {
            FrameCoding::Raw => window.to_vec(),
            FrameCoding::Fec => {
                hamming_decode(&Message::from_bits(window.to_vec())).bits().to_vec()
            }
        };
        if let Some(f) = parse_frame(&frame) {
            out.push(f);
            i += flen;
        } else {
            i += 1;
        }
    }
    out
}

/// One round-trip through a bit pipe: what the spy decoded, and the device
/// cycles the round consumed.
#[derive(Debug, Clone, PartialEq)]
pub struct PipeRun {
    /// The bit stream the receiving side recovered.
    pub received: Message,
    /// Device cycles consumed by the round.
    pub cycles: u64,
}

/// A transport that carries a bit stream with errors — the abstraction ARQ
/// runs over. Implementations: [`SyncPipe`] (a faulted [`SyncChannel`]) and
/// [`FlakyPipe`] (a deterministic in-memory stub for property tests).
pub trait BitPipe {
    /// Transmits `bits` as round `round`, returning what was received.
    ///
    /// # Errors
    ///
    /// Propagates transport failures as [`CovertError`].
    fn send(&mut self, round: usize, bits: &Message) -> Result<PipeRun, CovertError>;

    /// Reacts to a round that lost most of its frames (adaptive period
    /// backoff: slow down / add redundancy to ride out a fault burst).
    fn backoff(&mut self);
}

/// Configuration for [`arq_transmit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArqConfig {
    /// Bound on transmission rounds (including the first).
    pub max_rounds: usize,
    /// Frame-loss fraction above which a round triggers [`BitPipe::backoff`].
    pub backoff_threshold: f64,
    /// Frame coding on the pipe.
    pub coding: FrameCoding,
    /// Give up after this many *consecutive* rounds that validate no new
    /// frame (`None` keeps retrying to `max_rounds`). A dead channel — one a
    /// co-runner has fully stomped — otherwise burns every remaining round
    /// before the link layer can escalate.
    pub max_dead_rounds: Option<usize>,
}

impl Default for ArqConfig {
    fn default() -> Self {
        ArqConfig {
            max_rounds: 16,
            backoff_threshold: 0.5,
            coding: FrameCoding::Raw,
            max_dead_rounds: None,
        }
    }
}

/// What [`arq_transmit`] did, beyond the recovered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArqReport {
    /// Rounds actually run (1 if every frame landed on the first try).
    pub rounds: usize,
    /// Frames the message was cut into.
    pub frames_total: usize,
    /// Frames sent across all rounds.
    pub frames_sent: usize,
    /// Frames sent beyond the first round (the ARQ overhead).
    pub retransmissions: usize,
    /// Times the pipe was told to back off.
    pub backoffs: usize,
    /// Device cycles across all rounds.
    pub cycles: u64,
    /// Whether every frame was eventually CRC-validated. When `false`, the
    /// missing frames are zero-filled in the returned message.
    pub recovered: bool,
}

/// Number of CRC frames `msg` will be cut into, checked against the 8-bit
/// sequence space.
///
/// # Errors
///
/// [`CovertError::Config`] if the message needs more than 256 frames.
pub fn frames_needed_checked(msg: &Message) -> Result<usize, CovertError> {
    let frames_total = msg.len().div_ceil(PAYLOAD_BITS);
    if frames_total > 256 {
        return Err(CovertError::Config {
            reason: format!(
                "message needs {frames_total} frames; the 8-bit sequence space holds 256 \
                 ({} message bits)",
                256 * PAYLOAD_BITS
            ),
        });
    }
    Ok(frames_total)
}

/// Transmits `msg` over `pipe` with selective-repeat ARQ: each round sends
/// only the frames not yet CRC-validated, until all land or `max_rounds` is
/// exhausted. Missing frames decode as zeros.
///
/// # Errors
///
/// * [`CovertError::Config`] if the message needs more than 256 frames
///   (the 8-bit sequence space).
/// * Transport errors from [`BitPipe::send`].
pub fn arq_transmit<P: BitPipe>(
    pipe: &mut P,
    msg: &Message,
    cfg: &ArqConfig,
) -> Result<(Message, ArqReport), CovertError> {
    arq_transmit_observed(pipe, msg, cfg, &mut |_, _| {})
}

/// As [`arq_transmit`], additionally reporting every per-round CRC verdict:
/// `observe(seq, validated)` is called once per pending frame per round with
/// whether that frame's CRC checked out this round. This is the feedback
/// path a [`crate::linkmon::LinkMonitor`] estimates link quality from.
///
/// # Errors
///
/// As [`arq_transmit`].
pub fn arq_transmit_observed<P: BitPipe>(
    pipe: &mut P,
    msg: &Message,
    cfg: &ArqConfig,
    observe: &mut dyn FnMut(usize, bool),
) -> Result<(Message, ArqReport), CovertError> {
    let frames_total = frames_needed_checked(msg)?;
    let mut report = ArqReport { frames_total, ..ArqReport::default() };
    if msg.is_empty() {
        report.recovered = true;
        return Ok((Message::default(), report));
    }
    let payloads: Vec<Vec<bool>> = msg.bits().chunks(PAYLOAD_BITS).map(<[bool]>::to_vec).collect();
    let mut got: Vec<Option<Vec<bool>>> = vec![None; frames_total];
    let mut dead_rounds = 0usize;
    for round in 0..cfg.max_rounds {
        let pending: Vec<usize> =
            got.iter().enumerate().filter(|(_, g)| g.is_none()).map(|(i, _)| i).collect();
        if pending.is_empty() {
            break;
        }
        let mut tx = Vec::with_capacity(pending.len() * cfg.coding.frame_bits());
        for &s in &pending {
            tx.extend(cfg.coding.encode(s as u8, &payloads[s]));
        }
        let run = pipe.send(round, &Message::from_bits(tx))?;
        report.rounds = round + 1;
        report.frames_sent += pending.len();
        if round > 0 {
            report.retransmissions += pending.len();
        }
        report.cycles += run.cycles;
        let mut fresh = 0usize;
        let mut validated = vec![false; frames_total];
        for (seq, payload) in scan_frames(run.received.bits(), cfg.coding) {
            let s = seq as usize;
            if s < frames_total && got[s].is_none() {
                got[s] = Some(payload);
                validated[s] = true;
                fresh += 1;
            }
        }
        for &s in &pending {
            observe(s, validated[s]);
        }
        let loss = 1.0 - fresh as f64 / pending.len() as f64;
        if loss > cfg.backoff_threshold && got.iter().any(Option::is_none) {
            pipe.backoff();
            report.backoffs += 1;
        }
        dead_rounds = if fresh == 0 { dead_rounds + 1 } else { 0 };
        if let Some(max_dead) = cfg.max_dead_rounds {
            if dead_rounds >= max_dead && got.iter().any(Option::is_none) {
                break;
            }
        }
    }
    report.recovered = got.iter().all(Option::is_some);
    let mut bits = Vec::with_capacity(frames_total * PAYLOAD_BITS);
    for (i, g) in got.iter().enumerate() {
        match g {
            Some(p) => bits.extend_from_slice(p),
            None => bits.extend(std::iter::repeat_n(false, payloads[i].len())),
        }
    }
    bits.truncate(msg.len());
    Ok((Message::from_bits(bits), report))
}

/// Adapts a [`SyncChannel`] with a deterministic fault plan to [`BitPipe`].
///
/// Each round runs on a fresh device with the base plan
/// [`reseeded`](gpgpu_sim::FaultPlan::reseeded) by the round number (and the
/// backoff level), so a burst that corrupted a frame in one round lands at a
/// *different* phase in the next — the real mechanism behind ARQ recovery.
/// [`BitPipe::backoff`] doubles the channel's per-round redundancy (capped),
/// the synchronized channel's period knob.
#[derive(Debug, Clone)]
pub struct SyncPipe {
    channel: SyncChannel,
    base_plan: gpgpu_sim::FaultPlan,
    backoff_level: u64,
    max_redundancy: u32,
}

impl SyncPipe {
    /// Wraps `channel`, installing `plan` (reseeded per round) on every run.
    pub fn new(channel: SyncChannel, plan: gpgpu_sim::FaultPlan) -> Self {
        SyncPipe { channel, base_plan: plan, backoff_level: 0, max_redundancy: 32 }
    }

    /// The channel's current per-round redundancy (grows on backoff).
    pub fn redundancy(&self) -> u32 {
        self.channel.redundancy
    }
}

impl BitPipe for SyncPipe {
    fn send(&mut self, round: usize, bits: &Message) -> Result<PipeRun, CovertError> {
        let plan = self.base_plan.reseeded(round as u64 ^ (self.backoff_level << 32));
        let ch = self.channel.clone().with_faults(plan);
        let o = ch.transmit(bits)?;
        Ok(PipeRun { received: o.received, cycles: o.cycles })
    }

    fn backoff(&mut self) {
        self.backoff_level += 1;
        let r = (self.channel.redundancy.saturating_mul(2)).min(self.max_redundancy);
        self.channel.redundancy = r;
    }
}

/// A deterministic in-memory pipe that flips one contiguous bit burst per
/// corrupted round — the property-test stand-in for a faulted channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlakyPipe {
    /// First bit index of the flipped burst.
    pub burst_start: usize,
    /// Bits flipped (clamped to the stream length).
    pub burst_len: usize,
    /// Rounds `0..corrupt_rounds` are corrupted; later rounds are clean.
    pub corrupt_rounds: usize,
    /// Times [`BitPipe::backoff`] was called (observable by tests).
    pub backoffs: usize,
}

impl FlakyPipe {
    /// A pipe that flips `burst_len` bits starting at `burst_start` during
    /// the first round only.
    pub fn single_burst(burst_start: usize, burst_len: usize) -> Self {
        FlakyPipe { burst_start, burst_len, corrupt_rounds: 1, backoffs: 0 }
    }
}

impl BitPipe for FlakyPipe {
    fn send(&mut self, round: usize, bits: &Message) -> Result<PipeRun, CovertError> {
        let mut v = bits.bits().to_vec();
        if round < self.corrupt_rounds {
            let start = self.burst_start.min(v.len());
            let end = (self.burst_start + self.burst_len).min(v.len());
            for b in &mut v[start..end] {
                *b = !*b;
            }
        }
        Ok(PipeRun { cycles: v.len() as u64, received: Message::from_bits(v) })
    }

    fn backoff(&mut self) {
        self.backoffs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
        bytes.iter().flat_map(|&b| byte_bits(b)).collect()
    }

    #[test]
    fn crc8_matches_the_smbus_check_value() {
        // CRC-8 (poly 0x07, init 0, MSB-first) of "123456789" is 0xF4.
        assert_eq!(crc8(&bytes_to_bits(b"123456789")), 0xF4);
        assert_eq!(crc8(&[]), 0x00);
    }

    #[test]
    fn frames_round_trip_under_both_codings() {
        let payload: Vec<bool> = (0..PAYLOAD_BITS).map(|i| i % 3 == 0).collect();
        for coding in [FrameCoding::Raw, FrameCoding::Fec] {
            let frame = coding.encode(0x42, &payload);
            assert_eq!(frame.len(), coding.frame_bits());
            let decoded = scan_frames(&frame, coding);
            assert_eq!(decoded, vec![(0x42, payload.clone())], "{coding:?}");
        }
    }

    #[test]
    fn scanner_resynchronizes_past_garbage_and_bit_slips() {
        let p1: Vec<bool> = vec![true; PAYLOAD_BITS];
        let p2: Vec<bool> = vec![false; PAYLOAD_BITS];
        let mut stream = vec![true, false, false, true, true]; // leading junk
        stream.extend(FrameCoding::Raw.encode(0, &p1));
        stream.extend([false; 3]); // inter-frame slip
        stream.extend(FrameCoding::Raw.encode(1, &p2));
        let decoded = scan_frames(&stream, FrameCoding::Raw);
        assert_eq!(decoded, vec![(0, p1), (1, p2)]);
    }

    #[test]
    fn crc_rejects_one_and_two_bit_corruptions() {
        // Exhaustive over single flips, spot-checked pairs; the property
        // test in tests/prop_end_to_end.rs covers random pairs widely.
        let payload: Vec<bool> = (0..PAYLOAD_BITS).map(|i| i % 2 == 0).collect();
        let frame = FrameCoding::Raw.encode(7, &payload);
        for i in 8..FRAME_BITS {
            let mut f = frame.clone();
            f[i] = !f[i];
            assert!(parse_frame(&f).is_none(), "single flip at {i} undetected");
            for j in (i + 1)..FRAME_BITS {
                let mut g = f.clone();
                g[j] = !g[j];
                assert!(parse_frame(&g).is_none(), "double flip {i},{j} undetected");
            }
        }
    }

    #[test]
    fn fec_coding_corrects_an_isolated_flip_in_place() {
        let payload: Vec<bool> = (0..PAYLOAD_BITS).map(|i| i % 5 == 0).collect();
        let mut frame = FrameCoding::Fec.encode(3, &payload);
        frame[20] = !frame[20]; // one flip inside a codeword
        let decoded = scan_frames(&frame, FrameCoding::Fec);
        assert_eq!(decoded, vec![(3, payload)]);
    }

    #[test]
    fn arq_recovers_a_single_burst_exactly() {
        let msg = Message::pseudo_random(100, 0xF00D);
        let mut pipe = FlakyPipe::single_burst(37, 25);
        let (received, report) = arq_transmit(&mut pipe, &msg, &ArqConfig::default()).unwrap();
        assert_eq!(received, msg);
        assert!(report.recovered);
        assert!(report.rounds >= 2, "the burst must force a retransmission round");
        assert!(report.retransmissions >= 1);
        assert_eq!(report.frames_total, 7);
    }

    #[test]
    fn arq_is_single_round_on_a_clean_pipe() {
        let msg = Message::pseudo_random(64, 0xBEEF);
        let mut pipe = FlakyPipe::single_burst(0, 0);
        let (received, report) = arq_transmit(&mut pipe, &msg, &ArqConfig::default()).unwrap();
        assert_eq!(received, msg);
        assert_eq!(
            (report.rounds, report.retransmissions, report.backoffs, report.recovered),
            (1, 0, 0, true)
        );
    }

    #[test]
    fn arq_backs_off_when_a_round_loses_most_frames() {
        let msg = Message::pseudo_random(96, 0xCAFE);
        // Corrupt the whole stream for two rounds: every frame lost twice.
        let mut pipe =
            FlakyPipe { burst_start: 0, burst_len: usize::MAX, corrupt_rounds: 2, backoffs: 0 };
        let (received, report) = arq_transmit(&mut pipe, &msg, &ArqConfig::default()).unwrap();
        assert_eq!(received, msg);
        assert_eq!(pipe.backoffs, 2);
        assert_eq!(report.backoffs, 2);
        assert_eq!(report.rounds, 3);
    }

    #[test]
    fn arq_reports_unrecovered_frames_as_zeros() {
        let msg = Message::from_bits(vec![true; 32]);
        let mut pipe =
            FlakyPipe { burst_start: 0, burst_len: usize::MAX, corrupt_rounds: 99, backoffs: 0 };
        let cfg = ArqConfig { max_rounds: 3, ..ArqConfig::default() };
        let (received, report) = arq_transmit(&mut pipe, &msg, &cfg).unwrap();
        assert!(!report.recovered);
        assert_eq!(report.rounds, 3);
        assert_eq!(received.bits(), vec![false; 32]);
    }

    #[test]
    fn dead_channel_exits_early_and_reports_frame_verdicts() {
        let msg = Message::from_bits(vec![true; 32]);
        let mut pipe =
            FlakyPipe { burst_start: 0, burst_len: usize::MAX, corrupt_rounds: 99, backoffs: 0 };
        let cfg = ArqConfig { max_rounds: 16, max_dead_rounds: Some(2), ..ArqConfig::default() };
        let mut verdicts = Vec::new();
        let (_, report) =
            arq_transmit_observed(&mut pipe, &msg, &cfg, &mut |s, ok| verdicts.push((s, ok)))
                .unwrap();
        assert!(!report.recovered);
        assert_eq!(report.rounds, 2, "2 consecutive dead rounds must end the transmission");
        assert_eq!(verdicts.len(), report.frames_sent, "one verdict per pending frame per round");
        assert!(verdicts.iter().all(|&(_, ok)| !ok));
    }

    #[test]
    fn observed_arq_reports_mixed_verdicts_on_a_partial_burst() {
        let msg = Message::pseudo_random(100, 0xF00D);
        let mut pipe = FlakyPipe::single_burst(37, 25);
        let mut round0: Vec<bool> = Vec::new();
        let mut seen_ok = 0usize;
        let mut seen_fail = 0usize;
        let (received, report) =
            arq_transmit_observed(&mut pipe, &msg, &ArqConfig::default(), &mut |_, ok| {
                if round0.len() < 7 {
                    round0.push(ok);
                }
                if ok {
                    seen_ok += 1;
                } else {
                    seen_fail += 1;
                }
            })
            .unwrap();
        assert_eq!(received, msg);
        assert!(report.recovered);
        assert!(round0.iter().any(|&ok| ok) && round0.iter().any(|&ok| !ok));
        assert_eq!(seen_ok, report.frames_total, "every frame eventually validates once");
        assert!(seen_fail >= 1);
    }

    #[test]
    fn arq_handles_empty_and_oversized_messages() {
        let mut pipe = FlakyPipe::single_burst(0, 0);
        let (received, report) =
            arq_transmit(&mut pipe, &Message::default(), &ArqConfig::default()).unwrap();
        assert!(received.is_empty() && report.recovered && report.rounds == 0);
        let huge = Message::from_bits(vec![false; 256 * PAYLOAD_BITS + 1]);
        assert!(matches!(
            arq_transmit(&mut pipe, &huge, &ArqConfig::default()),
            Err(CovertError::Config { .. })
        ));
    }
}
