//! Multi-threaded trial harness for channel sweeps.
//!
//! Every experiment in the paper's evaluation is a set of *independent*
//! trials: one transmission per iteration count (Figure 5), one device per
//! sweep point (Figures 2/3/6/7), one seeded run per BER sample. Each trial
//! builds its own [`gpgpu_sim::Device`], so trials share no mutable state
//! and can run on any thread in any order without changing a single bit of
//! output.
//!
//! [`TrialRunner`] exploits that: it fans trials across scoped OS threads
//! (`std::thread::scope` — no external thread-pool dependency), hands each
//! trial a deterministic per-index seed, and collects results back in index
//! order. The same seeds through [`TrialRunner::sequential`] and through an
//! N-worker runner produce bit-identical results; the integration test
//! `integration_harness_determinism` enforces this.
//!
//! Worker count resolution order: explicit [`TrialRunner::with_workers`],
//! then the `GPGPU_TRIAL_WORKERS` environment variable, then
//! `std::thread::available_parallelism()`.

use crate::CovertError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `build` once per [`gpgpu_sim::EngineMode`] and asserts the two
/// engines produced identical results, returning the (shared) value.
///
/// The event-driven engine's correctness contract is that it only skips
/// work that provably cannot change architectural state, so *any*
/// observable divergence from the dense engine is a bug. This helper is the
/// reusable form of that check: hand it a closure that runs a whole channel
/// transmission (or any other simulation) under the given engine mode and
/// returns the architectural results — received bits, cycles, latency
/// samples. Compare values derived from simulation *results*, not
/// [`gpgpu_sim::SimStats`] engine counters (cycle/SM-visit counts
/// legitimately differ between engines — skipping work is the whole point).
///
/// Floating-point fields (`ber`, `bandwidth_kbps`) should be compared via
/// [`f64::to_bits`] so the check stays exact.
///
/// # Panics
///
/// Panics (via `assert_eq!`) when the engines disagree, naming `what`.
pub fn assert_engines_agree<T, F>(what: &str, build: F) -> T
where
    T: PartialEq + fmt::Debug,
    F: Fn(gpgpu_sim::EngineMode) -> T,
{
    let dense = build(gpgpu_sim::EngineMode::Dense);
    let event = build(gpgpu_sim::EngineMode::EventDriven);
    assert_eq!(dense, event, "engine divergence in {what} (Dense vs EventDriven)");
    event
}

/// The three-way form of [`assert_engines_agree`]: Dense and EventDriven
/// must still be bit-identical, while the `analytical` value — a closed-form
/// prediction, not another cycle engine — is held to the caller's `within`
/// comparator (typically [`crate::analytic::Tolerance::check`] wrapped over
/// the simulated outcome).
///
/// Returns the simulated value, like [`assert_engines_agree`].
///
/// # Panics
///
/// Panics when the cycle engines disagree, or when `within` reports the
/// analytical value outside tolerance — the panic message names `what` and
/// repeats the comparator's explanation.
pub fn assert_engines_agree_within<T, F, W>(what: &str, build: F, analytical: &T, within: W) -> T
where
    T: PartialEq + fmt::Debug,
    F: Fn(gpgpu_sim::EngineMode) -> T,
    W: FnOnce(&T, &T) -> Result<(), String>,
{
    let simulated = assert_engines_agree(what, build);
    if let Err(reason) = within(&simulated, analytical) {
        panic!(
            "analytical divergence in {what}: {reason}\n simulated: {simulated:?}\n \
             analytical: {analytical:?}"
        );
    }
    simulated
}

/// One independent unit of work handed to a trial closure: its position in
/// the batch, a deterministic seed derived from the runner's base seed, and
/// the runner's per-trial cycle deadline (if any).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// Index of this trial in `0..trials`.
    pub index: usize,
    /// Seed for this trial, derived from the runner's base seed and the
    /// index by a splitmix-style mix — identical for every worker count.
    pub seed: u64,
    /// Device-cycle budget the trial should impose on its own simulation
    /// (e.g. via a channel's `with_bit_budget` / `with_cycle_budget`).
    /// Exceeding it surfaces as [`TrialError::DeadlineExceeded`] through
    /// [`TrialRunner::run_caught`]. `None` leaves the channels' defaults.
    pub deadline: Option<u64>,
}

impl Trial {
    /// A [`StdRng`] seeded with this trial's seed.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// Why one trial in a [`TrialRunner::run_caught`] batch produced no result.
/// The rest of the batch is unaffected — trials share no mutable state, so
/// one trial's death says nothing about its neighbors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialError {
    /// The trial closure panicked; the payload's message is preserved.
    Panicked {
        /// The panic payload, stringified (`<non-string panic>` otherwise).
        message: String,
    },
    /// The trial's simulation blew through its cycle deadline
    /// ([`gpgpu_sim::SimError::CycleLimitExceeded`] — typically a hung
    /// handshake or a deadline from [`TrialRunner::with_deadline`]).
    DeadlineExceeded {
        /// The cycle budget that was exhausted.
        budget: u64,
    },
    /// A multi-GPU link's transfer queue exceeded its limit
    /// ([`gpgpu_sim::SimError::LinkSaturated`] — a congestion storm or an
    /// over-aggressive trojan, deterministic for a given cell).
    LinkSaturated {
        /// The saturated link index.
        link: usize,
        /// The queue delay that exceeded the limit.
        queue_cycles: u64,
    },
    /// Two defense components lowered conflicting values onto one tuning
    /// knob ([`gpgpu_sim::SimError::TuningConflict`]).
    TuningConflict {
        /// The contested tuning knob.
        field: &'static str,
    },
    /// The trial was configured in a way the channel cannot run (a
    /// [`CovertError::Config`] — e.g. an nvlink cell without a topology, or
    /// an analytical-model probe on an unsupported family).
    Misconfigured {
        /// Human-readable description of the configuration problem.
        reason: String,
    },
    /// Any other [`CovertError`], stringified.
    Failed(String),
}

impl TrialError {
    /// Classifies a [`CovertError`] from a trial into the most precise
    /// variant available: cycle-limit overruns become
    /// [`TrialError::DeadlineExceeded`], link saturation and tuning
    /// conflicts keep their typed payloads, configuration problems become
    /// [`TrialError::Misconfigured`], and only genuinely unclassified
    /// errors fall through to [`TrialError::Failed`].
    pub fn from_covert(e: &CovertError) -> Self {
        match e {
            CovertError::Sim(gpgpu_sim::SimError::CycleLimitExceeded { limit }) => {
                TrialError::DeadlineExceeded { budget: *limit }
            }
            CovertError::Sim(gpgpu_sim::SimError::LinkSaturated { link, queue_cycles }) => {
                TrialError::LinkSaturated { link: *link, queue_cycles: *queue_cycles }
            }
            CovertError::Sim(gpgpu_sim::SimError::TuningConflict { field, .. }) => {
                TrialError::TuningConflict { field }
            }
            CovertError::Config { reason } => TrialError::Misconfigured { reason: reason.clone() },
            other => TrialError::Failed(other.to_string()),
        }
    }

    /// Whether a supervisor should retry a trial that died with this error.
    /// Panics and deadline overruns are *transient* (a crashed or stalled
    /// worker says nothing about the cell itself); everything else is a
    /// deterministic property of the cell and will fail identically on
    /// every attempt, so retrying only burns the attempt budget.
    pub fn is_transient(&self) -> bool {
        matches!(self, TrialError::Panicked { .. } | TrialError::DeadlineExceeded { .. })
    }
}

impl fmt::Display for TrialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrialError::Panicked { message } => write!(f, "trial panicked: {message}"),
            TrialError::DeadlineExceeded { budget } => {
                write!(f, "trial exceeded its {budget}-cycle deadline")
            }
            TrialError::LinkSaturated { link, queue_cycles } => {
                write!(f, "trial saturated link {link} (transfer queued {queue_cycles} cycles)")
            }
            TrialError::TuningConflict { field } => {
                write!(f, "trial tuning conflict on `{field}`")
            }
            TrialError::Misconfigured { reason } => write!(f, "trial misconfigured: {reason}"),
            TrialError::Failed(msg) => write!(f, "trial failed: {msg}"),
        }
    }
}

impl std::error::Error for TrialError {}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) over `bytes`.
///
/// The shared integrity primitive for the workspace's crash-safe file
/// formats: [`TrialRunner::run_checkpointed`] lines and the `gpgpu-serve`
/// result-cache entries both carry one, so a flipped byte anywhere in a
/// stored payload is *detected* (typed error, recompute) instead of being
/// resumed as silently-wrong data. Bitwise (no table): these files are
/// small and cold, clarity wins.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Stringifies a panic payload (the `&str` / `String` payloads `panic!`
/// produces; anything else becomes a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

/// Fans independent seeded trials across scoped worker threads.
///
/// ```
/// use gpgpu_covert::harness::TrialRunner;
///
/// let runner = TrialRunner::new().with_base_seed(7);
/// let squares = runner.run(8, |t| (t.index * t.index, t.seed));
/// assert_eq!(squares[3].0, 9);
/// // Seeds are a pure function of (base_seed, index):
/// assert_eq!(squares, TrialRunner::sequential().with_base_seed(7).run(8, |t| (t.index * t.index, t.seed)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialRunner {
    workers: usize,
    base_seed: u64,
    deadline: Option<u64>,
}

impl Default for TrialRunner {
    fn default() -> Self {
        Self::new()
    }
}

/// Default base seed (shared with the channels' default jitter seed family).
const DEFAULT_BASE_SEED: u64 = 0x5EED_0000_0000_0000;

fn mix_seed(base: u64, index: u64) -> u64 {
    // SplitMix64 over (base ^ golden-ratio-scaled index): uncorrelated
    // per-trial streams, stable across platforms and worker counts.
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resolves the worker count from the raw `GPGPU_TRIAL_WORKERS` lookup.
/// Returns the count plus, when the variable was present but unusable, a
/// printable description of the rejected value for the one-time warning
/// (`None` means the variable was honored or simply absent).
fn resolve_workers(
    raw: Result<String, std::env::VarError>,
    default: usize,
) -> (usize, Option<String>) {
    match raw {
        Ok(v) => match v.parse::<usize>() {
            Ok(w) if w >= 1 => (w, None),
            _ => (default, Some(format!("`{v}`"))),
        },
        Err(std::env::VarError::NotPresent) => (default, None),
        Err(std::env::VarError::NotUnicode(_)) => (default, Some("<non-unicode>".into())),
    }
}

impl TrialRunner {
    /// A runner sized to the machine: `GPGPU_TRIAL_WORKERS` if set, else
    /// `available_parallelism()`, else 1.
    ///
    /// A set-but-unusable `GPGPU_TRIAL_WORKERS` (not a positive integer,
    /// or not valid Unicode) falls back to the autodetected count and
    /// prints a one-time warning to stderr naming the rejected value —
    /// previously such values were silently ignored, which made a typo'd
    /// `GPGPU_TRIAL_WORKERS=O1` indistinguishable from an honored one.
    pub fn new() -> Self {
        let default = std::thread::available_parallelism().map_or(1, |n| n.get());
        let (workers, rejected) = resolve_workers(std::env::var("GPGPU_TRIAL_WORKERS"), default);
        if let Some(rejected) = rejected {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: ignoring invalid GPGPU_TRIAL_WORKERS value {rejected} \
                     (expected a positive integer); using {default} worker(s)"
                );
            });
        }
        TrialRunner { workers, base_seed: DEFAULT_BASE_SEED, deadline: None }
    }

    /// A single-threaded runner — the reference path for determinism checks.
    pub fn sequential() -> Self {
        TrialRunner { workers: 1, base_seed: DEFAULT_BASE_SEED, deadline: None }
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the base seed all per-trial seeds derive from.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets a per-trial device-cycle deadline, handed to every trial as
    /// [`Trial::deadline`]. The trial closure is responsible for imposing
    /// it on its simulation (channels expose `with_bit_budget` /
    /// `with_cycle_budget` for exactly this); an overrun then surfaces as
    /// [`TrialError::DeadlineExceeded`] through [`TrialRunner::run_caught`]
    /// instead of hanging the whole sweep on one stuck handshake.
    pub fn with_deadline(mut self, cycles: u64) -> Self {
        self.deadline = Some(cycles);
        self
    }

    /// The per-trial cycle deadline, if one is set.
    pub fn deadline(&self) -> Option<u64> {
        self.deadline
    }

    /// The resolved worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The seed trial `index` will receive — a pure function of
    /// `(base_seed, index)`, independent of worker count and schedule.
    pub fn seed_for(&self, index: usize) -> u64 {
        mix_seed(self.base_seed, index as u64)
    }

    fn trial(&self, index: usize) -> Trial {
        Trial { index, seed: self.seed_for(index), deadline: self.deadline }
    }

    /// The panic-isolating core: every trial runs under `catch_unwind`, so
    /// one panicking trial cannot poison a result slot or tear down the
    /// scope while other workers hold unfinished trials. Returns each
    /// trial's value or its panic payload, in index order.
    fn run_raw<T, F>(&self, trials: usize, f: &F) -> Vec<Result<T, Box<dyn std::any::Any + Send>>>
    where
        T: Send,
        F: Fn(Trial) -> T + Sync,
    {
        let effective = self.workers.min(trials.max(1));
        if effective <= 1 {
            return (0..trials)
                .map(|i| catch_unwind(AssertUnwindSafe(|| f(self.trial(i)))))
                .collect();
        }
        let next = AtomicUsize::new(0);
        type Slot<T> = Mutex<Option<Result<T, Box<dyn std::any::Any + Send>>>>;
        let slots: Vec<Slot<T>> = (0..trials).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..effective {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= trials {
                        break;
                    }
                    let value = catch_unwind(AssertUnwindSafe(|| f(self.trial(i))));
                    *slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                        Some(value);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("every trial index was claimed exactly once")
            })
            .collect()
    }

    /// Runs `trials` independent trials of `f`, returning results in trial
    /// order. Work is claimed from a shared atomic counter, so threads never
    /// idle while trials remain; results are written back by index, so the
    /// output order (and content, for deterministic `f`) is identical for
    /// every worker count.
    ///
    /// # Panics
    ///
    /// Re-raises a panicking trial's payload — but only after every other
    /// trial in the batch has completed, and always the *lowest-indexed*
    /// panic, so the observable behavior is identical for every worker
    /// count (previously a panic on one worker could poison result slots
    /// and abort unrelated trials non-deterministically). Use
    /// [`TrialRunner::run_caught`] to receive per-trial errors instead.
    pub fn run<T, F>(&self, trials: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Trial) -> T + Sync,
    {
        let mut results = Vec::with_capacity(trials);
        let mut first_panic = None;
        for outcome in self.run_raw(trials, &f) {
            match outcome {
                Ok(v) => results.push(v),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        results
    }

    /// As [`TrialRunner::run`] for fallible trials, with full per-trial
    /// fault isolation: a trial that returns an error, panics, or blows
    /// through its cycle deadline yields an `Err(`[`TrialError`]`)` in its
    /// slot while the rest of the batch completes normally — one hung or
    /// crashed configuration no longer costs the whole sweep.
    pub fn run_caught<T, F>(&self, trials: usize, f: F) -> Vec<Result<T, TrialError>>
    where
        T: Send,
        F: Fn(Trial) -> Result<T, CovertError> + Sync,
    {
        self.run_raw(trials, &f)
            .into_iter()
            .map(|outcome| match outcome {
                Ok(Ok(v)) => Ok(v),
                Ok(Err(e)) => Err(TrialError::from_covert(&e)),
                Err(payload) => Err(TrialError::Panicked { message: panic_message(&*payload) }),
            })
            .collect()
    }

    /// As [`TrialRunner::run`], checkpointing results to `path` so an
    /// interrupted sweep resumes instead of recomputing: completed trials
    /// are appended to the file (header + one `encode`d line per trial, in
    /// index order, flushed as the contiguous done-prefix grows), and on
    /// the next call with the same `path` the contiguous prefix of intact
    /// lines is trusted and only the remainder is run. The header pins the
    /// base seed and trial count, so a checkpoint can never silently resume
    /// a *different* sweep; each result line is prefixed with its
    /// [`crc32`], so a torn tail (crash mid-write) *and* a byte flipped at
    /// rest (disk rot, hostile edit) both end the trusted prefix instead of
    /// being resumed as silently-wrong data — `decode` alone could accept a
    /// corrupted-but-parseable number.
    ///
    /// `encode` must produce a single line (no `\n`).
    ///
    /// # Errors
    ///
    /// I/O failures reading or writing `path`, and
    /// [`std::io::ErrorKind::InvalidData`] when the file's header does not
    /// match this runner's base seed and `trials`.
    ///
    /// # Panics
    ///
    /// As [`TrialRunner::run`] — a panicking trial is re-raised after the
    /// batch drains, with every completed trial up to the panic already
    /// flushed to the checkpoint.
    pub fn run_checkpointed<T, F, Enc, Dec>(
        &self,
        trials: usize,
        path: &std::path::Path,
        encode: Enc,
        decode: Dec,
        f: F,
    ) -> std::io::Result<Vec<T>>
    where
        T: Send,
        F: Fn(Trial) -> T + Sync,
        Enc: Fn(&T) -> String + Sync,
        Dec: Fn(&str) -> Option<T>,
    {
        use std::io::Write;
        let header =
            format!("gpgpu-sweep-checkpoint v2 base_seed={:#018x} trials={trials}", self.base_seed);
        // A stored line is `<crc32 hex> <payload>`; only payloads whose
        // checksum verifies are offered to `decode`.
        let armor = |payload: &str| format!("{:08x} {payload}", crc32(payload.as_bytes()));
        let disarm = |line: &str| -> Option<String> {
            let (crc_hex, payload) = line.split_once(' ')?;
            let stored = u32::from_str_radix(crc_hex, 16).ok()?;
            (crc_hex.len() == 8 && stored == crc32(payload.as_bytes())).then(|| payload.to_string())
        };
        let mut done: Vec<T> = Vec::new();
        // Read lossily: corruption that breaks UTF-8 should end the trusted
        // prefix at that line (its CRC cannot verify), not fail the resume.
        match std::fs::read(path) {
            Ok(bytes) => {
                let text = String::from_utf8_lossy(&bytes);
                let mut lines = text.lines();
                match lines.next() {
                    Some(h) if h == header => {
                        for line in lines {
                            if done.len() >= trials {
                                break;
                            }
                            match disarm(line).and_then(|payload| decode(&payload)) {
                                Some(v) => done.push(v),
                                None => break,
                            }
                        }
                    }
                    Some(h) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("checkpoint header mismatch: expected `{header}`, found `{h}`"),
                        ));
                    }
                    None => {}
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        // Rewrite header + trusted prefix, dropping any undecodable tail.
        let mut writer = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(writer, "{header}")?;
        for v in &done {
            writeln!(writer, "{}", armor(&encode(v)))?;
        }
        writer.flush()?;
        let resumed_at = done.len();
        if resumed_at >= trials {
            return Ok(done);
        }

        type Slot<T> = Mutex<Option<Result<T, Box<dyn std::any::Any + Send>>>>;
        let pending: Vec<Slot<T>> = (resumed_at..trials).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(resumed_at);
        // (writer, next index to flush, first write error). Lock order is
        // always sink → slot; slot writers never hold a slot lock while
        // waiting on the sink.
        let sink = Mutex::new((writer, resumed_at, None::<std::io::Error>));
        let effective = self.workers.min(trials - resumed_at).max(1);
        std::thread::scope(|scope| {
            for _ in 0..effective {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= trials {
                        break;
                    }
                    let value = catch_unwind(AssertUnwindSafe(|| f(self.trial(i))));
                    *pending[i - resumed_at]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(value);
                    let mut guard = sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    let (writer, flushed, err) = &mut *guard;
                    while *flushed < trials {
                        let slot = pending[*flushed - resumed_at]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        match slot.as_ref() {
                            Some(Ok(v)) => {
                                if err.is_none() {
                                    let line = armor(&encode(v));
                                    if let Err(e) =
                                        writeln!(writer, "{line}").and_then(|()| writer.flush())
                                    {
                                        *err = Some(e);
                                    }
                                }
                            }
                            // A panicked trial (or one still running) stops
                            // the contiguous flush; resume recomputes from
                            // here.
                            Some(Err(_)) | None => break,
                        }
                        *flushed += 1;
                    }
                });
            }
        });
        let (mut writer, _, err) =
            sink.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
        writer.flush()?;
        if let Some(e) = err {
            return Err(e);
        }
        let mut first_panic = None;
        for slot in pending {
            match slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every trial index was claimed exactly once")
            {
                Ok(v) => done.push(v),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        Ok(done)
    }

    /// Maps `f` over `items` in parallel, preserving item order — the sweep
    /// form of [`TrialRunner::run`] (one trial per sweep point).
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(Trial, &I) -> T + Sync,
    {
        self.run(items.len(), |t| f(t, &items[t.index]))
    }

    /// Like [`TrialRunner::map`] but for fallible trials: returns the
    /// first error by item order (deterministic even when a later item
    /// fails first in wall-clock time).
    ///
    /// # Errors
    ///
    /// The error of the lowest-indexed failing trial.
    pub fn try_map<I, T, E, F>(&self, items: &[I], f: F) -> Result<Vec<T>, E>
    where
        I: Sync,
        T: Send,
        E: Send,
        F: Fn(Trial, &I) -> Result<T, E> + Sync,
    {
        self.run(items.len(), |t| f(t, &items[t.index])).into_iter().collect()
    }

    /// Mean of per-trial bit-error rates over `trials` seeded trials — the
    /// multi-trial form of [`crate::bits::Message::bit_error_rate`]. Each
    /// trial receives its own deterministic seed (e.g. for launch jitter)
    /// and returns one BER sample; the mean is order-independent.
    pub fn mean_ber<F>(&self, trials: usize, f: F) -> f64
    where
        F: Fn(Trial) -> f64 + Sync,
    {
        if trials == 0 {
            return 0.0;
        }
        let samples = self.run(trials, f);
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn engines_agree_returns_the_shared_value() {
        let v = assert_engines_agree("constant workload", |mode| {
            // Mode-independent computation: both arms produce 42.
            let _ = mode;
            42u64
        });
        assert_eq!(v, 42);
    }

    #[test]
    #[should_panic(expected = "engine divergence in rigged workload")]
    fn engines_agree_panics_on_divergence() {
        assert_engines_agree("rigged workload", |mode| mode == gpgpu_sim::EngineMode::Dense);
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let r = TrialRunner::sequential().with_base_seed(42);
        let seeds: Vec<u64> = (0..64).map(|i| r.seed_for(i)).collect();
        assert_eq!(seeds, (0..64).map(|i| r.seed_for(i)).collect::<Vec<_>>());
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "seed collision");
        // Different base seed => different stream.
        assert_ne!(seeds[0], TrialRunner::sequential().with_base_seed(43).seed_for(0));
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let work = |t: Trial| -> (usize, u64, u64) {
            let mut rng = t.rng();
            (t.index, t.seed, rng.gen_range(0..u64::MAX))
        };
        let seq = TrialRunner::sequential().run(33, work);
        for workers in [2, 3, 8] {
            let par = TrialRunner::sequential().with_workers(workers).run(33, work);
            assert_eq!(seq, par, "workers={workers}");
        }
    }

    #[test]
    fn map_preserves_item_order() {
        let items = [10u64, 20, 30, 40, 50];
        let r = TrialRunner::new().with_workers(4);
        let out = r.map(&items, |t, &x| x + t.index as u64);
        assert_eq!(out, vec![10, 21, 32, 43, 54]);
    }

    #[test]
    fn try_map_reports_lowest_index_error() {
        let items = [1u32, 2, 3, 4];
        let r = TrialRunner::new().with_workers(4);
        let res: Result<Vec<u32>, String> =
            r.try_map(&items, |_, &x| if x % 2 == 0 { Err(format!("bad {x}")) } else { Ok(x) });
        assert_eq!(res.unwrap_err(), "bad 2");
    }

    #[test]
    fn mean_ber_averages_and_handles_zero_trials() {
        let r = TrialRunner::new();
        assert_eq!(r.mean_ber(0, |_| 1.0), 0.0);
        let mean = r.mean_ber(10, |t| if t.index < 5 { 0.0 } else { 1.0 });
        assert!((mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn worker_resolution_honors_valid_and_rejects_invalid_values() {
        use std::env::VarError;
        // Honored.
        assert_eq!(resolve_workers(Ok("4".into()), 8), (4, None));
        // Absent: default, no warning.
        assert_eq!(resolve_workers(Err(VarError::NotPresent), 8), (8, None));
        // Present but unusable: default, warning names the rejected value.
        assert_eq!(resolve_workers(Ok("0".into()), 8), (8, Some("`0`".into())));
        assert_eq!(resolve_workers(Ok("O1".into()), 8), (8, Some("`O1`".into())));
        assert_eq!(resolve_workers(Ok("-3".into()), 2), (2, Some("`-3`".into())));
        let (w, rejected) =
            resolve_workers(Err(VarError::NotUnicode(std::ffi::OsString::from("x"))), 8);
        assert_eq!((w, rejected.as_deref()), (8, Some("<non-unicode>")));
    }

    #[test]
    fn zero_trials_and_single_trial_work() {
        let r = TrialRunner::new().with_workers(8);
        assert!(r.run(0, |t| t.index).is_empty());
        assert_eq!(r.run(1, |t| t.index), vec![0]);
    }

    #[test]
    fn a_panicking_trial_does_not_poison_the_batch() {
        // Regression: a panic on one worker used to poison its result-slot
        // Mutex and abort unrelated trials with "result slot poisoned". Now
        // the batch drains, then the panic is re-raised with its payload.
        for workers in [1usize, 4] {
            let completed = AtomicUsize::new(0);
            let r = TrialRunner::sequential().with_workers(workers);
            let err = catch_unwind(AssertUnwindSafe(|| {
                r.run(16, |t| {
                    if t.index == 5 {
                        panic!("trial 5 exploded");
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                    t.index
                })
            }))
            .unwrap_err();
            assert_eq!(panic_message(&*err), "trial 5 exploded", "workers={workers}");
            assert_eq!(
                completed.load(Ordering::Relaxed),
                15,
                "all other trials completed (workers={workers})"
            );
        }
    }

    #[test]
    fn multiple_panics_reraise_the_lowest_index_deterministically() {
        let r = TrialRunner::sequential().with_workers(8);
        let err = catch_unwind(AssertUnwindSafe(|| {
            r.run(32, |t| {
                if t.index % 7 == 3 {
                    panic!("boom at {}", t.index);
                }
                t.index
            })
        }))
        .unwrap_err();
        assert_eq!(panic_message(&*err), "boom at 3");
    }

    #[test]
    fn run_caught_isolates_panics_errors_and_deadlines() {
        let r = TrialRunner::sequential().with_workers(4).with_deadline(1_000);
        let out = r.run_caught(6, |t| {
            assert_eq!(t.deadline, Some(1_000));
            match t.index {
                1 => panic!("kaboom"),
                2 => Err(CovertError::Sim(gpgpu_sim::SimError::CycleLimitExceeded {
                    limit: t.deadline.unwrap(),
                })),
                3 => Err(CovertError::ZeroCycleTransmission),
                _ => Ok(t.index),
            }
        });
        assert_eq!(out[0], Ok(0));
        assert_eq!(out[1], Err(TrialError::Panicked { message: "kaboom".into() }));
        assert_eq!(out[2], Err(TrialError::DeadlineExceeded { budget: 1_000 }));
        assert!(matches!(&out[3], Err(TrialError::Failed(m)) if m.contains("zero cycles")));
        assert_eq!(out[4], Ok(4));
        assert_eq!(out[5], Ok(5));
        // The error type prints something a human can act on.
        assert!(out[2].as_ref().unwrap_err().to_string().contains("1000-cycle deadline"));
    }

    #[test]
    fn checkpoint_resumes_without_recomputing_the_done_prefix() {
        let dir = std::env::temp_dir().join(format!("gpgpu-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.ckpt");
        let _ = std::fs::remove_file(&path);
        let r = TrialRunner::sequential().with_workers(3).with_base_seed(99);
        let enc = |v: &u64| v.to_string();
        let dec = |s: &str| s.parse::<u64>().ok();
        let computed = AtomicUsize::new(0);
        let work = |t: Trial| {
            computed.fetch_add(1, Ordering::Relaxed);
            t.seed ^ t.index as u64
        };
        let full = r.run_checkpointed(12, &path, enc, dec, work).unwrap();
        assert_eq!(computed.load(Ordering::Relaxed), 12);
        assert_eq!(full, r.run(12, |t| t.seed ^ t.index as u64));

        // Truncate the checkpoint to 7 results + a torn partial line.
        let text = std::fs::read_to_string(&path).unwrap();
        let keep: Vec<&str> = text.lines().take(8).collect();
        std::fs::write(&path, format!("{}\ngarbage-tail", keep.join("\n"))).unwrap();
        computed.store(0, Ordering::Relaxed);
        let resumed = r.run_checkpointed(12, &path, enc, dec, work).unwrap();
        assert_eq!(resumed, full, "resume reproduces the identical batch");
        assert_eq!(computed.load(Ordering::Relaxed), 5, "only the missing tail was recomputed");

        // A finished checkpoint recomputes nothing.
        computed.store(0, Ordering::Relaxed);
        assert_eq!(r.run_checkpointed(12, &path, enc, dec, work).unwrap(), full);
        assert_eq!(computed.load(Ordering::Relaxed), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_rejects_a_mismatched_sweep() {
        let dir = std::env::temp_dir().join(format!("gpgpu-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.ckpt");
        let _ = std::fs::remove_file(&path);
        let enc = |v: &u64| v.to_string();
        let dec = |s: &str| s.parse::<u64>().ok();
        let a = TrialRunner::sequential().with_base_seed(1);
        a.run_checkpointed(4, &path, enc, dec, |t| t.seed).unwrap();
        // Different base seed => different sweep => refuse to resume.
        let b = TrialRunner::sequential().with_base_seed(2);
        let err = b.run_checkpointed(4, &path, enc, dec, |t| t.seed).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // Different trial count is a different sweep too.
        let err = a.run_checkpointed(8, &path, enc, dec, |t| t.seed).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 check: crc32("123456789") == 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn checkpoint_rejects_a_flipped_byte_not_just_a_torn_tail() {
        let dir = std::env::temp_dir().join(format!("gpgpu-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flip.ckpt");
        let _ = std::fs::remove_file(&path);
        let r = TrialRunner::sequential().with_workers(2).with_base_seed(3);
        let enc = |v: &u64| v.to_string();
        let dec = |s: &str| s.parse::<u64>().ok();
        let full = r.run_checkpointed(6, &path, enc, dec, |t| t.seed).unwrap();

        // Flip one digit inside the *third* stored payload. The corrupted
        // line still parses as a number, so a CRC-less resume would have
        // accepted a silently-wrong value; the armor must end the trusted
        // prefix there instead.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let mut bytes = lines[3].clone().into_bytes();
        let last = bytes.len() - 1;
        bytes[last] = if bytes[last] == b'0' { b'1' } else { b'0' };
        lines[3] = String::from_utf8(bytes).unwrap();
        std::fs::write(&path, lines.join("\n")).unwrap();

        let computed = AtomicUsize::new(0);
        let resumed = r
            .run_checkpointed(6, &path, enc, dec, |t| {
                computed.fetch_add(1, Ordering::Relaxed);
                t.seed
            })
            .unwrap();
        assert_eq!(resumed, full, "resume reproduces the uncorrupted batch");
        assert_eq!(
            computed.load(Ordering::Relaxed),
            4,
            "the intact 2-line prefix is trusted, the corrupt line and after recompute"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn from_covert_keeps_typed_payloads() {
        use gpgpu_sim::SimError;
        let e = TrialError::from_covert(&CovertError::Sim(SimError::LinkSaturated {
            link: 2,
            queue_cycles: 77,
        }));
        assert_eq!(e, TrialError::LinkSaturated { link: 2, queue_cycles: 77 });
        let e = TrialError::from_covert(&CovertError::Sim(SimError::TuningConflict {
            field: "partitions",
            ours: "2".into(),
            theirs: "4".into(),
        }));
        assert_eq!(e, TrialError::TuningConflict { field: "partitions" });
        let e = TrialError::from_covert(&CovertError::Config { reason: "no topology".into() });
        assert_eq!(e, TrialError::Misconfigured { reason: "no topology".into() });
        // Unclassified errors still fall through to the stringly variant.
        let e = TrialError::from_covert(&CovertError::ProtocolDesync { expected: 4, got: 2 });
        assert!(matches!(e, TrialError::Failed(_)));
    }

    #[test]
    fn only_crashes_and_stalls_are_transient() {
        assert!(TrialError::Panicked { message: "boom".into() }.is_transient());
        assert!(TrialError::DeadlineExceeded { budget: 1 }.is_transient());
        assert!(!TrialError::LinkSaturated { link: 0, queue_cycles: 1 }.is_transient());
        assert!(!TrialError::TuningConflict { field: "x" }.is_transient());
        assert!(!TrialError::Misconfigured { reason: "y".into() }.is_transient());
        assert!(!TrialError::Failed("z".into()).is_transient());
    }
}
