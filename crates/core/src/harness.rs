//! Multi-threaded trial harness for channel sweeps.
//!
//! Every experiment in the paper's evaluation is a set of *independent*
//! trials: one transmission per iteration count (Figure 5), one device per
//! sweep point (Figures 2/3/6/7), one seeded run per BER sample. Each trial
//! builds its own [`gpgpu_sim::Device`], so trials share no mutable state
//! and can run on any thread in any order without changing a single bit of
//! output.
//!
//! [`TrialRunner`] exploits that: it fans trials across scoped OS threads
//! (`std::thread::scope` — no external thread-pool dependency), hands each
//! trial a deterministic per-index seed, and collects results back in index
//! order. The same seeds through [`TrialRunner::sequential`] and through an
//! N-worker runner produce bit-identical results; the integration test
//! `integration_harness_determinism` enforces this.
//!
//! Worker count resolution order: explicit [`TrialRunner::with_workers`],
//! then the `GPGPU_TRIAL_WORKERS` environment variable, then
//! `std::thread::available_parallelism()`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One independent unit of work handed to a trial closure: its position in
/// the batch and a deterministic seed derived from the runner's base seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// Index of this trial in `0..trials`.
    pub index: usize,
    /// Seed for this trial, derived from the runner's base seed and the
    /// index by a splitmix-style mix — identical for every worker count.
    pub seed: u64,
}

impl Trial {
    /// A [`StdRng`] seeded with this trial's seed.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// Fans independent seeded trials across scoped worker threads.
///
/// ```
/// use gpgpu_covert::harness::TrialRunner;
///
/// let runner = TrialRunner::new().with_base_seed(7);
/// let squares = runner.run(8, |t| (t.index * t.index, t.seed));
/// assert_eq!(squares[3].0, 9);
/// // Seeds are a pure function of (base_seed, index):
/// assert_eq!(squares, TrialRunner::sequential().with_base_seed(7).run(8, |t| (t.index * t.index, t.seed)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialRunner {
    workers: usize,
    base_seed: u64,
}

impl Default for TrialRunner {
    fn default() -> Self {
        Self::new()
    }
}

/// Default base seed (shared with the channels' default jitter seed family).
const DEFAULT_BASE_SEED: u64 = 0x5EED_0000_0000_0000;

fn mix_seed(base: u64, index: u64) -> u64 {
    // SplitMix64 over (base ^ golden-ratio-scaled index): uncorrelated
    // per-trial streams, stable across platforms and worker counts.
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resolves the worker count from the raw `GPGPU_TRIAL_WORKERS` lookup.
/// Returns the count plus, when the variable was present but unusable, a
/// printable description of the rejected value for the one-time warning
/// (`None` means the variable was honored or simply absent).
fn resolve_workers(
    raw: Result<String, std::env::VarError>,
    default: usize,
) -> (usize, Option<String>) {
    match raw {
        Ok(v) => match v.parse::<usize>() {
            Ok(w) if w >= 1 => (w, None),
            _ => (default, Some(format!("`{v}`"))),
        },
        Err(std::env::VarError::NotPresent) => (default, None),
        Err(std::env::VarError::NotUnicode(_)) => (default, Some("<non-unicode>".into())),
    }
}

impl TrialRunner {
    /// A runner sized to the machine: `GPGPU_TRIAL_WORKERS` if set, else
    /// `available_parallelism()`, else 1.
    ///
    /// A set-but-unusable `GPGPU_TRIAL_WORKERS` (not a positive integer,
    /// or not valid Unicode) falls back to the autodetected count and
    /// prints a one-time warning to stderr naming the rejected value —
    /// previously such values were silently ignored, which made a typo'd
    /// `GPGPU_TRIAL_WORKERS=O1` indistinguishable from an honored one.
    pub fn new() -> Self {
        let default = std::thread::available_parallelism().map_or(1, |n| n.get());
        let (workers, rejected) = resolve_workers(std::env::var("GPGPU_TRIAL_WORKERS"), default);
        if let Some(rejected) = rejected {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: ignoring invalid GPGPU_TRIAL_WORKERS value {rejected} \
                     (expected a positive integer); using {default} worker(s)"
                );
            });
        }
        TrialRunner { workers, base_seed: DEFAULT_BASE_SEED }
    }

    /// A single-threaded runner — the reference path for determinism checks.
    pub fn sequential() -> Self {
        TrialRunner { workers: 1, base_seed: DEFAULT_BASE_SEED }
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the base seed all per-trial seeds derive from.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// The resolved worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The seed trial `index` will receive — a pure function of
    /// `(base_seed, index)`, independent of worker count and schedule.
    pub fn seed_for(&self, index: usize) -> u64 {
        mix_seed(self.base_seed, index as u64)
    }

    /// Runs `trials` independent trials of `f`, returning results in trial
    /// order. Work is claimed from a shared atomic counter, so threads never
    /// idle while trials remain; results are written back by index, so the
    /// output order (and content, for deterministic `f`) is identical for
    /// every worker count.
    pub fn run<T, F>(&self, trials: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Trial) -> T + Sync,
    {
        let trial = |index: usize| Trial { index, seed: self.seed_for(index) };
        let effective = self.workers.min(trials.max(1));
        if effective <= 1 {
            return (0..trials).map(|i| f(trial(i))).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..trials).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..effective {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= trials {
                        break;
                    }
                    let value = f(trial(i));
                    *slots[i].lock().expect("result slot poisoned") = Some(value);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every trial index was claimed exactly once")
            })
            .collect()
    }

    /// Maps `f` over `items` in parallel, preserving item order — the sweep
    /// form of [`TrialRunner::run`] (one trial per sweep point).
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(Trial, &I) -> T + Sync,
    {
        self.run(items.len(), |t| f(t, &items[t.index]))
    }

    /// Like [`TrialRunner::map`] but for fallible trials: returns the
    /// first error by item order (deterministic even when a later item
    /// fails first in wall-clock time).
    ///
    /// # Errors
    ///
    /// The error of the lowest-indexed failing trial.
    pub fn try_map<I, T, E, F>(&self, items: &[I], f: F) -> Result<Vec<T>, E>
    where
        I: Sync,
        T: Send,
        E: Send,
        F: Fn(Trial, &I) -> Result<T, E> + Sync,
    {
        self.run(items.len(), |t| f(t, &items[t.index])).into_iter().collect()
    }

    /// Mean of per-trial bit-error rates over `trials` seeded trials — the
    /// multi-trial form of [`crate::bits::Message::bit_error_rate`]. Each
    /// trial receives its own deterministic seed (e.g. for launch jitter)
    /// and returns one BER sample; the mean is order-independent.
    pub fn mean_ber<F>(&self, trials: usize, f: F) -> f64
    where
        F: Fn(Trial) -> f64 + Sync,
    {
        if trials == 0 {
            return 0.0;
        }
        let samples = self.run(trials, f);
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let r = TrialRunner::sequential().with_base_seed(42);
        let seeds: Vec<u64> = (0..64).map(|i| r.seed_for(i)).collect();
        assert_eq!(seeds, (0..64).map(|i| r.seed_for(i)).collect::<Vec<_>>());
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "seed collision");
        // Different base seed => different stream.
        assert_ne!(seeds[0], TrialRunner::sequential().with_base_seed(43).seed_for(0));
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let work = |t: Trial| -> (usize, u64, u64) {
            let mut rng = t.rng();
            (t.index, t.seed, rng.gen_range(0..u64::MAX))
        };
        let seq = TrialRunner::sequential().run(33, work);
        for workers in [2, 3, 8] {
            let par = TrialRunner::sequential().with_workers(workers).run(33, work);
            assert_eq!(seq, par, "workers={workers}");
        }
    }

    #[test]
    fn map_preserves_item_order() {
        let items = [10u64, 20, 30, 40, 50];
        let r = TrialRunner::new().with_workers(4);
        let out = r.map(&items, |t, &x| x + t.index as u64);
        assert_eq!(out, vec![10, 21, 32, 43, 54]);
    }

    #[test]
    fn try_map_reports_lowest_index_error() {
        let items = [1u32, 2, 3, 4];
        let r = TrialRunner::new().with_workers(4);
        let res: Result<Vec<u32>, String> =
            r.try_map(&items, |_, &x| if x % 2 == 0 { Err(format!("bad {x}")) } else { Ok(x) });
        assert_eq!(res.unwrap_err(), "bad 2");
    }

    #[test]
    fn mean_ber_averages_and_handles_zero_trials() {
        let r = TrialRunner::new();
        assert_eq!(r.mean_ber(0, |_| 1.0), 0.0);
        let mean = r.mean_ber(10, |t| if t.index < 5 { 0.0 } else { 1.0 });
        assert!((mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn worker_resolution_honors_valid_and_rejects_invalid_values() {
        use std::env::VarError;
        // Honored.
        assert_eq!(resolve_workers(Ok("4".into()), 8), (4, None));
        // Absent: default, no warning.
        assert_eq!(resolve_workers(Err(VarError::NotPresent), 8), (8, None));
        // Present but unusable: default, warning names the rejected value.
        assert_eq!(resolve_workers(Ok("0".into()), 8), (8, Some("`0`".into())));
        assert_eq!(resolve_workers(Ok("O1".into()), 8), (8, Some("`O1`".into())));
        assert_eq!(resolve_workers(Ok("-3".into()), 2), (2, Some("`-3`".into())));
        let (w, rejected) =
            resolve_workers(Err(VarError::NotUnicode(std::ffi::OsString::from("x"))), 8);
        assert_eq!((w, rejected.as_deref()), (8, Some("<non-unicode>")));
    }

    #[test]
    fn zero_trials_and_single_trial_work() {
        let r = TrialRunner::new().with_workers(8);
        assert!(r.run(0, |t| t.index).is_empty());
        assert_eq!(r.run(1, |t| t.index), vec![0]);
    }
}
