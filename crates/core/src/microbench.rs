//! Offline characterization microbenchmarks.
//!
//! * [`cache_sweep`] / [`recover_cache_geometry`] — the Wong-style strided
//!   latency sweep of the paper's Section 4.1 (Figures 2 and 3), plus the
//!   analysis that recovers cache size, line size, set count and
//!   associativity from the latency staircase.
//! * [`fu_latency_sweep`] — the warp-count latency sweeps of Section 5.1
//!   (Figures 6 and 7) that expose the number of warp schedulers and the
//!   per-scheduler contention domains.

use crate::harness::TrialRunner;
use crate::CovertError;
use gpgpu_isa::{ProgramBuilder, Reg};
use gpgpu_sim::{Device, KernelSpec};
use gpgpu_spec::{DeviceSpec, FuOpKind, LaunchConfig};

/// One point of a cache latency sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheSweepPoint {
    /// Array size walked, in bytes.
    pub array_bytes: u64,
    /// Average access latency in cycles (steady-state walk).
    pub latency: f64,
}

/// One point of a functional-unit latency sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuLatencyPoint {
    /// Number of resident warps.
    pub warps: u32,
    /// Average per-op latency observed by warp 0, in cycles.
    pub latency: f64,
}

/// Cache parameters recovered from a latency staircase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredGeometry {
    /// Cache capacity: the largest array that still fits.
    pub size_bytes: u64,
    /// Line size: the width of each latency step.
    pub line_bytes: u64,
    /// Set count: the number of latency steps.
    pub num_sets: u64,
    /// Associativity: `size / (sets * line)`.
    pub ways: u64,
}

/// Walks `ceil(size/stride)` addresses at `stride` through constant memory,
/// returning the steady-state average access latency for each requested
/// array size. "The cache is first warmed by accessing the array, which is
/// subsequently accessed again while timing the accesses" (Section 4.1).
///
/// # Errors
///
/// Propagates simulator failures.
pub fn cache_sweep(
    spec: &DeviceSpec,
    stride: u64,
    sizes: &[u64],
) -> Result<Vec<CacheSweepPoint>, CovertError> {
    // Each size point runs on its own device, so points fan out across the
    // trial harness with bit-identical results to a sequential sweep.
    TrialRunner::new().try_map(sizes, |_, &size| cache_sweep_point(spec, stride, size))
}

fn cache_sweep_point(
    spec: &DeviceSpec,
    stride: u64,
    size: u64,
) -> Result<CacheSweepPoint, CovertError> {
    let n = size.div_ceil(stride).max(1);
    let mut b = ProgramBuilder::new();
    let (addr, t0, t1, total) = (Reg(0), Reg(1), Reg(2), Reg(3));
    // Warm walk.
    for k in 0..n {
        b.mov_imm(addr, k * stride);
        b.const_load(addr);
    }
    // Two timed walks; the second is steady-state under LRU.
    for _ in 0..2 {
        b.read_clock(t0);
        for k in 0..n {
            b.mov_imm(addr, k * stride);
            b.const_load(addr);
        }
        b.read_clock(t1);
        b.sub(total, t1, t0);
        b.push_result(total);
    }
    let mut dev = Device::new(spec.clone());
    dev.alloc_constant(size);
    let k = dev.launch(
        0,
        KernelSpec::new("cache-sweep", b.build().expect("assembles"), LaunchConfig::new(1, 32)),
    )?;
    dev.run_until_idle(200_000_000)?;
    let r = dev.results(k)?;
    let samples = r.warp_results(0, 0).unwrap_or(&[]);
    let steady = *samples.last().unwrap_or(&0);
    Ok(CacheSweepPoint { array_bytes: size, latency: steady as f64 / n as f64 })
}

/// The sizes the paper plots in Figure 2 (L1, stride 64, 1800-3000 bytes).
pub fn fig2_sizes() -> Vec<u64> {
    (0..=38).map(|i| 1800 + i * 32).collect()
}

/// The sizes the paper plots in Figure 3 (L2, stride 256, 31-38 KB).
pub fn fig3_sizes() -> Vec<u64> {
    (0..=56).map(|i| 31_000 + i * 128).collect()
}

/// Recovers cache geometry from a latency staircase, mirroring the paper's
/// analysis: "While the latency remains constant, the array fits in cache...
/// the number of steps in the figure is equal to the number of cache sets.
/// The cache line size corresponds to the width of each step."
///
/// Returns `None` when the sweep shows no staircase (e.g. the sampled range
/// misses the cache size entirely).
pub fn recover_cache_geometry(points: &[CacheSweepPoint]) -> Option<RecoveredGeometry> {
    if points.len() < 4 {
        return None;
    }
    let base = points.first()?.latency;
    const EPS: f64 = 3.0;
    // Cache size: the largest array still at base latency.
    let size_bytes = points.iter().take_while(|p| p.latency <= base + EPS).last()?.array_bytes;
    // Rising edges of the staircase.
    let mut rises: Vec<u64> = Vec::new();
    for w in points.windows(2) {
        if w[1].latency > w[0].latency + EPS {
            rises.push(w[1].array_bytes);
        }
    }
    if rises.len() < 2 {
        return None;
    }
    let num_sets = rises.len() as u64;
    // Step width: the median gap between consecutive rises.
    let mut gaps: Vec<u64> = rises.windows(2).map(|w| w[1] - w[0]).collect();
    gaps.sort_unstable();
    let line_bytes = gaps[gaps.len() / 2];
    if line_bytes == 0 || num_sets == 0 {
        return None;
    }
    // Snap the size to the nearest line multiple (the sampling grid rarely
    // lands exactly on the capacity boundary).
    let size_snapped = (size_bytes + line_bytes / 2) / line_bytes * line_bytes;
    let ways = size_snapped / (num_sets * line_bytes);
    Some(RecoveredGeometry { size_bytes: size_snapped, line_bytes, num_sets, ways })
}

/// Measures warp-0's average per-op latency for `op` at each warp count —
/// the Figures 6/7 sweep. All warps run identical op loops; only warp 0's
/// measurement is reported, as in the paper.
///
/// # Errors
///
/// Propagates simulator failures, including launch rejection for
/// double-precision ops on Maxwell.
pub fn fu_latency_sweep(
    spec: &DeviceSpec,
    op: FuOpKind,
    warp_counts: &[u32],
) -> Result<Vec<FuLatencyPoint>, CovertError> {
    const BURST: u64 = 32;
    const ITERS: u64 = 16; // matches the paper's spirit of many-iteration averages
                           // Independent device per warp count: fan out across the trial harness.
    TrialRunner::new().try_map(warp_counts, |_, &warps| {
        let mut b = ProgramBuilder::new();
        b.repeat(Reg(20), ITERS, |b| {
            crate::kernels::emit_timed_fu_burst(b, op, BURST, Reg(21));
            b.push_result(Reg(21));
        });
        let mut dev = Device::new(spec.clone());
        let k = dev.launch(
            0,
            KernelSpec::new(
                "fu-sweep",
                b.build().expect("assembles"),
                LaunchConfig::new(1, warps * 32),
            ),
        )?;
        dev.run_until_idle(500_000_000)?;
        let r = dev.results(k)?;
        let samples = r.warp_results(0, 0).unwrap_or(&[]);
        // Steady state: skip the first half (pipeline warm-up, stragglers).
        let tail = &samples[samples.len() / 2..];
        let avg_total: f64 = tail.iter().map(|&t| t as f64).sum::<f64>() / tail.len().max(1) as f64;
        Ok(FuLatencyPoint { warps, latency: avg_total / BURST as f64 })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_spec::presets;

    #[test]
    fn fig2_recovers_kepler_l1_geometry() {
        let spec = presets::tesla_k40c();
        let sweep = cache_sweep(&spec, 64, &fig2_sizes()).unwrap();
        // Latency starts at the L1 plateau.
        assert!((sweep[0].latency - 49.0).abs() < 2.0, "base {}", sweep[0].latency);
        let g = recover_cache_geometry(&sweep).expect("staircase detected");
        assert_eq!(g.size_bytes, 2048);
        assert_eq!(g.line_bytes, 64);
        assert_eq!(g.num_sets, 8);
        assert_eq!(g.ways, 4);
    }

    #[test]
    fn fig3_recovers_l2_geometry() {
        let spec = presets::tesla_k40c();
        let sweep = cache_sweep(&spec, 256, &fig3_sizes()).unwrap();
        assert!((sweep[0].latency - 112.0).abs() < 4.0, "base {}", sweep[0].latency);
        let g = recover_cache_geometry(&sweep).expect("staircase detected");
        assert_eq!(g.size_bytes, 32 * 1024);
        assert_eq!(g.line_bytes, 256);
        assert_eq!(g.num_sets, 16);
        assert_eq!(g.ways, 8);
    }

    #[test]
    fn fermi_l1_is_4kb() {
        let spec = presets::tesla_c2075();
        let sizes: Vec<u64> = (0..=40).map(|i| 3800 + i * 32).collect();
        let sweep = cache_sweep(&spec, 64, &sizes).unwrap();
        let g = recover_cache_geometry(&sweep).expect("staircase detected");
        assert_eq!(g.size_bytes, 4096);
        assert_eq!(g.num_sets, 16);
        assert_eq!(g.ways, 4);
    }

    #[test]
    fn fu_sweep_shows_kepler_sinf_shape() {
        let spec = presets::tesla_k40c();
        let sweep = fu_latency_sweep(&spec, FuOpKind::SpSinf, &[1, 4, 8, 16, 24, 32]).unwrap();
        // Base latency ~18 at low warp counts; rises once demand saturates
        // the per-scheduler SFU ports.
        assert!((sweep[0].latency - 18.0).abs() < 2.0, "base {}", sweep[0].latency);
        let last = sweep.last().unwrap();
        assert!(last.latency > 28.0, "32-warp latency {}", last.latency);
        // Monotonic non-decreasing (within tolerance).
        for w in sweep.windows(2) {
            assert!(w[1].latency >= w[0].latency - 1.0);
        }
    }

    #[test]
    fn fu_sweep_add_is_flat_on_kepler() {
        let spec = presets::tesla_k40c();
        let sweep = fu_latency_sweep(&spec, FuOpKind::SpAdd, &[1, 8, 16, 32]).unwrap();
        let spread = sweep.last().unwrap().latency - sweep[0].latency;
        assert!(
            spread < 3.0,
            "Kepler single-precision Add should show no visible steps, spread {spread}"
        );
    }

    #[test]
    fn fu_sweep_rejects_dp_on_maxwell() {
        let spec = presets::quadro_m4000();
        assert!(fu_latency_sweep(&spec, FuOpKind::DpAdd, &[1]).is_err());
    }

    #[test]
    fn recover_geometry_needs_a_staircase() {
        let flat: Vec<CacheSweepPoint> = (0..10)
            .map(|i| CacheSweepPoint { array_bytes: 1000 + i * 64, latency: 49.0 })
            .collect();
        assert_eq!(recover_cache_geometry(&flat), None);
        assert_eq!(recover_cache_geometry(&[]), None);
    }
}
