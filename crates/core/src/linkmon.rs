//! Link-quality monitoring and graceful degradation under noise and faults.
//!
//! The framing layer ([`crate::framing`]) detects corruption frame by frame
//! (CRC-8) and repairs it by retransmission, but it has no notion of *why*
//! frames keep dying — and against a co-runner that has stomped the whole
//! constant cache, retransmitting over the same dead medium forever is the
//! wrong move. This module closes that loop:
//!
//! * [`LinkMonitor`] turns the per-frame CRC verdicts reported by
//!   [`crate::framing::arq_transmit_observed`] into a running frame-failure
//!   estimate (EWMA + lifetime counts);
//! * [`AdaptiveLink`] drives a degradation ladder per channel family —
//!   **static thresholds → re-calibrate ([`crate::calibrate`]) → stretch
//!   symbol time + raise ARQ effort → fall back to the next channel family**
//!   ([`FallbackPolicy`], default L1-sync → atomic → SFU → NVLink) — and,
//!   when every rung fails, aborts with a structured [`LinkDiagnostic`]
//!   recording which stages fired and why;
//! * [`FamilyPipe`] adapts each channel family to the
//!   [`BitPipe`](crate::framing::BitPipe) transport under one shared
//!   [`LinkEnvironment`] (fault plan + noise co-runners), so escalation
//!   compares families under the *same* adversarial conditions.
//!
//! The fallback order exploits resource disjointness: a constant-cache hog
//! (the paper's Heart-Wall-like co-runner) kills both cache channels but
//! leaves the global-atomic units and the SFUs untouched, so hopping
//! families restores the link without any manual retuning. When a
//! [`LinkEnvironment`] carries a multi-GPU [`TopologySpec`], the ladder can
//! even hop *off the die* entirely — the [`ChannelFamily::Nvlink`] family
//! signals through inter-device link contention, which no on-chip co-runner
//! touches.

use crate::atomic_channel::{AtomicChannel, AtomicScenario};
use crate::bits::Message;
use crate::calibrate::Calibration;
use crate::framing::{arq_transmit_observed, ArqConfig, ArqReport, BitPipe, PipeRun};
use crate::fu_channel::SfuChannel;
use crate::noise::{noise_kernel, NoiseKind};
use crate::nvlink_channel::NvlinkChannel;
use crate::sync_channel::SyncChannel;
use crate::CovertError;
use gpgpu_sim::DeviceTuning;
use gpgpu_spec::{DefenseSpec, DeviceSpec, TopologySpec};
use std::fmt;

/// Noise-kernel inner iterations used when a co-runner rides along a
/// *per-bit* channel (each bit is its own launch window, so the co-runner
/// only needs to cover one window, not the whole message).
const PER_BIT_NOISE_ITERS: u64 = 48;

/// Fault-plan round key reserved for calibration pilots, far outside the
/// ARQ round space so a pilot never reuses a data round's fault phase.
const PILOT_ROUND_KEY: u64 = 0xCA11_0000_0000_0000;

/// A running estimate of link quality, fed by per-frame CRC verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkMonitor {
    ewma: f64,
    alpha: f64,
    frames: usize,
    failures: usize,
}

impl Default for LinkMonitor {
    fn default() -> Self {
        LinkMonitor::new()
    }
}

impl LinkMonitor {
    /// A fresh monitor (EWMA smoothing factor 0.25, no history).
    pub fn new() -> Self {
        LinkMonitor { ewma: 0.0, alpha: 0.25, frames: 0, failures: 0 }
    }

    /// Records one frame's CRC verdict (`true` = validated).
    pub fn record_frame(&mut self, ok: bool) {
        self.frames += 1;
        if !ok {
            self.failures += 1;
        }
        let x = if ok { 0.0 } else { 1.0 };
        self.ewma = self.alpha * x + (1.0 - self.alpha) * self.ewma;
    }

    /// Exponentially-weighted recent frame-failure rate in `[0, 1]`.
    pub fn failure_rate(&self) -> f64 {
        self.ewma
    }

    /// Lifetime frame-failure fraction (0 when nothing was recorded).
    pub fn lifetime_failure_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.failures as f64 / self.frames as f64
        }
    }

    /// Frames observed so far.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Frames whose CRC failed so far.
    pub fn failures(&self) -> usize {
        self.failures
    }
}

/// The channel families the link layer can hop between. Ordered by
/// bandwidth on a quiet device; resource-disjoint under attack (a cache hog
/// does not touch the atomic units or the SFUs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelFamily {
    /// The synchronized constant-L1 prime+probe channel (fastest).
    CacheL1Sync,
    /// The per-bit global-memory atomic-contention channel.
    Atomic,
    /// The per-bit SFU issue-contention channel.
    Sfu,
    /// The cross-GPU NVLink lane-contention channel; needs a multi-device
    /// [`TopologySpec`] in the [`LinkEnvironment`] (slowest, but immune to
    /// every on-chip co-runner).
    Nvlink,
}

impl ChannelFamily {
    /// Short label for traces and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            ChannelFamily::CacheL1Sync => "l1-sync",
            ChannelFamily::Atomic => "atomic",
            ChannelFamily::Sfu => "sfu",
            ChannelFamily::Nvlink => "nvlink",
        }
    }
}

/// The order in which [`AdaptiveLink`] tries channel families.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FallbackPolicy {
    /// Families in preference order; the ladder runs fully on each before
    /// moving to the next.
    pub order: Vec<ChannelFamily>,
}

impl Default for FallbackPolicy {
    fn default() -> Self {
        FallbackPolicy {
            order: vec![
                ChannelFamily::CacheL1Sync,
                ChannelFamily::Atomic,
                ChannelFamily::Sfu,
                ChannelFamily::Nvlink,
            ],
        }
    }
}

impl FallbackPolicy {
    /// A policy pinned to a single family (disables fallback).
    pub fn only(family: ChannelFamily) -> Self {
        FallbackPolicy { order: vec![family] }
    }
}

/// The adversarial conditions every attempt runs under: a deterministic
/// fault plan (reseeded per ARQ round, as [`crate::framing::SyncPipe`]
/// does) plus noise co-runner kinds.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkEnvironment {
    /// Base fault plan; `None` leaves the fault hooks disabled.
    pub faults: Option<gpgpu_sim::FaultPlan>,
    /// Noise co-runner kinds launched beside the channel kernels.
    pub noise: Vec<NoiseKind>,
    /// Noise-kernel inner iterations per launch for the synchronized
    /// family (whose single launch must span a whole ARQ round).
    pub noise_iters: u64,
    /// Multi-GPU topology, when one exists; enables the
    /// [`ChannelFamily::Nvlink`] fallback rungs (which otherwise record a
    /// transport error and the ladder moves on).
    pub topology: Option<TopologySpec>,
    /// Device tuning active on every device the link touches — how a
    /// deployed defense ([`DefenseSpec`]) reaches the adaptive attacker.
    pub tuning: DeviceTuning,
}

impl Default for LinkEnvironment {
    fn default() -> Self {
        LinkEnvironment::clean()
    }
}

impl LinkEnvironment {
    /// A quiet device: no faults, no noise.
    pub fn clean() -> Self {
        LinkEnvironment {
            faults: None,
            noise: Vec::new(),
            noise_iters: 0,
            topology: None,
            tuning: DeviceTuning::none(),
        }
    }

    /// Installs a base fault plan.
    pub fn with_faults(mut self, plan: gpgpu_sim::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Adds noise co-runners of the given kinds at the given intensity
    /// (inner iterations per launch for the synchronized family).
    pub fn with_noise(mut self, kinds: Vec<NoiseKind>, noise_iters: u64) -> Self {
        self.noise = kinds;
        self.noise_iters = noise_iters;
        self
    }

    /// Makes a multi-GPU topology available to the NVLink family.
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Deploys a (possibly composed) defense on every device the link
    /// touches, lowered through [`DeviceTuning::from_defense`].
    pub fn with_defense(self, defense: &DefenseSpec) -> Self {
        self.with_tuning(DeviceTuning::from_defense(defense))
    }

    /// Sets the raw device tuning directly.
    pub fn with_tuning(mut self, tuning: DeviceTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Whether the environment perturbs the device at all.
    pub fn is_clean(&self) -> bool {
        self.faults.is_none() && self.noise.is_empty() && self.tuning == DeviceTuning::none()
    }
}

/// Adapts one [`ChannelFamily`] to the [`BitPipe`] transport under a shared
/// [`LinkEnvironment`]. Fault plans are reseeded per round (and per backoff
/// level) so retransmissions see a different burst phase; noise co-runners
/// are launched fresh every round/bit so the interference is persistent.
#[derive(Debug, Clone)]
pub struct FamilyPipe {
    spec: DeviceSpec,
    family: ChannelFamily,
    env: LinkEnvironment,
    calibration: Option<Calibration>,
    stretch: u32,
    backoff_level: u64,
}

impl FamilyPipe {
    /// A pipe for `family` over `env` with static thresholds and no
    /// symbol-time stretch.
    pub fn new(spec: DeviceSpec, family: ChannelFamily, env: LinkEnvironment) -> Self {
        FamilyPipe { spec, family, env, calibration: None, stretch: 1, backoff_level: 0 }
    }

    /// Decodes with a fitted calibration instead of the static rule.
    pub fn with_calibration(mut self, cal: Calibration) -> Self {
        self.calibration = Some(cal);
        self
    }

    /// Multiplies symbol time (per-round redundancy for the synchronized
    /// family, per-bit iterations for the others) — the "stretch" rung of
    /// the degradation ladder.
    pub fn with_stretch(mut self, stretch: u32) -> Self {
        self.stretch = stretch.max(1);
        self
    }

    /// The family this pipe carries.
    pub fn family(&self) -> ChannelFamily {
        self.family
    }

    fn fault_plan_for(&self, round_key: u64) -> Option<gpgpu_sim::FaultPlan> {
        self.env.faults.map(|p| p.reseeded(round_key ^ (self.backoff_level << 32)))
    }

    fn noise_kernels(&self, per_bit: bool) -> Vec<gpgpu_sim::KernelSpec> {
        let iters = if per_bit {
            PER_BIT_NOISE_ITERS.min(self.env.noise_iters.max(1))
        } else {
            self.env.noise_iters.max(1)
        };
        self.env.noise.iter().map(|&k| noise_kernel(&self.spec, k, iters)).collect()
    }

    fn sync_channel(&self, round_key: u64) -> SyncChannel {
        let mut ch = SyncChannel::new(self.spec.clone())
            .with_tuning(self.env.tuning)
            .with_redundancy(crate::sync_channel::DEFAULT_REDUNDANCY * self.stretch);
        if let Some(plan) = self.fault_plan_for(round_key) {
            ch = ch.with_faults(plan);
        }
        if let Some(cal) = &self.calibration {
            ch = ch.with_calibration(cal.clone());
        }
        ch
    }

    fn sfu_channel(&self, round_key: u64) -> SfuChannel {
        let mut ch = SfuChannel::new(self.spec.clone())
            .with_tuning(self.env.tuning)
            .with_iterations(crate::fu_channel::DEFAULT_ITERATIONS * u64::from(self.stretch))
            .with_noise(self.noise_kernels(true));
        if let Some(plan) = self.fault_plan_for(round_key) {
            ch = ch.with_faults(plan);
        }
        if let Some(cal) = &self.calibration {
            ch = ch.with_calibration(cal.clone());
        }
        ch
    }

    fn nvlink_channel(&self, round_key: u64) -> Result<NvlinkChannel, CovertError> {
        let topology = self.env.topology.clone().ok_or_else(|| CovertError::Config {
            reason: "nvlink family requires a multi-GPU topology in the link environment".into(),
        })?;
        let mut ch = NvlinkChannel::new(topology)?
            .with_tuning(self.env.tuning)
            .with_iterations(crate::nvlink_channel::DEFAULT_ITERATIONS * u64::from(self.stretch));
        if let Some(plan) = self.fault_plan_for(round_key) {
            ch = ch.with_faults(plan);
        }
        // On-chip noise co-runners cannot reach the inter-device link, so
        // none are attached; the adversarial pressure the nvlink family
        // feels is the fault plan's link-congestion kind.
        Ok(ch)
    }

    fn atomic_channel(&self, round_key: u64) -> AtomicChannel {
        let mut ch = AtomicChannel::new(self.spec.clone(), AtomicScenario::OneAddress)
            .with_tuning(self.env.tuning)
            .with_iterations(crate::atomic_channel::DEFAULT_ITERATIONS * u64::from(self.stretch))
            .with_noise(self.noise_kernels(true));
        if let Some(plan) = self.fault_plan_for(round_key) {
            ch = ch.with_faults(plan);
        }
        ch
    }

    /// Runs the family's pilot handshake under the pipe's environment and
    /// stretch, fitting a fresh decode rule.
    ///
    /// # Errors
    ///
    /// Propagates transmission failures; [`CovertError::Config`] when the
    /// pilot distributions are inseparable. The atomic family re-measures
    /// its contention threshold on every transmission already, so its pilot
    /// just wraps that measurement.
    pub fn calibrate(&self, pilot_bits: usize) -> Result<Calibration, CovertError> {
        match self.family {
            ChannelFamily::CacheL1Sync => self
                .sync_channel(PILOT_ROUND_KEY)
                .calibrate_with_noise(pilot_bits, self.noise_kernels(false)),
            ChannelFamily::Sfu => self.sfu_channel(PILOT_ROUND_KEY).calibrate(pilot_bits),
            ChannelFamily::Atomic => {
                let ch = self.atomic_channel(PILOT_ROUND_KEY);
                let threshold = ch.calibrate_threshold()?;
                let min_hot = ((ch.iterations as usize) / 4).max(2).min(ch.iterations as usize);
                Ok(Calibration::from_spec(threshold + 1, min_hot))
            }
            ChannelFamily::Nvlink => {
                let ch = self.nvlink_channel(PILOT_ROUND_KEY)?;
                let threshold = ch.calibrate_threshold()?;
                let min_hot = ((ch.iterations as usize) / 4).max(2).min(ch.iterations as usize);
                Ok(Calibration::from_spec(threshold + 1, min_hot))
            }
        }
    }
}

impl BitPipe for FamilyPipe {
    fn send(&mut self, round: usize, bits: &Message) -> Result<PipeRun, CovertError> {
        let key = round as u64;
        let outcome = match self.family {
            ChannelFamily::CacheL1Sync => {
                self.sync_channel(key).transmit_with_noise(bits, self.noise_kernels(false))?.outcome
            }
            ChannelFamily::Atomic => self.atomic_channel(key).transmit(bits)?,
            ChannelFamily::Sfu => self.sfu_channel(key).transmit(bits)?,
            ChannelFamily::Nvlink => {
                let mut ch = self.nvlink_channel(key)?;
                if let Some(cal) = &self.calibration {
                    ch = ch.with_calibration(cal.clone());
                }
                ch.transmit(bits)?
            }
        };
        Ok(PipeRun { received: outcome.received, cycles: outcome.cycles })
    }

    fn backoff(&mut self) {
        self.backoff_level += 1;
    }
}

/// One rung of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderStage {
    /// Transmission with the family's static spec-derived thresholds.
    Static,
    /// Pilot handshake + retransmission with the fitted thresholds.
    Recalibrate,
    /// Symbol time doubled, ARQ round budget raised, thresholds re-fitted.
    Stretch,
    /// Channel family switched per the [`FallbackPolicy`].
    Fallback,
    /// Every rung on every family failed.
    Abort,
}

impl LadderStage {
    /// Short label for traces and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            LadderStage::Static => "static",
            LadderStage::Recalibrate => "recalibrate",
            LadderStage::Stretch => "stretch",
            LadderStage::Fallback => "fallback",
            LadderStage::Abort => "abort",
        }
    }
}

/// One recorded escalation event: which rung fired, on which family, and
/// what happened.
#[derive(Debug, Clone, PartialEq)]
pub struct EscalationEvent {
    /// The ladder rung.
    pub stage: LadderStage,
    /// The channel family the rung ran on (for [`LadderStage::Fallback`],
    /// the family being switched *to*).
    pub family: ChannelFamily,
    /// Whether the rung's transmission attempt recovered the message.
    pub recovered: bool,
    /// Human-readable account of the rung (rounds, failure rates, fit
    /// diagnostics, or the error that ended it).
    pub detail: String,
}

/// Structured explanation of an adaptive transmission: whether it
/// delivered, through which family, and the full escalation trace.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkDiagnostic {
    /// Whether every frame was CRC-validated end to end.
    pub delivered: bool,
    /// Bit error rate of the delivered (or best-effort) message.
    pub ber: f64,
    /// The family the final attempt ran on.
    pub final_family: ChannelFamily,
    /// Recent (EWMA) frame-failure rate when the link settled.
    pub frame_failure_rate: f64,
    /// Every ladder rung that fired, in order.
    pub stages: Vec<EscalationEvent>,
    /// One-line summary of why the link settled where it did.
    pub reason: String,
}

impl fmt::Display for LinkDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "link {} via {} (ber {:.4}, recent frame-failure {:.2}): {}",
            if self.delivered { "delivered" } else { "ABORTED" },
            self.final_family.label(),
            self.ber,
            self.frame_failure_rate,
            self.reason
        )?;
        for (i, ev) in self.stages.iter().enumerate() {
            // Fallback/abort rows are ladder markers, not attempts — a
            // recovered/failed verdict would be misleading there.
            let verdict = match ev.stage {
                LadderStage::Fallback | LadderStage::Abort => "",
                _ if ev.recovered => " recovered —",
                _ => " failed —",
            };
            writeln!(
                f,
                "  {}. {:<11} [{:<7}]{verdict} {}",
                i + 1,
                ev.stage.label(),
                ev.family.label(),
                ev.detail
            )?;
        }
        Ok(())
    }
}

/// Result of [`AdaptiveLink::transmit`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveOutcome {
    /// The recovered message (zero-filled for frames never validated).
    pub received: Message,
    /// The ARQ report of the attempt the link settled on.
    pub report: ArqReport,
    /// The escalation trace and final link verdict.
    pub diagnostic: LinkDiagnostic,
}

/// The adaptive link layer: framing + ARQ + online calibration + the
/// degradation ladder, over one [`LinkEnvironment`].
#[derive(Debug, Clone)]
pub struct AdaptiveLink {
    spec: DeviceSpec,
    /// Pilot-sequence length for recalibration rungs.
    pub pilot_bits: usize,
    /// Family preference order.
    pub policy: FallbackPolicy,
    /// Base ARQ configuration (the stretch rung raises `max_rounds` by
    /// half again).
    pub arq: ArqConfig,
    /// The adversarial conditions every attempt runs under.
    pub env: LinkEnvironment,
}

impl AdaptiveLink {
    /// An adaptive link on a quiet device with the default policy, a
    /// 12-bit pilot, and a dead-round-bounded ARQ (a stomped family stops
    /// burning rounds after 2 consecutive zero-progress rounds).
    pub fn new(spec: DeviceSpec) -> Self {
        AdaptiveLink {
            spec,
            pilot_bits: 12,
            policy: FallbackPolicy::default(),
            arq: ArqConfig { max_rounds: 12, max_dead_rounds: Some(2), ..ArqConfig::default() },
            env: LinkEnvironment::clean(),
        }
    }

    /// Sets the adversarial environment.
    pub fn with_env(mut self, env: LinkEnvironment) -> Self {
        self.env = env;
        self
    }

    /// Sets the fallback policy.
    pub fn with_policy(mut self, policy: FallbackPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The first family of the policy, or a typed error for a policy with
    /// no families at all (a user-constructible degenerate [`FallbackPolicy`]
    /// the ladder could otherwise only panic on).
    fn checked_first_family(&self) -> Result<ChannelFamily, CovertError> {
        self.policy.order.first().copied().ok_or_else(|| CovertError::Config {
            reason: "fallback policy has no channel families".into(),
        })
    }

    /// Sets the pilot-sequence length.
    pub fn with_pilot_bits(mut self, bits: usize) -> Self {
        self.pilot_bits = bits;
        self
    }

    /// The device this link targets.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    fn run_attempt(
        &self,
        family: ChannelFamily,
        msg: &Message,
        calibration: Option<Calibration>,
        stretch: u32,
        arq: &ArqConfig,
        monitor: &mut LinkMonitor,
    ) -> Result<(Message, ArqReport), CovertError> {
        let mut pipe =
            FamilyPipe::new(self.spec.clone(), family, self.env.clone()).with_stretch(stretch);
        if let Some(cal) = calibration {
            pipe = pipe.with_calibration(cal);
        }
        arq_transmit_observed(&mut pipe, msg, arq, &mut |_, ok| monitor.record_frame(ok))
    }

    /// Runs one ladder rung, recording an [`EscalationEvent`]; `Some` result
    /// carries the attempt's outcome (recovered or not), `None` means the
    /// attempt itself errored and the ladder must move on.
    #[allow(clippy::too_many_arguments)] // one bundle per rung, internal
    fn try_rung(
        &self,
        stage: LadderStage,
        family: ChannelFamily,
        msg: &Message,
        calibration: Option<Calibration>,
        cal_note: &str,
        stretch: u32,
        arq: &ArqConfig,
        monitor: &mut LinkMonitor,
        stages: &mut Vec<EscalationEvent>,
    ) -> Option<(Message, ArqReport)> {
        match self.run_attempt(family, msg, calibration, stretch, arq, monitor) {
            Ok((received, report)) => {
                let detail = format!(
                    "{cal_note}{} rounds, {} frames, {} retransmissions, {} backoffs",
                    report.rounds, report.frames_total, report.retransmissions, report.backoffs
                );
                stages.push(EscalationEvent { stage, family, recovered: report.recovered, detail });
                Some((received, report))
            }
            Err(e) => {
                stages.push(EscalationEvent {
                    stage,
                    family,
                    recovered: false,
                    detail: format!("{cal_note}transport error: {e}"),
                });
                None
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // bundles one rung's full verdict into a diagnostic
    fn finish(
        &self,
        received: Message,
        report: ArqReport,
        msg: &Message,
        family: ChannelFamily,
        monitor: &LinkMonitor,
        stages: Vec<EscalationEvent>,
        reason: String,
    ) -> AdaptiveOutcome {
        AdaptiveOutcome {
            diagnostic: LinkDiagnostic {
                delivered: report.recovered,
                ber: msg.bit_error_rate(&received),
                final_family: family,
                frame_failure_rate: monitor.failure_rate(),
                stages,
                reason,
            },
            received,
            report,
        }
    }

    /// Transmits `msg` with the full degradation ladder. Always returns
    /// `Ok` for link-level failures — an exhausted ladder yields an outcome
    /// with `diagnostic.delivered == false` and an [`LadderStage::Abort`]
    /// event explaining each rung — reserving `Err` for configuration
    /// errors that no escalation can fix (e.g. an oversized message).
    ///
    /// # Errors
    ///
    /// [`CovertError::Config`] for messages exceeding the framing sequence
    /// space.
    pub fn transmit(&self, msg: &Message) -> Result<AdaptiveOutcome, CovertError> {
        crate::framing::frames_needed_checked(msg)?;
        self.checked_first_family()?;
        let mut monitor = LinkMonitor::new();
        let mut stages: Vec<EscalationEvent> = Vec::new();
        let mut last: Option<(Message, ArqReport, ChannelFamily)> = None;
        let stretch_arq =
            ArqConfig { max_rounds: self.arq.max_rounds + self.arq.max_rounds / 2, ..self.arq };

        for (fi, &family) in self.policy.order.iter().enumerate() {
            if fi > 0 {
                stages.push(EscalationEvent {
                    stage: LadderStage::Fallback,
                    family,
                    recovered: false,
                    detail: format!(
                        "switching family {} -> {}",
                        self.policy.order[fi - 1].label(),
                        family.label()
                    ),
                });
            }

            // Rung 1: static spec-derived thresholds.
            if let Some((received, report)) = self.try_rung(
                LadderStage::Static,
                family,
                msg,
                None,
                "",
                1,
                &self.arq,
                &mut monitor,
                &mut stages,
            ) {
                if report.recovered {
                    let reason = if fi == 0 {
                        "static thresholds sufficed".to_string()
                    } else {
                        format!("recovered after falling back to the {} family", family.label())
                    };
                    return Ok(self.finish(received, report, msg, family, &monitor, stages, reason));
                }
                last = Some((received, report, family));
            }

            // Rung 2: re-calibrate online and retry with fitted thresholds.
            let base_pipe = FamilyPipe::new(self.spec.clone(), family, self.env.clone());
            match base_pipe.calibrate(self.pilot_bits) {
                Ok(cal) => {
                    let note = format!(
                        "pilot fit threshold={} min_hot={} margin={}; ",
                        cal.threshold, cal.min_hot, cal.margin
                    );
                    if let Some((received, report)) = self.try_rung(
                        LadderStage::Recalibrate,
                        family,
                        msg,
                        Some(cal),
                        &note,
                        1,
                        &self.arq,
                        &mut monitor,
                        &mut stages,
                    ) {
                        if report.recovered {
                            return Ok(self.finish(
                                received,
                                report,
                                msg,
                                family,
                                &monitor,
                                stages,
                                "online re-calibration recovered the link".into(),
                            ));
                        }
                        last = Some((received, report, family));
                    }
                }
                Err(e) => {
                    stages.push(EscalationEvent {
                        stage: LadderStage::Recalibrate,
                        family,
                        recovered: false,
                        detail: format!("pilot fit failed: {e}"),
                    });
                }
            }

            // Rung 3: stretch symbol time, raise ARQ effort, re-fit at the
            // stretched operating point (fall back to static thresholds if
            // even the stretched pilot cannot separate).
            let stretched =
                FamilyPipe::new(self.spec.clone(), family, self.env.clone()).with_stretch(2);
            let (cal2, note) = match stretched.calibrate(self.pilot_bits) {
                Ok(c) => {
                    let n = format!(
                        "2x symbol time, re-fit threshold={} min_hot={}; ",
                        c.threshold, c.min_hot
                    );
                    (Some(c), n)
                }
                Err(e) => (None, format!("2x symbol time, stretched pilot failed ({e}); ")),
            };
            if let Some((received, report)) = self.try_rung(
                LadderStage::Stretch,
                family,
                msg,
                cal2,
                &note,
                2,
                &stretch_arq,
                &mut monitor,
                &mut stages,
            ) {
                if report.recovered {
                    return Ok(self.finish(
                        received,
                        report,
                        msg,
                        family,
                        &monitor,
                        stages,
                        "stretched symbol time recovered the link".into(),
                    ));
                }
                last = Some((received, report, family));
            }
        }

        let final_family =
            last.as_ref().map_or(*self.policy.order.last().expect("non-empty policy"), |l| l.2);
        stages.push(EscalationEvent {
            stage: LadderStage::Abort,
            family: final_family,
            recovered: false,
            detail: format!(
                "every rung failed on {} famil{}; lifetime frame-failure {:.2}",
                self.policy.order.len(),
                if self.policy.order.len() == 1 { "y" } else { "ies" },
                monitor.lifetime_failure_rate()
            ),
        });
        let (received, report, family) = last.unwrap_or_else(|| {
            (Message::from_bits(vec![false; msg.len()]), ArqReport::default(), final_family)
        });
        Ok(self.finish(
            received,
            report,
            msg,
            family,
            &monitor,
            stages,
            "escalation ladder exhausted".into(),
        ))
    }

    /// Transmits with thresholds pinned to the static spec-derived rule and
    /// the ladder disabled: exactly the first rung of [`AdaptiveLink::
    /// transmit`], which makes it the control arm for adaptive-vs-static
    /// comparisons (on a clean device the two are bit- and cycle-identical).
    ///
    /// # Errors
    ///
    /// As [`AdaptiveLink::transmit`].
    pub fn transmit_static(&self, msg: &Message) -> Result<AdaptiveOutcome, CovertError> {
        crate::framing::frames_needed_checked(msg)?;
        let family = self.checked_first_family()?;
        let mut monitor = LinkMonitor::new();
        let mut stages = Vec::new();
        let result = self.try_rung(
            LadderStage::Static,
            family,
            msg,
            None,
            "",
            1,
            &self.arq,
            &mut monitor,
            &mut stages,
        );
        let (received, report) = result
            .unwrap_or_else(|| (Message::from_bits(vec![false; msg.len()]), ArqReport::default()));
        let reason = if report.recovered {
            "static thresholds sufficed".to_string()
        } else {
            "static thresholds failed (ladder disabled)".to_string()
        };
        Ok(self.finish(received, report, msg, family, &monitor, stages, reason))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_spec::presets;

    #[test]
    fn empty_fallback_policy_is_a_typed_error_not_a_panic() {
        let link = AdaptiveLink::new(presets::tesla_k40c())
            .with_policy(FallbackPolicy { order: Vec::new() });
        let msg = Message::from_bits([true, false]);
        for r in [link.transmit(&msg), link.transmit_static(&msg)] {
            match r {
                Err(CovertError::Config { reason }) => {
                    assert!(reason.contains("no channel families"), "{reason}");
                }
                other => panic!("expected a Config error, got {other:?}"),
            }
        }
    }

    #[test]
    fn monitor_tracks_failures() {
        let mut m = LinkMonitor::new();
        assert_eq!(m.failure_rate(), 0.0);
        assert_eq!(m.lifetime_failure_rate(), 0.0);
        for _ in 0..3 {
            m.record_frame(true);
        }
        m.record_frame(false);
        assert_eq!((m.frames(), m.failures()), (4, 1));
        assert!(m.failure_rate() > 0.0 && m.failure_rate() < 1.0);
        assert!((m.lifetime_failure_rate() - 0.25).abs() < 1e-12);
        // Sustained failures push the EWMA toward 1.
        for _ in 0..32 {
            m.record_frame(false);
        }
        assert!(m.failure_rate() > 0.9);
    }

    #[test]
    fn default_policy_orders_families_by_bandwidth() {
        let p = FallbackPolicy::default();
        assert_eq!(
            p.order,
            vec![
                ChannelFamily::CacheL1Sync,
                ChannelFamily::Atomic,
                ChannelFamily::Sfu,
                ChannelFamily::Nvlink,
            ]
        );
        assert_eq!(FallbackPolicy::only(ChannelFamily::Sfu).order.len(), 1);
    }

    #[test]
    fn clean_device_settles_on_the_first_static_rung() {
        let link = AdaptiveLink::new(presets::tesla_k40c());
        let msg = Message::pseudo_random(32, 0xAD);
        let out = link.transmit(&msg).unwrap();
        assert!(out.diagnostic.delivered);
        assert_eq!(out.received, msg);
        assert_eq!(out.diagnostic.ber, 0.0);
        assert_eq!(out.diagnostic.stages.len(), 1);
        assert_eq!(out.diagnostic.stages[0].stage, LadderStage::Static);
        assert!(out.diagnostic.stages[0].recovered);
        assert_eq!(out.diagnostic.final_family, ChannelFamily::CacheL1Sync);
    }

    #[test]
    fn static_arm_matches_adaptive_on_a_clean_device() {
        let link = AdaptiveLink::new(presets::tesla_k40c());
        let msg = Message::pseudo_random(48, 0x1CE);
        let adaptive = link.transmit(&msg).unwrap();
        let pinned = link.transmit_static(&msg).unwrap();
        assert_eq!(adaptive.received, pinned.received, "bit-identical on a clean device");
        assert_eq!(adaptive.report.cycles, pinned.report.cycles, "cycle-identical too");
        assert!(pinned.diagnostic.delivered);
    }

    #[test]
    fn diagnostic_display_is_a_readable_trace() {
        let d = LinkDiagnostic {
            delivered: false,
            ber: 0.25,
            final_family: ChannelFamily::Atomic,
            frame_failure_rate: 0.8,
            stages: vec![EscalationEvent {
                stage: LadderStage::Recalibrate,
                family: ChannelFamily::CacheL1Sync,
                recovered: false,
                detail: "pilot fit failed: x".into(),
            }],
            reason: "escalation ladder exhausted".into(),
        };
        let s = d.to_string();
        assert!(s.contains("ABORTED"), "{s}");
        assert!(s.contains("recalibrate"), "{s}");
        assert!(s.contains("l1-sync"), "{s}");
    }
}
