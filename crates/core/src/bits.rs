//! Messages, bit-error-rate measurement and error correction.
//!
//! The paper reports *error-free* bandwidth for its channels (Figure 4,
//! Tables 2-3) and characterizes the error rate as channels are pushed
//! faster (Figure 5). This module provides the message plumbing for both,
//! plus the Hamming(7,4) forward-error-correction option the paper proposes
//! ("transmit error correcting codes with the data, sacrificing some of the
//! bandwidth") for environments where exclusive co-location is impossible.

use std::fmt;

/// A bit sequence being covertly transmitted.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Message {
    bits: Vec<bool>,
}

impl Message {
    /// A message from explicit bits.
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Self {
        Message { bits: bits.into_iter().collect() }
    }

    /// A message from bytes, most-significant bit first.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Message {
            bits: bytes.iter().flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1 == 1)).collect(),
        }
    }

    /// A deterministic pseudo-random message of `n` bits (xorshift), for
    /// benchmarking without a RNG dependency in hot paths.
    pub fn pseudo_random(n: usize, mut seed: u64) -> Self {
        let mut bits = Vec::with_capacity(n);
        for _ in 0..n {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            bits.push(seed & 1 == 1);
        }
        Message { bits }
    }

    /// The alternating `1010...` pattern (worst case for drift).
    pub fn alternating(n: usize) -> Self {
        Message { bits: (0..n).map(|i| i % 2 == 0).collect() }
    }

    /// The bits, in transmission order.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the message is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Reassembles bytes (MSB first); a trailing partial byte is dropped.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.bits
            .chunks_exact(8)
            .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | u8::from(b)))
            .collect()
    }

    /// Fraction of positions that differ from `other`, comparing the common
    /// prefix; missing bits (length mismatch) count as errors.
    pub fn bit_error_rate(&self, other: &Message) -> f64 {
        let n = self.bits.len().max(other.bits.len());
        if n == 0 {
            return 0.0;
        }
        let common = self.bits.len().min(other.bits.len());
        let mut errors = n - common;
        errors += (0..common).filter(|&i| self.bits[i] != other.bits[i]).count();
        errors as f64 / n as f64
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for Message {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        Message::from_bits(iter)
    }
}

/// Encodes a message with Hamming(7,4): every 4 data bits become 7 channel
/// bits that tolerate one bit error per codeword. The message is padded to a
/// multiple of 4 bits with zeros.
pub fn hamming_encode(msg: &Message) -> Message {
    let mut bits = msg.bits().to_vec();
    while !bits.len().is_multiple_of(4) {
        bits.push(false);
    }
    let mut out = Vec::with_capacity(bits.len() / 4 * 7);
    for c in bits.chunks_exact(4) {
        let (d1, d2, d3, d4) = (c[0], c[1], c[2], c[3]);
        let p1 = d1 ^ d2 ^ d4;
        let p2 = d1 ^ d3 ^ d4;
        let p3 = d2 ^ d3 ^ d4;
        out.extend_from_slice(&[p1, p2, d1, p3, d2, d3, d4]);
    }
    Message::from_bits(out)
}

/// Decodes a Hamming(7,4) stream, correcting single-bit errors per codeword.
/// Trailing bits that do not fill a codeword are discarded.
pub fn hamming_decode(coded: &Message) -> Message {
    let mut out = Vec::with_capacity(coded.len() / 7 * 4);
    for c in coded.bits().chunks_exact(7) {
        let mut w = [c[0], c[1], c[2], c[3], c[4], c[5], c[6]];
        let s1 = w[0] ^ w[2] ^ w[4] ^ w[6];
        let s2 = w[1] ^ w[2] ^ w[5] ^ w[6];
        let s3 = w[3] ^ w[4] ^ w[5] ^ w[6];
        let syndrome = (u8::from(s1)) | (u8::from(s2) << 1) | (u8::from(s3) << 2);
        if syndrome != 0 {
            let pos = (syndrome - 1) as usize;
            w[pos] = !w[pos];
        }
        out.extend_from_slice(&[w[2], w[4], w[5], w[6]]);
    }
    Message::from_bits(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip() {
        let m = Message::from_bytes(b"GPU");
        assert_eq!(m.len(), 24);
        assert_eq!(m.to_bytes(), b"GPU");
    }

    #[test]
    fn msb_first_bit_order() {
        let m = Message::from_bytes(&[0b1000_0001]);
        assert_eq!(m.to_string(), "10000001");
    }

    #[test]
    fn ber_identical_is_zero() {
        let m = Message::pseudo_random(100, 1);
        assert_eq!(m.bit_error_rate(&m), 0.0);
    }

    #[test]
    fn ber_counts_flips_and_truncation() {
        let a = Message::from_bits([true, true, true, true]);
        let b = Message::from_bits([true, false, true, true]);
        assert!((a.bit_error_rate(&b) - 0.25).abs() < 1e-12);
        let short = Message::from_bits([true, true]);
        assert!((a.bit_error_rate(&short) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ber_empty_messages() {
        assert_eq!(Message::default().bit_error_rate(&Message::default()), 0.0);
    }

    #[test]
    fn pseudo_random_is_deterministic_and_balanced() {
        let a = Message::pseudo_random(1000, 42);
        assert_eq!(a, Message::pseudo_random(1000, 42));
        let ones = a.bits().iter().filter(|&&b| b).count();
        assert!((300..=700).contains(&ones), "suspiciously unbalanced: {ones}");
    }

    #[test]
    fn alternating_pattern() {
        assert_eq!(Message::alternating(4).to_string(), "1010");
    }

    #[test]
    fn hamming_round_trip_clean() {
        let m = Message::pseudo_random(64, 3);
        assert_eq!(hamming_decode(&hamming_encode(&m)), m);
    }

    #[test]
    fn hamming_corrects_any_single_bit_error_per_codeword() {
        let m = Message::from_bits([true, false, true, true]);
        let coded = hamming_encode(&m);
        assert_eq!(coded.len(), 7);
        for flip in 0..7 {
            let mut bits = coded.bits().to_vec();
            bits[flip] = !bits[flip];
            let corrupted = Message::from_bits(bits);
            assert_eq!(hamming_decode(&corrupted), m, "flip at {flip} not corrected");
        }
    }

    #[test]
    fn hamming_pads_to_codeword_multiple() {
        let m = Message::from_bits([true]);
        let coded = hamming_encode(&m);
        assert_eq!(coded.len(), 7);
        assert!(hamming_decode(&coded).bits()[0]);
    }

    #[test]
    fn collect_from_iterator() {
        let m: Message = [true, false].into_iter().collect();
        assert_eq!(m.len(), 2);
    }
}
