//! Section-10 negative results: self-contention artifacts do not make
//! covert channels.
//!
//! Jiang et al. built *side* channels from memory-coalescing and
//! shared-memory bank-conflict timing — artifacts that dramatically change
//! a kernel's **own** execution time. The paper reports that neither
//! transfers to a **competing** kernel: "Although memory coalescing and
//! shared memory bank conflicts make a large difference in the timing of
//! one kernel, these artifacts had little measurable effect on the timing
//! of a competing kernel." This module measures both effects so the claim
//! is checkable.

use crate::CovertError;
use gpgpu_isa::{LanePattern, ProgramBuilder, Reg};
use gpgpu_sim::{Device, KernelSpec};
use gpgpu_spec::{DeviceSpec, LaunchConfig};

/// The self-timing effect of an artifact versus its effect on a competitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferabilityReport {
    /// Mean timed-loop latency of the artifact-free configuration.
    pub clean_latency: f64,
    /// Mean latency of the same kernel with the artifact engaged
    /// (un-coalesced / fully bank-conflicted).
    pub self_latency: f64,
    /// Mean latency of a clean *competitor* while another kernel engages
    /// the artifact.
    pub cross_latency: f64,
}

impl TransferabilityReport {
    /// How much the artifact slows the kernel itself (>= 1).
    pub fn self_effect(&self) -> f64 {
        self.self_latency / self.clean_latency
    }

    /// How much the artifact slows a competitor (~1 when not transferable).
    pub fn cross_effect(&self) -> f64 {
        self.cross_latency / self.clean_latency
    }

    /// The paper's criterion: a large self effect with a negligible cross
    /// effect means the artifact cannot carry a covert channel.
    pub fn is_untransferable(&self) -> bool {
        self.self_effect() > 2.0 && (self.cross_effect() - 1.0).abs() < 0.05
    }
}

fn timed_shared_loop(base: u64, pattern: LanePattern, iters: u64) -> gpgpu_isa::Program {
    let (addr, t0, t1, lat) = (Reg(0), Reg(1), Reg(2), Reg(3));
    let mut b = ProgramBuilder::new();
    b.mov_imm(addr, base);
    b.repeat(Reg(20), iters, move |b| {
        b.read_clock(t0);
        for _ in 0..8 {
            b.shared_load(addr, pattern);
        }
        b.read_clock(t1);
        b.sub(lat, t1, t0);
        b.push_result(lat);
    });
    b.build().expect("shared loop assembles")
}

fn untimed_shared_loop(base: u64, pattern: LanePattern, iters: u64) -> gpgpu_isa::Program {
    let addr = Reg(0);
    let mut b = ProgramBuilder::new();
    b.mov_imm(addr, base);
    b.repeat(Reg(20), iters, move |b| {
        for _ in 0..8 {
            b.shared_load(addr, pattern);
        }
    });
    b.build().expect("shared loop assembles")
}

fn mean_of_first_warp(dev: &Device, k: gpgpu_sim::KernelId) -> Result<f64, CovertError> {
    let r = dev.results(k)?;
    let s = r.warp_results(0, 0).unwrap_or(&[]);
    if s.is_empty() {
        return Err(CovertError::ProtocolDesync { expected: 1, got: 0 });
    }
    Ok(s.iter().map(|&x| x as f64).sum::<f64>() / s.len() as f64)
}

/// Measures whether shared-memory bank conflicts transfer to a competing
/// kernel. Conflict-free = consecutive words; conflicted = all 32 lanes in
/// one bank (stride of 32 words).
///
/// # Errors
///
/// Propagates simulator failures.
pub fn bank_conflict_transferability(
    spec: &DeviceSpec,
) -> Result<TransferabilityReport, CovertError> {
    let clean_pattern = LanePattern::Consecutive { elem_bytes: 4 };
    let conflict_pattern = LanePattern::Spread { stride_bytes: 32 * 4 };
    let launch = LaunchConfig::new(spec.num_sms, 32).with_shared_mem(8 * 1024);
    const ITERS: u64 = 24;

    // (a) clean self-timing.
    let mut dev = Device::new(spec.clone());
    let k = dev
        .launch(0, KernelSpec::new("clean", timed_shared_loop(0, clean_pattern, ITERS), launch))?;
    dev.run_until_idle(100_000_000)?;
    let clean_latency = mean_of_first_warp(&dev, k)?;

    // (b) conflicted self-timing.
    let mut dev = Device::new(spec.clone());
    let k = dev.launch(
        0,
        KernelSpec::new("conflicted", timed_shared_loop(0, conflict_pattern, ITERS), launch),
    )?;
    dev.run_until_idle(100_000_000)?;
    let self_latency = mean_of_first_warp(&dev, k)?;

    // (c) clean spy beside a heavily conflicted trojan on the same SMs.
    let mut dev = Device::new(spec.clone());
    let spy =
        dev.launch(0, KernelSpec::new("spy", timed_shared_loop(0, clean_pattern, ITERS), launch))?;
    dev.launch(
        1,
        KernelSpec::new("trojan", untimed_shared_loop(4096, conflict_pattern, ITERS * 2), launch),
    )?;
    dev.run_until_idle(100_000_000)?;
    let cross_latency = mean_of_first_warp(&dev, spy)?;

    Ok(TransferabilityReport { clean_latency, self_latency, cross_latency })
}

/// Measures whether global-memory coalescing behaviour transfers to a
/// competing kernel (the other Section-10 artifact).
///
/// # Errors
///
/// Propagates simulator failures.
pub fn coalescing_transferability(spec: &DeviceSpec) -> Result<TransferabilityReport, CovertError> {
    let seg = spec.mem.coalesce_segment;
    let timed = |base: u64, pattern: LanePattern| {
        let (addr, t0, t1, lat) = (Reg(0), Reg(1), Reg(2), Reg(3));
        let mut b = ProgramBuilder::new();
        b.mov_imm(addr, base);
        b.repeat(Reg(20), 24, move |b| {
            b.read_clock(t0);
            for _ in 0..8 {
                b.global_load(addr, pattern);
                b.add_imm(addr, addr, 64 * seg);
            }
            b.read_clock(t1);
            b.sub(lat, t1, t0);
            b.push_result(lat);
        });
        b.build().expect("assembles")
    };
    let coalesced = LanePattern::Consecutive { elem_bytes: 4 };
    let uncoalesced = LanePattern::Spread { stride_bytes: seg };
    // Single-block kernels: Jiang et al. time one kernel externally; a
    // device-wide grid of lockstep-identical warps would instead measure
    // synchronized-burst queueing, which real scheduling drift disperses.
    let launch = LaunchConfig::new(1, 32);
    // Untimed competitor with a per-block phase offset so its transaction
    // bursts are not lockstep-aligned.
    fn staggered(base: u64, pattern: LanePattern, seg: u64) -> gpgpu_isa::Program {
        let addr = Reg(0);
        let mut b = ProgramBuilder::new();
        b.read_special(Reg(4), gpgpu_isa::Special::BlockId);
        b.mul_imm(Reg(4), Reg(4), 37);
        b.add_imm(Reg(4), Reg(4), 1);
        let top = b.label();
        b.bind(top);
        b.add_imm(Reg(4), Reg(4), u64::MAX);
        b.branch(gpgpu_isa::Cond::Ne, Reg(4), gpgpu_isa::Operand::Imm(0), top);
        b.mov_imm(addr, base);
        b.repeat(Reg(20), 24, move |b| {
            for _ in 0..8 {
                b.global_load(addr, pattern);
                b.add_imm(addr, addr, 64 * seg);
            }
        });
        b.build().expect("assembles")
    }

    let run = |programs: Vec<(gpgpu_isa::Program, LaunchConfig)>| -> Result<f64, CovertError> {
        let mut dev = Device::new(spec.clone());
        let mut first = None;
        for (i, (p, cfg)) in programs.into_iter().enumerate() {
            let k = dev.launch(i as u32, KernelSpec::new("k", p, cfg))?;
            if first.is_none() {
                first = Some(k);
            }
        }
        dev.run_until_idle(200_000_000)?;
        mean_of_first_warp(&dev, first.expect("at least one kernel"))
    };

    let clean_latency = run(vec![(timed(0x1000_0000, coalesced), launch)])?;
    let self_latency = run(vec![(timed(0x1000_0000, uncoalesced), launch)])?;
    // The competitor is a *typical* un-coalesced kernel (a few blocks with
    // staggered phases), not a lockstep full-device stressor: the paper's
    // Section-10 measurement competes against ordinary kernels, and burst
    // alignment across dozens of identical warps is a simulation artifact
    // real scheduling drift removes.
    let cross_latency = run(vec![
        (timed(0x1000_0000, coalesced), launch),
        (staggered(0x3000_0000, uncoalesced, seg), LaunchConfig::new(1, 32)),
    ])?;
    Ok(TransferabilityReport { clean_latency, self_latency, cross_latency })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_spec::presets;

    #[test]
    fn bank_conflicts_do_not_transfer() {
        let r = bank_conflict_transferability(&presets::tesla_k40c()).unwrap();
        assert!(r.self_effect() > 2.0, "self effect too small: {r:?}");
        assert!(
            (r.cross_effect() - 1.0).abs() < 0.05,
            "bank conflicts must not slow a competitor: {r:?}"
        );
        assert!(r.is_untransferable());
    }

    #[test]
    fn coalescing_does_not_transfer() {
        let r = coalescing_transferability(&presets::tesla_k40c()).unwrap();
        // LD/ST replay: 32 transactions serialize at the warp's own port.
        assert!(r.self_effect() > 1.2, "self effect too small: {r:?}");
        assert!(
            (r.cross_effect() - 1.0).abs() < 0.05,
            "coalescing must not slow a competitor: {r:?}"
        );
    }

    #[test]
    fn negative_results_hold_on_all_architectures() {
        for spec in presets::all() {
            let banks = bank_conflict_transferability(&spec).unwrap();
            assert!(banks.is_untransferable(), "{}: {banks:?}", spec.name);
        }
    }
}
