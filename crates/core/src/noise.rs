//! Interfering workloads and noise mitigation (paper Section 8).
//!
//! The paper evaluates its channels against Rodinia benchmark applications
//! running on a third stream. We model the Rodinia mixes by their resource
//! footprints — which is all that matters for interference:
//!
//! * [`NoiseKind::ConstantCacheHog`] — walks constant memory continuously,
//!   stomping every L1 set (the paper calls out *Heart Wall*, "that uses
//!   constant memory and that would interfere with the L1 covert channel").
//! * [`NoiseKind::SharedMemHog`] — claims a block of shared memory and does
//!   global-memory work (*hotspot*-like).
//! * [`NoiseKind::FuBound`] — saturates the SFUs (*lavaMD*-like).
//! * [`NoiseKind::MemoryBound`] — streams global memory (*streamcluster*-like).
//!
//! With the default (non-exclusive) launch recipe these co-locate with the
//! channel kernels and corrupt it; with the Section-8 **exclusive
//! co-location** recipe the channel saturates shared memory and threads so
//! the noise queues behind it, and communication stays error-free.

use crate::bits::Message;
use crate::channel::ChannelOutcome;
use crate::sync_channel::SyncChannel;
use crate::CovertError;
use gpgpu_isa::{LanePattern, ProgramBuilder, Reg};
use gpgpu_sim::KernelSpec;
use gpgpu_spec::{DeviceSpec, FuOpKind, LaunchConfig};

/// Resource footprint of a synthetic interfering workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseKind {
    /// Walks the whole constant L1 continuously (Heart-Wall-like).
    ConstantCacheHog,
    /// Claims shared memory, streams global memory (hotspot-like).
    SharedMemHog,
    /// Saturates the special function units (lavaMD-like).
    FuBound,
    /// Streams global memory with un-coalesced accesses (streamcluster-like).
    MemoryBound,
    /// Hammers one global address with atomics from every SM, saturating
    /// the atomic units (a kmeans-reduction-like co-runner). Not part of
    /// [`NoiseKind::ALL`] — the paper's Rodinia mixture experiments predate
    /// it; the adaptive-ladder exhaustion tests use it to stomp the atomic
    /// channel family specifically.
    AtomicHammer,
}

impl NoiseKind {
    /// The paper's four mixture kinds (excludes the targeted
    /// [`NoiseKind::AtomicHammer`]).
    pub const ALL: [NoiseKind; 4] = [
        NoiseKind::ConstantCacheHog,
        NoiseKind::SharedMemHog,
        NoiseKind::FuBound,
        NoiseKind::MemoryBound,
    ];
}

/// Builds a launchable noise kernel of the given kind running for roughly
/// `iterations` inner loops on every SM.
pub fn noise_kernel(spec: &DeviceSpec, kind: NoiseKind, iterations: u64) -> KernelSpec {
    let mut b = ProgramBuilder::new();
    let name;
    let mut launch = LaunchConfig::new(spec.num_sms, 64);
    match kind {
        NoiseKind::ConstantCacheHog => {
            name = "noise-heartwall";
            // A third constant array, beyond the spy's and trojan's.
            let g = &spec.const_l1.geometry;
            let base = 2 * g.same_set_stride() * g.ways();
            let lines = g.size_bytes() / g.line_bytes();
            b.repeat(Reg(20), iterations, |b| {
                for k in 0..lines {
                    b.mov_imm(Reg(0), base + k * g.line_bytes());
                    b.const_load(Reg(0));
                }
            });
        }
        NoiseKind::SharedMemHog => {
            name = "noise-hotspot";
            launch = launch.with_shared_mem(spec.sm.max_shared_mem_per_block.min(16 * 1024));
            b.mov_imm(Reg(0), 0x4000_0000);
            b.repeat(Reg(20), iterations, |b| {
                b.global_load(Reg(0), LanePattern::Consecutive { elem_bytes: 4 });
                b.add_imm(Reg(0), Reg(0), 128);
                b.fu(FuOpKind::SpAdd);
                b.fu(FuOpKind::SpMul);
            });
        }
        NoiseKind::FuBound => {
            name = "noise-lavamd";
            b.repeat(Reg(20), iterations, |b| {
                for _ in 0..16 {
                    b.fu(FuOpKind::SpSinf);
                }
            });
        }
        NoiseKind::MemoryBound => {
            name = "noise-streamcluster";
            b.mov_imm(Reg(0), 0x5000_0000);
            b.repeat(Reg(20), iterations, |b| {
                b.global_load(Reg(0), LanePattern::Spread { stride_bytes: 128 });
                b.add_imm(Reg(0), Reg(0), 4096);
            });
        }
        NoiseKind::AtomicHammer => {
            name = "noise-kmeans";
            // 256 threads per block, four warps all hammering the same
            // segment, queueing on every address-interleaved atomic unit.
            launch = LaunchConfig::new(spec.num_sms, 256);
            b.read_special(Reg(0), gpgpu_isa::Special::BlockId);
            b.mul_imm(Reg(0), Reg(0), 4096 + spec.mem.coalesce_segment);
            b.add_imm(Reg(0), Reg(0), 0x6000_0000);
            b.repeat(Reg(20), iterations, |b| {
                for _ in 0..8 {
                    b.atomic_add(Reg(0), LanePattern::Consecutive { elem_bytes: 4 });
                }
            });
        }
    }
    KernelSpec::new(name, b.build().expect("noise kernel assembles"), launch)
}

/// Outcome of a Section-8 interference experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseExperiment {
    /// The channel's transmission outcome under (attempted) interference.
    pub outcome: ChannelOutcome,
    /// Whether any noise kernel's first block started before the channel
    /// finished — i.e. whether the noise actually ran concurrently.
    pub noise_overlapped: bool,
}

/// Runs the synchronized L1 channel beside the given noise kinds, with or
/// without the exclusive co-location defense.
///
/// # Errors
///
/// Propagates channel and simulator failures.
pub fn run_sync_with_noise(
    spec: &DeviceSpec,
    msg: &Message,
    kinds: &[NoiseKind],
    exclusive: bool,
) -> Result<NoiseExperiment, CovertError> {
    run_sync_with_noise_intensity(spec, msg, kinds, exclusive, 40 + 30 * msg.len() as u64)
}

/// As [`run_sync_with_noise`], but with an explicit noise-kernel iteration
/// count — lighter noise produces the moderate error rates where forward
/// error correction (the paper's fallback mitigation) is effective.
///
/// # Errors
///
/// Propagates channel and simulator failures.
pub fn run_sync_with_noise_intensity(
    spec: &DeviceSpec,
    msg: &Message,
    kinds: &[NoiseKind],
    exclusive: bool,
    noise_iters: u64,
) -> Result<NoiseExperiment, CovertError> {
    let mut channel = SyncChannel::new(spec.clone());
    if exclusive {
        channel = channel.with_exclusive();
    }
    let noise: Vec<KernelSpec> =
        kinds.iter().map(|&k| noise_kernel(spec, k, noise_iters)).collect();
    let run = channel.transmit_with_noise(msg, noise)?;
    // Interference requires sharing an SM with an *active* channel block
    // while the channel is live.
    let noise_overlapped = run.noise.iter().any(|r| {
        r.blocks.iter().any(|blk| {
            run.active_sms.contains(&blk.sm_id) && blk.start_cycle < run.channel_completed_at
        })
    });
    Ok(NoiseExperiment { outcome: run.outcome, noise_overlapped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_spec::presets;

    #[test]
    fn constant_cache_noise_corrupts_unprotected_channel() {
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(16, 4);
        let exp = run_sync_with_noise(&spec, &msg, &[NoiseKind::ConstantCacheHog], false).unwrap();
        assert!(exp.noise_overlapped, "noise should co-locate without the defense");
        assert!(exp.outcome.ber > 0.0, "expected corruption, ber={}", exp.outcome.ber);
    }

    #[test]
    fn exclusive_colocation_locks_noise_out() {
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(16, 4);
        let exp = run_sync_with_noise(&spec, &msg, &[NoiseKind::ConstantCacheHog], true).unwrap();
        assert!(exp.outcome.is_error_free(), "ber={}", exp.outcome.ber);
    }

    #[test]
    fn exclusive_colocation_survives_a_noise_mixture() {
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(12, 8);
        let exp = run_sync_with_noise(&spec, &msg, &NoiseKind::ALL, true).unwrap();
        assert!(exp.outcome.is_error_free(), "ber={}", exp.outcome.ber);
    }

    #[test]
    fn non_cache_noise_does_not_break_the_channel() {
        // FU/memory noise does not touch the constant cache; the channel
        // survives even without the defense.
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(12, 8);
        let exp = run_sync_with_noise(&spec, &msg, &[NoiseKind::MemoryBound], false).unwrap();
        assert!(exp.outcome.is_error_free(), "ber={}", exp.outcome.ber);
    }

    #[test]
    fn noise_kernels_are_launchable_everywhere() {
        for spec in presets::all() {
            for kind in NoiseKind::ALL {
                let k = noise_kernel(&spec, kind, 2);
                assert!(k.launch.validate(&spec.sm).is_ok(), "{kind:?} on {}", spec.name);
            }
        }
    }
}
