//! Common channel plumbing: transmission outcomes and decode helpers.

use crate::bits::Message;
use gpgpu_sim::SimStats;
use gpgpu_spec::DeviceSpec;

/// Result of transmitting a message over a covert channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelOutcome {
    /// The message the trojan encoded.
    pub sent: Message,
    /// The message the spy decoded.
    pub received: Message,
    /// Device cycles consumed end to end (including kernel launches).
    pub cycles: u64,
    /// Achieved bandwidth in kilobits per second on the device's clock.
    pub bandwidth_kbps: f64,
    /// Bit error rate between sent and received.
    pub ber: f64,
    /// Cycle-engine counters of the device(s) that ran the transmission
    /// (zeroed for channels that do not surface them).
    pub stats: SimStats,
}

impl ChannelOutcome {
    /// Builds an outcome, deriving bandwidth and BER.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero: bandwidth is derived via
    /// [`DeviceSpec::bandwidth_kbps`], whose underlying
    /// `DeviceSpec::bandwidth_bps` asserts "bandwidth over zero cycles is
    /// undefined". Channel code returns
    /// [`crate::CovertError::ZeroCycleTransmission`] before reaching this.
    pub fn from_run(spec: &DeviceSpec, sent: Message, received: Message, cycles: u64) -> Self {
        let bandwidth_kbps = spec.bandwidth_kbps(sent.len() as u64, cycles);
        let ber = sent.bit_error_rate(&received);
        ChannelOutcome { sent, received, cycles, bandwidth_kbps, ber, stats: SimStats::default() }
    }

    /// Attaches engine counters from the device that ran the transmission.
    pub fn with_stats(mut self, stats: SimStats) -> Self {
        self.stats = stats;
        self
    }

    /// Whether the transfer was error-free.
    pub fn is_error_free(&self) -> bool {
        self.ber == 0.0
    }
}

/// Decodes one bit from per-iteration miss counts pushed by a spy probe
/// loop: the bit is 1 if at least `min_hot` iterations observed at least one
/// miss (the trojan's prime evicted the spy's lines).
///
/// # Errors
///
/// Returns [`crate::CovertError::InvalidThreshold`] when `min_hot == 0`:
/// with no evidence required, every bit decodes as 1 and a dead channel
/// masquerades as a perfect one.
pub fn decode_from_miss_counts(
    miss_counts: &[u64],
    min_hot: usize,
) -> Result<bool, crate::CovertError> {
    if min_hot == 0 {
        return Err(crate::CovertError::InvalidThreshold {
            what: "min_hot == 0 decodes every bit as 1".into(),
        });
    }
    Ok(miss_counts.iter().filter(|&&m| m > 0).count() >= min_hot)
}

/// Decodes one bit from per-iteration latency samples against a threshold:
/// the bit is 1 if at least `min_hot` samples exceed `threshold`.
///
/// # Errors
///
/// Returns [`crate::CovertError::InvalidThreshold`] when `min_hot == 0`,
/// under which every bit would decode as 1 regardless of the samples.
pub fn decode_from_latencies(
    samples: &[u64],
    threshold: u64,
    min_hot: usize,
) -> Result<bool, crate::CovertError> {
    if min_hot == 0 {
        return Err(crate::CovertError::InvalidThreshold {
            what: "min_hot == 0 decodes every bit as 1".into(),
        });
    }
    Ok(samples.iter().filter(|&&l| l > threshold).count() >= min_hot)
}

/// A recorded event trace retrieved after a traced transmission: the
/// events plus the kernel-id -> name table the exporters need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCapture {
    /// The recorded events (ring-buffered; check
    /// [`gpgpu_sim::EventTrace::dropped`] for overflow).
    pub events: gpgpu_sim::EventTrace,
    /// Diagnostic kernel names, indexed by kernel id.
    pub kernel_names: Vec<String>,
}

impl TraceCapture {
    /// The capture as Chrome trace-event JSON (`chrome://tracing`).
    pub fn chrome_trace_json(&self) -> String {
        gpgpu_sim::chrome_trace_json(&self.records(), &self.kernel_names)
    }

    /// The held records in chronological order (cloned out of the ring;
    /// iterate [`gpgpu_sim::EventTrace::iter`] on `events` to borrow).
    pub fn records(&self) -> Vec<gpgpu_sim::TraceRecord> {
        self.events.iter().cloned().collect()
    }
}

/// Runs a per-bit-relaunch channel: for every message bit, launches a fresh
/// trojan/spy kernel pair on two streams, waits for both, and decodes the
/// bit from the spy's block-0/warp-0 result buffer.
///
/// When `trace` is `Some`, the sink is installed on the device for the whole
/// transmission and can be retrieved afterwards via
/// [`gpgpu_sim::Device::take_trace_sink`] on the returned lease.
///
/// The device comes from the thread-local [`crate::pool`], so sweeps that
/// transmit repeatedly reuse one device's allocations (restored to pristine
/// state per transmission) instead of rebuilding the simulator per trial.
///
/// This is the structure of all the paper's *baseline* channels (Sections
/// 4-6): "we launch two kernels to communicate each bit of the message.
/// Clearly, this incurs some overhead to launch the kernels, but it
/// simplifies synchronization by leveraging the stream operations."
#[allow(clippy::too_many_arguments)] // one call-site bundle per channel family
pub(crate) fn transmit_per_bit(
    spec: &DeviceSpec,
    tuning: gpgpu_sim::DeviceTuning,
    jitter: Option<(u64, u64)>,
    faults: Option<gpgpu_sim::FaultPlan>,
    noise: &[gpgpu_sim::KernelSpec],
    msg: &Message,
    trojan_program: &dyn Fn(bool) -> gpgpu_isa::Program,
    spy_program: &dyn Fn() -> gpgpu_isa::Program,
    launches: (gpgpu_spec::LaunchConfig, gpgpu_spec::LaunchConfig),
    alloc_const_bytes: (u64, u64),
    decode: &dyn Fn(&[u64]) -> Result<bool, crate::CovertError>,
    cycles_per_bit_budget: u64,
    trace: Option<Box<dyn gpgpu_sim::TraceSink>>,
) -> Result<(ChannelOutcome, crate::pool::DeviceLease), crate::CovertError> {
    let mut dev = crate::pool::acquire(spec, tuning);
    if let Some((max, seed)) = jitter {
        dev.set_launch_jitter(max, seed);
    }
    if let Some(plan) = faults {
        dev.set_fault_injector(gpgpu_sim::FaultInjector::new(plan));
    }
    if let Some(sink) = trace {
        dev.set_trace_sink(sink);
    }
    // Allocations are performed once; the same arrays are reused by every
    // per-bit kernel pair, exactly as a real attacker reuses
    // `__constant__` symbols across launches.
    let _spy_base = dev.alloc_constant(alloc_const_bytes.0);
    let _trojan_base = dev.alloc_constant(alloc_const_bytes.1);
    let mut received = Vec::with_capacity(msg.len());
    for &bit in msg.bits() {
        let spy = dev.launch(0, gpgpu_sim::KernelSpec::new("spy", spy_program(), launches.0))?;
        let _trojan =
            dev.launch(1, gpgpu_sim::KernelSpec::new("trojan", trojan_program(bit), launches.1))?;
        // Noise co-runners ride on dedicated streams so each bit's kernel
        // pair contends with the same background workload — the per-bit
        // analogue of the paper's §8 concurrently-launched Rodinia apps.
        for (i, co) in noise.iter().enumerate() {
            dev.launch(2 + i as u32, co.clone())?;
        }
        dev.run_until_idle(cycles_per_bit_budget)?;
        // Borrowed read on the per-bit hot path: no clone of the kernel's
        // block records just to look at one warp's sample buffer.
        let samples = dev
            .block_records(spy)?
            .iter()
            .find(|b| b.block_id == 0)
            .and_then(|b| b.warp_results.first())
            .map(Vec::as_slice)
            .ok_or_else(|| crate::CovertError::MissingWarpResults {
                kernel: dev.kernel_name(spy).unwrap_or("spy").to_string(),
                block: 0,
                warp: 0,
            })?;
        received.push(decode(samples)?);
    }
    let cycles = dev.now();
    if cycles == 0 {
        // An empty message (or a device that never advanced) has no defined
        // bandwidth; previously this was masked by clamping to one cycle.
        return Err(crate::CovertError::ZeroCycleTransmission);
    }
    let outcome = ChannelOutcome::from_run(spec, msg.clone(), Message::from_bits(received), cycles)
        .with_stats(*dev.stats());
    Ok((outcome, dev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_spec::presets;

    #[test]
    fn outcome_derives_bandwidth_and_ber() {
        let spec = presets::tesla_k40c();
        let sent = Message::from_bits([true, false, true, false]);
        let received = Message::from_bits([true, false, false, false]);
        let o = ChannelOutcome::from_run(&spec, sent, received, 745_000);
        assert!((o.bandwidth_kbps - 4.0).abs() < 1e-9);
        assert!((o.ber - 0.25).abs() < 1e-12);
        assert!(!o.is_error_free());
    }

    #[test]
    fn miss_count_decode() {
        assert!(decode_from_miss_counts(&[0, 1, 2, 1, 0], 2).unwrap());
        assert!(!decode_from_miss_counts(&[0, 1, 0, 0, 0], 2).unwrap());
        assert!(!decode_from_miss_counts(&[], 1).unwrap());
    }

    #[test]
    fn latency_decode() {
        assert!(decode_from_latencies(&[100, 500, 500], 300, 2).unwrap());
        assert!(!decode_from_latencies(&[100, 500, 100], 300, 2).unwrap());
    }

    #[test]
    fn zero_min_hot_is_rejected_not_decoded_as_all_ones() {
        // A silent channel must not decode as a perfect one: with
        // `min_hot == 0` every bit trivially satisfies "at least 0 hot
        // samples", so the decoders refuse the threshold outright.
        let e = decode_from_latencies(&[0, 0, 0], 300, 0).unwrap_err();
        assert!(matches!(e, crate::CovertError::InvalidThreshold { .. }), "{e:?}");
        let e = decode_from_miss_counts(&[0, 0, 0], 0).unwrap_err();
        assert!(matches!(e, crate::CovertError::InvalidThreshold { .. }), "{e:?}");
        // Non-degenerate thresholds still decode.
        assert!(!decode_from_latencies(&[0, 0, 0], 300, 1).unwrap());
    }
}
