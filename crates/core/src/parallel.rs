//! Parallelized channels (paper Section 7.2 and Table 3).
//!
//! * [`ParallelSfuChannel`] — one bit per warp scheduler per SM per round.
//!   "Contention is isolated among the different warp schedulers", so warp
//!   `s` of the trojan modulates load on scheduler `s` while warp `s` of
//!   the spy times its own `__sinf` bursts there; background warps keep
//!   every scheduler near its contention step so one warp's presence or
//!   absence is measurable.
//! * [`CombinedChannel`] — two bits per round through two *different*
//!   resources at once (L1 constant cache + SFUs), the Section 7
//!   multi-resource experiment (56 Kbps on Kepler in the paper).

use crate::bits::Message;
use crate::channel::ChannelOutcome;
use crate::kernels::{
    emit_block_dispatch, emit_fill, emit_idle_spin, emit_probe_count_misses, emit_timed_fu_burst,
    miss_threshold, SetRef,
};
use crate::CovertError;
use gpgpu_isa::{Cond, Operand, ProgramBuilder, Reg, Special};
use gpgpu_sim::{Device, KernelSpec};
use gpgpu_spec::{Architecture, DeviceSpec, FuOpKind, FuTiming, FuUnit, LaunchConfig};

/// Warps per kernel per block for the parallel SFU channel: enough to sit
/// just below the first contention step alone, and on a step together.
pub fn sfu_warps_per_block(arch: Architecture) -> u32 {
    match arch {
        Architecture::Fermi => 4,    // 2 per scheduler
        Architecture::Kepler => 12,  // 3 per scheduler
        Architecture::Maxwell => 12, // 3 per scheduler
        // Single-issue sub-cores with an 8-cycle SFU occupancy sit on a
        // contention step already at 2 warps, so each kernel contributes
        // just one warp per sub-core.
        Architecture::Ampere => 4,
    }
}

/// Per-op latency with `per_sched` warps contending on one scheduler.
fn sfu_latency(spec: &DeviceSpec, per_sched: u64) -> u64 {
    let t = FuTiming::for_op(spec.architecture, FuOpKind::SpSinf);
    let occ = u64::from(spec.sm.pools.issue_occupancy(FuUnit::Sfu, spec.sm.num_warp_schedulers))
        * u64::from(t.micro_ops);
    // Under fixed-latency dependence management (Ampere sub-cores) a timed
    // burst of `Fu` ops never waits out the pipeline depth — the idle
    // baseline is just the issue occupancy, which is exactly why the sfu
    // channel gets *faster* on Ampere (see EXPERIMENTS.md).
    let idle = match spec.sub_core.dependence {
        gpgpu_spec::DependenceMode::Scoreboard => u64::from(t.pipeline_depth) + occ,
        gpgpu_spec::DependenceMode::FixedLatency => occ,
    };
    idle.max(per_sched * occ)
}

/// The Table-3 parallel SFU channel: `num_warp_schedulers x parallel_sms`
/// bits per kernel-pair launch.
#[derive(Debug, Clone)]
pub struct ParallelSfuChannel {
    spec: DeviceSpec,
    /// SMs carrying independent lanes (1 ..= num_sms).
    pub parallel_sms: u32,
    /// `__sinf` ops per timed burst.
    pub ops_per_iter: u64,
    /// Timed bursts per round.
    pub iterations: u64,
    /// Device tuning (mitigations / placement policy).
    pub tuning: gpgpu_sim::DeviceTuning,
}

impl ParallelSfuChannel {
    /// A per-scheduler-parallel channel on one SM (Table 3, column 2).
    pub fn new(spec: DeviceSpec) -> Self {
        ParallelSfuChannel {
            spec,
            parallel_sms: 1,
            ops_per_iter: 96,
            iterations: 8,
            tuning: gpgpu_sim::DeviceTuning::none(),
        }
    }

    /// Applies device tuning (mitigations / placement policy).
    pub fn with_tuning(mut self, tuning: gpgpu_sim::DeviceTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Extends the channel across `sms` SMs (Table 3, column 3).
    ///
    /// # Errors
    ///
    /// [`CovertError::Config`] if the device has fewer SMs.
    pub fn with_parallel_sms(mut self, sms: u32) -> Result<Self, CovertError> {
        if sms == 0 || sms > self.spec.num_sms {
            return Err(CovertError::Config {
                reason: format!("device has {} SMs", self.spec.num_sms),
            });
        }
        self.parallel_sms = sms;
        Ok(self)
    }

    /// The device this channel targets.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Bits per kernel-pair launch.
    pub fn bits_per_round(&self) -> usize {
        (self.spec.sm.num_warp_schedulers * self.parallel_sms) as usize
    }

    fn warps(&self) -> u32 {
        sfu_warps_per_block(self.spec.architecture)
    }

    /// Spy program: lane warps (one per scheduler) time bursts; background
    /// warps apply steady load; inactive blocks exit.
    fn spy_program(&self) -> gpgpu_isa::Program {
        let nsched = u64::from(self.spec.sm.num_warp_schedulers);
        let (ops, iters) = (self.ops_per_iter, self.iterations);
        let mut b = ProgramBuilder::new();
        b.read_special(Reg(29), Special::BlockId);
        let active = b.label();
        b.branch(Cond::Lt, Reg(29), Operand::Imm(u64::from(self.parallel_sms)), active);
        b.halt();
        b.bind(active);
        b.read_special(Reg(29), Special::WarpIdInBlock);
        let lane = b.label();
        b.branch(Cond::Lt, Reg(29), Operand::Imm(nsched), lane);
        // Background warps: steady untimed load, slightly longer than the
        // lanes' measurement window.
        b.repeat(Reg(20), iters * 3 / 2, |b| {
            for _ in 0..ops {
                b.fu(FuOpKind::SpSinf);
            }
        });
        b.halt();
        // Lane warps: timed bursts.
        b.bind(lane);
        b.repeat(Reg(20), iters, |b| {
            emit_timed_fu_burst(b, FuOpKind::SpSinf, ops, Reg(21));
            b.push_result(Reg(21));
        });
        b.halt();
        b.build().expect("spy program assembles")
    }

    /// Trojan program for one round: lane warp `s` of block `b` works iff
    /// its bit is 1; background warps always work.
    fn trojan_program(&self, round_bits: &[bool]) -> gpgpu_isa::Program {
        let nsched = self.spec.sm.num_warp_schedulers as usize;
        let (ops, iters) = (self.ops_per_iter, self.iterations);
        let mut b = ProgramBuilder::new();
        let labels = emit_block_dispatch(&mut b, self.spec.num_sms);
        for (blk, l) in labels.into_iter().enumerate() {
            b.bind(l);
            if blk >= self.parallel_sms as usize {
                b.halt();
                continue;
            }
            b.read_special(Reg(29), Special::WarpIdInBlock);
            let mut lane_labels = Vec::new();
            for s in 0..nsched {
                let ll = b.label();
                b.branch(Cond::Eq, Reg(29), Operand::Imm(s as u64), ll);
                lane_labels.push(ll);
            }
            // Background warps.
            b.repeat(Reg(20), iters * 2, |b| {
                for _ in 0..ops {
                    b.fu(FuOpKind::SpSinf);
                }
            });
            b.halt();
            for (s, ll) in lane_labels.into_iter().enumerate() {
                b.bind(ll);
                let bit = round_bits.get(blk * nsched + s).copied().unwrap_or(false);
                if bit {
                    b.repeat(Reg(20), iters * 2, |b| {
                        for _ in 0..ops {
                            b.fu(FuOpKind::SpSinf);
                        }
                    });
                } else {
                    emit_idle_spin(&mut b, iters * ops / 2, Reg(20));
                }
                b.halt();
            }
        }
        b.build().expect("trojan program assembles")
    }

    /// Transmits `msg`: `bits_per_round` bits per kernel-pair launch.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn transmit(&self, msg: &Message) -> Result<ChannelOutcome, CovertError> {
        let nsched = self.spec.sm.num_warp_schedulers as usize;
        let per_round = self.bits_per_round();
        let warps = self.warps();
        let per_sched = u64::from(warps / self.spec.sm.num_warp_schedulers);
        // Spy contributes `per_sched` warps per scheduler; the trojan
        // contributes `per_sched` with the lane active, `per_sched - 1`
        // without.
        let hot = sfu_latency(&self.spec, 2 * per_sched);
        let cold = sfu_latency(&self.spec, 2 * per_sched - 1);
        let threshold = self.ops_per_iter * (hot + cold) / 2;
        let min_hot = ((self.iterations as usize) / 4).max(2);

        let launch = LaunchConfig::new(self.spec.num_sms, warps * 32);
        let mut dev = Device::with_tuning(self.spec.clone(), self.tuning);
        let mut received = vec![false; msg.len()];
        let mut idx = 0;
        while idx < msg.len() {
            let round: Vec<bool> =
                (0..per_round).map(|i| msg.bits().get(idx + i).copied().unwrap_or(false)).collect();
            let spy = dev.launch(0, KernelSpec::new("spy", self.spy_program(), launch))?;
            dev.launch(1, KernelSpec::new("trojan", self.trojan_program(&round), launch))?;
            dev.run_until_idle(200_000_000)?;
            let r = dev.results(spy)?;
            for blk in 0..self.parallel_sms {
                for s in 0..nsched {
                    let i = blk as usize * nsched + s;
                    if idx + i >= msg.len() {
                        continue;
                    }
                    let samples =
                        r.warp_results(blk, s as u32).ok_or(CovertError::ProtocolDesync {
                            expected: self.iterations as usize,
                            got: 0,
                        })?;
                    received[idx + i] =
                        samples.iter().filter(|&&l| l > threshold).count() >= min_hot;
                }
            }
            idx += per_round;
        }
        let cycles = dev.now().max(1);
        Ok(ChannelOutcome::from_run(&self.spec, msg.clone(), Message::from_bits(received), cycles)
            .with_stats(*dev.stats()))
    }
}

/// The Section-7 multi-resource channel: each round carries one bit through
/// the L1 constant cache and one through the SFUs, simultaneously.
#[derive(Debug, Clone)]
pub struct CombinedChannel {
    spec: DeviceSpec,
    /// Prime/probe and burst iterations per round.
    pub iterations: u64,
    /// `__sinf` ops per timed burst.
    pub ops_per_iter: u64,
}

impl CombinedChannel {
    /// A combined L1+SFU channel with default parameters.
    pub fn new(spec: DeviceSpec) -> Self {
        CombinedChannel { spec, iterations: 12, ops_per_iter: 96 }
    }

    /// The device this channel targets.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Transmits `msg` two bits per kernel-pair launch (cache bit first).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn transmit(&self, msg: &Message) -> Result<ChannelOutcome, CovertError> {
        let g = self.spec.const_l1.geometry;
        let spy_set = SetRef::new(&g, 0, 0);
        let trojan_set = SetRef::new(&g, g.same_set_stride() * g.ways(), 0);
        let cache_thr =
            miss_threshold(self.spec.const_l1.hit_latency, self.spec.const_l2.hit_latency);
        let fu_warps = u64::from(sfu_warps_per_block(self.spec.architecture));
        let nsched = u64::from(self.spec.sm.num_warp_schedulers);
        let per_sched = fu_warps / nsched;
        let hot = sfu_latency(&self.spec, 2 * per_sched);
        let cold = sfu_latency(&self.spec, per_sched);
        let fu_thr = self.ops_per_iter * (hot + cold) / 2;
        let (iters, ops) = (self.iterations, self.ops_per_iter);
        let min_hot = ((iters as usize) / 4).max(2);

        // Warp 0: cache lane. Warps 1..=fu_warps: SFU lanes (warp 1 timed).
        let spy_prog = {
            let mut b = ProgramBuilder::new();
            b.read_special(Reg(29), Special::WarpIdInBlock);
            let cache = b.label();
            b.branch(Cond::Eq, Reg(29), Operand::Imm(0), cache);
            b.repeat(Reg(20), iters, |b| {
                emit_timed_fu_burst(b, FuOpKind::SpSinf, ops, Reg(21));
                b.push_result(Reg(21));
            });
            b.halt();
            b.bind(cache);
            emit_fill(&mut b, &spy_set);
            b.repeat(Reg(20), iters, |b| {
                emit_probe_count_misses(b, &spy_set, cache_thr, Reg(21));
                b.push_result(Reg(21));
            });
            b.halt();
            b.build().expect("spy assembles")
        };
        let trojan_prog = |cache_bit: bool, fu_bit: bool| {
            let mut b = ProgramBuilder::new();
            b.read_special(Reg(29), Special::WarpIdInBlock);
            let cache = b.label();
            b.branch(Cond::Eq, Reg(29), Operand::Imm(0), cache);
            if fu_bit {
                b.repeat(Reg(20), iters * 3 / 2, |b| {
                    for _ in 0..ops {
                        b.fu(FuOpKind::SpSinf);
                    }
                });
            } else {
                emit_idle_spin(&mut b, iters * ops / 2, Reg(20));
            }
            b.halt();
            b.bind(cache);
            if cache_bit {
                b.repeat(Reg(20), iters * 2, |b| {
                    emit_fill(b, &trojan_set);
                });
            } else {
                emit_idle_spin(&mut b, iters * 16, Reg(20));
            }
            b.halt();
            b.build().expect("trojan assembles")
        };

        let launch = LaunchConfig::new(self.spec.num_sms, (1 + fu_warps as u32) * 32);
        let mut dev = Device::new(self.spec.clone());
        dev.alloc_constant(g.size_bytes());
        dev.alloc_constant(g.size_bytes());
        let mut received = vec![false; msg.len()];
        let mut idx = 0;
        while idx < msg.len() {
            let cache_bit = msg.bits()[idx];
            let fu_bit = msg.bits().get(idx + 1).copied().unwrap_or(false);
            let spy = dev.launch(0, KernelSpec::new("spy", spy_prog.clone(), launch))?;
            dev.launch(1, KernelSpec::new("trojan", trojan_prog(cache_bit, fu_bit), launch))?;
            dev.run_until_idle(200_000_000)?;
            let r = dev.results(spy)?;
            let cache_samples = r.warp_results(0, 0).unwrap_or(&[]);
            received[idx] = cache_samples.iter().filter(|&&c| c > 0).count() >= min_hot;
            if idx + 1 < msg.len() {
                let fu_samples = r.warp_results(0, 1).unwrap_or(&[]);
                received[idx + 1] = fu_samples.iter().filter(|&&l| l > fu_thr).count() >= min_hot;
            }
            idx += 2;
        }
        let cycles = dev.now().max(1);
        Ok(ChannelOutcome::from_run(&self.spec, msg.clone(), Message::from_bits(received), cycles)
            .with_stats(*dev.stats()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_spec::presets;

    #[test]
    fn parallel_sfu_single_sm_round_trip() {
        let ch = ParallelSfuChannel::new(presets::tesla_k40c());
        assert_eq!(ch.bits_per_round(), 4);
        let msg = Message::pseudo_random(8, 21);
        let o = ch.transmit(&msg).unwrap();
        assert_eq!(o.received, msg, "got {} want {}", o.received, o.sent);
    }

    #[test]
    fn parallel_sfu_multi_sm_scales_bandwidth() {
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(60, 31);
        let one = ParallelSfuChannel::new(spec.clone()).transmit(&msg).unwrap();
        let many =
            ParallelSfuChannel::new(spec).with_parallel_sms(15).unwrap().transmit(&msg).unwrap();
        assert!(many.is_error_free(), "multi-SM BER {}", many.ber);
        assert!(
            many.bandwidth_kbps > 5.0 * one.bandwidth_kbps,
            "expected ~15x scaling: {} vs {}",
            many.bandwidth_kbps,
            one.bandwidth_kbps
        );
    }

    #[test]
    fn combined_channel_round_trip() {
        let ch = CombinedChannel::new(presets::tesla_k40c());
        let msg = Message::pseudo_random(12, 77);
        let o = ch.transmit(&msg).unwrap();
        assert_eq!(o.received, msg, "got {} want {}", o.received, o.sent);
    }

    #[test]
    fn parallel_sms_bounds_checked() {
        let ch = ParallelSfuChannel::new(presets::tesla_k40c());
        assert!(ch.clone().with_parallel_sms(16).is_err());
        assert!(ch.with_parallel_sms(15).is_ok());
    }
}
