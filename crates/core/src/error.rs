//! Error type for the covert-channel library.

use gpgpu_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by channel construction and transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CovertError {
    /// The underlying simulator rejected or failed a run.
    Sim(SimError),
    /// A channel was configured inconsistently (e.g. more parallel bit lanes
    /// than the resource has isolated domains).
    Config {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A protocol run produced fewer received values than expected — the
    /// kernels lost synchronization beyond what the timeout logic recovered.
    ProtocolDesync {
        /// Bits expected.
        expected: usize,
        /// Bits actually recovered.
        got: usize,
    },
}

impl fmt::Display for CovertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CovertError::Sim(e) => write!(f, "simulator error: {e}"),
            CovertError::Config { reason } => write!(f, "channel misconfigured: {reason}"),
            CovertError::ProtocolDesync { expected, got } => {
                write!(f, "protocol desynchronized: expected {expected} bits, got {got}")
            }
        }
    }
}

impl Error for CovertError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CovertError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CovertError {
    fn from(e: SimError) -> Self {
        CovertError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CovertError::Config { reason: "x".into() };
        assert!(e.to_string().contains("misconfigured"));
        assert!(e.source().is_none());
        let e = CovertError::Sim(SimError::SchedulerStuck);
        assert!(e.source().is_some());
    }
}
