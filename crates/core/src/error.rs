//! Error type for the covert-channel library.

use gpgpu_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by channel construction and transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CovertError {
    /// The underlying simulator rejected or failed a run.
    Sim(SimError),
    /// A channel was configured inconsistently (e.g. more parallel bit lanes
    /// than the resource has isolated domains).
    Config {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A protocol run produced fewer received values than expected — the
    /// kernels lost synchronization beyond what the timeout logic recovered.
    ProtocolDesync {
        /// Bits expected.
        expected: usize,
        /// Bits actually recovered.
        got: usize,
    },
    /// A kernel completed without the result buffer the decoder needed —
    /// distinct from [`CovertError::ProtocolDesync`], which is about bit
    /// misalignment between kernels that *did* report.
    MissingWarpResults {
        /// Name of the kernel whose results were expected.
        kernel: String,
        /// Block index the decoder read.
        block: u32,
        /// Warp-in-block index the decoder read.
        warp: u32,
    },
    /// A transmission reported zero elapsed cycles — the device never
    /// advanced, so bandwidth is undefined. Previously masked by clamping
    /// to one cycle, which produced an absurd bandwidth with a plausible
    /// BER.
    ZeroCycleTransmission,
    /// A decode threshold was degenerate — e.g. `min_hot == 0`, under which
    /// *every* bit decodes as 1 regardless of the observed samples, silently
    /// reporting a dead channel as a perfect one.
    InvalidThreshold {
        /// Human-readable description of the degenerate parameter.
        what: String,
    },
}

impl fmt::Display for CovertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CovertError::Sim(e) => write!(f, "simulator error: {e}"),
            CovertError::Config { reason } => write!(f, "channel misconfigured: {reason}"),
            CovertError::ProtocolDesync { expected, got } => {
                write!(f, "protocol desynchronized: expected {expected} bits, got {got}")
            }
            CovertError::MissingWarpResults { kernel, block, warp } => {
                write!(f, "kernel `{kernel}` produced no results for block {block} warp {warp}")
            }
            CovertError::ZeroCycleTransmission => {
                write!(f, "transmission consumed zero cycles; bandwidth is undefined")
            }
            CovertError::InvalidThreshold { what } => {
                write!(f, "degenerate decode threshold: {what}")
            }
        }
    }
}

impl Error for CovertError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CovertError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CovertError {
    fn from(e: SimError) -> Self {
        CovertError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CovertError::Config { reason: "x".into() };
        assert!(e.to_string().contains("misconfigured"));
        assert!(e.source().is_none());
        let e = CovertError::Sim(SimError::SchedulerStuck);
        assert!(e.source().is_some());
    }

    #[test]
    fn new_variants_display_their_context() {
        let e = CovertError::MissingWarpResults { kernel: "spy".into(), block: 3, warp: 1 };
        let s = e.to_string();
        assert!(s.contains("spy") && s.contains("block 3") && s.contains("warp 1"), "{s}");
        assert!(e.source().is_none());
        let e = CovertError::ZeroCycleTransmission;
        assert!(e.to_string().contains("zero cycles"));
        let e = CovertError::InvalidThreshold { what: "min_hot == 0".into() };
        assert!(e.to_string().contains("min_hot == 0"));
    }
}
