//! Online decode-threshold calibration via a pilot-symbol handshake.
//!
//! The static decode thresholds derived from [`gpgpu_spec::DeviceSpec`]
//! latencies (`miss_threshold`, `burst_threshold`) are the first casualty of
//! a co-runner: noise workloads and fault storms shift both the idle and the
//! contended sample distributions, and a receiver that keeps decoding
//! against the spec-derived midpoint silently accumulates bit errors. The
//! paper's channels stay error-free under noise only because the attacker
//! hand-tunes placement and timing (§8); a real receiver calibrates online.
//!
//! The handshake is deliberately simple and fully deterministic: the sender
//! transmits a *known* pilot sequence (see [`pilot_pattern`]), the receiver
//! records the raw evidence samples behind every pilot bit, and
//! [`Calibration::fit`] picks the `(threshold, min_hot)` pair that maximizes
//! the decision margin between the 0-bit ("idle") and 1-bit ("contended")
//! sample distributions. The fitted decision rule is the same shape every
//! channel family already uses — *a bit is 1 when at least `min_hot` samples
//! are at or above `threshold`* — so a calibration can drive the cache
//! channels (samples = per-iteration miss counts), the SFU channel (samples
//! = burst latencies) and the synchronized channel (samples = per-window
//! probe miss counts) without per-family decode code.
//!
//! When no pilot has been run (or the link layer falls back after a failed
//! fit), [`Calibration::from_spec`] wraps the static spec-derived values so
//! the rest of the stack is agnostic to where its thresholds came from.

use crate::CovertError;

/// Summary statistics of one fitted sample distribution (idle or contended).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Population standard deviation of the samples.
    pub std: f64,
    /// Smallest observed sample.
    pub min: u64,
    /// Largest observed sample.
    pub max: u64,
    /// Number of samples summarized.
    pub count: usize,
}

impl LatencySummary {
    /// Summarizes a sample set; an empty set yields an all-zero summary.
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return LatencySummary { mean: 0.0, std: 0.0, min: 0, max: 0, count: 0 };
        }
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / n;
        let var = samples.iter().map(|&s| (s as f64 - mean).powi(2)).sum::<f64>() / n;
        LatencySummary {
            mean,
            std: var.sqrt(),
            min: *samples.iter().min().expect("non-empty"),
            max: *samples.iter().max().expect("non-empty"),
            count: samples.len(),
        }
    }
}

/// Where a [`Calibration`]'s decision rule came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationSource {
    /// Static fallback derived from `DeviceSpec` timing — the initial guess
    /// every channel starts from.
    Spec,
    /// Fitted online from a pilot transmission of `pilot_bits` known bits.
    Pilot {
        /// Length of the pilot sequence the fit observed.
        pilot_bits: usize,
    },
}

/// A decode decision rule: *bit = 1 iff at least `min_hot` samples are
/// `>= threshold`*, plus the fitted distribution evidence behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Per-sample decision threshold (inclusive: a sample is "hot" when it
    /// is at or above this value).
    pub threshold: u64,
    /// Minimum number of hot samples for a bit to decode as 1. Never zero —
    /// [`Calibration::fit`] and the decode guard both reject the degenerate
    /// rule under which every bit reads as 1.
    pub min_hot: usize,
    /// Decision margin at the chosen threshold: the fewest hot samples any
    /// pilot 1-bit produced minus the most any pilot 0-bit produced.
    /// Positive means the pilot distributions were perfectly separable.
    pub margin: i64,
    /// Distribution of samples observed behind pilot 0-bits.
    pub idle: LatencySummary,
    /// Distribution of samples observed behind pilot 1-bits.
    pub contended: LatencySummary,
    /// Provenance of the rule.
    pub source: CalibrationSource,
}

impl Calibration {
    /// Wraps static spec-derived decode parameters as a calibration, so the
    /// decode path is agnostic to whether a pilot ran. Note the threshold is
    /// *inclusive* — callers converting a strict `sample > t` rule pass
    /// `t + 1`.
    pub fn from_spec(threshold: u64, min_hot: usize) -> Self {
        Calibration {
            threshold,
            min_hot: min_hot.max(1),
            margin: 0,
            idle: LatencySummary::from_samples(&[]),
            contended: LatencySummary::from_samples(&[]),
            source: CalibrationSource::Spec,
        }
    }

    /// Fits a decision rule from a pilot transmission: `pilot[i]` is the
    /// known value of bit `i`, `per_bit_samples[i]` the raw evidence samples
    /// the receiver observed for it. Scans every observed sample value as a
    /// candidate threshold and keeps the one maximizing the margin between
    /// the fewest hot samples on any 1-bit and the most on any 0-bit (ties
    /// broken toward the idle/contended mean midpoint, then toward the lower
    /// threshold — fully deterministic).
    ///
    /// # Errors
    ///
    /// [`CovertError::Config`] when the pilot is malformed (length mismatch,
    /// missing bit value, no samples) or when no threshold separates the
    /// distributions — the caller should escalate (stretch symbol time or
    /// fall back to another channel family) rather than decode blind.
    pub fn fit(pilot: &[bool], per_bit_samples: &[Vec<u64>]) -> Result<Self, CovertError> {
        if pilot.len() != per_bit_samples.len() {
            return Err(CovertError::Config {
                reason: format!(
                    "pilot length {} != sample groups {}",
                    pilot.len(),
                    per_bit_samples.len()
                ),
            });
        }
        let zeros: Vec<&Vec<u64>> =
            pilot.iter().zip(per_bit_samples).filter(|(&b, _)| !b).map(|(_, s)| s).collect();
        let ones: Vec<&Vec<u64>> =
            pilot.iter().zip(per_bit_samples).filter(|(&b, _)| b).map(|(_, s)| s).collect();
        if zeros.is_empty() || ones.is_empty() {
            return Err(CovertError::Config {
                reason: "pilot sequence must contain both bit values".into(),
            });
        }
        let idle_all: Vec<u64> = zeros.iter().flat_map(|s| s.iter().copied()).collect();
        let cont_all: Vec<u64> = ones.iter().flat_map(|s| s.iter().copied()).collect();
        if cont_all.is_empty() {
            return Err(CovertError::Config { reason: "pilot 1-bits produced no samples".into() });
        }
        let idle = LatencySummary::from_samples(&idle_all);
        let contended = LatencySummary::from_samples(&cont_all);

        // The decode rule is `sample >= threshold`, so only observed values
        // can change a decision; scan them all.
        let mut candidates: Vec<u64> = idle_all.iter().chain(cont_all.iter()).copied().collect();
        candidates.sort_unstable();
        candidates.dedup();
        let midpoint = (idle.mean + contended.mean) / 2.0;
        let hot = |s: &Vec<u64>, t: u64| s.iter().filter(|&&v| v >= t).count();
        let mut best: Option<(i64, f64, u64, usize, usize)> = None;
        for &t in &candidates {
            let h0_max = zeros.iter().map(|s| hot(s, t)).max().unwrap_or(0);
            let h1_min = ones.iter().map(|s| hot(s, t)).min().unwrap_or(0);
            let margin = h1_min as i64 - h0_max as i64;
            let dist = (t as f64 - midpoint).abs();
            let better = match &best {
                None => true,
                Some((bm, bd, ..)) => margin > *bm || (margin == *bm && dist < *bd),
            };
            if better {
                best = Some((margin, dist, t, h0_max, h1_min));
            }
        }
        let (margin, _, threshold, h0_max, h1_min) =
            best.expect("candidate set is non-empty when samples exist");
        if margin <= 0 {
            return Err(CovertError::Config {
                reason: format!(
                    "pilot distributions are inseparable (idle mean {:.1}, contended mean {:.1}, \
                     best margin {margin} at threshold {threshold})",
                    idle.mean, contended.mean
                ),
            });
        }
        // Split the evidence gap down the middle: tolerate (h1_min -
        // min_hot) lost hot samples on a 1 and (min_hot - 1 - h0_max) spurious
        // ones on a 0 before a bit flips.
        let min_hot = (h0_max + h1_min).div_ceil(2).max(1);
        Ok(Calibration {
            threshold,
            min_hot,
            margin,
            idle,
            contended,
            source: CalibrationSource::Pilot { pilot_bits: pilot.len() },
        })
    }

    /// Decodes one bit: 1 iff at least `min_hot` samples are `>= threshold`.
    ///
    /// # Errors
    ///
    /// [`CovertError::InvalidThreshold`] if the rule is degenerate
    /// (`min_hot == 0`) — possible only for a hand-built value, never for a
    /// fitted or [`Calibration::from_spec`] one.
    pub fn decode(&self, samples: &[u64]) -> Result<bool, CovertError> {
        if self.min_hot == 0 {
            return Err(CovertError::InvalidThreshold {
                what: "min_hot == 0 decodes every bit as 1".into(),
            });
        }
        Ok(samples.iter().filter(|&&s| s >= self.threshold).count() >= self.min_hot)
    }

    /// Whether this rule was fitted from a pilot that perfectly separated
    /// the idle and contended distributions.
    pub fn converged(&self) -> bool {
        matches!(self.source, CalibrationSource::Pilot { .. }) && self.margin > 0
    }

    /// Normalized distance between the fitted distributions (mean gap over
    /// pooled spread); larger is a healthier link. Zero for spec fallbacks.
    pub fn separation(&self) -> f64 {
        if self.idle.count == 0 || self.contended.count == 0 {
            return 0.0;
        }
        (self.contended.mean - self.idle.mean) / (self.idle.std + self.contended.std + 1.0)
    }
}

/// The deterministic pilot bit sequence both ends agree on: alternating
/// `0, 1, 0, 1, ...`, guaranteeing both distributions get `len / 2` bits of
/// evidence. Lengths below 4 are clamped up so a fit always has at least two
/// bits per value.
pub fn pilot_pattern(len: usize) -> Vec<bool> {
    (0..len.max(4)).map(|i| i % 2 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pilot_pattern_alternates_and_clamps() {
        assert_eq!(pilot_pattern(1).len(), 4);
        let p = pilot_pattern(6);
        assert_eq!(p, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn summary_statistics() {
        let s = LatencySummary::from_samples(&[2, 4, 6]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert_eq!((s.min, s.max, s.count), (2, 6, 3));
        let empty = LatencySummary::from_samples(&[]);
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn fit_separates_clean_distributions() {
        // 0-bits hover near 50, 1-bits near 200: any threshold in between
        // separates with full margin.
        let pilot = pilot_pattern(8);
        let samples: Vec<Vec<u64>> = pilot
            .iter()
            .map(|&b| if b { vec![190, 210, 200, 205] } else { vec![48, 52, 50, 49] })
            .collect();
        let c = Calibration::fit(&pilot, &samples).unwrap();
        assert!(c.converged());
        assert!(c.threshold > 52 && c.threshold <= 190, "threshold {}", c.threshold);
        assert_eq!(c.margin, 4);
        assert_eq!(c.min_hot, 2, "gap split down the middle");
        assert!(c.separation() > 10.0);
        assert!(c.decode(&[195, 200, 60, 55]).unwrap());
        assert!(!c.decode(&[60, 55, 49, 195]).unwrap());
    }

    #[test]
    fn fit_tolerates_noisy_zero_bits() {
        // Noise pushes one sample per 0-bit into the contended band; the
        // fitted min_hot absorbs it instead of the threshold climbing past
        // the contended mean.
        let pilot = pilot_pattern(8);
        let samples: Vec<Vec<u64>> = pilot
            .iter()
            .map(|&b| if b { vec![200, 195, 205, 198] } else { vec![50, 201, 49, 51] })
            .collect();
        let c = Calibration::fit(&pilot, &samples).unwrap();
        assert!(c.converged());
        assert!(c.min_hot >= 2, "one spurious hot sample must not read as a 1");
        assert!(!c.decode(&[50, 201, 49, 51]).unwrap());
        assert!(c.decode(&[200, 195, 205, 198]).unwrap());
    }

    #[test]
    fn fit_rejects_inseparable_distributions() {
        let pilot = pilot_pattern(4);
        let samples: Vec<Vec<u64>> = pilot.iter().map(|_| vec![100, 101, 99]).collect();
        let e = Calibration::fit(&pilot, &samples).unwrap_err();
        assert!(matches!(e, CovertError::Config { .. }), "{e:?}");
        assert!(e.to_string().contains("inseparable"), "{e}");
    }

    #[test]
    fn fit_rejects_malformed_pilots() {
        let e = Calibration::fit(&[true, false], &[vec![1]]).unwrap_err();
        assert!(matches!(e, CovertError::Config { .. }));
        let e = Calibration::fit(&[true, true], &[vec![1], vec![2]]).unwrap_err();
        assert!(e.to_string().contains("both bit values"), "{e}");
    }

    #[test]
    fn spec_fallback_reproduces_static_rules() {
        // Sync-channel static rule: any window with >= 2 probe misses.
        let c = Calibration::from_spec(2, 1);
        assert!(!c.converged());
        assert_eq!(c.separation(), 0.0);
        assert!(c.decode(&[0, 0, 2, 0]).unwrap());
        assert!(!c.decode(&[0, 1, 1, 0]).unwrap());
        // min_hot is clamped away from the degenerate all-ones rule.
        assert_eq!(Calibration::from_spec(5, 0).min_hot, 1);
    }

    #[test]
    fn decode_guards_degenerate_rule() {
        let mut c = Calibration::from_spec(2, 1);
        c.min_hot = 0;
        let e = c.decode(&[0, 0]).unwrap_err();
        assert!(matches!(e, CovertError::InvalidThreshold { .. }), "{e:?}");
    }
}
