//! Reusable attack-kernel building blocks.
//!
//! Every kernel in the paper is assembled from a handful of primitives:
//! *fill a cache set*, *probe a cache set while timing each line*, *spin
//! until a set shows misses*, *burst N functional-unit ops under a timer*.
//! This module emits those primitives into a [`ProgramBuilder`].
//!
//! # Register conventions
//!
//! The emitters clobber the low scratch registers [`R_ADDR`], [`R_T0`],
//! [`R_T1`] and [`R_LAT`]. Callers keep their own state (loop counters,
//! accumulators) in registers `r16` and above.

use gpgpu_isa::{Cond, Label, Operand, ProgramBuilder, Reg};
use gpgpu_spec::{CacheGeometry, FuOpKind};

/// Scratch: current load address.
pub const R_ADDR: Reg = Reg(0);
/// Scratch: timer start.
pub const R_T0: Reg = Reg(1);
/// Scratch: timer end.
pub const R_T1: Reg = Reg(2);
/// Scratch: last measured latency.
pub const R_LAT: Reg = Reg(3);
/// Scratch: miss counter used by [`emit_spin_wait`] (distinct from
/// [`R_LAT`], which the probe emitter clobbers per line).
pub const R_MISSES: Reg = Reg(4);

/// The addresses of one cache set as seen from one party's array.
///
/// `addr(k) = base + set_index * line + k * same_set_stride` for
/// `k in 0..ways`: exactly the paper's trick of loading "with a stride of
/// 512 bytes to make the accesses hash into the same set" (Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetRef {
    /// Base address of the party's array (way-span aligned).
    pub base: u64,
    /// Which set of the cache is targeted.
    pub set_index: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Stride between consecutive same-set addresses.
    pub stride: u64,
    /// Number of ways (= number of addresses needed to fill the set).
    pub ways: u64,
}

impl SetRef {
    /// Builds the reference for `set_index` of a cache with `geometry`,
    /// using the party's array at `base`.
    pub fn new(geometry: &CacheGeometry, base: u64, set_index: u64) -> Self {
        SetRef {
            base,
            set_index: set_index % geometry.num_sets(),
            line_bytes: geometry.line_bytes(),
            stride: geometry.same_set_stride(),
            ways: geometry.ways(),
        }
    }

    /// The `k`-th same-set address.
    pub fn addr(&self, k: u64) -> u64 {
        self.base + self.set_index * self.line_bytes + k * self.stride
    }
}

/// Emits an untimed fill of every way of `set` (the *prime* primitive; also
/// the signalling primitive of the synchronized protocol).
pub fn emit_fill(b: &mut ProgramBuilder, set: &SetRef) {
    for k in 0..set.ways {
        b.mov_imm(R_ADDR, set.addr(k));
        b.const_load(R_ADDR);
    }
}

/// Emits a probe of every way of `set`, counting into `dst_misses` how many
/// lines exceeded `miss_threshold` cycles (the *probe* primitive).
/// `dst_misses` is zeroed first.
pub fn emit_probe_count_misses(
    b: &mut ProgramBuilder,
    set: &SetRef,
    miss_threshold: u64,
    dst_misses: Reg,
) {
    b.mov_imm(dst_misses, 0);
    for k in 0..set.ways {
        b.mov_imm(R_ADDR, set.addr(k));
        b.read_clock(R_T0);
        b.const_load(R_ADDR);
        b.read_clock(R_T1);
        b.sub(R_LAT, R_T1, R_T0);
        let hit = b.label();
        b.branch(Cond::Lt, R_LAT, Operand::Imm(miss_threshold), hit);
        b.add_imm(dst_misses, dst_misses, 1);
        b.bind(hit);
    }
}

/// Emits a timed probe of every way of `set`, accumulating total latency
/// into `dst_total` (zeroed first). Used by the characterization benches
/// where the raw latency, not a hit/miss verdict, is the datum.
pub fn emit_probe_total_latency(b: &mut ProgramBuilder, set: &SetRef, dst_total: Reg) {
    b.mov_imm(dst_total, 0);
    for k in 0..set.ways {
        b.mov_imm(R_ADDR, set.addr(k));
        b.read_clock(R_T0);
        b.const_load(R_ADDR);
        b.read_clock(R_T1);
        b.sub(R_LAT, R_T1, R_T0);
        b.add(dst_total, dst_total, R_LAT);
    }
}

/// Emits a bounded spin-wait on `set`: probes repeatedly until at least one
/// way misses (someone filled the set) or `max_iters` probes elapse.
/// `dst_got` ends as 1 on signal, 0 on timeout. `counter` is clobbered.
///
/// This is the `wait(S)` primitive of the paper's Figure-11 protocol, with
/// the timeout bound the paper adds to break deadlocks.
pub fn emit_spin_wait(
    b: &mut ProgramBuilder,
    set: &SetRef,
    miss_threshold: u64,
    max_iters: u64,
    counter: Reg,
    dst_got: Reg,
) {
    b.mov_imm(dst_got, 0);
    b.mov_imm(counter, max_iters.max(1));
    let top = b.label();
    let done = b.label();
    b.bind(top);
    emit_probe_count_misses(b, set, miss_threshold, R_MISSES);
    let no_signal = b.label();
    b.branch(Cond::Eq, R_MISSES, Operand::Imm(0), no_signal);
    b.mov_imm(dst_got, 1);
    b.jump(done);
    b.bind(no_signal);
    b.add_imm(counter, counter, u64::MAX);
    b.branch(Cond::Ne, counter, Operand::Imm(0), top);
    b.bind(done);
    // Drain: the signaller's fill may still be in flight when the first
    // miss is observed; keep probing until a clean all-hit pass so leftover
    // evictions cannot masquerade as the *next* signal. Bounded to stay
    // deadlock-free under interfering workloads.
    b.mov_imm(counter, 16);
    let drain_top = b.label();
    let drain_done = b.label();
    b.bind(drain_top);
    emit_probe_count_misses(b, set, miss_threshold, R_MISSES);
    b.branch(Cond::Eq, R_MISSES, Operand::Imm(0), drain_done);
    b.add_imm(counter, counter, u64::MAX);
    b.branch(Cond::Ne, counter, Operand::Imm(0), drain_top);
    b.bind(drain_done);
}

/// Emits `n_ops` back-to-back functional-unit operations bracketed by clock
/// reads; `dst_total` receives the elapsed cycles. The paper's spy measures
/// the per-op average of exactly such a burst (Section 5.2).
pub fn emit_timed_fu_burst(b: &mut ProgramBuilder, op: FuOpKind, n_ops: u64, dst_total: Reg) {
    b.read_clock(R_T0);
    for _ in 0..n_ops {
        b.fu(op);
    }
    b.read_clock(R_T1);
    b.sub(dst_total, R_T1, R_T0);
}

/// Emits a busy-wait of roughly `iterations` cheap ALU iterations that
/// touches no shared resource — the trojan's "do nothing" arm when
/// transmitting a 0, kept busy so both arms have similar duration.
pub fn emit_idle_spin(b: &mut ProgramBuilder, iterations: u64, counter: Reg) {
    b.mov_imm(counter, iterations.max(1));
    let top = b.label();
    b.bind(top);
    b.add_imm(counter, counter, u64::MAX);
    b.branch(Cond::Ne, counter, Operand::Imm(0), top);
}

/// Emits a dispatch table on `%ctaid`: blocks jump to their own section.
/// Returns one label per block; the caller binds each and terminates each
/// section with `halt`. Blocks beyond `num_blocks` fall through to a halt.
pub fn emit_block_dispatch(b: &mut ProgramBuilder, num_blocks: u32) -> Vec<Label> {
    b.read_special(R_ADDR, gpgpu_isa::Special::BlockId);
    let labels: Vec<Label> = (0..num_blocks).map(|_| b.label()).collect();
    for (i, &l) in labels.iter().enumerate() {
        b.branch(Cond::Eq, R_ADDR, Operand::Imm(i as u64), l);
    }
    b.halt();
    labels
}

/// The per-line miss threshold separating an L1 hit from an L1 miss, given
/// the two plateau latencies: halfway between them.
pub fn miss_threshold(hit_latency: u64, next_level_latency: u64) -> u64 {
    hit_latency + (next_level_latency - hit_latency) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_sim::{Device, KernelSpec};
    use gpgpu_spec::{presets, LaunchConfig};

    fn run_one_warp(program: gpgpu_isa::Program) -> Vec<u64> {
        let mut dev = Device::new(presets::tesla_k40c());
        let k = dev.launch(0, KernelSpec::new("t", program, LaunchConfig::new(1, 32))).unwrap();
        dev.run_until_idle(10_000_000).unwrap();
        dev.results(k).unwrap().flat_results()
    }

    #[test]
    fn set_ref_addresses_hash_to_one_set() {
        let g = CacheGeometry::new(2048, 64, 4).unwrap();
        let s = SetRef::new(&g, 0, 3);
        for k in 0..s.ways {
            assert_eq!(g.set_of_addr(s.addr(k)), 3);
        }
        // Distinct lines.
        let lines: std::collections::BTreeSet<u64> =
            (0..s.ways).map(|k| g.line_of_addr(s.addr(k))).collect();
        assert_eq!(lines.len() as u64, s.ways);
    }

    #[test]
    fn set_ref_wraps_set_index() {
        let g = CacheGeometry::new(2048, 64, 4).unwrap();
        assert_eq!(SetRef::new(&g, 0, 9).set_index, 1);
    }

    #[test]
    fn probe_after_fill_sees_all_hits() {
        let spec = presets::tesla_k40c();
        let g = spec.const_l1.geometry;
        let set = SetRef::new(&g, 0, 0);
        let thr = miss_threshold(spec.const_l1.hit_latency, spec.const_l2.hit_latency);
        let mut b = ProgramBuilder::new();
        emit_fill(&mut b, &set);
        emit_probe_count_misses(&mut b, &set, thr, Reg(20));
        b.push_result(Reg(20));
        let r = run_one_warp(b.build().unwrap());
        assert_eq!(r, vec![0], "own fill then probe must be all hits");
    }

    #[test]
    fn probe_cold_sees_all_misses() {
        let spec = presets::tesla_k40c();
        let set = SetRef::new(&spec.const_l1.geometry, 0, 0);
        let thr = miss_threshold(spec.const_l1.hit_latency, spec.const_l2.hit_latency);
        let mut b = ProgramBuilder::new();
        emit_probe_count_misses(&mut b, &set, thr, Reg(20));
        b.push_result(Reg(20));
        let r = run_one_warp(b.build().unwrap());
        assert_eq!(r, vec![4]);
    }

    #[test]
    fn spin_wait_times_out_when_nobody_signals() {
        let spec = presets::tesla_k40c();
        let set = SetRef::new(&spec.const_l1.geometry, 0, 0);
        let thr = miss_threshold(spec.const_l1.hit_latency, spec.const_l2.hit_latency);
        let mut b = ProgramBuilder::new();
        emit_fill(&mut b, &set); // prime so later probes hit
        emit_spin_wait(&mut b, &set, thr, 5, Reg(21), Reg(20));
        b.push_result(Reg(20));
        let r = run_one_warp(b.build().unwrap());
        assert_eq!(r, vec![0], "no signaller -> timeout");
    }

    #[test]
    fn timed_fu_burst_measures_kepler_sinf_base_latency() {
        let mut b = ProgramBuilder::new();
        emit_timed_fu_burst(&mut b, FuOpKind::SpSinf, 16, Reg(20));
        b.push_result(Reg(20));
        let r = run_one_warp(b.build().unwrap());
        let per_op = r[0] as f64 / 16.0;
        // Kepler __sinf base latency is 18 cycles (Figure 6).
        assert!((17.0..=20.0).contains(&per_op), "per-op {per_op}");
    }

    #[test]
    fn block_dispatch_routes_each_block() {
        let mut b = ProgramBuilder::new();
        let labels = emit_block_dispatch(&mut b, 3);
        for (i, l) in labels.into_iter().enumerate() {
            b.bind(l);
            b.mov_imm(Reg(20), 100 + i as u64);
            b.push_result(Reg(20));
            b.halt();
        }
        let mut dev = Device::new(presets::tesla_k40c());
        let k = dev
            .launch(0, KernelSpec::new("d", b.build().unwrap(), LaunchConfig::new(3, 32)))
            .unwrap();
        dev.run_until_idle(1_000_000).unwrap();
        let r = dev.results(k).unwrap();
        for blk in 0..3u32 {
            assert_eq!(r.warp_results(blk, 0).unwrap(), &[100 + u64::from(blk)]);
        }
    }

    #[test]
    fn miss_threshold_is_midpoint() {
        assert_eq!(miss_threshold(49, 112), 49 + 31);
    }

    #[test]
    fn probe_total_latency_matches_hit_plateau() {
        let spec = presets::tesla_k40c();
        let set = SetRef::new(&spec.const_l1.geometry, 0, 0);
        let mut b = ProgramBuilder::new();
        emit_fill(&mut b, &set);
        emit_probe_total_latency(&mut b, &set, Reg(20));
        b.push_result(Reg(20));
        let r = run_one_warp(b.build().unwrap());
        // 4 warm hits at ~49-51 cycles each.
        let total = r[0];
        assert!((4 * 49..=4 * 53).contains(&total), "total {total}");
    }

    #[test]
    fn idle_spin_takes_roughly_two_cycles_per_iteration() {
        let mut b = ProgramBuilder::new();
        let (t0, t1) = (Reg(20), Reg(21));
        b.read_clock(t0);
        emit_idle_spin(&mut b, 100, Reg(22));
        b.read_clock(t1);
        b.sub(t1, t1, t0);
        b.push_result(t1);
        let r = run_one_warp(b.build().unwrap());
        assert!((180..=260).contains(&r[0]), "spin of 100 took {} cycles", r[0]);
    }

    #[test]
    fn fermi_sets_span_the_larger_l1() {
        let spec = presets::tesla_c2075();
        let g = spec.const_l1.geometry;
        assert_eq!(g.num_sets(), 16);
        let s = SetRef::new(&g, 0, 15);
        for k in 0..s.ways {
            assert_eq!(g.set_of_addr(s.addr(k)), 15);
        }
        // Fermi's same-set stride is 1024 (16 sets x 64 B), not 512.
        assert_eq!(s.stride, 1024);
    }

    #[test]
    fn spin_wait_detects_a_prefilled_signal_immediately() {
        // If the set already contains someone else's lines, the first probe
        // misses and the wait returns got=1 without timing out.
        let spec = presets::tesla_k40c();
        let set = SetRef::new(&spec.const_l1.geometry, 0, 0);
        let thr = miss_threshold(spec.const_l1.hit_latency, spec.const_l2.hit_latency);
        let mut b = ProgramBuilder::new();
        // No pre-fill: cold lines look like a signal (compulsory misses).
        emit_spin_wait(&mut b, &set, thr, 50, Reg(21), Reg(20));
        b.push_result(Reg(20));
        let r = run_one_warp(b.build().unwrap());
        assert_eq!(r, vec![1]);
    }
}
