//! Cross-GPU NVLink covert channel over a [`gpgpu_sim::Topology`].
//!
//! The paper's channels live *inside* one GPU: trojan and spy are co-resident
//! kernels modulating contention on a shared on-chip resource. Multi-GPU
//! servers add one more shared resource with exactly the same structure —
//! the inter-device link. NVLink lanes are slot-arbitrated the way FU issue
//! ports are, so a trojan on device 1 issuing bulk peer-to-peer copies makes
//! a spy on device 0 observe longer remote-atomic round trips, and the
//! lane-queueing delay becomes the symbol — the timing channel demonstrated
//! against real NVLink fabrics by the NVBleed work (see `PAPERS.md`).
//!
//! Protocol (per bit, mirroring [`crate::atomic_channel::AtomicChannel`]):
//!
//! * **trojan** (bit = 1): issues one `burst_bytes` p2p copy per link lane at
//!   the top of each probe slot, occupying every lane;
//! * **trojan** (bit = 0): stays off the link;
//! * **spy**: issues `iterations` back-to-back timed remote-atomic probes of
//!   `probe_ops` flits each and compares the observed round-trip latency
//!   against a calibrated threshold ([`NvlinkChannel::calibrate_threshold`],
//!   or an externally fitted [`Calibration`]).
//!
//! Symbols are paced to at least `window_cycles`; stretching the window
//! trades bandwidth for noise immunity exactly like the intra-GPU channels
//! (the `nvlink_bandwidth` bench sweeps this curve). Under a link-congestion
//! fault storm the queue grows without bound and transmission fails with the
//! typed [`gpgpu_sim::SimError::LinkSaturated`] instead of stalling.

use crate::bits::Message;
use crate::calibrate::Calibration;
use crate::channel::{decode_from_latencies, ChannelOutcome};
use crate::CovertError;
use gpgpu_isa::{ProgramBuilder, Reg};
use gpgpu_sim::{DeviceTuning, EventTrace, FaultInjector, FaultPlan, KernelSpec, Topology};
use gpgpu_spec::{LaunchConfig, TopologySpec};

/// Default timed remote-atomic probes per bit.
pub const DEFAULT_ITERATIONS: u64 = 12;

/// Default flits per spy probe (one remote atomic op moves one flit).
pub const DEFAULT_PROBE_OPS: u64 = 4;

/// Default trojan burst size in bytes (per lane, per probe slot).
pub const DEFAULT_BURST_BYTES: u64 = 1024;

/// Default minimum symbol time in cycles.
pub const DEFAULT_WINDOW_CYCLES: u64 = 2048;

/// Default queueing-delay budget before a transfer is declared saturated.
/// A clean contended probe queues for roughly one burst (~hundreds of
/// cycles); only a congestion-fault storm approaches this.
pub const DEFAULT_QUEUE_LIMIT: u64 = 10_000;

/// Cycle budget for the per-device anchor kernels.
const ANCHOR_CYCLE_LIMIT: u64 = 500_000_000;

/// A cross-device covert channel: trojan and spy on the two endpoints of one
/// link, signalling through lane-queueing delay.
#[derive(Debug, Clone)]
pub struct NvlinkChannel {
    topology: TopologySpec,
    link: usize,
    spy_device: usize,
    trojan_device: usize,
    /// Timed probes per bit.
    pub iterations: u64,
    /// Flits per spy probe.
    pub probe_ops: u64,
    /// Trojan burst size in bytes (issued once per lane per probe slot).
    pub burst_bytes: u64,
    /// Minimum symbol time in cycles.
    pub window_cycles: u64,
    /// Queueing-delay budget; transfers queued longer fail with
    /// [`gpgpu_sim::SimError::LinkSaturated`].
    pub queue_limit: u64,
    /// Deterministic fault plan installed on the topology for the run.
    pub fault_plan: Option<FaultPlan>,
    /// Device tuning (engine-mode selection) for the endpoint devices.
    pub tuning: DeviceTuning,
    /// Externally fitted decode calibration; when `None` the channel
    /// self-calibrates on a scratch topology before transmitting.
    pub calibration: Option<Calibration>,
}

impl NvlinkChannel {
    /// A channel over link 0 of `topology`: the spy runs on the link's first
    /// endpoint, the trojan on the second.
    ///
    /// # Errors
    ///
    /// [`CovertError::Config`] when the topology has no links.
    pub fn new(topology: TopologySpec) -> Result<Self, CovertError> {
        Self::on_link(topology, 0)
    }

    /// A channel over link `link` of `topology`.
    ///
    /// # Errors
    ///
    /// [`CovertError::Config`] when `link` is out of range or the topology
    /// fails validation.
    pub fn on_link(topology: TopologySpec, link: usize) -> Result<Self, CovertError> {
        topology
            .validate()
            .map_err(|e| CovertError::Config { reason: format!("invalid topology: {e}") })?;
        let spec = *topology.links.get(link).ok_or_else(|| CovertError::Config {
            reason: format!(
                "nvlink channel needs link {link} but the topology has {}",
                topology.links.len()
            ),
        })?;
        Ok(NvlinkChannel {
            topology,
            link,
            spy_device: spec.a as usize,
            trojan_device: spec.b as usize,
            iterations: DEFAULT_ITERATIONS,
            probe_ops: DEFAULT_PROBE_OPS,
            burst_bytes: DEFAULT_BURST_BYTES,
            window_cycles: DEFAULT_WINDOW_CYCLES,
            queue_limit: DEFAULT_QUEUE_LIMIT,
            fault_plan: None,
            tuning: DeviceTuning::none(),
            calibration: None,
        })
    }

    /// Installs a deterministic fault plan for every transmission.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the probe count per bit.
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Sets the minimum symbol time (the bandwidth/robustness knob).
    pub fn with_window(mut self, cycles: u64) -> Self {
        self.window_cycles = cycles.max(1);
        self
    }

    /// Sets the endpoint devices' tuning (engine-mode selection).
    pub fn with_tuning(mut self, tuning: DeviceTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Uses an externally fitted calibration instead of self-calibrating.
    pub fn with_calibration(mut self, cal: Calibration) -> Self {
        self.calibration = Some(cal);
        self
    }

    /// The topology this channel runs over.
    pub fn topology(&self) -> &TopologySpec {
        &self.topology
    }

    /// The `(spy, trojan)` device indices (the link's two endpoints).
    pub fn endpoints(&self) -> (usize, usize) {
        (self.spy_device, self.trojan_device)
    }

    /// Builds the run topology: endpoint devices with this channel's tuning
    /// and queue limit. Faults are installed separately by
    /// [`NvlinkChannel::transmit_inner`], after the calibration pilot.
    fn build_topology(&self) -> Result<Topology, CovertError> {
        Ok(Topology::with_tuning(&self.topology, self.tuning)?.with_queue_limit(self.queue_limit))
    }

    /// Launches a short idle-spin anchor kernel on both endpoint devices and
    /// runs them to idle: establishes that the parties are resident (and
    /// exercises the per-device cycle engine, which the engine-equivalence
    /// tests lean on). Returns the device clock after the anchors drain.
    fn run_anchors(&self, topo: &mut Topology) -> Result<u64, CovertError> {
        for device in [self.spy_device, self.trojan_device] {
            let mut b = ProgramBuilder::new();
            crate::kernels::emit_idle_spin(&mut b, self.iterations * 4, Reg(20));
            let program = b.build().map_err(|e| CovertError::Config {
                reason: format!("anchor program failed to assemble: {e}"),
            })?;
            let name = if device == self.spy_device { "nvlink-spy" } else { "nvlink-trojan" };
            topo.launch(device, 0, KernelSpec::new(name, program, LaunchConfig::new(1, 32)))?;
        }
        topo.run_all_until_idle(ANCHOR_CYCLE_LIMIT)?;
        Ok(topo.device_now())
    }

    /// Measures one probe batch starting at `now`; with `contended` the
    /// trojan occupies every lane at the top of each slot. Returns the
    /// samples and the cursor after the last probe.
    fn probe_batch(
        &self,
        topo: &mut Topology,
        now: u64,
        contended: bool,
    ) -> Result<(Vec<u64>, u64), CovertError> {
        let lanes = self.topology.links[self.link].lanes;
        let mut samples = Vec::with_capacity(self.iterations as usize);
        let mut t = now;
        for _ in 0..self.iterations {
            if contended {
                for _ in 0..lanes {
                    topo.p2p_copy(self.link, self.trojan_device, self.burst_bytes, t)?;
                }
            }
            let probe = topo.remote_atomic(self.link, self.spy_device, self.probe_ops, t)?;
            samples.push(probe.latency());
            t = probe.end;
        }
        Ok((samples, t))
    }

    /// Calibrates the decode threshold on a scratch clean topology (no
    /// faults) as the midpoint of the idle and contended mean probe
    /// latencies — what a real attacker measures before transmitting.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn calibrate_threshold(&self) -> Result<u64, CovertError> {
        let mut topo = self.build_topology()?;
        self.calibrate_on(&mut topo)
    }

    /// The calibration pilot on an already-built clean topology (which the
    /// caller resets afterwards if it intends to reuse it).
    fn calibrate_on(&self, topo: &mut Topology) -> Result<u64, CovertError> {
        let mean =
            |s: &[u64]| if s.is_empty() { 0 } else { s.iter().sum::<u64>() / s.len() as u64 };
        let start = self.run_anchors(topo)?;
        let (idle, after_idle) = self.probe_batch(topo, start, false)?;
        // Leave a window of slack so the idle batch cannot shadow the
        // contended one.
        let (hot, _) = self.probe_batch(topo, after_idle + self.window_cycles, true)?;
        Ok((mean(&idle) + mean(&hot)) / 2)
    }

    /// Transmits `msg` across the link.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures; a congestion-saturated link surfaces
    /// as [`CovertError::Sim`] wrapping
    /// [`gpgpu_sim::SimError::LinkSaturated`].
    pub fn transmit(&self, msg: &Message) -> Result<ChannelOutcome, CovertError> {
        Ok(self.transmit_inner(msg, false)?.0)
    }

    /// As [`NvlinkChannel::transmit`], additionally capturing the link
    /// transfer events ([`gpgpu_sim::TraceEvent::LinkTransfer`]) of the run.
    ///
    /// # Errors
    ///
    /// As [`NvlinkChannel::transmit`].
    pub fn transmit_traced(
        &self,
        msg: &Message,
    ) -> Result<(ChannelOutcome, EventTrace), CovertError> {
        let (outcome, trace) = self.transmit_inner(msg, true)?;
        Ok((outcome, trace.expect("tracing was requested")))
    }

    fn transmit_inner(
        &self,
        msg: &Message,
        traced: bool,
    ) -> Result<(ChannelOutcome, Option<EventTrace>), CovertError> {
        // One topology serves both the calibration pilot and the
        // transmission: `reset_for_trial` rewinds it to its just-built
        // state in between, so the transmission is bit-identical to a
        // fresh topology while the endpoint devices' allocations are
        // reused instead of rebuilt.
        let mut topo = self.build_topology()?;
        let cal = match &self.calibration {
            Some(c) => c.clone(),
            None => {
                let threshold = self.calibrate_on(&mut topo)?;
                topo.reset_for_trial();
                let min_hot = ((self.iterations as usize) / 4).max(2).min(self.iterations as usize);
                // `decode_from_latencies` is strictly greater-than; the
                // inclusive calibration rule compensates with +1.
                Calibration::from_spec(threshold + 1, min_hot)
            }
        };
        if let Some(plan) = self.fault_plan {
            topo.set_fault_injector(FaultInjector::new(plan));
        }
        if traced {
            topo.set_trace_sink(Box::new(EventTrace::with_capacity(
                (msg.len() as u64 * self.iterations * 4) as usize,
            )));
        }
        let start = self.run_anchors(&mut topo)?;

        let mut now = start;
        let mut received = Vec::with_capacity(msg.len());
        for &bit in msg.bits() {
            let (samples, end) = self.probe_batch(&mut topo, now, bit)?;
            received.push(decode_from_latencies(
                &samples,
                cal.threshold.saturating_sub(1),
                cal.min_hot,
            )?);
            now = end.max(now + self.window_cycles);
        }
        if now == 0 {
            return Err(CovertError::ZeroCycleTransmission);
        }

        let spy_spec = topo.device(self.spy_device)?.spec().clone();
        let stats = *topo.device(self.spy_device)?.stats();
        let outcome =
            ChannelOutcome::from_run(&spy_spec, msg.clone(), Message::from_bits(received), now)
                .with_stats(stats);
        let trace = topo
            .take_trace_sink()
            .and_then(|s| s.into_any().downcast::<EventTrace>().ok())
            .map(|t| *t);
        Ok((outcome, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_sim::FaultKinds;

    fn channel() -> NvlinkChannel {
        NvlinkChannel::new(TopologySpec::dual("kepler").unwrap()).unwrap()
    }

    #[test]
    fn construction_validates_the_link() {
        let err = NvlinkChannel::on_link(TopologySpec::dual("kepler").unwrap(), 3).unwrap_err();
        assert!(matches!(err, CovertError::Config { .. }), "{err:?}");
        assert_eq!(channel().endpoints(), (0, 1));
    }

    #[test]
    fn calibration_separates_idle_from_contended() {
        let thr = channel().calibrate_threshold().unwrap();
        // Idle probe: service + two traversals; contended adds queueing.
        let idle = DEFAULT_PROBE_OPS * 4 + 2 * 40;
        assert!(thr > idle, "threshold {thr} should exceed the idle latency {idle}");
    }

    #[test]
    fn clean_dual_gpu_channel_is_error_free() {
        let msg = Message::from_bytes(b"nv");
        let o = channel().transmit(&msg).unwrap();
        assert_eq!(o.received, msg, "got {} want {}", o.received, o.sent);
        assert!(o.is_error_free());
        assert!(o.bandwidth_kbps > 0.0);
    }

    #[test]
    fn stretching_the_window_lowers_bandwidth() {
        let msg = Message::from_bits([true, false, true, true]);
        let fast = channel().transmit(&msg).unwrap();
        let slow = channel().with_window(DEFAULT_WINDOW_CYCLES * 8).transmit(&msg).unwrap();
        assert!(slow.bandwidth_kbps < fast.bandwidth_kbps);
        assert!(slow.is_error_free());
    }

    #[test]
    fn congestion_storm_saturates_with_a_typed_error() {
        let plan = FaultPlan::new(0xBAD)
            .with_period(30_000)
            .with_burst(30_000)
            .with_intensity(1.0)
            .with_kinds(FaultKinds { link: true, ..FaultKinds::none() });
        let msg = Message::from_bytes(b"covert payload");
        let err = channel().with_faults(plan).transmit(&msg).unwrap_err();
        assert!(
            matches!(err, CovertError::Sim(gpgpu_sim::SimError::LinkSaturated { .. })),
            "expected saturation, got {err:?}"
        );
    }

    #[test]
    fn traced_transmission_records_link_transfers() {
        let msg = Message::from_bits([true, false]);
        let (o, trace) = channel().transmit_traced(&msg).unwrap();
        assert!(o.is_error_free());
        // 1-bit: lanes bursts + probe per iteration; 0-bit: probe only.
        let expected = DEFAULT_ITERATIONS * (1 + 2) + DEFAULT_ITERATIONS;
        assert_eq!(trace.len() as u64, expected);
        assert_eq!(trace.iter().count() as u64, expected);
    }

    #[test]
    fn external_calibration_is_honoured() {
        let msg = Message::from_bits([true, false, true]);
        let cal = Calibration::from_spec(u64::MAX, 2);
        let o = channel().with_calibration(cal).transmit(&msg).unwrap();
        assert_eq!(o.received, Message::from_bits([false, false, false]));
    }
}
