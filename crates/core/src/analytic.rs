//! Analytical fast path: closed-form bandwidth/BER prediction for every
//! channel family, cross-validated against the cycle engine.
//!
//! The cycle engine answers "what bandwidth and error rate does this channel
//! reach at this operating point?" by simulating every warp issue. For sweep
//! grids (Figures 5, 10, 13) most cells are far from any behavioural
//! transition, and a closed-form model answers them orders of magnitude
//! faster. [`EngineMode::Analytical`] selects that path.
//!
//! The model is **derived from the cycle engine, not hand-tuned against
//! it**: [`AnalyticalModel::characterize`] runs a short probe suite — the
//! same methodology as the Wong-style microbench that recovers cache
//! geometry (`crate::microbench`) — and records two kinds of facts in a
//! [`gpgpu_sim::LatencyTable`]:
//!
//! * **per-op latencies** ([`gpgpu_sim::OpClass`]): L1/L2 hit latency from a
//!   strided-walk probe, SFU idle/contended issue latency from the
//!   warp-count sweep, atomic service latency idle/contended;
//! * **per-family cost and error models** ([`gpgpu_sim::FamilyModel`]):
//!   total cycles as `fixed + bits * (base + slope * knob)` fitted from two
//!   probe transmissions, and the 1-bit failure curve
//!   `err_sat * min(1, (err_knee/knob)^2)` fitted from starved-knob probes.
//!   The quadratic falloff is mechanistic, not a curve fit: both colluding
//!   kernels draw independent uniform launch jitter, so the "missed
//!   overlap" region is the corner of a square in the jitter plane.
//!
//! Cross-validation is a first-class test asset: see
//! `tests/integration_analytic.rs` for the three-way
//! Dense/EventDriven/Analytical comparison with the per-family
//! [`tolerance`] bands, and DESIGN.md §8 for the tolerance policy.

use crate::atomic_channel::{AtomicChannel, AtomicScenario};
use crate::bits::Message;
use crate::cache_channel::{CacheChannel, L1Channel, L2Channel};
use crate::fu_channel::SfuChannel;
use crate::harness::TrialRunner;
use crate::microbench;
use crate::nvlink_channel::NvlinkChannel;
use crate::sync_channel::SyncChannel;
use crate::CovertError;
use gpgpu_sim::EngineMode;
use gpgpu_sim::{FamilyModel, LatencyTable, OpClass};
use gpgpu_spec::{DeviceSpec, FuOpKind, TopologySpec};

/// BER at or above which a channel is considered **dead** — the same bar the
/// mitigation arena uses for an effective defense (`min_ber` 0.2 in
/// `BENCH_arena.json`).
pub const DEAD_BER: f64 = 0.2;

/// Simulated BER at or below which the simulator's *works* verdict is
/// confident (the analytical verdict must agree; see
/// [`simulator_confident`]).
pub const CONFIDENT_WORKS_BER: f64 = 0.05;

/// Simulated BER at or above which the simulator's *dead* verdict is
/// confident.
pub const CONFIDENT_DEAD_BER: f64 = 0.35;

/// Whether a simulated BER is far enough from the [`DEAD_BER`] boundary that
/// its verdict is confident — the region where the analytical predictor is
/// never allowed to flip the verdict.
pub fn simulator_confident(ber: f64) -> bool {
    ber <= CONFIDENT_WORKS_BER || ber >= CONFIDENT_DEAD_BER
}

/// The binary outcome the analytical model must get exactly right on
/// confident cells: does the channel deliver, or is it dead?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelVerdict {
    /// BER below [`DEAD_BER`]: the channel delivers.
    Works,
    /// BER at or above [`DEAD_BER`]: the channel is dead.
    Dead,
}

impl ChannelVerdict {
    /// The verdict for a bit-error rate.
    pub fn from_ber(ber: f64) -> Self {
        if ber < DEAD_BER {
            ChannelVerdict::Works
        } else {
            ChannelVerdict::Dead
        }
    }

    /// Human-readable label (`works` / `dead`).
    pub fn label(self) -> &'static str {
        match self {
            ChannelVerdict::Works => "works",
            ChannelVerdict::Dead => "dead",
        }
    }
}

/// One closed-form answer from the analytical model.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticalPrediction {
    /// Family label the prediction is for.
    pub family: String,
    /// Knob value (iterations / pacing window) the prediction is at.
    pub knob: f64,
    /// Message length in bits.
    pub bits: usize,
    /// Predicted total transmission cycles.
    pub cycles: u64,
    /// Predicted raw bandwidth at the device clock.
    pub bandwidth_kbps: f64,
    /// Predicted bit-error rate for the given message.
    pub ber: f64,
    /// Predicted works/dead verdict.
    pub verdict: ChannelVerdict,
}

/// Per-family cross-validation tolerance: how far the analytical prediction
/// may sit from the simulated value before the differential harness fails.
/// The policy (and the measured errors behind these numbers) is documented
/// in DESIGN.md §8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Maximum absolute BER difference.
    pub ber_abs: f64,
    /// Maximum relative bandwidth difference.
    pub bandwidth_rel: f64,
}

impl Tolerance {
    /// Checks a simulated `(ber, bandwidth_kbps)` pair against a prediction:
    /// BER within [`Tolerance::ber_abs`], bandwidth within
    /// [`Tolerance::bandwidth_rel`], and — whenever the simulated BER is
    /// confident ([`simulator_confident`]) — exact verdict agreement.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated bound.
    pub fn check(
        &self,
        sim_ber: f64,
        sim_kbps: f64,
        pred: &AnalyticalPrediction,
    ) -> Result<(), String> {
        if simulator_confident(sim_ber) && pred.verdict != ChannelVerdict::from_ber(sim_ber) {
            return Err(format!(
                "verdict flip: simulator is confident ({}, BER {sim_ber:.3}) but the model \
                 predicts {} (BER {:.3})",
                ChannelVerdict::from_ber(sim_ber).label(),
                pred.verdict.label(),
                pred.ber
            ));
        }
        let ber_err = (pred.ber - sim_ber).abs();
        if ber_err > self.ber_abs {
            return Err(format!(
                "BER error {ber_err:.3} exceeds the ±{:.3} band (simulated {sim_ber:.3}, \
                 predicted {:.3})",
                self.ber_abs, pred.ber
            ));
        }
        if sim_kbps > 0.0 {
            let rel = (pred.bandwidth_kbps - sim_kbps).abs() / sim_kbps;
            if rel > self.bandwidth_rel {
                return Err(format!(
                    "bandwidth error {:.1}% exceeds the ±{:.1}% band (simulated {sim_kbps:.2} \
                     kbps, predicted {:.2} kbps)",
                    rel * 100.0,
                    self.bandwidth_rel * 100.0,
                    pred.bandwidth_kbps
                ));
            }
        }
        Ok(())
    }
}

/// The documented cross-validation tolerance for a family label. Families
/// with launch jitter (the cache channels) get a wider BER band — their
/// simulated BER is one seeded realization of the jitter ensemble the model
/// predicts the mean of.
pub fn tolerance(family: &str) -> Tolerance {
    match family {
        "l1" | "l2" => Tolerance { ber_abs: 0.12, bandwidth_rel: 0.15 },
        "sync" => Tolerance { ber_abs: 0.05, bandwidth_rel: 0.15 },
        _ => Tolerance { ber_abs: 0.05, bandwidth_rel: 0.10 },
    }
}

/// Least-squares affine fit `y = base + slope * x` (exact for two points).
fn fit_affine(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    if points.len() < 2 {
        return (points.first().map_or(0.0, |p| p.1), 0.0);
    }
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    (my - slope * mx, slope)
}

/// Fits the 1-bit failure curve `err_sat * min(1, (err_knee/knob)^2)` from
/// starved-knob probe BERs measured on all-ones messages (where BER equals
/// the failure probability directly). `probes` pairs `(knob, failure)`.
fn fit_error_curve(probes: &[(f64, f64)]) -> (f64, f64) {
    let err_sat = probes.iter().map(|p| p.1).fold(0.0, f64::max);
    if err_sat <= 0.0 {
        return (0.0, 0.0);
    }
    // Each probe with a nonzero failure rate lower-bounds the knee at
    // knob * sqrt(p / sat); the largest bound is the fitted knee.
    let err_knee = probes
        .iter()
        .filter(|p| p.1 > 0.0)
        .map(|p| p.0 * (p.1 / err_sat).sqrt())
        .fold(0.0, f64::max);
    (err_sat, err_knee)
}

/// Knob values the characterizer probes for the affine cycles fit.
const CYCLE_PROBES: [u64; 2] = [2, 16];
/// Knob values the characterizer starves for the error-curve fit.
const ERROR_PROBES: [u64; 3] = [1, 2, 6];
/// Pacing windows probed for the NVLink family.
const NVLINK_PROBES: [u64; 2] = [2_048, 8_192];

/// Bits of the balanced cycles-probe message (half ones, like the sweep
/// payloads the model will be asked about).
fn probe_message() -> Message {
    Message::from_bits([true, false, true, false, true, false, true, false])
}

/// All-ones error-probe message: 0-bits cannot err, so its BER *is* the
/// 1-bit failure probability.
fn ones_message() -> Message {
    Message::from_bits(vec![true; 16])
}

/// The analytical predictor: a characterized [`LatencyTable`] plus the
/// device spec whose clock converts predicted cycles into bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticalModel {
    spec: DeviceSpec,
    table: LatencyTable,
}

impl AnalyticalModel {
    /// Wraps an already-extracted table (e.g. loaded from a `characterize`
    /// dump) for the given device.
    pub fn from_table(spec: DeviceSpec, table: LatencyTable) -> Self {
        AnalyticalModel { spec, table }
    }

    /// Characterizes every single-GPU family (`l1`, `l2`, `sfu`, `atomic`,
    /// `sync`) plus the per-op latency rows by running cycle-engine probes
    /// on `spec`. Cross-GPU families are added by
    /// [`AnalyticalModel::characterize_nvlink`].
    ///
    /// Probes fan out over the default [`TrialRunner`]; results are
    /// bit-identical to a sequential characterization.
    ///
    /// # Errors
    ///
    /// Propagates the first probe failure.
    pub fn characterize(spec: &DeviceSpec) -> Result<Self, CovertError> {
        let mut model =
            AnalyticalModel { spec: spec.clone(), table: LatencyTable::new(spec.name.clone()) };
        model.extract_op_rows()?;
        for family in ["l1", "l2", "sfu", "atomic"] {
            let fitted = model.extract_relaunch_family(family)?;
            model.table.set_family(fitted);
        }
        let sync = model.extract_sync_family()?;
        model.table.set_family(sync);
        Ok(model)
    }

    /// Targeted characterization: only the named relaunch families (any of
    /// `l1`, `l2`, `sfu`, `atomic`) — what a sweep pre-pruner runs when it
    /// only needs one family's model and cannot afford the full suite.
    ///
    /// # Errors
    ///
    /// Propagates the first probe failure; rejects unknown family labels.
    pub fn characterize_families(
        spec: &DeviceSpec,
        families: &[&str],
    ) -> Result<Self, CovertError> {
        let mut model =
            AnalyticalModel { spec: spec.clone(), table: LatencyTable::new(spec.name.clone()) };
        for family in families {
            let fitted = match *family {
                "sync" => model.extract_sync_family()?,
                _ => model.extract_relaunch_family(family)?,
            };
            model.table.set_family(fitted);
        }
        Ok(model)
    }

    /// Adds the `nvlink` family model by probing a cross-GPU channel over
    /// `topology`: two message lengths at the low pacing window separate
    /// the fixed per-message overhead from the per-bit cost, and a third
    /// probe at the high window fits the per-bit slope in the window.
    ///
    /// # Errors
    ///
    /// Propagates channel construction and probe failures.
    pub fn characterize_nvlink(&mut self, topology: &TopologySpec) -> Result<(), CovertError> {
        let short = probe_message();
        let long = Message::pseudo_random(24, 0x5EED);
        let (w_lo, w_hi) = (NVLINK_PROBES[0], NVLINK_PROBES[1]);
        // (window, message) probe schedule.
        let probes: [(u64, &Message); 3] = [(w_lo, &short), (w_lo, &long), (w_hi, &short)];
        let results = TrialRunner::new().try_map(&probes, |_, &(window, msg)| {
            let ch = NvlinkChannel::new(topology.clone())?.with_window(window);
            let o = ch.transmit(msg)?;
            Ok::<(f64, f64), CovertError>((o.cycles as f64, o.ber))
        })?;
        let (short_bits, long_bits) = (short.len() as f64, long.len() as f64);
        let per_bit_lo = (results[1].0 - results[0].0) / (long_bits - short_bits);
        let fixed = (results[0].0 - short_bits * per_bit_lo).max(0.0);
        let per_bit_hi = (results[2].0 - fixed) / short_bits;
        let slope = (per_bit_hi - per_bit_lo) / (w_hi as f64 - w_lo as f64);
        let base = per_bit_lo - slope * w_lo as f64;
        let (err_sat, err_knee) = fit_error_curve(&[
            (w_lo as f64, results[0].1.max(results[1].1)),
            (w_hi as f64, results[2].1),
        ]);
        self.table.set_family(FamilyModel {
            family: "nvlink".into(),
            knob: "window".into(),
            fixed,
            base,
            slope,
            knob_lo: w_lo as f64,
            knob_hi: w_hi as f64,
            err_sat,
            err_knee,
        });
        Ok(())
    }

    /// The Wong-style per-op rows: strided-walk cache hit latencies, the
    /// SFU warp-count sweep endpoints, and the atomic service latencies.
    fn extract_op_rows(&mut self) -> Result<(), CovertError> {
        // L1 hit: a walk that fits every preset's L1 (1 KB); L2 hit: a walk
        // that spills every preset's L1 but fits its L2 (16 KB).
        let l1 = microbench::cache_sweep(&self.spec, 64, &[1_024])?;
        self.table.set_op(OpClass::L1Hit, l1[0].latency);
        let l2 = microbench::cache_sweep(&self.spec, 256, &[16_384])?;
        self.table.set_op(OpClass::L2Hit, l2[0].latency);
        let fu = microbench::fu_latency_sweep(&self.spec, FuOpKind::SpSinf, &[1, 32])?;
        self.table.set_op(OpClass::SfuIdle, fu[0].latency);
        self.table.set_op(OpClass::SfuContended, fu[1].latency);
        let (idle, contended) = AtomicChannel::new(self.spec.clone(), AtomicScenario::OneAddress)
            .measure_service_latencies()?;
        self.table.set_op(OpClass::AtomicIdle, idle as f64);
        self.table.set_op(OpClass::AtomicContended, contended as f64);
        Ok(())
    }

    /// One per-bit-relaunch family (`l1`, `l2`, `sfu`, `atomic`): fits the
    /// affine cycles model from [`CYCLE_PROBES`] and the error curve from
    /// all-ones transmissions at the starved [`ERROR_PROBES`] knobs.
    fn extract_relaunch_family(&self, family: &str) -> Result<FamilyModel, CovertError> {
        let transmit = |iterations: u64, msg: &Message| -> Result<(u64, f64), CovertError> {
            let o = match family {
                "l1" => {
                    L1Channel::new(self.spec.clone()).with_iterations(iterations).transmit(msg)?
                }
                "l2" => {
                    L2Channel::new(self.spec.clone()).with_iterations(iterations).transmit(msg)?
                }
                "sfu" => {
                    SfuChannel::new(self.spec.clone()).with_iterations(iterations).transmit(msg)?
                }
                "atomic" => AtomicChannel::new(self.spec.clone(), AtomicScenario::OneAddress)
                    .with_iterations(iterations)
                    .transmit(msg)?,
                other => {
                    return Err(CovertError::Config {
                        reason: format!("unknown analytical family `{other}`"),
                    })
                }
            };
            Ok((o.cycles, o.ber))
        };
        let cycle_msg = probe_message();
        let ones = ones_message();
        // One probe schedule, fanned over the trial harness: first the
        // cycles probes (balanced message), then the starved error probes
        // (all-ones message).
        let probes: Vec<(u64, bool)> = CYCLE_PROBES
            .iter()
            .map(|&n| (n, false))
            .chain(ERROR_PROBES.iter().map(|&n| (n, true)))
            .collect();
        let results = TrialRunner::new().try_map(&probes, |_, &(n, starved)| {
            transmit(n, if starved { &ones } else { &cycle_msg })
        })?;
        let cycle_points: Vec<(f64, f64)> = probes
            .iter()
            .zip(&results)
            .filter(|((_, starved), _)| !starved)
            .map(|((n, _), (cycles, _))| (*n as f64, *cycles as f64 / cycle_msg.len() as f64))
            .collect();
        let error_points: Vec<(f64, f64)> = probes
            .iter()
            .zip(&results)
            .filter(|((_, starved), _)| *starved)
            .map(|((n, _), (_, ber))| (*n as f64, *ber))
            .collect();
        let (base, slope) = fit_affine(&cycle_points);
        let (err_sat, err_knee) = fit_error_curve(&error_points);
        Ok(FamilyModel {
            family: family.to_string(),
            knob: "iterations".into(),
            fixed: 0.0,
            base,
            slope,
            knob_lo: CYCLE_PROBES[0] as f64,
            knob_hi: CYCLE_PROBES[1] as f64,
            err_sat,
            err_knee,
        })
    }

    /// The synchronized channel has no symbol-time knob: its cost model is
    /// `fixed + base * bits`, fitted from two message lengths.
    fn extract_sync_family(&self) -> Result<FamilyModel, CovertError> {
        let lengths = [8usize, 24];
        let points = TrialRunner::new().try_map(&lengths, |_, &bits| {
            let msg = Message::pseudo_random(bits, 0x5EED);
            let o = SyncChannel::new(self.spec.clone()).transmit(&msg)?;
            Ok::<(f64, f64, f64), CovertError>((bits as f64, o.cycles as f64, o.ber))
        })?;
        let (fixed, base) = fit_affine(&points.iter().map(|&(b, c, _)| (b, c)).collect::<Vec<_>>());
        let worst_ber = points.iter().map(|p| p.2).fold(0.0, f64::max);
        Ok(FamilyModel {
            family: "sync".into(),
            knob: "none".into(),
            fixed,
            base,
            slope: 0.0,
            knob_lo: 0.0,
            knob_hi: 0.0,
            err_sat: worst_ber,
            err_knee: if worst_ber > 0.0 { 1.0 } else { 0.0 },
        })
    }

    /// The extracted table (dump it with
    /// [`gpgpu_sim::LatencyTable::to_spec`]).
    pub fn table(&self) -> &LatencyTable {
        &self.table
    }

    /// The device spec whose clock converts cycles to bandwidth.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Predicts bandwidth, BER and verdict for `family` at knob value
    /// `knob`, for the given message — **no cycle loop runs**.
    ///
    /// # Errors
    ///
    /// [`CovertError::Config`] when `family` has not been characterized.
    pub fn predict(
        &self,
        family: &str,
        knob: f64,
        msg: &Message,
    ) -> Result<AnalyticalPrediction, CovertError> {
        let m = self.table.family(family).ok_or_else(|| CovertError::Config {
            reason: format!("family `{family}` is not in the characterized table"),
        })?;
        let bits = msg.len();
        let cycles = m.cycles(bits, knob).round().max(1.0) as u64;
        let ones = msg.bits().iter().filter(|&&b| b).count();
        let ber = if bits == 0 { 0.0 } else { m.one_bit_failure(knob) * ones as f64 / bits as f64 };
        Ok(AnalyticalPrediction {
            family: family.to_string(),
            knob,
            bits,
            cycles,
            bandwidth_kbps: self.spec.bandwidth_kbps(bits as u64, cycles),
            ber,
            verdict: ChannelVerdict::from_ber(ber),
        })
    }

    /// Whether a sweep cell needs simulation: the model flags a cell as
    /// *interesting* when its predicted BER falls inside the open
    /// transition band ([`CONFIDENT_WORKS_BER`], [`CONFIDENT_DEAD_BER`]) —
    /// outside it, the closed form is trusted to reproduce the curve and
    /// the verdict without running the cycle loop.
    ///
    /// # Errors
    ///
    /// As [`AnalyticalModel::predict`].
    pub fn interesting(&self, family: &str, knob: f64, msg: &Message) -> Result<bool, CovertError> {
        let p = self.predict(family, knob, msg)?;
        Ok(p.ber > CONFIDENT_WORKS_BER && p.ber < CONFIDENT_DEAD_BER)
    }

    /// Flags every knob in a sweep grid: `true` means "simulate this cell",
    /// `false` means "fill it from the closed form".
    ///
    /// # Errors
    ///
    /// As [`AnalyticalModel::predict`].
    pub fn prune_grid(
        &self,
        family: &str,
        knobs: &[f64],
        msg: &Message,
    ) -> Result<Vec<bool>, CovertError> {
        knobs.iter().map(|&k| self.interesting(family, k, msg)).collect()
    }

    /// A Figure-5 sweep with analytical pre-pruning: cells the model flags
    /// as interesting are simulated on `runner` (bit-identical to the same
    /// cells of an unpruned sweep); the rest are filled from the closed
    /// form. Returns the `(bandwidth_kbps, ber)` points plus the
    /// simulated-cell mask.
    ///
    /// # Errors
    ///
    /// Propagates prediction and simulation failures.
    pub fn pruned_error_rate_sweep(
        &self,
        runner: &TrialRunner,
        channel: &CacheChannel,
        family: &str,
        msg: &Message,
        iteration_counts: &[u64],
    ) -> Result<PrunedSweep, CovertError> {
        let knobs: Vec<f64> = iteration_counts.iter().map(|&n| n as f64).collect();
        let mask = self.prune_grid(family, &knobs, msg)?;
        let simulate: Vec<u64> =
            iteration_counts.iter().zip(&mask).filter(|(_, &keep)| keep).map(|(&n, _)| n).collect();
        let simulated = channel.error_rate_sweep_on(runner, msg, &simulate)?;
        let mut sim_iter = simulated.into_iter();
        let points = iteration_counts
            .iter()
            .zip(&mask)
            .map(|(&n, &keep)| {
                if keep {
                    Ok(sim_iter.next().expect("one simulated point per flagged cell"))
                } else {
                    let p = self.predict(family, n as f64, msg)?;
                    Ok((p.bandwidth_kbps, p.ber))
                }
            })
            .collect::<Result<Vec<_>, CovertError>>()?;
        Ok((points, mask))
    }
}

/// A pruned sweep's result: the `(bandwidth_kbps, ber)` point per grid
/// cell plus the mask of cells that were simulated (`true`) rather than
/// filled from the closed form.
pub type PrunedSweep = (Vec<(f64, f64)>, Vec<bool>);

/// Resolves the engine mode a channel run should use when the caller did
/// not pass `--engine`: the `GPGPU_ENGINE` environment variable if set and
/// valid, else the default ([`EngineMode::EventDriven`]). An unparseable
/// value falls back to the default with a one-time warning to stderr — the
/// same contract as `GPGPU_TRIAL_WORKERS` (see
/// [`crate::harness::TrialRunner::new`]).
pub fn default_engine_mode() -> EngineMode {
    let (mode, rejected) = resolve_engine(std::env::var("GPGPU_ENGINE"));
    if let Some(rejected) = rejected {
        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
        WARN_ONCE.call_once(|| {
            eprintln!(
                "warning: ignoring invalid GPGPU_ENGINE value {rejected} (expected dense, \
                 event or analytical); using {}",
                EngineMode::default().label()
            );
        });
    }
    mode
}

/// Testable core of [`default_engine_mode`]: the resolved mode plus, when
/// the variable was present but unusable, the rejected value for the
/// one-time warning.
fn resolve_engine(raw: Result<String, std::env::VarError>) -> (EngineMode, Option<String>) {
    match raw {
        Ok(v) => match v.parse::<EngineMode>() {
            Ok(mode) => (mode, None),
            Err(_) => (EngineMode::default(), Some(format!("`{v}`"))),
        },
        Err(std::env::VarError::NotPresent) => (EngineMode::default(), None),
        Err(std::env::VarError::NotUnicode(_)) => {
            (EngineMode::default(), Some("<non-unicode>".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_fit_is_exact_on_two_points() {
        let (base, slope) = fit_affine(&[(2.0, 10.0), (6.0, 22.0)]);
        assert!((slope - 3.0).abs() < 1e-12);
        assert!((base - 4.0).abs() < 1e-12);
        assert_eq!(fit_affine(&[(5.0, 7.0)]), (7.0, 0.0));
        // Degenerate x-spread: slope 0, base = mean.
        let (b, s) = fit_affine(&[(3.0, 4.0), (3.0, 8.0)]);
        assert_eq!((b, s), (6.0, 0.0));
    }

    #[test]
    fn error_curve_fit_recovers_sat_and_knee() {
        // Saturated at 1 and 2, quarter at 7 => knee 3.5 from the 7-probe.
        let (sat, knee) = fit_error_curve(&[(1.0, 0.6), (2.0, 0.6), (7.0, 0.15)]);
        assert!((sat - 0.6).abs() < 1e-12);
        assert!((knee - 3.5).abs() < 1e-12, "knee {knee}");
        // Error-free probes => error-free model.
        assert_eq!(fit_error_curve(&[(1.0, 0.0), (6.0, 0.0)]), (0.0, 0.0));
    }

    #[test]
    fn verdicts_and_confidence_bands() {
        assert_eq!(ChannelVerdict::from_ber(0.0), ChannelVerdict::Works);
        assert_eq!(ChannelVerdict::from_ber(0.19), ChannelVerdict::Works);
        assert_eq!(ChannelVerdict::from_ber(0.2), ChannelVerdict::Dead);
        assert!(simulator_confident(0.0));
        assert!(simulator_confident(0.5));
        assert!(!simulator_confident(0.2));
        assert_eq!(ChannelVerdict::Works.label(), "works");
    }

    #[test]
    fn tolerance_check_reports_each_bound() {
        let pred = AnalyticalPrediction {
            family: "l1".into(),
            knob: 4.0,
            bits: 8,
            cycles: 1000,
            bandwidth_kbps: 50.0,
            ber: 0.0,
            verdict: ChannelVerdict::Works,
        };
        let tol = Tolerance { ber_abs: 0.1, bandwidth_rel: 0.1 };
        assert!(tol.check(0.05, 50.0, &pred).is_ok());
        assert!(tol.check(0.15, 50.0, &pred).unwrap_err().contains("BER error"));
        assert!(tol.check(0.0, 60.0, &pred).unwrap_err().contains("bandwidth error"));
        // A confident dead simulation must not be predicted as works.
        let e = tol.check(0.5, 0.0, &pred).unwrap_err();
        assert!(e.contains("verdict flip"), "{e}");
    }

    #[test]
    fn engine_resolution_honors_valid_and_rejects_invalid_values() {
        use std::env::VarError;
        assert_eq!(resolve_engine(Ok("dense".into())), (EngineMode::Dense, None));
        assert_eq!(resolve_engine(Ok("analytical".into())), (EngineMode::Analytical, None));
        assert_eq!(resolve_engine(Err(VarError::NotPresent)), (EngineMode::EventDriven, None));
        assert_eq!(
            resolve_engine(Ok("warp9".into())),
            (EngineMode::EventDriven, Some("`warp9`".into()))
        );
        let (m, rejected) =
            resolve_engine(Err(VarError::NotUnicode(std::ffi::OsString::from("x"))));
        assert_eq!((m, rejected.as_deref()), (EngineMode::EventDriven, Some("<non-unicode>")));
    }

    #[test]
    fn predict_requires_a_characterized_family() {
        let model = AnalyticalModel::from_table(
            gpgpu_spec::presets::tesla_k40c(),
            LatencyTable::new("kepler"),
        );
        let e = model.predict("l1", 20.0, &probe_message()).unwrap_err();
        assert!(e.to_string().contains("not in the characterized table"), "{e}");
    }
}
