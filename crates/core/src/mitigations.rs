//! Mitigation evaluation (paper Section 9).
//!
//! The paper sketches three mitigation families and leaves their evaluation
//! to future work; the simulator implements all three (see
//! [`gpgpu_sim::DeviceTuning`]) and this module measures what each does to
//! the channels:
//!
//! * **spatial cache partitioning** — kernels get disjoint cache-set
//!   regions, so prime+probe eviction signalling is impossible;
//! * **randomized warp scheduling** — warps land on schedulers by keyed
//!   hash, destroying the per-scheduler bit lanes of the Table-3 channel;
//! * **clock fuzzing** (TimeWarp) — quantized `clock()` reads hide the
//!   hit/miss latency difference every cache channel decodes with.
//!
//! Defenses are evaluated as composable [`DefenseSpec`]s: one spec may stack
//! several mitigation classes, and [`evaluate_against_family`] runs any spec
//! against any of the five channel families with a single code path.

use crate::atomic_channel::{AtomicChannel, AtomicScenario};
use crate::bits::Message;
use crate::cache_channel::L1Channel;
use crate::channel::ChannelOutcome;
use crate::nvlink_channel::NvlinkChannel;
use crate::parallel::ParallelSfuChannel;
use crate::sync_channel::SyncChannel;
use crate::CovertError;
use gpgpu_sim::DeviceTuning;
use gpgpu_spec::{DefenseComponent, DefenseSpec, DeviceSpec, LaunchConfig, TopologySpec};
use std::fmt;

/// One of the paper's Section-9 mitigation classes, parameterized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mitigation {
    /// Static cache partitioning into `partitions` per-kernel regions.
    CachePartitioning {
        /// Number of partitions (>= 2 to have any effect).
        partitions: u32,
    },
    /// Keyed-hash warp -> scheduler assignment.
    RandomizedWarpScheduling {
        /// Hash seed (changes per boot on a real implementation).
        seed: u64,
    },
    /// Quantized `clock()` reads.
    ClockFuzzing {
        /// Quantum in cycles; must exceed the hit/miss latency gap to be
        /// effective.
        granularity: u64,
    },
}

impl Mitigation {
    /// The device tuning implementing this mitigation **alone**.
    ///
    /// To stack several mitigations, do not overwrite one tuning with
    /// another — combine them with [`DeviceTuning::merge`] (or go through
    /// [`Mitigation::to_defense`] and [`DefenseSpec::compose`], which
    /// lower onto a merged tuning).
    pub fn tuning(self) -> DeviceTuning {
        DeviceTuning::from_defense(&self.to_defense())
    }

    /// This mitigation as a single-component composable [`DefenseSpec`].
    pub fn to_defense(self) -> DefenseSpec {
        let component = match self {
            Mitigation::CachePartitioning { partitions } => {
                DefenseComponent::CachePartitioning { partitions }
            }
            Mitigation::RandomizedWarpScheduling { seed } => {
                DefenseComponent::RandomizedWarpScheduling { seed }
            }
            Mitigation::ClockFuzzing { granularity } => {
                DefenseComponent::ClockFuzzing { granularity }
            }
        };
        DefenseSpec::single(component).expect("mitigation parameters are in range")
    }
}

impl fmt::Display for Mitigation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mitigation::CachePartitioning { partitions } => {
                write!(f, "cache partitioning ({partitions} regions)")
            }
            Mitigation::RandomizedWarpScheduling { seed } => {
                write!(f, "randomized warp scheduling (seed {seed:#x})")
            }
            Mitigation::ClockFuzzing { granularity } => {
                write!(f, "clock fuzzing ({granularity}-cycle quantum)")
            }
        }
    }
}

/// The five covert-channel families the simulator can pit a defense
/// against — the evaluation axis of the Section-9 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelFamily {
    /// Unsynchronized L1 constant-cache prime+probe.
    L1,
    /// Synchronized (handshaked) L1 constant-cache channel.
    Sync,
    /// Per-warp-scheduler parallel SFU contention lanes.
    ParallelSfu,
    /// Atomic-unit contention on global memory.
    Atomic,
    /// Cross-device NvLink congestion (needs a multi-GPU topology).
    Nvlink,
}

impl ChannelFamily {
    /// Every family, in matrix-row order.
    pub const ALL: [ChannelFamily; 5] = [
        ChannelFamily::L1,
        ChannelFamily::Sync,
        ChannelFamily::ParallelSfu,
        ChannelFamily::Atomic,
        ChannelFamily::Nvlink,
    ];

    /// Short human-readable label ("l1", "sync", ...), stable for report
    /// rows and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            ChannelFamily::L1 => "l1",
            ChannelFamily::Sync => "sync",
            ChannelFamily::ParallelSfu => "parallel-sfu",
            ChannelFamily::Atomic => "atomic",
            ChannelFamily::Nvlink => "nvlink",
        }
    }
}

impl fmt::Display for ChannelFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Three-state outcome of a mitigation evaluation.
///
/// The old boolean `is_effective` conflated "the defense broke the channel"
/// with "the channel never worked here to begin with" — a defense evaluated
/// against a channel that is broken on the *unprotected* device proved
/// nothing, yet reported `false` exactly like a defense that failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MitigationVerdict {
    /// The channel worked unprotected and the defense broke it.
    Effective,
    /// The channel worked unprotected and still works under the defense.
    Ineffective,
    /// The channel did not work even unprotected, so the evaluation says
    /// nothing about the defense.
    BaselineBroken,
}

impl fmt::Display for MitigationVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MitigationVerdict::Effective => "effective",
            MitigationVerdict::Ineffective => "ineffective",
            MitigationVerdict::BaselineBroken => "baseline-broken",
        })
    }
}

/// The before/after picture of a defense against one channel family.
#[derive(Debug, Clone, PartialEq)]
pub struct MitigationReport {
    /// The evaluated (possibly composed) defense.
    pub defense: DefenseSpec,
    /// The channel family it was evaluated against.
    pub family: ChannelFamily,
    /// Channel outcome on the unprotected device.
    pub baseline: ChannelOutcome,
    /// Channel outcome with the defense active.
    pub mitigated: ChannelOutcome,
}

impl MitigationReport {
    /// Classifies the evaluation: the defense counts as effective only when
    /// the unprotected channel was error-free *and* the defense pushed its
    /// error rate to at least `min_ber`.
    pub fn verdict(&self, min_ber: f64) -> MitigationVerdict {
        if !self.baseline.is_error_free() {
            MitigationVerdict::BaselineBroken
        } else if self.mitigated.ber >= min_ber {
            MitigationVerdict::Effective
        } else {
            MitigationVerdict::Ineffective
        }
    }

    /// Whether the verdict is [`MitigationVerdict::Effective`].
    pub fn is_effective(&self, min_ber: f64) -> bool {
        self.verdict(min_ber) == MitigationVerdict::Effective
    }

    /// Bandwidth (kb/s) the attacker retains under the defense: the
    /// mitigated outcome's bandwidth if the channel still decodes below
    /// `max_ber`, zero once the defense has broken it.
    pub fn residual_bandwidth_kbps(&self, max_ber: f64) -> f64 {
        if self.mitigated.ber <= max_ber {
            self.mitigated.bandwidth_kbps
        } else {
            0.0
        }
    }
}

/// Evaluates a (possibly composed) defense against one channel family:
/// runs the family's canonical channel once on an unprotected device and
/// once with the defense lowered onto [`DeviceTuning`], on the same device
/// spec and message.
///
/// `topology` is required by [`ChannelFamily::Nvlink`] only; the other
/// families ignore it.
///
/// # Errors
///
/// [`CovertError::Config`] when `family` is nvlink and `topology` is
/// `None`; otherwise propagates channel failures.
pub fn evaluate_against_family(
    spec: &DeviceSpec,
    family: ChannelFamily,
    defense: &DefenseSpec,
    msg: &Message,
    topology: Option<&TopologySpec>,
) -> Result<MitigationReport, CovertError> {
    let run = |tuning: DeviceTuning| -> Result<ChannelOutcome, CovertError> {
        match family {
            ChannelFamily::L1 => L1Channel::new(spec.clone()).with_tuning(tuning).transmit(msg),
            ChannelFamily::Sync => SyncChannel::new(spec.clone()).with_tuning(tuning).transmit(msg),
            ChannelFamily::ParallelSfu => {
                ParallelSfuChannel::new(spec.clone()).with_tuning(tuning).transmit(msg)
            }
            ChannelFamily::Atomic => AtomicChannel::new(spec.clone(), AtomicScenario::OneAddress)
                .with_tuning(tuning)
                .transmit(msg),
            ChannelFamily::Nvlink => {
                let topology = topology.ok_or_else(|| CovertError::Config {
                    reason: "the nvlink family needs a multi-GPU topology (pass --topology)"
                        .to_string(),
                })?;
                NvlinkChannel::new(topology.clone())?.with_tuning(tuning).transmit(msg)
            }
        }
    };
    let baseline = run(DeviceTuning::none())?;
    let mitigated = run(DeviceTuning::from_defense(defense))?;
    Ok(MitigationReport { defense: defense.clone(), family, baseline, mitigated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_spec::presets;

    fn eval(family: ChannelFamily, defense: &str, msg: &Message) -> MitigationReport {
        let spec = presets::tesla_k40c();
        let defense = DefenseSpec::from_spec(defense).unwrap();
        evaluate_against_family(&spec, family, &defense, msg, None).unwrap()
    }

    #[test]
    fn cache_partitioning_kills_the_l1_channel() {
        let msg = Message::pseudo_random(16, 0x91);
        let r = eval(ChannelFamily::L1, "partition=2", &msg);
        assert!(r.is_effective(0.2), "baseline {} mitigated {}", r.baseline.ber, r.mitigated.ber);
        assert_eq!(r.verdict(0.2), MitigationVerdict::Effective);
        assert_eq!(r.residual_bandwidth_kbps(0.2), 0.0);
    }

    #[test]
    fn clock_fuzzing_kills_the_l1_channel() {
        let msg = Message::pseudo_random(16, 0x92);
        // Quantum far above the 49-vs-112-cycle gap.
        let r = eval(ChannelFamily::L1, "fuzz=4096", &msg);
        assert!(r.is_effective(0.2), "baseline {} mitigated {}", r.baseline.ber, r.mitigated.ber);
    }

    #[test]
    fn fine_grained_clock_fuzzing_is_insufficient() {
        // A quantum below the latency gap leaves the channel intact — the
        // defense must be sized to the signal it hides.
        let msg = Message::pseudo_random(12, 0x93);
        let r = eval(ChannelFamily::L1, "fuzz=8", &msg);
        assert!(r.mitigated.is_error_free(), "ber {}", r.mitigated.ber);
        assert_eq!(r.verdict(0.2), MitigationVerdict::Ineffective);
        assert!(r.residual_bandwidth_kbps(0.2) > 0.0);
    }

    #[test]
    fn scheduler_randomization_scrambles_the_parallel_sfu_lanes() {
        let msg = Message::pseudo_random(16, 0x94);
        let r = eval(ChannelFamily::ParallelSfu, "randsched=0xd1ce", &msg);
        assert!(r.baseline.is_error_free());
        assert!(r.mitigated.ber > 0.1, "randomization should corrupt lanes: {}", r.mitigated.ber);
    }

    #[test]
    fn partitioning_defeats_even_the_synchronized_protocol() {
        let msg = Message::pseudo_random(8, 0x95);
        let r = eval(ChannelFamily::Sync, "partition=2", &msg);
        assert!(r.baseline.is_error_free());
        assert!(r.mitigated.ber > 0.2, "ber {}", r.mitigated.ber);
    }

    #[test]
    fn composed_defense_covers_both_component_channels() {
        // partition=2 alone breaks L1 but not parallel-SFU; randsched alone
        // breaks parallel-SFU but not L1. The composition breaks both —
        // the property the old last-tuning-wins stacking silently lost.
        let msg = Message::pseudo_random(16, 0x91);
        let both = "partition=2,randsched=0xd1ce";
        assert!(eval(ChannelFamily::L1, both, &msg).is_effective(0.2));
        let sfu = eval(ChannelFamily::ParallelSfu, both, &msg);
        assert!(sfu.baseline.is_error_free());
        assert!(sfu.mitigated.ber > 0.1, "ber {}", sfu.mitigated.ber);
    }

    #[test]
    fn atomic_family_is_evaluable_and_tuning_blind() {
        // The atomic channel times whole-kernel contention, not clock()
        // deltas, so even coarse clock fuzzing leaves it standing — exactly
        // why the matrix needs all five families.
        let msg = Message::pseudo_random(8, 0x98);
        let r = eval(ChannelFamily::Atomic, "fuzz=4096", &msg);
        assert!(r.baseline.is_error_free(), "ber {}", r.baseline.ber);
    }

    #[test]
    fn nvlink_family_without_topology_is_a_typed_config_error() {
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(8, 0x99);
        let err =
            evaluate_against_family(&spec, ChannelFamily::Nvlink, &DefenseSpec::none(), &msg, None)
                .unwrap_err();
        assert!(matches!(err, CovertError::Config { .. }), "{err:?}");
        assert!(err.to_string().contains("topology"), "{err}");
    }

    #[test]
    fn nvlink_family_evaluates_with_a_topology() {
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(8, 0x9A);
        let topology = TopologySpec::dual("kepler").unwrap();
        let r = evaluate_against_family(
            &spec,
            ChannelFamily::Nvlink,
            &DefenseSpec::from_spec("fuzz=4096").unwrap(),
            &msg,
            Some(&topology),
        )
        .unwrap();
        assert!(r.baseline.is_error_free(), "ber {}", r.baseline.ber);
    }

    #[test]
    fn verdict_separates_broken_baselines_from_failed_defenses() {
        let outcome = |ber: f64| ChannelOutcome {
            sent: Message::pseudo_random(4, 1),
            received: Message::pseudo_random(4, 1),
            cycles: 1_000,
            bandwidth_kbps: 10.0,
            ber,
            stats: gpgpu_sim::SimStats::default(),
        };
        let report = |baseline: f64, mitigated: f64| MitigationReport {
            defense: DefenseSpec::none(),
            family: ChannelFamily::L1,
            baseline: outcome(baseline),
            mitigated: outcome(mitigated),
        };
        assert_eq!(report(0.0, 0.5).verdict(0.2), MitigationVerdict::Effective);
        assert_eq!(report(0.0, 0.0).verdict(0.2), MitigationVerdict::Ineffective);
        // A broken baseline is NOT evidence the defense works.
        assert_eq!(report(0.5, 0.5).verdict(0.2), MitigationVerdict::BaselineBroken);
        assert!(!report(0.5, 0.5).is_effective(0.2));
    }

    #[test]
    fn display_labels() {
        assert!(Mitigation::CachePartitioning { partitions: 2 }.to_string().contains("2 regions"));
        assert!(Mitigation::ClockFuzzing { granularity: 512 }.to_string().contains("512"));
        assert_eq!(ChannelFamily::ParallelSfu.to_string(), "parallel-sfu");
        assert_eq!(MitigationVerdict::BaselineBroken.to_string(), "baseline-broken");
    }

    #[test]
    fn mitigation_to_defense_round_trips_through_tuning() {
        let m = Mitigation::RandomizedWarpScheduling { seed: 0xD1CE };
        assert_eq!(m.tuning().random_warp_scheduler, Some(0xD1CE));
        assert_eq!(m.to_defense().to_spec(), "randsched=0xd1ce");
    }
}

/// Contention-anomaly detection (the paper's other Section-9 direction:
/// "attempt to detect anomalous contention [CC-Hunter]"). Returns the
/// eviction-alternation counts of (a) a covert-channel run and (b) a benign
/// mix of two independent constant-memory workloads of similar intensity —
/// the gap between them is the detector's margin.
///
/// # Errors
///
/// Propagates channel and simulator failures.
pub fn contention_detection_margin(
    spec: &DeviceSpec,
    msg: &Message,
) -> Result<(u64, u64), CovertError> {
    // (a) The synchronized channel: constant ping-pong evictions.
    let run = SyncChannel::new(spec.clone()).transmit_with_noise(msg, Vec::new())?;
    let channel_score = run.eviction_alternations;

    // (b) Benign: two kernels streaming their own constant arrays. Their
    // working sets collide in the cache occasionally but never alternate.
    let mut dev = gpgpu_sim::Device::new(spec.clone());
    let g = spec.const_l1.geometry;
    let make = |base: u64| {
        let mut b = gpgpu_isa::ProgramBuilder::new();
        let lines = g.size_bytes() / g.line_bytes();
        b.repeat(gpgpu_isa::Reg(20), 40, move |b| {
            for k in 0..lines {
                b.mov_imm(gpgpu_isa::Reg(0), base + k * g.line_bytes());
                b.const_load(gpgpu_isa::Reg(0));
            }
        });
        b.build().expect("benign workload assembles")
    };
    let launch = LaunchConfig::new(spec.num_sms, 32);
    let span = g.same_set_stride() * g.ways();
    dev.launch(0, gpgpu_sim::KernelSpec::new("benign-a", make(0), launch))?;
    dev.launch(1, gpgpu_sim::KernelSpec::new("benign-b", make(span), launch))?;
    dev.run_until_idle(200_000_000)?;
    let (_, benign_score) = dev.cache_contention_counters();
    Ok((channel_score, benign_score))
}

#[cfg(test)]
mod detection_tests {
    use super::*;
    use gpgpu_spec::presets;

    #[test]
    fn channel_contention_is_detectably_anomalous() {
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(16, 0x96);
        let (channel, benign) = contention_detection_margin(&spec, &msg).unwrap();
        assert!(
            channel > 10 * benign.max(1),
            "detector margin too small: channel {channel} vs benign {benign}"
        );
    }
}
