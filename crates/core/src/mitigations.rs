//! Mitigation evaluation (paper Section 9).
//!
//! The paper sketches three mitigation families and leaves their evaluation
//! to future work; the simulator implements all three (see
//! [`gpgpu_sim::DeviceTuning`]) and this module measures what each does to
//! the channels:
//!
//! * **spatial cache partitioning** — kernels get disjoint cache-set
//!   regions, so prime+probe eviction signalling is impossible;
//! * **randomized warp scheduling** — warps land on schedulers by keyed
//!   hash, destroying the per-scheduler bit lanes of the Table-3 channel;
//! * **clock fuzzing** (TimeWarp) — quantized `clock()` reads hide the
//!   hit/miss latency difference every cache channel decodes with.

use crate::bits::Message;
use crate::cache_channel::L1Channel;
use crate::channel::ChannelOutcome;
use crate::parallel::ParallelSfuChannel;
use crate::sync_channel::SyncChannel;
use crate::CovertError;
use gpgpu_sim::DeviceTuning;
use gpgpu_spec::{DeviceSpec, LaunchConfig};
use std::fmt;

/// One of the paper's Section-9 mitigation classes, parameterized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mitigation {
    /// Static cache partitioning into `partitions` per-kernel regions.
    CachePartitioning {
        /// Number of partitions (>= 2 to have any effect).
        partitions: u32,
    },
    /// Keyed-hash warp -> scheduler assignment.
    RandomizedWarpScheduling {
        /// Hash seed (changes per boot on a real implementation).
        seed: u64,
    },
    /// Quantized `clock()` reads.
    ClockFuzzing {
        /// Quantum in cycles; must exceed the hit/miss latency gap to be
        /// effective.
        granularity: u64,
    },
}

impl Mitigation {
    /// The device tuning implementing this mitigation.
    pub fn tuning(self) -> DeviceTuning {
        match self {
            Mitigation::CachePartitioning { partitions } => {
                DeviceTuning { cache_partitions: partitions, ..DeviceTuning::none() }
            }
            Mitigation::RandomizedWarpScheduling { seed } => {
                DeviceTuning { random_warp_scheduler: Some(seed), ..DeviceTuning::none() }
            }
            Mitigation::ClockFuzzing { granularity } => {
                DeviceTuning { clock_granularity: granularity, ..DeviceTuning::none() }
            }
        }
    }
}

impl fmt::Display for Mitigation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mitigation::CachePartitioning { partitions } => {
                write!(f, "cache partitioning ({partitions} regions)")
            }
            Mitigation::RandomizedWarpScheduling { seed } => {
                write!(f, "randomized warp scheduling (seed {seed:#x})")
            }
            Mitigation::ClockFuzzing { granularity } => {
                write!(f, "clock fuzzing ({granularity}-cycle quantum)")
            }
        }
    }
}

/// The before/after picture of a mitigation against one channel.
#[derive(Debug, Clone, PartialEq)]
pub struct MitigationReport {
    /// The evaluated mitigation.
    pub mitigation: Mitigation,
    /// Channel outcome on the unprotected device.
    pub baseline: ChannelOutcome,
    /// Channel outcome with the mitigation active.
    pub mitigated: ChannelOutcome,
}

impl MitigationReport {
    /// Whether the mitigation broke the channel (pushed its error rate to
    /// at least `min_ber`).
    pub fn is_effective(&self, min_ber: f64) -> bool {
        self.baseline.is_error_free() && self.mitigated.ber >= min_ber
    }
}

/// Evaluates a mitigation against the baseline L1 prime+probe channel.
///
/// # Errors
///
/// Propagates channel failures.
pub fn evaluate_against_l1(
    spec: &DeviceSpec,
    mitigation: Mitigation,
    msg: &Message,
) -> Result<MitigationReport, CovertError> {
    let baseline = L1Channel::new(spec.clone()).transmit(msg)?;
    let mitigated = L1Channel::new(spec.clone()).with_tuning(mitigation.tuning()).transmit(msg)?;
    Ok(MitigationReport { mitigation, baseline, mitigated })
}

/// Evaluates a mitigation against the synchronized L1 channel (which also
/// exercises the handshake's robustness machinery).
///
/// # Errors
///
/// Propagates channel failures.
pub fn evaluate_against_sync(
    spec: &DeviceSpec,
    mitigation: Mitigation,
    msg: &Message,
) -> Result<MitigationReport, CovertError> {
    let baseline = SyncChannel::new(spec.clone()).transmit(msg)?;
    let mitigated =
        SyncChannel::new(spec.clone()).with_tuning(mitigation.tuning()).transmit(msg)?;
    Ok(MitigationReport { mitigation, baseline, mitigated })
}

/// Evaluates a mitigation against the per-scheduler parallel SFU channel —
/// the natural target of scheduler randomization.
///
/// # Errors
///
/// Propagates channel failures.
pub fn evaluate_against_parallel_sfu(
    spec: &DeviceSpec,
    mitigation: Mitigation,
    msg: &Message,
) -> Result<MitigationReport, CovertError> {
    let baseline = ParallelSfuChannel::new(spec.clone()).transmit(msg)?;
    let mitigated =
        ParallelSfuChannel::new(spec.clone()).with_tuning(mitigation.tuning()).transmit(msg)?;
    Ok(MitigationReport { mitigation, baseline, mitigated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_spec::presets;

    #[test]
    fn cache_partitioning_kills_the_l1_channel() {
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(16, 0x91);
        let r = evaluate_against_l1(&spec, Mitigation::CachePartitioning { partitions: 2 }, &msg)
            .unwrap();
        assert!(r.is_effective(0.2), "baseline {} mitigated {}", r.baseline.ber, r.mitigated.ber);
    }

    #[test]
    fn clock_fuzzing_kills_the_l1_channel() {
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(16, 0x92);
        // Quantum far above the 49-vs-112-cycle gap.
        let r = evaluate_against_l1(&spec, Mitigation::ClockFuzzing { granularity: 4096 }, &msg)
            .unwrap();
        assert!(r.is_effective(0.2), "baseline {} mitigated {}", r.baseline.ber, r.mitigated.ber);
    }

    #[test]
    fn fine_grained_clock_fuzzing_is_insufficient() {
        // A quantum below the latency gap leaves the channel intact — the
        // defense must be sized to the signal it hides.
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(12, 0x93);
        let r =
            evaluate_against_l1(&spec, Mitigation::ClockFuzzing { granularity: 8 }, &msg).unwrap();
        assert!(r.mitigated.is_error_free(), "ber {}", r.mitigated.ber);
    }

    #[test]
    fn scheduler_randomization_scrambles_the_parallel_sfu_lanes() {
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(16, 0x94);
        let r = evaluate_against_parallel_sfu(
            &spec,
            Mitigation::RandomizedWarpScheduling { seed: 0xD1CE },
            &msg,
        )
        .unwrap();
        assert!(r.baseline.is_error_free());
        assert!(r.mitigated.ber > 0.1, "randomization should corrupt lanes: {}", r.mitigated.ber);
    }

    #[test]
    fn partitioning_defeats_even_the_synchronized_protocol() {
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(8, 0x95);
        let r = evaluate_against_sync(&spec, Mitigation::CachePartitioning { partitions: 2 }, &msg)
            .unwrap();
        assert!(r.baseline.is_error_free());
        assert!(r.mitigated.ber > 0.2, "ber {}", r.mitigated.ber);
    }

    #[test]
    fn display_labels() {
        assert!(Mitigation::CachePartitioning { partitions: 2 }.to_string().contains("2 regions"));
        assert!(Mitigation::ClockFuzzing { granularity: 512 }.to_string().contains("512"));
    }
}

/// Contention-anomaly detection (the paper's other Section-9 direction:
/// "attempt to detect anomalous contention [CC-Hunter]"). Returns the
/// eviction-alternation counts of (a) a covert-channel run and (b) a benign
/// mix of two independent constant-memory workloads of similar intensity —
/// the gap between them is the detector's margin.
///
/// # Errors
///
/// Propagates channel and simulator failures.
pub fn contention_detection_margin(
    spec: &DeviceSpec,
    msg: &Message,
) -> Result<(u64, u64), CovertError> {
    // (a) The synchronized channel: constant ping-pong evictions.
    let run = SyncChannel::new(spec.clone()).transmit_with_noise(msg, Vec::new())?;
    let channel_score = run.eviction_alternations;

    // (b) Benign: two kernels streaming their own constant arrays. Their
    // working sets collide in the cache occasionally but never alternate.
    let mut dev = gpgpu_sim::Device::new(spec.clone());
    let g = spec.const_l1.geometry;
    let make = |base: u64| {
        let mut b = gpgpu_isa::ProgramBuilder::new();
        let lines = g.size_bytes() / g.line_bytes();
        b.repeat(gpgpu_isa::Reg(20), 40, move |b| {
            for k in 0..lines {
                b.mov_imm(gpgpu_isa::Reg(0), base + k * g.line_bytes());
                b.const_load(gpgpu_isa::Reg(0));
            }
        });
        b.build().expect("benign workload assembles")
    };
    let launch = LaunchConfig::new(spec.num_sms, 32);
    let span = g.same_set_stride() * g.ways();
    dev.launch(0, gpgpu_sim::KernelSpec::new("benign-a", make(0), launch))?;
    dev.launch(1, gpgpu_sim::KernelSpec::new("benign-b", make(span), launch))?;
    dev.run_until_idle(200_000_000)?;
    let (_, benign_score) = dev.cache_contention_counters();
    Ok((channel_score, benign_score))
}

#[cfg(test)]
mod detection_tests {
    use super::*;
    use gpgpu_spec::presets;

    #[test]
    fn channel_contention_is_detectably_anomalous() {
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(16, 0x96);
        let (channel, benign) = contention_detection_margin(&spec, &msg).unwrap();
        assert!(
            channel > 10 * benign.max(1),
            "detector margin too small: channel {channel} vs benign {benign}"
        );
    }
}
