//! Dynamic idle-resource discovery ("whitespace communication").
//!
//! When exclusive co-location is impossible, the paper's Section 8 proposes
//! borrowing from white-space wireless networking: "the sender may scan
//! through available resources (e.g. cache sets) in a pre-agreed on order
//! until it discovers idle ones and transmits a beacon pattern on them. The
//! receiver follows by scanning sets until it observes the beacon."
//!
//! This module implements that scheme over the L1 constant cache:
//!
//! 1. **Scan** — each party runs a discovery kernel that, for every cache
//!    set in the pre-agreed order, establishes its own lines and then
//!    probes repeatedly; sets being hammered by a third workload show
//!    sustained misses, idle sets show none.
//! 2. **Select** — both parties independently pick the first idle set (same
//!    rule + same order = same choice, no out-of-band agreement needed).
//! 3. **Communicate** — the ordinary prime+probe channel runs on the chosen
//!    set while the noise keeps hammering its own sets.

use crate::bits::Message;
use crate::channel::{decode_from_miss_counts, ChannelOutcome};
use crate::kernels::{emit_fill, emit_idle_spin, emit_probe_count_misses, miss_threshold, SetRef};
use crate::CovertError;
use gpgpu_isa::{ProgramBuilder, Reg};
use gpgpu_sim::{Device, KernelSpec};
use gpgpu_spec::{DeviceSpec, LaunchConfig};

/// Result of a whitespace discovery + transmission experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct WhitespaceOutcome {
    /// Per-set miss totals observed by the trojan's scan.
    pub trojan_scan: Vec<u64>,
    /// Per-set miss totals observed by the spy's scan.
    pub spy_scan: Vec<u64>,
    /// The set each party selected (first idle in pre-agreed order).
    pub trojan_choice: Option<u64>,
    /// The spy's selection.
    pub spy_choice: Option<u64>,
    /// The transmission outcome on the agreed set (when both agreed).
    pub outcome: Option<ChannelOutcome>,
}

/// Builds the discovery kernel: for every L1 set, fill with own lines, let
/// the dust settle, then probe `reps` times counting misses; pushes one
/// total per set.
fn discovery_program(spec: &DeviceSpec, base: u64, reps: u64) -> gpgpu_isa::Program {
    let geom = spec.const_l1.geometry;
    let thr = miss_threshold(spec.const_l1.hit_latency, spec.const_l2.hit_latency);
    let (acc, _i) = (Reg(22), Reg(23));
    let mut b = ProgramBuilder::new();
    for set in 0..geom.num_sets() {
        let sref = SetRef::new(&geom, base, set);
        emit_fill(&mut b, &sref);
        emit_idle_spin(&mut b, 64, Reg(20));
        b.mov_imm(acc, 0);
        for _ in 0..reps {
            emit_probe_count_misses(&mut b, &sref, thr, Reg(21));
            b.add(acc, acc, Reg(21));
            emit_idle_spin(&mut b, 32, Reg(20));
        }
        b.push_result(acc);
    }
    b.build().expect("discovery program assembles")
}

/// Builds a noise kernel hammering exactly `sets` of the L1, for roughly
/// `iterations` passes.
fn set_noise_program(
    spec: &DeviceSpec,
    base: u64,
    sets: &[u64],
    iterations: u64,
) -> gpgpu_isa::Program {
    let geom = spec.const_l1.geometry;
    let mut b = ProgramBuilder::new();
    let sets = sets.to_vec();
    b.repeat(Reg(20), iterations, move |b| {
        for &s in &sets {
            emit_fill(b, &SetRef::new(&geom, base, s));
        }
    });
    b.build().expect("noise program assembles")
}

/// First set whose scan total is zero (the pre-agreed selection rule).
fn first_idle(scan: &[u64]) -> Option<u64> {
    scan.iter().position(|&m| m == 0).map(|i| i as u64)
}

/// Runs the full whitespace scheme on one device: a third workload hammers
/// `noisy_sets`; the trojan and the spy scan (staggered on one stream, so
/// their scans do not perturb each other), independently select the first
/// idle set, and — when their choices agree — transmit `msg` over it with
/// the per-bit-relaunch channel while the noise continues.
///
/// # Errors
///
/// Propagates simulator failures; returns `Ok` with `outcome: None` when
/// the parties failed to agree on a set (no idle set exists).
pub fn discover_and_transmit(
    spec: &DeviceSpec,
    msg: &Message,
    noisy_sets: &[u64],
    iterations_per_bit: u64,
) -> Result<WhitespaceOutcome, CovertError> {
    let geom = spec.const_l1.geometry;
    let num_sets = geom.num_sets();
    let span = geom.same_set_stride() * geom.ways();
    let (spy_base, trojan_base, noise_base) = (0, span, 2 * span);
    let launch = LaunchConfig::new(spec.num_sms, 32);

    let mut dev = Device::new(spec.clone());
    // Enough noise passes to cover discovery and the whole transmission.
    let noise_iters = 600 + 40 * msg.len() as u64 * iterations_per_bit;
    dev.launch(
        2,
        KernelSpec::new(
            "set-noise",
            set_noise_program(spec, noise_base, noisy_sets, noise_iters),
            launch,
        ),
    )?;
    // Staggered scans on one stream: the trojan scans, then the spy.
    let t_scan = dev.launch(
        0,
        KernelSpec::new("trojan-scan", discovery_program(spec, trojan_base, 6), launch),
    )?;
    let s_scan =
        dev.launch(0, KernelSpec::new("spy-scan", discovery_program(spec, spy_base, 6), launch))?;
    // Run until the scans complete (the noise kernel may still be running).
    dev.run_until_complete(s_scan, 400_000_000)?;
    let trojan_scan_res = dev.results(t_scan)?;
    let spy_scan_res = dev.results(s_scan)?;
    let trojan_scan = trojan_scan_res.warp_results(0, 0).unwrap_or(&[]).to_vec();
    let spy_scan = spy_scan_res.warp_results(0, 0).unwrap_or(&[]).to_vec();
    let trojan_choice = first_idle(&trojan_scan);
    let spy_choice = first_idle(&spy_scan);

    let mut outcome = None;
    if let (Some(tc), Some(sc)) = (trojan_choice, spy_choice) {
        if tc == sc && tc < num_sets {
            // Transmit on the agreed set with per-bit relaunch, alongside
            // the still-running noise.
            let thr = miss_threshold(spec.const_l1.hit_latency, spec.const_l2.hit_latency);
            let spy_set = SetRef::new(&geom, spy_base, tc);
            let trojan_set = SetRef::new(&geom, trojan_base, tc);
            let start_cycle = dev.now();
            let mut received = Vec::with_capacity(msg.len());
            for &bit in msg.bits() {
                let mut sb = ProgramBuilder::new();
                emit_fill(&mut sb, &spy_set);
                sb.repeat(Reg(20), iterations_per_bit, |b| {
                    emit_probe_count_misses(b, &spy_set, thr, Reg(21));
                    b.push_result(Reg(21));
                });
                let spy =
                    dev.launch(0, KernelSpec::new("spy", sb.build().expect("assembles"), launch))?;
                let mut tb = ProgramBuilder::new();
                if bit {
                    tb.repeat(Reg(20), iterations_per_bit, |b| {
                        emit_fill(b, &trojan_set);
                    });
                } else {
                    emit_idle_spin(&mut tb, iterations_per_bit * 64, Reg(20));
                }
                dev.launch(1, KernelSpec::new("trojan", tb.build().expect("assembles"), launch))?;
                // Drain just the channel kernels (noise may persist).
                dev.run_until_complete(spy, 100_000_000)?;
                let r = dev.results(spy)?;
                let samples = r.warp_results(0, 0).unwrap_or(&[]);
                received.push(decode_from_miss_counts(
                    samples,
                    (iterations_per_bit as usize / 4).max(2),
                )?);
            }
            let cycles = dev.now() - start_cycle;
            outcome = Some(
                ChannelOutcome::from_run(
                    spec,
                    msg.clone(),
                    Message::from_bits(received),
                    cycles.max(1),
                )
                .with_stats(*dev.stats()),
            );
        }
    }
    Ok(WhitespaceOutcome { trojan_scan, spy_scan, trojan_choice, spy_choice, outcome })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_spec::presets;

    #[test]
    fn parties_agree_on_the_first_idle_set() {
        let spec = presets::tesla_k40c();
        let msg = Message::from_bits([true, false, true, true]);
        // Noise occupies sets 0-2; set 3 is the first idle one.
        let w = discover_and_transmit(&spec, &msg, &[0, 1, 2], 20).unwrap();
        assert_eq!(w.trojan_choice, Some(3), "trojan scan: {:?}", w.trojan_scan);
        assert_eq!(w.spy_choice, Some(3), "spy scan: {:?}", w.spy_scan);
        let o = w.outcome.expect("agreement reached");
        assert_eq!(o.received, msg, "transmission on discovered set failed");
    }

    #[test]
    fn scan_identifies_exactly_the_noisy_sets() {
        let spec = presets::tesla_k40c();
        let msg = Message::from_bits([true]);
        let w = discover_and_transmit(&spec, &msg, &[1, 4, 6], 20).unwrap();
        for (s, &misses) in w.spy_scan.iter().enumerate() {
            let noisy = [1usize, 4, 6].contains(&s);
            if noisy {
                assert!(misses > 0, "set {s} should look busy: {:?}", w.spy_scan);
            } else {
                assert_eq!(misses, 0, "set {s} should look idle: {:?}", w.spy_scan);
            }
        }
        assert_eq!(w.spy_choice, Some(0));
    }

    #[test]
    fn no_idle_set_means_no_agreement() {
        let spec = presets::tesla_k40c();
        let msg = Message::from_bits([true]);
        let all: Vec<u64> = (0..spec.const_l1.geometry.num_sets()).collect();
        let w = discover_and_transmit(&spec, &msg, &all, 8).unwrap();
        assert_eq!(w.trojan_choice, None);
        assert_eq!(w.spy_choice, None);
        assert!(w.outcome.is_none());
    }
}
