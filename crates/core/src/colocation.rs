//! Establishing co-location (paper Section 3) and forcing *exclusive*
//! co-location (Section 8).
//!
//! The first step of the attack: reverse engineer where the hardware places
//! blocks and warps, then choose launch configurations so the spy and the
//! trojan share the resources the channel needs — and, for noise immunity,
//! so that *nothing else* can share them.

use crate::CovertError;
use gpgpu_isa::{ProgramBuilder, Reg, Special};
use gpgpu_sim::{Device, KernelSpec};
use gpgpu_spec::{DeviceSpec, FuOpKind, LaunchConfig};

/// What the Section-3.1 experiments conclude about the block scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSchedulerReport {
    /// Blocks of a single kernel visit SMs in round-robin order.
    pub round_robin: bool,
    /// A second kernel's blocks reuse leftover capacity on occupied SMs.
    pub leftover_colocation: bool,
    /// When no SM has capacity, later blocks queue until one is released.
    pub queues_when_full: bool,
    /// Observed SM order of the probe kernel's blocks.
    pub first_kernel_sms: Vec<u32>,
}

impl BlockSchedulerReport {
    /// Whether the observations match the leftover policy the paper
    /// reverse engineered on real GPUs.
    pub fn is_leftover_policy(&self) -> bool {
        self.round_robin && self.leftover_colocation && self.queues_when_full
    }
}

/// What the warp-scheduler experiments conclude.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpSchedulerReport {
    /// Warp index -> scheduler assignment observed architecturally.
    pub assignment: Vec<u32>,
    /// Number of schedulers inferred purely from `__sinf` latency steps
    /// (no architectural oracle), as the paper does.
    pub inferred_num_schedulers: u32,
}

impl WarpSchedulerReport {
    /// Whether the assignment is round-robin over `n` schedulers.
    pub fn is_round_robin(&self, n: u32) -> bool {
        self.assignment.iter().enumerate().all(|(i, &s)| s == (i as u32) % n)
    }
}

fn smid_probe(extra_work: u64) -> gpgpu_isa::Program {
    let mut b = ProgramBuilder::new();
    b.read_special(Reg(0), Special::SmId);
    b.push_result(Reg(0));
    if extra_work > 0 {
        b.repeat(Reg(20), extra_work, |b| {
            b.fu(FuOpKind::SpAdd);
        });
    }
    b.build().expect("smid probe assembles")
}

/// Runs the paper's Section-3.1 methodology against a device: launch kernels
/// with varying block configurations, read back `%smid` and block start/stop
/// times, and characterize the placement policy.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn reverse_engineer_block_scheduler(
    spec: &DeviceSpec,
) -> Result<BlockSchedulerReport, CovertError> {
    let n = spec.num_sms;

    // Experiment 1: one kernel, one block per SM — observe the visit order.
    let mut dev = Device::new(spec.clone());
    let k = dev.launch(0, KernelSpec::new("probe", smid_probe(0), LaunchConfig::new(n, 32)))?;
    dev.run_until_idle(10_000_000)?;
    let first_kernel_sms: Vec<u32> = dev.results(k)?.blocks.iter().map(|b| b.sm_id).collect();
    let round_robin = first_kernel_sms
        .iter()
        .enumerate()
        .all(|(i, &sm)| u64::from(sm) == (i as u64) % u64::from(n));

    // Experiment 2: two kernels on different streams — do their blocks
    // co-locate on the same SMs?
    let mut dev = Device::new(spec.clone());
    let a = dev.launch(0, KernelSpec::new("a", smid_probe(400), LaunchConfig::new(n, 32)))?;
    let b = dev.launch(1, KernelSpec::new("b", smid_probe(400), LaunchConfig::new(n, 32)))?;
    dev.run_until_idle(50_000_000)?;
    let sms_a = dev.results(a)?.sms_used();
    let sms_b = dev.results(b)?.sms_used();
    let leftover_colocation = sms_a == sms_b && sms_a.len() as u32 == n;

    // Experiment 3: saturate every SM's threads, then launch a second
    // kernel — its block must start only after a first-kernel block ends.
    let mut dev = Device::new(spec.clone());
    let hog = dev.launch(
        0,
        KernelSpec::new(
            "hog",
            smid_probe(600),
            LaunchConfig::new(n, spec.sm.max_threads).with_registers_per_thread(8),
        ),
    )?;
    let late = dev.launch(1, KernelSpec::new("late", smid_probe(0), LaunchConfig::new(1, 32)))?;
    dev.run_until_idle(100_000_000)?;
    let hog_first_end = dev.results(hog)?.blocks.iter().map(|b| b.end_cycle).min().unwrap_or(0);
    let late_start = dev.results(late)?.blocks[0].start_cycle;
    let queues_when_full = late_start >= hog_first_end;

    Ok(BlockSchedulerReport {
        round_robin,
        leftover_colocation,
        queues_when_full,
        first_kernel_sms,
    })
}

/// Reverse engineers the warp -> warp-scheduler assignment: architecturally
/// (via `%schedid`) and behaviourally (via the positions of the `__sinf`
/// latency steps as warps are added, which reveal the scheduler count
/// without any oracle).
///
/// # Errors
///
/// Propagates simulator failures.
pub fn reverse_engineer_warp_scheduler(
    spec: &DeviceSpec,
) -> Result<WarpSchedulerReport, CovertError> {
    // Architectural assignment for one max-size block.
    let warps = 2 * spec.sm.num_warp_schedulers;
    let mut b = ProgramBuilder::new();
    b.read_special(Reg(0), Special::SchedulerId);
    b.push_result(Reg(0));
    let mut dev = Device::new(spec.clone());
    let k = dev.launch(
        0,
        KernelSpec::new(
            "sched-probe",
            b.build().expect("assembles"),
            LaunchConfig::new(1, warps * 32),
        ),
    )?;
    dev.run_until_idle(10_000_000)?;
    let r = dev.results(k)?;
    let assignment: Vec<u32> =
        (0..warps).map(|w| r.warp_results(0, w).map(|v| v[0] as u32).unwrap_or(u32::MAX)).collect();

    // Behavioural inference: warp-0 __sinf latency vs warp count. The first
    // latency rise happens when a scheduler receives its second contending
    // warp — i.e. at warp count `num_schedulers + 1` once demand exceeds the
    // pipeline depth; more robustly, the step *period* equals the scheduler
    // count.
    let sweep = crate::microbench::fu_latency_sweep(
        spec,
        FuOpKind::SpSinf,
        (1..=warps * 4).collect::<Vec<u32>>().as_slice(),
    )?;
    let latencies: Vec<f64> = sweep.iter().map(|p| p.latency).collect();
    let mut rise_gaps = Vec::new();
    let mut last_rise: Option<usize> = None;
    for i in 1..latencies.len() {
        if latencies[i] > latencies[i - 1] + 0.5 {
            if let Some(prev) = last_rise {
                rise_gaps.push(i - prev);
            }
            last_rise = Some(i);
        }
    }
    // The most common gap between successive latency steps is the number of
    // warp schedulers.
    let inferred = most_common(&rise_gaps).unwrap_or(0) as u32;
    Ok(WarpSchedulerReport { assignment, inferred_num_schedulers: inferred })
}

fn most_common(xs: &[usize]) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for &x in xs {
        let count = xs.iter().filter(|&&y| y == x).count();
        if best.is_none_or(|(_, c)| count > c) {
            best = Some((x, count));
        }
    }
    best.map(|(x, _)| x)
}

/// The Section-3.1 co-residency recipe: each kernel launches one block per
/// SM with one warp per warp scheduler, guaranteeing a warp of each kernel
/// on every scheduler of every SM.
pub fn coresident_recipe(spec: &DeviceSpec) -> (LaunchConfig, LaunchConfig) {
    let cfg = LaunchConfig::new(spec.num_sms, spec.sm.num_warp_schedulers * 32);
    (cfg, cfg)
}

/// The Section-8 *exclusive* co-location recipe: the spy's blocks claim the
/// maximum shared memory per block and the trojan's blocks claim all
/// remaining threads, so no third kernel can place a block anywhere.
///
/// On Fermi/Kepler one spy block saturates the SM's shared memory; on
/// Maxwell (SM capacity = 2x block max) the trojan also claims a full block
/// worth of shared memory, exactly as the paper prescribes.
pub fn exclusive_recipe(spec: &DeviceSpec) -> (LaunchConfig, LaunchConfig) {
    let spy =
        LaunchConfig::new(spec.num_sms, 128).with_shared_mem(spec.sm.max_shared_mem_per_block);
    let leftover_shared = spec.sm.shared_mem_bytes - spec.sm.max_shared_mem_per_block;
    let trojan_threads = spec.sm.max_threads - 128;
    let trojan = LaunchConfig::new(spec.num_sms, trojan_threads).with_shared_mem(leftover_shared);
    (spy, trojan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_spec::presets;

    #[test]
    fn block_scheduler_report_matches_leftover_policy() {
        let r = reverse_engineer_block_scheduler(&presets::tesla_k40c()).unwrap();
        assert!(r.round_robin, "sms: {:?}", r.first_kernel_sms);
        assert!(r.leftover_colocation);
        assert!(r.queues_when_full);
        assert!(r.is_leftover_policy());
    }

    #[test]
    fn warp_scheduler_is_round_robin_and_inferable() {
        let spec = presets::tesla_k40c();
        let r = reverse_engineer_warp_scheduler(&spec).unwrap();
        assert!(r.is_round_robin(4), "assignment: {:?}", r.assignment);
        assert_eq!(r.inferred_num_schedulers, 4, "inferred from latency steps");
    }

    #[test]
    fn fermi_has_two_schedulers_by_inference() {
        let r = reverse_engineer_warp_scheduler(&presets::tesla_c2075()).unwrap();
        assert!(r.is_round_robin(2));
        assert_eq!(r.inferred_num_schedulers, 2);
    }

    #[test]
    fn exclusive_recipe_saturates_threads_and_shared_memory() {
        for spec in presets::all() {
            let (spy, trojan) = exclusive_recipe(&spec);
            assert!(spy.validate(&spec.sm).is_ok());
            assert!(trojan.validate(&spec.sm).is_ok());
            assert_eq!(spy.block.threads + trojan.block.threads, spec.sm.max_threads);
            assert_eq!(
                spy.block.shared_mem_bytes + trojan.block.shared_mem_bytes,
                spec.sm.shared_mem_bytes
            );
        }
    }

    #[test]
    fn coresident_recipe_covers_every_scheduler() {
        let spec = presets::tesla_k40c();
        let (a, b) = coresident_recipe(&spec);
        assert_eq!(a.grid_blocks, 15);
        assert_eq!(a.block.warps(), 4);
        assert_eq!(a, b);
    }
}
