//! Global-memory atomic covert channels (paper Section 6).
//!
//! Plain global loads cannot create measurable contention (the bandwidth is
//! too high — a negative result this crate's tests reproduce), but atomic
//! operations are serviced by a small number of atomic units and queue
//! visibly. The paper defines three access-pattern scenarios whose
//! coalescing behaviour orders the achievable bandwidth (Figure 10):
//!
//! 1. [`AtomicScenario::OneAddress`] — each thread hammers one fixed
//!    address; a warp's 32 ops coalesce into one segment.
//! 2. [`AtomicScenario::Strided`] — addresses advance by one segment per
//!    iteration; still coalesced within the warp.
//! 3. [`AtomicScenario::Consecutive`] — each thread walks consecutive
//!    addresses but lanes are a segment apart, so every warp op is fully
//!    un-coalesced (32 transactions) — the slowest channel.

use crate::bits::Message;
use crate::channel::{decode_from_latencies, transmit_per_bit, ChannelOutcome};
use crate::CovertError;
use gpgpu_isa::{LanePattern, ProgramBuilder, Reg};
use gpgpu_spec::{DeviceSpec, LaunchConfig};

/// Default atomic warp-ops per timed iteration.
pub const DEFAULT_OPS_PER_ITER: u64 = 8;

/// Default timed iterations per bit.
pub const DEFAULT_ITERATIONS: u64 = 12;

/// The paper's three global-memory access scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicScenario {
    /// Scenario 1: fixed per-thread addresses (fully coalesced, L2-merged).
    OneAddress,
    /// Scenario 2: strided, advancing one segment per op (coalesced).
    Strided,
    /// Scenario 3: consecutive per-thread, un-coalesced across the warp.
    Consecutive,
}

impl AtomicScenario {
    /// All scenarios in paper order.
    pub const ALL: [AtomicScenario; 3] =
        [AtomicScenario::OneAddress, AtomicScenario::Strided, AtomicScenario::Consecutive];

    /// Paper label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AtomicScenario::OneAddress => "One address",
            AtomicScenario::Strided => "Strided, coalesced",
            AtomicScenario::Consecutive => "Consecutive, un-coalesced",
        }
    }
}

/// A baseline (per-bit relaunch) atomic-contention channel.
#[derive(Debug, Clone)]
pub struct AtomicChannel {
    spec: DeviceSpec,
    /// Which access-pattern scenario to use.
    pub scenario: AtomicScenario,
    /// Atomic warp-ops per timed iteration.
    pub ops_per_iter: u64,
    /// Timed iterations per bit.
    pub iterations: u64,
    /// Launch jitter `(max_cycles, seed)`.
    pub jitter: Option<(u64, u64)>,
    /// Deterministic fault plan installed on the device for the run.
    pub fault_plan: Option<gpgpu_sim::FaultPlan>,
    /// Noise co-runner kernels launched alongside every bit's pair.
    pub noise: Vec<gpgpu_sim::KernelSpec>,
    /// Device tuning (engine mode, mitigation knobs) for the run.
    pub tuning: gpgpu_sim::DeviceTuning,
}

impl AtomicChannel {
    /// A Section-6 channel for `scenario` with default parameters.
    pub fn new(spec: DeviceSpec, scenario: AtomicScenario) -> Self {
        AtomicChannel {
            spec,
            scenario,
            ops_per_iter: DEFAULT_OPS_PER_ITER,
            iterations: DEFAULT_ITERATIONS,
            jitter: Some((crate::cache_channel::DEFAULT_JITTER, 0x5EED)),
            fault_plan: None,
            noise: Vec::new(),
            tuning: gpgpu_sim::DeviceTuning::none(),
        }
    }

    /// Sets the device tuning (engine mode, mitigation knobs).
    pub fn with_tuning(mut self, tuning: gpgpu_sim::DeviceTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Installs a deterministic fault plan for every transmission.
    pub fn with_faults(mut self, plan: gpgpu_sim::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Launches these noise co-runner kernels alongside every bit.
    pub fn with_noise(mut self, noise: Vec<gpgpu_sim::KernelSpec>) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the iteration count.
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Sets or disables launch jitter.
    pub fn with_jitter(mut self, jitter: Option<(u64, u64)>) -> Self {
        self.jitter = jitter;
        self
    }

    /// The device this channel targets.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Emits the per-iteration atomic access loop for one party.
    ///
    /// `array_base` is the party's array; each *block* works in its own
    /// slice (`block_id * 4 KiB`) so the grid collectively covers all the
    /// atomic units.
    fn build_program(&self, array_base: u64, timed: bool, iterations: u64) -> gpgpu_isa::Program {
        let seg = self.spec.mem.coalesce_segment;
        let (addr, t0, t1, lat) = (Reg(16), Reg(17), Reg(18), Reg(19));
        let mut b = ProgramBuilder::new();
        // addr = array_base + block_id * (4 KiB + one segment). The extra
        // segment staggers the blocks across the address-interleaved atomic
        // units, so the grid collectively exercises all of them (a stride
        // that is a multiple of units*segment would pin every block to one
        // unit and the two kernels might never collide).
        b.read_special(addr, gpgpu_isa::Special::BlockId);
        b.mul_imm(addr, addr, 4096 + seg);
        b.add_imm(addr, addr, array_base);
        let ops = self.ops_per_iter;
        let scenario = self.scenario;
        b.repeat(Reg(20), iterations, move |b| {
            if timed {
                b.read_clock(t0);
            }
            for _ in 0..ops {
                match scenario {
                    AtomicScenario::OneAddress => {
                        b.atomic_add(addr, LanePattern::Consecutive { elem_bytes: 4 });
                    }
                    AtomicScenario::Strided => {
                        b.atomic_add(addr, LanePattern::Consecutive { elem_bytes: 4 });
                        b.add_imm(addr, addr, seg);
                    }
                    AtomicScenario::Consecutive => {
                        b.atomic_add(addr, LanePattern::Spread { stride_bytes: seg });
                        b.add_imm(addr, addr, 4);
                    }
                }
            }
            if timed {
                b.read_clock(t1);
                b.sub(lat, t1, t0);
                b.push_result(lat);
            }
        });
        b.build().expect("atomic program assembles")
    }

    /// Calibrates the decode threshold by measuring one idle and one
    /// contended iteration batch on a scratch device, returning the midpoint
    /// of the observed means. This mirrors what a real attacker does before
    /// transmitting.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn calibrate_threshold(&self) -> Result<u64, CovertError> {
        let (idle_mean, hot_mean) = self.measure_service_latencies()?;
        Ok((idle_mean + hot_mean) / 2)
    }

    /// Measures the mean per-iteration atomic service latency with no
    /// contender and under trojan contention, on scratch devices — the raw
    /// evidence behind [`AtomicChannel::calibrate_threshold`], also recorded
    /// as the `atomic_idle` / `atomic_contended` rows of an extracted
    /// [`gpgpu_sim::LatencyTable`].
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn measure_service_latencies(&self) -> Result<(u64, u64), CovertError> {
        let mean = |samples: &[u64]| -> u64 {
            if samples.is_empty() {
                0
            } else {
                samples.iter().sum::<u64>() / samples.len() as u64
            }
        };
        let launch = LaunchConfig::new(self.spec.num_sms, 32);
        let trojan_launch = LaunchConfig::new(self.spec.num_sms, 256);
        let mut idle_mean = 0;
        let mut hot_mean = 0;
        for contended in [false, true] {
            let mut dev = crate::pool::acquire(&self.spec, self.tuning);
            let spy_base = dev.alloc_global(1 << 20);
            let trojan_base = dev.alloc_global(1 << 20);
            let spy = dev.launch(
                0,
                gpgpu_sim::KernelSpec::new(
                    "spy-cal",
                    self.build_program(spy_base, true, self.iterations),
                    launch,
                ),
            )?;
            if contended {
                dev.launch(
                    1,
                    gpgpu_sim::KernelSpec::new(
                        "trojan-cal",
                        self.build_program(trojan_base, false, self.iterations * 3 / 2),
                        trojan_launch,
                    ),
                )?;
            }
            dev.run_until_idle(500_000_000)?;
            let r = dev.results(spy)?;
            let samples = r.warp_results(0, 0).unwrap_or(&[]).to_vec();
            if contended {
                hot_mean = mean(&samples);
            } else {
                idle_mean = mean(&samples);
            }
        }
        Ok((idle_mean, hot_mean))
    }

    /// Transmits `msg` over the atomic channel.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures from calibration or transmission.
    pub fn transmit(&self, msg: &Message) -> Result<ChannelOutcome, CovertError> {
        let threshold = self.calibrate_threshold()?;
        let min_hot = ((self.iterations as usize) / 4).max(2).min(self.iterations as usize);
        // Array bases must match the calibration device's allocator layout:
        // recreate deterministically.
        let mut probe_dev = crate::pool::acquire(&self.spec, self.tuning);
        let spy_base = probe_dev.alloc_global(1 << 20);
        let trojan_base = probe_dev.alloc_global(1 << 20);
        drop(probe_dev);

        let iterations = self.iterations;
        let me = self.clone();
        let spy_program = move || me.build_program(spy_base, true, iterations);
        let me2 = self.clone();
        let trojan_program = move |bit: bool| {
            if bit {
                me2.build_program(trojan_base, false, iterations * 3 / 2)
            } else {
                let mut b = ProgramBuilder::new();
                crate::kernels::emit_idle_spin(&mut b, iterations * 16, Reg(20));
                b.build().expect("idle program assembles")
            }
        };
        let decode = move |samples: &[u64]| decode_from_latencies(samples, threshold, min_hot);
        let launch = LaunchConfig::new(self.spec.num_sms, 32);
        // Four trojan warps per block saturate the atomic units; one is not
        // enough to queue visibly behind the ~200-cycle round trip.
        let trojan_launch = LaunchConfig::new(self.spec.num_sms, 256);
        let (outcome, _dev) = transmit_per_bit(
            &self.spec,
            self.tuning,
            self.jitter,
            self.fault_plan,
            &self.noise,
            msg,
            &trojan_program,
            &spy_program,
            (launch, trojan_launch),
            (0, 0),
            &decode,
            500_000_000,
            None,
        )?;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_spec::presets;

    #[test]
    fn calibration_separates_idle_from_contended() {
        for scenario in AtomicScenario::ALL {
            let ch = AtomicChannel::new(presets::tesla_k40c(), scenario);
            let thr = ch.calibrate_threshold().unwrap();
            assert!(thr > 0, "{scenario:?} produced zero threshold");
        }
    }

    #[test]
    fn kepler_one_address_channel_error_free() {
        let ch = AtomicChannel::new(presets::tesla_k40c(), AtomicScenario::OneAddress);
        let msg = Message::from_bits([true, false, true, false]);
        let o = ch.transmit(&msg).unwrap();
        assert_eq!(o.received, msg, "got {} want {}", o.received, o.sent);
    }

    #[test]
    fn uncoalesced_scenario_is_slowest() {
        let msg = Message::from_bits([true, false, true, false]);
        let spec = presets::tesla_k40c();
        let bw = |s: AtomicScenario| {
            AtomicChannel::new(spec.clone(), s).transmit(&msg).unwrap().bandwidth_kbps
        };
        let coalesced = bw(AtomicScenario::Strided);
        let uncoalesced = bw(AtomicScenario::Consecutive);
        assert!(
            uncoalesced < coalesced,
            "scenario 3 should be slowest: {uncoalesced} vs {coalesced}"
        );
    }

    #[test]
    fn scenario_labels() {
        assert_eq!(AtomicScenario::OneAddress.label(), "One address");
        assert_eq!(AtomicScenario::ALL.len(), 3);
    }
}
