//! Thread-local device pooling for per-trial channel runs.
//!
//! Every baseline channel builds a fresh [`Device`] per transmission (and
//! the paper's sweeps run thousands of transmissions). Construction is not
//! free: caches, port horizons and result tables are all heap-backed, and a
//! figure sweep rebuilds them for every trial. The pool keeps finished
//! devices around per thread, keyed by `(DeviceSpec, DeviceTuning)`, and
//! hands them back out after restoring their *pristine* (just-built)
//! [`DeviceSnapshot`] — so a reused device is observably identical to a
//! fresh one, but its allocations (SoA warp tables, record arenas, cache
//! arrays) stay warm across trials. After the first trial of a sweep cell,
//! acquiring a device performs no heap allocation.
//!
//! Bit-identity is the contract: the seed-determinism and
//! engine-equivalence suites run over pooled devices, and
//! [`acquire`]-reuse must be indistinguishable from construction. Set the
//! `GPGPU_POOL_DISABLE` environment variable (or call [`set_disabled`]) to
//! force the per-trial-construction seed behavior, e.g. for the ablation
//! benchmarks' baseline arm.

use gpgpu_sim::{Device, DeviceSnapshot, DeviceTuning};
use gpgpu_spec::DeviceSpec;
use std::cell::{Cell, RefCell};
use std::ops::{Deref, DerefMut};

/// Upper bound on retained devices per thread; acquisitions beyond this
/// still work, the surplus devices are simply dropped on lease release.
const MAX_POOLED: usize = 8;

struct PoolEntry {
    spec: DeviceSpec,
    tuning: DeviceTuning,
    dev: Device,
    /// The device's state straight out of `Device::with_tuning`, captured
    /// once; restored on every reuse so leases always start cold.
    pristine: DeviceSnapshot,
}

thread_local! {
    static POOL: RefCell<Vec<PoolEntry>> = const { RefCell::new(Vec::new()) };
    /// `None` = not yet resolved from the environment.
    static DISABLED: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Resolves the raw `GPGPU_POOL_DISABLE` lookup into a disable flag plus,
/// when the value is not one of the recognized spellings (unset, empty,
/// `0`, `1`), the offending value for a one-time warning. Unrecognized
/// non-empty values keep their legacy meaning — pooling disabled — so a
/// typo degrades performance, never determinism.
fn resolve_pool_disable(raw: Option<std::ffi::OsString>) -> (bool, Option<String>) {
    match raw {
        None => (false, None),
        Some(v) if v.is_empty() || v == "0" => (false, None),
        Some(v) if v == "1" => (true, None),
        Some(v) => (true, Some(v.to_string_lossy().into_owned())),
    }
}

fn pooling_disabled() -> bool {
    DISABLED.with(|d| match d.get() {
        Some(v) => v,
        None => {
            let (v, rejected) = resolve_pool_disable(std::env::var_os("GPGPU_POOL_DISABLE"));
            if let Some(rejected) = rejected {
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "warning: unrecognized GPGPU_POOL_DISABLE value `{rejected}` (expected \
                         0 or 1); treating it as 1 and disabling the device pool"
                    );
                });
            }
            d.set(Some(v));
            v
        }
    })
}

/// Overrides pooling for the current thread: `true` makes every
/// [`acquire`] build (and drop) a fresh device, the seed per-trial
/// behavior; `false` re-enables reuse. Takes precedence over the
/// `GPGPU_POOL_DISABLE` environment variable.
pub fn set_disabled(disabled: bool) {
    DISABLED.with(|d| d.set(Some(disabled)));
}

/// Drops every device retained by the current thread's pool.
pub fn clear() {
    POOL.with(|p| p.borrow_mut().clear());
}

/// Number of idle devices retained by the current thread's pool.
pub fn retained() -> usize {
    POOL.with(|p| p.borrow().len())
}

/// An exclusively held device checked out of the thread-local pool.
///
/// Dereferences to [`Device`]; dropping the lease returns the device to the
/// pool (unless pooling was disabled when it was acquired, in which case
/// the device is simply dropped).
#[derive(Debug)]
pub struct DeviceLease {
    dev: Option<Device>,
    /// Present only for pooled leases: the key and pristine state needed to
    /// re-shelve the device on drop.
    retain: Option<(DeviceSpec, DeviceTuning, DeviceSnapshot)>,
}

/// Checks a device matching `(spec, tuning)` out of the current thread's
/// pool, restoring its pristine just-built state; builds one if the pool
/// has no match (or pooling is disabled). The returned device is always
/// observably identical to `Device::with_tuning(spec.clone(), tuning)`.
pub fn acquire(spec: &DeviceSpec, tuning: DeviceTuning) -> DeviceLease {
    if pooling_disabled() {
        return DeviceLease { dev: Some(Device::with_tuning(spec.clone(), tuning)), retain: None };
    }
    let hit = POOL.with(|p| {
        let mut pool = p.borrow_mut();
        pool.iter().position(|e| e.tuning == tuning && e.spec == *spec).map(|i| pool.swap_remove(i))
    });
    if let Some(mut entry) = hit {
        entry.dev.restore(&entry.pristine).expect("a pooled snapshot matches its own device");
        let PoolEntry { spec, tuning, dev, pristine } = entry;
        return DeviceLease { dev: Some(dev), retain: Some((spec, tuning, pristine)) };
    }
    let dev = Device::with_tuning(spec.clone(), tuning);
    let pristine = dev.snapshot().expect("a freshly built device is idle");
    DeviceLease { dev: Some(dev), retain: Some((spec.clone(), tuning, pristine)) }
}

impl Deref for DeviceLease {
    type Target = Device;
    fn deref(&self) -> &Device {
        self.dev.as_ref().expect("the device is present until drop")
    }
}

impl DerefMut for DeviceLease {
    fn deref_mut(&mut self) -> &mut Device {
        self.dev.as_mut().expect("the device is present until drop")
    }
}

impl Drop for DeviceLease {
    fn drop(&mut self) {
        if let (Some(dev), Some((spec, tuning, pristine))) = (self.dev.take(), self.retain.take()) {
            POOL.with(|p| {
                let mut pool = p.borrow_mut();
                if pool.len() < MAX_POOLED {
                    pool.push(PoolEntry { spec, tuning, dev, pristine });
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::Message;
    use crate::cache_channel::L1Channel;
    use gpgpu_spec::presets;

    #[test]
    fn leases_start_cold_even_after_dirty_reuse() {
        clear();
        set_disabled(false);
        let spec = presets::tesla_k40c();
        {
            let mut dev = acquire(&spec, DeviceTuning::none());
            let mut b = gpgpu_isa::ProgramBuilder::new();
            b.mov_imm(gpgpu_isa::Reg(0), 7);
            b.push_result(gpgpu_isa::Reg(0));
            dev.alloc_constant(4096);
            dev.launch(
                0,
                gpgpu_sim::KernelSpec::new(
                    "dirty",
                    b.build().unwrap(),
                    gpgpu_spec::LaunchConfig::new(4, 64),
                ),
            )
            .unwrap();
            dev.run_until_idle(1_000_000).unwrap();
            assert!(dev.now() > 0);
        }
        assert_eq!(retained(), 1, "the dropped lease returned to the pool");
        let dev = acquire(&spec, DeviceTuning::none());
        assert_eq!(dev.now(), 0, "a reused device starts at cycle zero");
        assert!(dev.kernel_names().is_empty(), "no kernel history leaks across leases");
        drop(dev);
        clear();
    }

    #[test]
    fn mismatched_specs_do_not_share_devices() {
        clear();
        set_disabled(false);
        drop(acquire(&presets::tesla_k40c(), DeviceTuning::none()));
        assert_eq!(retained(), 1);
        // A different spec misses the pooled Kepler and builds its own.
        let m = acquire(&presets::quadro_m4000(), DeviceTuning::none());
        assert_eq!(retained(), 1, "the Kepler stays shelved; the Maxwell was built fresh");
        assert_eq!(m.spec().name, "Quadro M4000");
        drop(m);
        assert_eq!(retained(), 2, "both devices shelved once the Maxwell lease drops");
        clear();
    }

    #[test]
    fn disabled_pooling_never_retains() {
        clear();
        set_disabled(true);
        drop(acquire(&presets::tesla_k40c(), DeviceTuning::none()));
        assert_eq!(retained(), 0, "disabled leases are dropped, not shelved");
        set_disabled(false);
        clear();
    }

    #[test]
    fn pooled_transmissions_are_bit_identical_to_fresh_ones() {
        clear();
        set_disabled(false);
        let msg = Message::pseudo_random(24, 0x77);
        let ch = L1Channel::new(presets::tesla_k40c());
        // First transmit builds devices; the second reuses them from the
        // pool. The outcome (cycles, bandwidth, received bits, engine
        // counters) must not change at all.
        let first = ch.transmit(&msg).unwrap();
        assert!(retained() > 0, "the transmit's device returned to the pool");
        let second = ch.transmit(&msg).unwrap();
        assert_eq!(first, second, "device reuse must be observably invisible");
        // And identical to a run with pooling off entirely.
        set_disabled(true);
        let fresh = ch.transmit(&msg).unwrap();
        assert_eq!(first, fresh, "pooling must not perturb the seed behavior");
        set_disabled(false);
        clear();
    }

    #[test]
    fn pool_disable_env_resolution_is_typed() {
        use std::ffi::OsString;
        assert_eq!(resolve_pool_disable(None), (false, None));
        assert_eq!(resolve_pool_disable(Some(OsString::from(""))), (false, None));
        assert_eq!(resolve_pool_disable(Some(OsString::from("0"))), (false, None));
        assert_eq!(resolve_pool_disable(Some(OsString::from("1"))), (true, None));
        // Legacy semantics preserved (any other non-empty value disables),
        // but now flagged for the one-time warning.
        assert_eq!(
            resolve_pool_disable(Some(OsString::from("yes"))),
            (true, Some("yes".to_string()))
        );
    }
}
