//! Attack/defense co-evolution arena (paper Section 9, evaluated).
//!
//! The paper proposes mitigations but never pits them against an attacker
//! that *adapts*. This module closes that loop with a full tournament: every
//! channel family — the five static attackers of
//! [`mitigations::ChannelFamily`](crate::mitigations::ChannelFamily) plus
//! the adaptive degradation-ladder link of [`crate::linkmon`] as the
//! headline attacker — against every deployed defense and defense
//! *combination* ([`DefenseSpec`]), reporting the **residual bandwidth**
//! each attacker retains in every cell of the matrix.
//!
//! The matrix makes the composition argument measurable: cache partitioning
//! alone zeroes the cache channels but leaves the atomic and SFU rows at
//! full bandwidth, and the adaptive attacker *demonstrates* the gap by
//! hopping families mid-transmission (its escalation trace is recorded per
//! cell). Only a composed defense covering every contended resource pushes
//! the whole column to zero.

use crate::bits::Message;
use crate::linkmon::{AdaptiveLink, LadderStage, LinkEnvironment};
use crate::mitigations::{evaluate_against_family, ChannelFamily, MitigationVerdict};
use crate::CovertError;
use gpgpu_spec::topology::canonical_alias;
use gpgpu_spec::{DefenseSpec, DeviceSpec, TopologySpec};
use std::fmt::Write as _;

/// One attacker row of the arena matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attacker {
    /// A single channel family with fixed parameters (no adaptation).
    Static(ChannelFamily),
    /// The adaptive link layer: framing + ARQ + online recalibration +
    /// the family-fallback degradation ladder.
    Adaptive,
}

impl Attacker {
    /// Every attacker, in matrix-row order (static families first, the
    /// adaptive ladder last).
    pub const ALL: [Attacker; 6] = [
        Attacker::Static(ChannelFamily::L1),
        Attacker::Static(ChannelFamily::Sync),
        Attacker::Static(ChannelFamily::ParallelSfu),
        Attacker::Static(ChannelFamily::Atomic),
        Attacker::Static(ChannelFamily::Nvlink),
        Attacker::Adaptive,
    ];

    /// Short label for matrix rows and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            Attacker::Static(family) => family.label(),
            Attacker::Adaptive => "adaptive",
        }
    }
}

/// Arena parameters: the device, the defense columns, and the message.
#[derive(Debug, Clone)]
pub struct ArenaConfig {
    /// Device every on-chip attacker runs on.
    pub spec: DeviceSpec,
    /// Defense columns beyond the implicit undefended baseline column.
    pub defenses: Vec<DefenseSpec>,
    /// Message length in bits.
    pub bits: usize,
    /// Message seed (the matrix is deterministic given config).
    pub seed: u64,
    /// Multi-GPU topology for the nvlink row and the adaptive ladder's
    /// off-die rung. `None` turns nvlink cells into typed not-evaluable
    /// entries and removes the ladder's last escape hatch.
    pub topology: Option<TopologySpec>,
    /// BER at or above which a channel counts as broken (residual
    /// bandwidth zero).
    pub min_ber: f64,
}

impl ArenaConfig {
    /// The default tournament on `spec`: a 16-bit message against the three
    /// single mitigations (partition=2, randsched, fuzz=4096) plus one
    /// composed defense, with a dual-GPU topology of the same device so
    /// every family is evaluable.
    pub fn new(spec: DeviceSpec) -> Self {
        let defenses = ["partition=2", "randsched=0xd1ce", "fuzz=4096", "partition=2,fuzz=4096"]
            .iter()
            .map(|s| DefenseSpec::from_spec(s).expect("default defenses are well-formed"))
            .collect();
        let topology = canonical_alias(&spec.name).and_then(|alias| TopologySpec::dual(alias).ok());
        ArenaConfig { spec, defenses, bits: 16, seed: 0xA12E, topology, min_ber: 0.2 }
    }

    /// Replaces the defense columns (the undefended baseline stays implicit).
    pub fn with_defenses(mut self, defenses: Vec<DefenseSpec>) -> Self {
        self.defenses = defenses;
        self
    }

    /// Sets the message length.
    pub fn with_bits(mut self, bits: usize) -> Self {
        self.bits = bits;
        self
    }

    /// Sets the multi-GPU topology.
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Removes the topology: nvlink cells become typed not-evaluable
    /// entries and the adaptive ladder loses its off-die rung.
    pub fn without_topology(mut self) -> Self {
        self.topology = None;
        self
    }
}

/// One cell of the matrix: one attacker under one defense.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaCell {
    /// The defense this cell ran under.
    pub defense: DefenseSpec,
    /// Bit error rate of the attacker's best delivered (or best-effort)
    /// message under the defense.
    pub ber: f64,
    /// Bandwidth (kb/s) the attacker retains under the defense; zero once
    /// the defense has broken the channel.
    pub residual_bandwidth_kbps: f64,
    /// Whether the attacker still delivered the message under the defense.
    pub delivered: bool,
    /// Three-state defense verdict (static attackers only; the adaptive
    /// attacker has no per-family baseline to compare against).
    pub verdict: Option<MitigationVerdict>,
    /// The family the adaptive ladder settled on (adaptive row only).
    pub final_family: Option<String>,
    /// Whether the adaptive attacker *escaped* this defense by hopping to
    /// another channel family (a [`LadderStage::Fallback`] event fired and
    /// the message was still delivered).
    pub fallback_escape: bool,
    /// The adaptive ladder's full escalation trace for this cell, one line
    /// per rung (empty for static attackers).
    pub escalation: Vec<String>,
    /// Typed reason the cell is not evaluable (e.g. the nvlink family
    /// without a topology); such cells score zero residual bandwidth.
    pub error: Option<String>,
}

impl ArenaCell {
    fn not_evaluable(defense: &DefenseSpec, error: String) -> Self {
        ArenaCell {
            defense: defense.clone(),
            ber: 1.0,
            residual_bandwidth_kbps: 0.0,
            delivered: false,
            verdict: None,
            final_family: None,
            fallback_escape: false,
            escalation: Vec::new(),
            error: Some(error),
        }
    }
}

/// One attacker row.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaRow {
    /// The attacker.
    pub attacker: Attacker,
    /// One cell per defense column, in [`ArenaReport::defenses`] order.
    pub cells: Vec<ArenaCell>,
}

/// The full residual-bandwidth matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaReport {
    /// Device name the tournament ran on.
    pub device: String,
    /// Message length in bits.
    pub bits: usize,
    /// BER cutoff used for residual bandwidth.
    pub min_ber: f64,
    /// Defense columns (column 0 is always the undefended baseline).
    pub defenses: Vec<DefenseSpec>,
    /// Attacker rows, in [`Attacker::ALL`] order.
    pub rows: Vec<ArenaRow>,
}

impl ArenaReport {
    /// The cell for `attacker` under the defense whose canonical spec
    /// string is `defense`.
    pub fn cell(&self, attacker: Attacker, defense: &str) -> Option<&ArenaCell> {
        let col = self.defenses.iter().position(|d| d.to_spec() == defense)?;
        self.rows.iter().find(|r| r.attacker == attacker).and_then(|r| r.cells.get(col))
    }

    /// Every adaptive-row cell where the attacker escaped the deployed
    /// defense via family fallback — the cells proving that defending one
    /// resource only reroutes the channel.
    pub fn fallback_escapes(&self) -> Vec<&ArenaCell> {
        self.rows
            .iter()
            .filter(|r| r.attacker == Attacker::Adaptive)
            .flat_map(|r| r.cells.iter())
            .filter(|c| c.fallback_escape)
            .collect()
    }

    /// Renders the matrix as an aligned text table with a legend.
    pub fn render(&self) -> String {
        let cols: Vec<String> = self.defenses.iter().map(|d| d.to_spec()).collect();
        let cell_text = |c: &ArenaCell| -> String {
            if c.error.is_some() {
                "x".to_string()
            } else if c.residual_bandwidth_kbps == 0.0 {
                "-".to_string()
            } else {
                let marker = if c.fallback_escape { "^" } else { "" };
                format!("{:.2}{marker}", c.residual_bandwidth_kbps)
            }
        };
        let mut widths: Vec<usize> = cols.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.cells
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let t = cell_text(c);
                        widths[i] = widths[i].max(t.len());
                        t
                    })
                    .collect()
            })
            .collect();
        let name_w = self.rows.iter().map(|r| r.attacker.label().len()).max().unwrap_or(0).max(8);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "residual bandwidth (kb/s) on {} at max BER {:.2}",
            self.device, self.min_ber
        );
        let _ = writeln!(
            out,
            "  '-' defense broke the channel, 'x' not evaluable, '^' delivered via family fallback"
        );
        let _ = write!(out, "{:<name_w$}", "attacker");
        for (c, w) in cols.iter().zip(&widths) {
            let _ = write!(out, " | {c:>w$}");
        }
        out.push('\n');
        for (row, cells) in self.rows.iter().zip(&rendered) {
            let _ = write!(out, "{:<name_w$}", row.attacker.label());
            for (t, w) in cells.iter().zip(&widths) {
                let _ = write!(out, " | {t:>w$}");
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the full matrix (escalation traces included) as JSON.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"device\": \"{}\",", esc(&self.device));
        let _ = writeln!(out, "  \"bits\": {},", self.bits);
        let _ = writeln!(out, "  \"min_ber\": {},", self.min_ber);
        let defenses: Vec<String> =
            self.defenses.iter().map(|d| format!("\"{}\"", esc(&d.to_spec()))).collect();
        let _ = writeln!(out, "  \"defenses\": [{}],", defenses.join(", "));
        out.push_str("  \"rows\": [\n");
        for (ri, row) in self.rows.iter().enumerate() {
            let _ = writeln!(out, "    {{\"attacker\": \"{}\", \"cells\": [", row.attacker.label());
            for (ci, c) in row.cells.iter().enumerate() {
                let verdict = c.verdict.map_or("null".to_string(), |v| format!("\"{v}\""));
                let final_family = c
                    .final_family
                    .as_deref()
                    .map_or("null".to_string(), |f| format!("\"{}\"", esc(f)));
                let error =
                    c.error.as_deref().map_or("null".to_string(), |e| format!("\"{}\"", esc(e)));
                let escalation: Vec<String> =
                    c.escalation.iter().map(|e| format!("\"{}\"", esc(e))).collect();
                let _ = write!(
                    out,
                    "      {{\"defense\": \"{}\", \"ber\": {}, \"residual_kbps\": {}, \
                     \"delivered\": {}, \"verdict\": {}, \"final_family\": {}, \
                     \"fallback_escape\": {}, \"error\": {}, \"escalation\": [{}]}}",
                    esc(&c.defense.to_spec()),
                    c.ber,
                    c.residual_bandwidth_kbps,
                    c.delivered,
                    verdict,
                    final_family,
                    c.fallback_escape,
                    error,
                    escalation.join(", ")
                );
                out.push_str(if ci + 1 < row.cells.len() { ",\n" } else { "\n" });
            }
            out.push_str("    ]}");
            out.push_str(if ri + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn static_cell(
    config: &ArenaConfig,
    family: ChannelFamily,
    defense: &DefenseSpec,
    msg: &Message,
) -> ArenaCell {
    match evaluate_against_family(&config.spec, family, defense, msg, config.topology.as_ref()) {
        Ok(report) => {
            let residual = report.residual_bandwidth_kbps(config.min_ber);
            ArenaCell {
                defense: defense.clone(),
                ber: report.mitigated.ber,
                residual_bandwidth_kbps: residual,
                delivered: residual > 0.0,
                verdict: Some(report.verdict(config.min_ber)),
                final_family: None,
                fallback_escape: false,
                escalation: Vec::new(),
                error: None,
            }
        }
        Err(e) => ArenaCell::not_evaluable(defense, e.to_string()),
    }
}

fn adaptive_cell(config: &ArenaConfig, defense: &DefenseSpec, msg: &Message) -> ArenaCell {
    let mut env = LinkEnvironment::clean().with_defense(defense);
    if let Some(topology) = &config.topology {
        env = env.with_topology(topology.clone());
    }
    let link = AdaptiveLink::new(config.spec.clone()).with_env(env);
    match link.transmit(msg) {
        Ok(out) => {
            let delivered = out.diagnostic.delivered;
            let residual = if delivered && out.report.cycles > 0 {
                config.spec.bandwidth_kbps(msg.len() as u64, out.report.cycles)
            } else {
                0.0
            };
            let fallback_escape =
                delivered && out.diagnostic.stages.iter().any(|s| s.stage == LadderStage::Fallback);
            let escalation = out
                .diagnostic
                .stages
                .iter()
                .map(|s| format!("{}[{}]: {}", s.stage.label(), s.family.label(), s.detail))
                .collect();
            ArenaCell {
                defense: defense.clone(),
                ber: out.diagnostic.ber,
                residual_bandwidth_kbps: residual,
                delivered,
                verdict: None,
                final_family: Some(out.diagnostic.final_family.label().to_string()),
                fallback_escape,
                escalation,
                error: None,
            }
        }
        Err(e) => ArenaCell::not_evaluable(defense, e.to_string()),
    }
}

/// Runs the full tournament: every attacker of [`Attacker::ALL`] against
/// the undefended baseline plus every defense column of `config`, on one
/// deterministic message. Per-cell failures (e.g. nvlink without a
/// topology) are recorded as typed not-evaluable cells, never aborting the
/// matrix.
///
/// # Errors
///
/// [`CovertError::Config`] when `config.bits` is zero (an empty message
/// has no bandwidth to measure).
pub fn run_arena(config: &ArenaConfig) -> Result<ArenaReport, CovertError> {
    if config.bits == 0 {
        return Err(CovertError::Config {
            reason: "arena message must have at least one bit".into(),
        });
    }
    let msg = Message::pseudo_random(config.bits, config.seed);
    let mut defenses = vec![DefenseSpec::none()];
    for d in &config.defenses {
        if !defenses.contains(d) {
            defenses.push(d.clone());
        }
    }
    let rows = Attacker::ALL
        .iter()
        .map(|&attacker| ArenaRow {
            attacker,
            cells: defenses
                .iter()
                .map(|defense| match attacker {
                    Attacker::Static(family) => static_cell(config, family, defense, &msg),
                    Attacker::Adaptive => adaptive_cell(config, defense, &msg),
                })
                .collect(),
        })
        .collect();
    Ok(ArenaReport {
        device: config.spec.name.clone(),
        bits: config.bits,
        min_ber: config.min_ber,
        defenses,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_spec::presets;

    #[test]
    fn attacker_labels_are_stable() {
        let labels: Vec<&str> = Attacker::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(labels, ["l1", "sync", "parallel-sfu", "atomic", "nvlink", "adaptive"]);
    }

    #[test]
    fn default_config_has_a_composed_defense_and_a_topology() {
        let config = ArenaConfig::new(presets::tesla_k40c());
        assert!(config.defenses.iter().any(|d| d.components().len() >= 2));
        assert!(config.topology.is_some());
        assert_eq!(config.min_ber, 0.2);
    }

    #[test]
    fn zero_bit_arena_is_a_typed_error() {
        let config = ArenaConfig::new(presets::tesla_k40c()).with_bits(0);
        assert!(matches!(run_arena(&config), Err(CovertError::Config { .. })));
    }

    #[test]
    fn small_matrix_baseline_column_carries_bandwidth() {
        // One family, one defense: the cheapest end-to-end pass through the
        // matrix machinery (the full tournament lives in the integration
        // tests).
        let config = ArenaConfig::new(presets::tesla_k40c())
            .with_bits(8)
            .with_defenses(vec![DefenseSpec::from_spec("fuzz=8").unwrap()]);
        let msg = Message::pseudo_random(8, config.seed);
        let cell = static_cell(&config, ChannelFamily::L1, &DefenseSpec::none(), &msg);
        assert!(cell.error.is_none());
        assert!(cell.delivered);
        assert!(cell.residual_bandwidth_kbps > 0.0);
        assert_eq!(cell.verdict, Some(MitigationVerdict::Ineffective));
    }

    #[test]
    fn report_rendering_and_json_shapes() {
        let cell = ArenaCell {
            defense: DefenseSpec::from_spec("partition=2").unwrap(),
            ber: 0.0,
            residual_bandwidth_kbps: 12.5,
            delivered: true,
            verdict: None,
            final_family: Some("atomic".to_string()),
            fallback_escape: true,
            escalation: vec!["fallback[atomic]: switching family l1-sync -> atomic".to_string()],
            error: None,
        };
        let report = ArenaReport {
            device: "Tesla K40C".to_string(),
            bits: 16,
            min_ber: 0.2,
            defenses: vec![DefenseSpec::from_spec("partition=2").unwrap()],
            rows: vec![ArenaRow { attacker: Attacker::Adaptive, cells: vec![cell] }],
        };
        let text = report.render();
        assert!(text.contains("attacker"), "{text}");
        assert!(text.contains("partition=2"), "{text}");
        assert!(text.contains("12.50^"), "{text}");
        let json = report.to_json();
        assert!(json.contains("\"fallback_escape\": true"), "{json}");
        assert!(json.contains("\"final_family\": \"atomic\""), "{json}");
        assert_eq!(report.fallback_escapes().len(), 1);
        assert!(report.cell(Attacker::Adaptive, "partition=2").is_some());
        assert!(report.cell(Attacker::Adaptive, "none").is_none());
    }
}
