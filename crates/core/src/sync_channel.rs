//! The synchronized covert channel (paper Section 7.1, Figure 11).
//!
//! Instead of relaunching a kernel pair per bit, the spy and trojan are
//! launched **once** and keep themselves aligned with a three-way handshake
//! carried over two dedicated cache sets:
//!
//! * **RTS** (set 0): the trojan signals *ready-to-send* by filling it;
//! * **RTR** (set 1): the spy signals *ready-to-receive* / *received*;
//! * **data** (sets 2..): one bit per set per round.
//!
//! A party "signals" by filling the set with its own lines (evicting the
//! listener's), and "listens" by probing its own lines until a miss shows
//! up. Waits are bounded; on timeout a party repeats the step prior to the
//! wait, exactly the paper's deadlock-recovery rule.
//!
//! Parallelism (Table 2):
//! * **multi-bit** — one warp per data set fills/probes concurrently,
//!   synchronized with block barriers (`M = sets - 2` bits per round);
//! * **multi-SM** — every SM carries an independent spy/trojan block pair,
//!   each transmitting its own chunk of the message.

use crate::bits::Message;
use crate::cache_channel::CacheLevel;
use crate::calibrate::{pilot_pattern, Calibration};
use crate::channel::ChannelOutcome;
use crate::kernels::{
    emit_block_dispatch, emit_fill, emit_probe_count_misses, emit_spin_wait, miss_threshold, SetRef,
};
use crate::CovertError;
use gpgpu_isa::{Cond, Operand, ProgramBuilder, Reg, Special};
use gpgpu_sim::KernelSpec;
use gpgpu_spec::{DeviceSpec, LaunchConfig};

/// Maps a message bit index and its redundancy window of probe miss counts
/// to a decoded bit (or stashes the raw window, for calibration pilots).
type WindowDecoder<'a> = &'a dyn Fn(usize, &[u64]) -> Result<bool, CovertError>;

/// Default data-set fill/probe repetitions per round (robustness knob; the
/// paper's synchronized channels keep per-bit redundancy against noise).
/// Calibrated so the single-bit synchronized channel lands near the paper's
/// 75 Kbps on the K40C.
pub const DEFAULT_REDUNDANCY: u32 = 16;

/// Default bound on wait-loop probes before timeout recovery.
pub const DEFAULT_TIMEOUT_ITERS: u64 = 300;

/// Default bound on timeout-recovery retries per wait.
pub const DEFAULT_RETRIES: u64 = 12;

// Register allocation (outside the kernels' scratch range r0-r3):
const R_ROUND: Reg = Reg(27); // control/data round counter
const R_WAIT: Reg = Reg(24); // spin-wait probe counter
const R_GOT: Reg = Reg(25); // spin-wait result flag
const R_RETRY: Reg = Reg(26); // timeout retry counter
const R_MISS: Reg = Reg(21); // probe miss count
const R_WID: Reg = Reg(29); // warp id

/// The synchronized constant-cache channel (L1 by default; the paper also
/// synchronizes the cross-SM L2 variant — use [`SyncChannel::new_l2`]).
#[derive(Debug, Clone)]
pub struct SyncChannel {
    spec: DeviceSpec,
    /// Which constant-cache level carries the channel.
    level: CacheLevel,
    /// Bits transmitted per round per SM (1 ..= L1 sets - 2).
    pub data_sets: u32,
    /// SMs carrying independent channel instances (1 ..= num_sms).
    pub parallel_sms: u32,
    /// Data fill/probe repetitions per round.
    pub redundancy: u32,
    /// Wait-loop probe bound before timeout recovery.
    pub timeout_iters: u64,
    /// Timeout-recovery retries per wait.
    pub retries: u64,
    /// Section-8 exclusive co-location: the spy's blocks claim the maximum
    /// per-block shared memory and the trojan's blocks claim all remaining
    /// threads (and, on Maxwell, the remaining shared memory), so no other
    /// kernel can place a block on any SM while the channel runs.
    pub exclusive: bool,
    /// Device tuning (placement policy + Section-9 mitigation knobs).
    pub tuning: gpgpu_sim::DeviceTuning,
    /// Deterministic fault plan installed on the device for the run
    /// (`None` leaves the fault hooks disabled — the common case).
    pub fault_plan: Option<gpgpu_sim::FaultPlan>,
    /// Fitted decode rule from a pilot handshake; `None` uses the static
    /// rule (any redundancy window probe with >= 2 misses).
    pub calibration: Option<Calibration>,
    /// Override of the whole-transmission simulated-cycle budget (watchdog
    /// deadline); `None` uses the schedule-derived default.
    pub cycle_budget: Option<u64>,
}

impl SyncChannel {
    /// A single-bit, single-SM synchronized channel (Table 2, column 2).
    pub fn new(spec: DeviceSpec) -> Self {
        SyncChannel {
            spec,
            level: CacheLevel::L1,
            data_sets: 1,
            parallel_sms: 1,
            redundancy: DEFAULT_REDUNDANCY,
            timeout_iters: DEFAULT_TIMEOUT_ITERS,
            retries: DEFAULT_RETRIES,
            exclusive: false,
            tuning: gpgpu_sim::DeviceTuning::none(),
            fault_plan: None,
            calibration: None,
            cycle_budget: None,
        }
    }

    /// Decodes with a fitted calibration instead of the static rule.
    pub fn with_calibration(mut self, cal: Calibration) -> Self {
        self.calibration = Some(cal);
        self
    }

    /// Overrides the whole-transmission simulated-cycle watchdog budget.
    pub fn with_cycle_budget(mut self, budget: u64) -> Self {
        self.cycle_budget = Some(budget);
        self
    }

    /// Applies device tuning (mitigations / placement policy).
    pub fn with_tuning(mut self, tuning: gpgpu_sim::DeviceTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Installs a deterministic fault plan for every transmission run on
    /// this channel (Section-7 robustness experiments).
    pub fn with_faults(mut self, plan: gpgpu_sim::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// A synchronized channel over the *shared L2* constant cache: the spy
    /// and trojan run on different SMs (one block each) and communicate
    /// through the 16-set L2, two sets signalling and up to 14 carrying
    /// data. The paper observes ~8x (not 16x) best-case scaling here "due
    /// to cache port contention and cache bank collisions", which the L2
    /// port model reproduces.
    pub fn new_l2(spec: DeviceSpec) -> Self {
        let mut ch = Self::new(spec);
        ch.level = CacheLevel::L2;
        ch
    }

    /// The cache level this channel uses.
    pub fn level(&self) -> CacheLevel {
        self.level
    }

    /// Enables exclusive co-location (see the `exclusive` field).
    pub fn with_exclusive(mut self) -> Self {
        self.exclusive = true;
        self
    }

    /// Enables multi-bit transmission over `data_sets` cache sets
    /// (Table 2, column 3: 6 sets on the 8-set Kepler/Maxwell L1).
    ///
    /// # Errors
    ///
    /// [`CovertError::Config`] if the cache does not have `data_sets + 2`
    /// sets.
    pub fn with_data_sets(mut self, data_sets: u32) -> Result<Self, CovertError> {
        let sets = self.geometry().num_sets();
        if data_sets == 0 || u64::from(data_sets) + 2 > sets {
            return Err(CovertError::Config {
                reason: format!(
                    "the cache has {sets} sets; 2 are reserved for signalling, so 1..={} data sets",
                    sets - 2
                ),
            });
        }
        self.data_sets = data_sets;
        Ok(self)
    }

    /// Enables multi-SM parallelism over `sms` SMs (Table 2, column 4).
    ///
    /// # Errors
    ///
    /// [`CovertError::Config`] if the device has fewer than `sms` SMs.
    pub fn with_parallel_sms(mut self, sms: u32) -> Result<Self, CovertError> {
        if self.level == CacheLevel::L2 && sms > 1 {
            return Err(CovertError::Config {
                reason: "the L2 is device-wide; it carries a single channel instance".to_string(),
            });
        }
        if sms == 0 || sms > self.spec.num_sms {
            return Err(CovertError::Config {
                reason: format!(
                    "device has {} SMs; 1..={} supported",
                    self.spec.num_sms, self.spec.num_sms
                ),
            });
        }
        self.parallel_sms = sms;
        Ok(self)
    }

    /// Sets the per-round redundancy.
    pub fn with_redundancy(mut self, redundancy: u32) -> Self {
        self.redundancy = redundancy.max(1);
        self
    }

    /// The device this channel targets.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    fn geometry(&self) -> gpgpu_spec::CacheGeometry {
        match self.level {
            CacheLevel::L1 => self.spec.const_l1.geometry,
            CacheLevel::L2 => self.spec.const_l2.geometry,
        }
    }

    fn threshold(&self) -> u64 {
        match self.level {
            CacheLevel::L1 => {
                miss_threshold(self.spec.const_l1.hit_latency, self.spec.const_l2.hit_latency)
            }
            CacheLevel::L2 => {
                miss_threshold(self.spec.const_l2.hit_latency, self.spec.mem.const_mem_latency)
            }
        }
    }

    fn spy_base(&self) -> u64 {
        0
    }

    fn trojan_base(&self) -> u64 {
        let g = self.geometry();
        g.same_set_stride() * g.ways()
    }

    fn set_ref(&self, base: u64, set: u64) -> SetRef {
        SetRef::new(&self.geometry(), base, set)
    }

    /// Emits a bounded wait with timeout recovery: spin on `listen`; on
    /// timeout, re-fill `resignal` and retry (bounded), then proceed anyway.
    fn emit_wait_with_recovery(&self, b: &mut ProgramBuilder, listen: &SetRef, resignal: &SetRef) {
        let thr = self.threshold();
        b.mov_imm(R_RETRY, self.retries.max(1));
        let retry_top = b.label();
        let done = b.label();
        b.bind(retry_top);
        emit_spin_wait(b, listen, thr, self.timeout_iters, R_WAIT, R_GOT);
        b.branch(Cond::Ne, R_GOT, Operand::Imm(0), done);
        emit_fill(b, resignal);
        b.add_imm(R_RETRY, R_RETRY, u64::MAX);
        b.branch(Cond::Ne, R_RETRY, Operand::Imm(0), retry_top);
        b.bind(done);
    }

    /// Rounds needed per SM chunk for a message of `len` bits.
    fn geometry_of(&self, len: usize) -> (usize, usize) {
        let chunk = len.div_ceil(self.parallel_sms as usize);
        let rounds = chunk.div_ceil(self.data_sets as usize).max(1);
        (chunk, rounds)
    }

    /// Builds the spy program (uniform across blocks and message content).
    fn build_spy_program(&self, rounds: usize) -> gpgpu_isa::Program {
        let m = self.data_sets;
        let rts_spy = self.set_ref(self.spy_base(), 0);
        let rtr_spy = self.set_ref(self.spy_base(), 1);
        let thr = self.threshold();
        let mut b = ProgramBuilder::new();
        // Blocks beyond the parallel set exit immediately.
        b.read_special(R_WID, Special::BlockId);
        let active = b.label();
        b.branch(Cond::Lt, R_WID, Operand::Imm(u64::from(self.parallel_sms)), active);
        b.halt();
        b.bind(active);
        b.read_special(R_WID, Special::WarpIdInBlock);
        // Dispatch: warp 0 = control; warps 1..=M = data.
        let control = b.label();
        b.branch(Cond::Eq, R_WID, Operand::Imm(0), control);
        let data_labels: Vec<_> = (1..=m).map(|_| b.label()).collect();
        for (i, &l) in data_labels.iter().enumerate() {
            b.branch(Cond::Eq, R_WID, Operand::Imm(i as u64 + 1), l);
        }
        b.halt(); // surplus warps (none by construction)

        // ---- control warp ----
        b.bind(control);
        emit_fill(&mut b, &rts_spy); // prime the listening set
        b.bar_sync(); // hello: data warps have warmed their sets
        emit_fill(&mut b, &rtr_spy); // hello: tell the trojan we are ready
        b.repeat(R_ROUND, rounds as u64, |b| {
            self.emit_wait_with_recovery(b, &rts_spy, &rtr_spy);
            b.bar_sync(); // A: release data warps to probe
            b.bar_sync(); // B: data warps done
            emit_fill(b, &rtr_spy); // acknowledge
        });
        b.halt();

        // ---- data warps ----
        for (i, l) in data_labels.into_iter().enumerate() {
            b.bind(l);
            let set = self.set_ref(self.spy_base(), 2 + i as u64);
            emit_fill(&mut b, &set); // warm so round 0 zero-bits read clean
            b.bar_sync(); // hello
            b.repeat(R_ROUND, rounds as u64, |b| {
                b.bar_sync(); // A
                for _ in 0..self.redundancy {
                    emit_probe_count_misses(b, &set, thr, R_MISS);
                    b.push_result(R_MISS);
                }
                b.bar_sync(); // B
            });
            b.halt();
        }
        b.build().expect("spy program assembles")
    }

    /// Builds the trojan program: per-block, per-warp unrolled schedule of
    /// the chunk bits.
    fn build_trojan_program(&self, chunks: &[Vec<bool>], rounds: usize) -> gpgpu_isa::Program {
        let m = self.data_sets as usize;
        let rts_trojan = self.set_ref(self.trojan_base(), 0);
        let rtr_trojan = self.set_ref(self.trojan_base(), 1);
        let mut b = ProgramBuilder::new();
        let block_labels = emit_block_dispatch(&mut b, self.spec.num_sms);
        for (blk, l) in block_labels.into_iter().enumerate() {
            b.bind(l);
            if blk >= chunks.len() {
                b.halt();
                continue;
            }
            b.read_special(R_WID, Special::WarpIdInBlock);
            let control = b.label();
            b.branch(Cond::Eq, R_WID, Operand::Imm(0), control);
            let data_labels: Vec<_> = (0..m).map(|_| b.label()).collect();
            for (i, &dl) in data_labels.iter().enumerate() {
                b.branch(Cond::Eq, R_WID, Operand::Imm(i as u64 + 1), dl);
            }
            b.halt();

            // ---- control warp ----
            b.bind(control);
            emit_fill(&mut b, &rtr_trojan); // prime the listening set
                                            // hello: wait for the spy's ready signal before any data fill,
                                            // so the spy's warm-up cannot race round 0's transmission.
            self.emit_wait_with_recovery(&mut b, &rtr_trojan, &rts_trojan);
            b.bar_sync(); // hello: release data warps
            b.repeat(R_ROUND, rounds as u64, |b| {
                b.bar_sync(); // A: data warps have filled (or not)
                emit_fill(b, &rts_trojan); // ready-to-send
                self.emit_wait_with_recovery(b, &rtr_trojan, &rts_trojan);
                b.bar_sync(); // B: round complete
            });
            b.halt();

            // ---- data warps (bit schedule unrolled) ----
            for (i, dl) in data_labels.into_iter().enumerate() {
                b.bind(dl);
                let set = self.set_ref(self.trojan_base(), 2 + i as u64);
                b.bar_sync(); // hello
                for r in 0..rounds {
                    let bit = chunks[blk].get(r * m + i).copied().unwrap_or(false);
                    if bit {
                        for _ in 0..self.redundancy {
                            emit_fill(&mut b, &set);
                        }
                    }
                    b.bar_sync(); // A
                    b.bar_sync(); // B
                }
                b.halt();
            }
        }
        b.build().expect("trojan program assembles")
    }

    /// The spy/trojan launch configurations, honoring `exclusive`.
    pub fn launch_configs(&self) -> (LaunchConfig, LaunchConfig) {
        let warps = 1 + self.data_sets;
        let spy_threads = warps * 32;
        if self.exclusive {
            let spy = LaunchConfig::new(self.spec.num_sms, spy_threads)
                .with_shared_mem(self.spec.sm.max_shared_mem_per_block);
            let trojan =
                LaunchConfig::new(self.spec.num_sms, self.spec.sm.max_threads - spy_threads)
                    .with_shared_mem(
                        self.spec.sm.shared_mem_bytes - self.spec.sm.max_shared_mem_per_block,
                    )
                    .with_registers_per_thread(8);
            (spy, trojan)
        } else {
            let cfg = LaunchConfig::new(self.spec.num_sms, spy_threads);
            (cfg, cfg)
        }
    }

    /// Transmits `msg`, returning the outcome.
    ///
    /// # Errors
    ///
    /// * [`CovertError::Sim`] on simulator failure (including handshake
    ///   deadlock beyond the cycle budget).
    /// * [`CovertError::ProtocolDesync`] if the spy recovered fewer samples
    ///   than the schedule requires.
    pub fn transmit(&self, msg: &Message) -> Result<ChannelOutcome, CovertError> {
        Ok(self.transmit_with_noise(msg, Vec::new())?.outcome)
    }

    /// Transmits `msg` while `noise` kernels are launched on a third stream
    /// immediately after the channel's kernel pair (the Section-8
    /// interference experiment). Returns the outcome plus the results of
    /// each noise kernel, so callers can check whether the noise ran
    /// concurrently or was locked out until the channel finished.
    ///
    /// # Errors
    ///
    /// As [`SyncChannel::transmit`].
    pub fn transmit_with_noise(
        &self,
        msg: &Message,
        noise: Vec<KernelSpec>,
    ) -> Result<SyncRun, CovertError> {
        let cal = self.calibration.clone().unwrap_or_else(|| self.static_calibration());
        self.run_protocol(msg, noise, &|_, window| cal.decode(window))
    }

    /// The static spec-derived decode rule (the initial guess a pilot
    /// refines): a bit is 1 when any probe in its redundancy window saw at
    /// least 2 misses (a full trojan fill evicts all `ways` lines; >= 2
    /// filters the single-miss churn of signal-set interleaving).
    pub fn static_calibration(&self) -> Calibration {
        Calibration::from_spec(2, 1)
    }

    /// Runs the pilot handshake over this channel's full environment
    /// (tuning, faults, the given noise co-runners): transmits the known
    /// [`pilot_pattern`] and fits a decode rule from the raw per-window
    /// probe miss counts.
    ///
    /// # Errors
    ///
    /// Propagates transmission failures; [`CovertError::Config`] when the
    /// pilot distributions are inseparable (e.g. a co-runner stomps every
    /// set), which the link layer treats as a signal to escalate.
    pub fn calibrate_with_noise(
        &self,
        pilot_bits: usize,
        noise: Vec<KernelSpec>,
    ) -> Result<Calibration, CovertError> {
        let pilot = pilot_pattern(pilot_bits);
        let msg = Message::from_bits(pilot.clone());
        let stash = std::cell::RefCell::new(vec![Vec::new(); pilot.len()]);
        let decode = |idx: usize, window: &[u64]| {
            stash.borrow_mut()[idx] = window.to_vec();
            Ok(false)
        };
        self.run_protocol(&msg, noise, &decode)?;
        let per_bit = stash.into_inner();
        Calibration::fit(&pilot, &per_bit)
    }

    /// [`SyncChannel::calibrate_with_noise`] on a quiet device.
    ///
    /// # Errors
    ///
    /// As [`SyncChannel::calibrate_with_noise`].
    pub fn calibrate(&self, pilot_bits: usize) -> Result<Calibration, CovertError> {
        self.calibrate_with_noise(pilot_bits, Vec::new())
    }

    /// Runs the Figure-11 protocol end to end; `decode` maps each in-range
    /// message bit index and its redundancy window of probe miss counts to
    /// a bit value (or stashes the raw window, for calibration pilots).
    fn run_protocol(
        &self,
        msg: &Message,
        noise: Vec<KernelSpec>,
        decode: WindowDecoder<'_>,
    ) -> Result<SyncRun, CovertError> {
        if msg.is_empty() {
            let o = ChannelOutcome::from_run(&self.spec, msg.clone(), msg.clone(), 1);
            return Ok(SyncRun {
                outcome: o,
                channel_completed_at: 0,
                active_sms: Vec::new(),
                eviction_alternations: 0,
                noise: Vec::new(),
            });
        }
        let s = self.parallel_sms as usize;
        let m = self.data_sets as usize;
        let (chunk, rounds) = self.geometry_of(msg.len());
        let padded = rounds * m;
        let chunks: Vec<Vec<bool>> = (0..s)
            .map(|b| {
                let mut c: Vec<bool> =
                    msg.bits().iter().skip(b * chunk).take(chunk).copied().collect();
                c.resize(padded, false);
                c
            })
            .collect();

        let mut dev = crate::pool::acquire(&self.spec, self.tuning);
        if let Some(plan) = self.fault_plan {
            dev.set_fault_injector(gpgpu_sim::FaultInjector::new(plan));
        }
        let g = self.geometry();
        dev.alloc_constant(g.size_bytes()); // spy array
        dev.alloc_constant(g.size_bytes()); // trojan array
        let (spy_launch, trojan_launch) = self.launch_configs();
        let spy =
            dev.launch(0, KernelSpec::new("spy", self.build_spy_program(rounds), spy_launch))?;
        let trojan = dev.launch(
            1,
            KernelSpec::new("trojan", self.build_trojan_program(&chunks, rounds), trojan_launch),
        )?;
        let mut noise_ids = Vec::with_capacity(noise.len());
        for (i, n) in noise.into_iter().enumerate() {
            noise_ids.push(dev.launch(2 + i as u32, n)?);
        }
        // Budget: generous per-round allowance to absorb timeout recovery,
        // plus room for noise workloads to drain. An explicit
        // `cycle_budget` (the harness watchdog deadline) takes precedence.
        let budget = self.cycle_budget.unwrap_or_else(|| {
            ((rounds as u64 + 4)
                * (self.timeout_iters * self.retries / 4 + 4_000)
                * u64::from(self.data_sets.max(1))
                + 10 * self.spec.launch_overhead_cycles)
                .max(50_000_000)
        });
        dev.run_until_idle(budget)?;
        let results = dev.results(spy)?;
        let noise_results: Vec<gpgpu_sim::KernelResults> =
            noise_ids.into_iter().map(|id| dev.results(id)).collect::<Result<_, _>>()?;

        // Decode: each bit's evidence is its round's redundancy window of
        // probe miss counts, handed to the decode rule (static or fitted).
        let r_per_round = self.redundancy as usize;
        let mut received = vec![false; msg.len()];
        for (blk, chunk_bits) in chunks.iter().enumerate() {
            let _ = chunk_bits;
            for dm in 0..m {
                let samples = results.warp_results(blk as u32, dm as u32 + 1).ok_or(
                    CovertError::ProtocolDesync { expected: rounds * r_per_round, got: 0 },
                )?;
                if samples.len() < rounds * r_per_round {
                    return Err(CovertError::ProtocolDesync {
                        expected: rounds * r_per_round,
                        got: samples.len(),
                    });
                }
                for r in 0..rounds {
                    let window = &samples[r * r_per_round..(r + 1) * r_per_round];
                    let idx = blk * chunk + r * m + dm;
                    if r * m + dm < chunk && idx < msg.len() {
                        received[idx] = decode(idx, window)?;
                    }
                }
            }
        }
        // Bandwidth is measured over the channel's own lifetime, not the
        // noise kernels' drain time. The exclusion window ends when either
        // channel kernel completes (the first completion releases resources
        // that queued kernels can claim).
        let channel_completed_at = results.completed_at.min(dev.results(trojan)?.completed_at);
        let cycles = results.completed_at.max(1);
        // SMs actually carrying the channel (blocks beyond `parallel_sms`
        // exit immediately and do not need protecting).
        let mut active_sms: Vec<u32> = results
            .blocks
            .iter()
            .filter(|b| b.block_id < self.parallel_sms)
            .map(|b| b.sm_id)
            .collect();
        active_sms.sort_unstable();
        active_sms.dedup();
        let outcome =
            ChannelOutcome::from_run(&self.spec, msg.clone(), Message::from_bits(received), cycles)
                .with_stats(*dev.stats());
        let (_, eviction_alternations) = dev.cache_contention_counters();
        Ok(SyncRun {
            outcome,
            channel_completed_at,
            active_sms,
            eviction_alternations,
            noise: noise_results,
        })
    }
}

/// Result of [`SyncChannel::transmit_with_noise`].
#[derive(Debug, Clone, PartialEq)]
pub struct SyncRun {
    /// The channel outcome (bandwidth measured over the channel's lifetime).
    pub outcome: ChannelOutcome,
    /// Cycle at which the first of the two channel kernels completed (the
    /// end of the exclusion window).
    pub channel_completed_at: u64,
    /// SMs carrying active channel blocks.
    pub active_sms: Vec<u32>,
    /// Cross-domain eviction alternations accumulated in the constant
    /// caches over the run — the CC-Hunter-style detection signal
    /// (Section 9); huge for a covert channel, near zero for benign mixes.
    pub eviction_alternations: u64,
    /// Completion records of the noise kernels, in launch order.
    pub noise: Vec<gpgpu_sim::KernelResults>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_spec::presets;

    #[test]
    fn single_bit_sync_channel_error_free() {
        let ch = SyncChannel::new(presets::tesla_k40c());
        let msg = Message::from_bits([true, false, true, true, false, false, true, false]);
        let o = ch.transmit(&msg).unwrap();
        assert_eq!(o.received, msg, "got {} want {}", o.received, o.sent);
        assert!(o.is_error_free());
    }

    #[test]
    fn sync_beats_baseline_bandwidth() {
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(16, 9);
        let sync = SyncChannel::new(spec.clone()).transmit(&msg).unwrap();
        let baseline = crate::cache_channel::L1Channel::new(spec).transmit(&msg).unwrap();
        assert!(
            sync.bandwidth_kbps > baseline.bandwidth_kbps,
            "sync {} <= baseline {}",
            sync.bandwidth_kbps,
            baseline.bandwidth_kbps
        );
    }

    #[test]
    fn multi_bit_channel_transmits_correctly() {
        let ch = SyncChannel::new(presets::tesla_k40c()).with_data_sets(6).unwrap();
        let msg = Message::pseudo_random(36, 5);
        let o = ch.transmit(&msg).unwrap();
        assert_eq!(o.received, msg, "got {} want {}", o.received, o.sent);
    }

    #[test]
    fn multi_sm_channel_transmits_correctly() {
        let ch = SyncChannel::new(presets::tesla_k40c())
            .with_data_sets(6)
            .unwrap()
            .with_parallel_sms(15)
            .unwrap();
        let msg = Message::pseudo_random(180, 11);
        let o = ch.transmit(&msg).unwrap();
        assert_eq!(o.received, msg, "BER {}", o.ber);
    }

    #[test]
    fn config_validation() {
        let spec = presets::tesla_k40c();
        assert!(SyncChannel::new(spec.clone()).with_data_sets(7).is_err()); // 8 sets - 2
        assert!(SyncChannel::new(spec.clone()).with_data_sets(6).is_ok());
        assert!(SyncChannel::new(spec.clone()).with_parallel_sms(16).is_err());
        assert!(SyncChannel::new(spec).with_parallel_sms(15).is_ok());
    }

    #[test]
    fn empty_message_is_trivially_transmitted() {
        let o = SyncChannel::new(presets::tesla_k40c()).transmit(&Message::default()).unwrap();
        assert!(o.is_error_free());
    }
}

#[cfg(test)]
mod l2_tests {
    use super::*;
    use gpgpu_spec::presets;

    #[test]
    fn l2_sync_channel_is_error_free() {
        let ch = SyncChannel::new_l2(presets::tesla_k40c());
        let msg = Message::pseudo_random(12, 0x61);
        let o = ch.transmit(&msg).unwrap();
        assert_eq!(o.received, msg, "got {} want {}", o.received, o.sent);
    }

    #[test]
    fn l2_sync_multibit_uses_up_to_14_sets() {
        let spec = presets::tesla_k40c();
        assert!(SyncChannel::new_l2(spec.clone()).with_data_sets(15).is_err());
        let ch = SyncChannel::new_l2(spec).with_data_sets(14).unwrap();
        let msg = Message::pseudo_random(28, 0x62);
        let o = ch.transmit(&msg).unwrap();
        assert_eq!(o.received, msg);
    }

    #[test]
    fn l2_multibit_scaling_is_port_limited() {
        // Paper: "In theory, this should enable the trojan to send 16 bits
        // simultaneously. However, we observe only an 8x improvement in the
        // best case, which we conjecture is due to cache port contention."
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(56, 0x63);
        let single = SyncChannel::new_l2(spec.clone()).transmit(&msg).unwrap();
        let multi = SyncChannel::new_l2(spec).with_data_sets(14).unwrap().transmit(&msg).unwrap();
        assert!(multi.is_error_free() && single.is_error_free());
        let scaling = multi.bandwidth_kbps / single.bandwidth_kbps;
        assert!(
            (2.0..14.0).contains(&scaling),
            "L2 multi-bit scaling should be clearly sublinear in 14 sets: {scaling:.1}x"
        );
    }

    #[test]
    fn l2_sync_rejects_multi_sm_parallelism() {
        assert!(SyncChannel::new_l2(presets::tesla_k40c()).with_parallel_sms(2).is_err());
    }

    #[test]
    fn l1_sync_is_faster_than_l2_sync() {
        let spec = presets::tesla_k40c();
        let msg = Message::pseudo_random(12, 0x64);
        let l1 = SyncChannel::new(spec.clone()).transmit(&msg).unwrap();
        let l2 = SyncChannel::new_l2(spec).transmit(&msg).unwrap();
        assert!(
            l1.bandwidth_kbps > l2.bandwidth_kbps,
            "{} vs {}",
            l1.bandwidth_kbps,
            l2.bandwidth_kbps
        );
    }
}
