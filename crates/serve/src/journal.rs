//! Append-only run journal: hard-kill resume for a single sweep run.
//!
//! The content-addressed cache already survives crashes (entries are
//! atomic), but a run may be configured *without* a cache, and even with
//! one a resume should not have to re-hash every cell against the cache
//! directory. The journal mirrors the `run_checkpointed` design from
//! `gpgpu-covert::harness`: a header that pins exactly which request (and
//! grid size) the file belongs to, then one CRC-armored line per completed
//! cell in completion order, flushed as written. After a `kill -9`,
//! [`Journal::resume`] trusts the contiguous prefix of intact lines — a
//! torn tail or a byte flipped at rest ends the prefix with a typed
//! [`JournalError`], never a panic and never silently-wrong data.

use crate::cache::CellResult;
use gpgpu_covert::harness::crc32;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic header prefix; the full header also pins the request hash and
/// cell count, so a journal can never resume a *different* sweep.
const HEADER_PREFIX: &str = "gpgpu-serve-journal v1";

/// Why a journal could not be used (the run falls back to recomputing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The file's header names a different request or grid size.
    HeaderMismatch {
        /// The header this run expected.
        expected: String,
        /// The header found on disk.
        found: String,
    },
    /// A line failed its CRC or did not parse: the trusted prefix ends at
    /// the previous line (torn write or corruption at rest).
    TornLine {
        /// 1-based line number of the first untrusted line.
        line: usize,
    },
    /// Underlying I/O failure, stringified.
    Io {
        /// The I/O error text.
        error: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::HeaderMismatch { expected, found } => {
                write!(f, "journal header mismatch: expected `{expected}`, found `{found}`")
            }
            JournalError::TornLine { line } => {
                write!(f, "journal line {line} failed integrity checks; prefix before it kept")
            }
            JournalError::Io { error } => write!(f, "journal i/o error: {error}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// What [`Journal::resume`] salvaged: the trusted prefix of completed
/// cells, plus the typed reason the prefix ended early (if it did).
#[derive(Debug)]
pub struct JournalRecovery {
    /// `(cell index, result)` pairs, in the order they were journaled.
    pub entries: Vec<(usize, CellResult)>,
    /// `Some` when a torn/corrupt line was discarded — surfaced so callers
    /// can report *that* recovery happened, not just that it succeeded.
    pub damage: Option<JournalError>,
}

/// An open, append-mode run journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    sink: Mutex<std::fs::File>,
}

impl Journal {
    /// The exact header for a `(request_hash, cells)` run.
    fn header(request_hash: u64, cells: usize) -> String {
        format!("{HEADER_PREFIX} request={request_hash:#018x} cells={cells}")
    }

    /// Starts a fresh journal at `path` (truncating any previous file).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failures.
    pub fn create(path: &Path, request_hash: u64, cells: usize) -> Result<Journal, JournalError> {
        let io_err = |e: std::io::Error| JournalError::Io { error: e.to_string() };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(io_err)?;
            }
        }
        let mut file = std::fs::File::create(path).map_err(io_err)?;
        writeln!(file, "{}", Journal::header(request_hash, cells)).map_err(io_err)?;
        file.flush().map_err(io_err)?;
        Ok(Journal { path: path.to_path_buf(), sink: Mutex::new(file) })
    }

    /// Resumes from `path`: validates the header against this run's
    /// identity, recovers the contiguous prefix of intact lines, rewrites
    /// the file to exactly that prefix (dropping any torn tail), and
    /// reopens it for appends. A missing file is simply a fresh start.
    ///
    /// # Errors
    ///
    /// [`JournalError::HeaderMismatch`] when the file belongs to a
    /// different request — resuming it would mix sweeps, so that is a
    /// refusal, not a recovery. [`JournalError::Io`] on I/O failures.
    /// Torn or corrupt *lines* are not errors: they end the trusted prefix
    /// and are reported via [`JournalRecovery::damage`].
    pub fn resume(
        path: &Path,
        request_hash: u64,
        cells: usize,
    ) -> Result<(Journal, JournalRecovery), JournalError> {
        let io_err = |e: std::io::Error| JournalError::Io { error: e.to_string() };
        let expected = Journal::header(request_hash, cells);
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let journal = Journal::create(path, request_hash, cells)?;
                return Ok((journal, JournalRecovery { entries: Vec::new(), damage: None }));
            }
            Err(e) => return Err(io_err(e)),
        };
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h == expected => {}
            other => {
                return Err(JournalError::HeaderMismatch {
                    expected,
                    found: other.unwrap_or("<empty>").to_string(),
                });
            }
        }
        let mut entries: Vec<(usize, CellResult)> = Vec::new();
        let mut damage = None;
        for (n, line) in lines.enumerate() {
            match Journal::disarm(line, cells) {
                Some(entry) => entries.push(entry),
                None => {
                    damage = Some(JournalError::TornLine { line: n + 2 });
                    break;
                }
            }
        }
        // Rewrite header + trusted prefix so the tail cannot resurface.
        let mut file = std::fs::File::create(path).map_err(io_err)?;
        writeln!(file, "{expected}").map_err(io_err)?;
        for (index, result) in &entries {
            writeln!(file, "{}", Journal::armor(*index, result)).map_err(io_err)?;
        }
        file.flush().map_err(io_err)?;
        let journal = Journal { path: path.to_path_buf(), sink: Mutex::new(file) };
        Ok((journal, JournalRecovery { entries, damage }))
    }

    /// Renders one journal line: `<crc32 hex> <index> <payload>`, with the
    /// CRC covering `<index> <payload>` so a flipped index digit is caught
    /// exactly like a flipped payload byte.
    fn armor(index: usize, result: &CellResult) -> String {
        let body = format!("{index} {}", result.encode());
        format!("{:08x} {body}", crc32(body.as_bytes()))
    }

    /// Inverts [`Journal::armor`]; `None` for any line that fails the CRC,
    /// does not parse, or names an out-of-range cell index.
    fn disarm(line: &str, cells: usize) -> Option<(usize, CellResult)> {
        let (crc_hex, body) = line.split_once(' ')?;
        if crc_hex.len() != 8 || u32::from_str_radix(crc_hex, 16).ok()? != crc32(body.as_bytes()) {
            return None;
        }
        let (index_text, payload) = body.split_once(' ')?;
        let index: usize = index_text.parse().ok()?;
        if index >= cells {
            return None;
        }
        Some((index, CellResult::decode(payload)?))
    }

    /// Appends one completed cell and flushes, so the line survives a hard
    /// kill the instant this returns.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write failures.
    pub fn append(&self, index: usize, result: &CellResult) -> Result<(), JournalError> {
        let mut file = self.sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        writeln!(file, "{}", Journal::armor(index, result))
            .and_then(|()| file.flush())
            .map_err(|e| JournalError::Io { error: e.to_string() })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gpgpu-serve-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.journal"));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn result(i: usize) -> CellResult {
        CellResult {
            sent: i,
            received: vec![i.is_multiple_of(2); 3],
            cycles: 1000 + i as u64,
            bandwidth_kbps: 10.5 * i as f64,
            ber: 0.0,
        }
    }

    #[test]
    fn append_then_resume_recovers_everything() {
        let path = tmpfile("clean");
        let j = Journal::create(&path, 0xABCD, 8).unwrap();
        for i in [3usize, 0, 5] {
            j.append(i, &result(i)).unwrap();
        }
        drop(j);
        let (_, recovery) = Journal::resume(&path, 0xABCD, 8).unwrap();
        assert!(recovery.damage.is_none());
        assert_eq!(
            recovery.entries,
            vec![(3, result(3)), (0, result(0)), (5, result(5))],
            "completion order preserved"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_keeps_the_prefix_with_a_typed_reason() {
        let path = tmpfile("torn");
        let j = Journal::create(&path, 0x1, 4).unwrap();
        j.append(0, &result(0)).unwrap();
        j.append(1, &result(1)).unwrap();
        drop(j);
        // Simulate a kill -9 mid-write: half a line at the end.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("deadbeef 2 cycles=10");
        std::fs::write(&path, &text).unwrap();
        let (_, recovery) = Journal::resume(&path, 0x1, 4).unwrap();
        assert_eq!(recovery.entries.len(), 2);
        assert_eq!(recovery.damage, Some(JournalError::TornLine { line: 4 }));
        // The rewrite dropped the torn tail for good.
        let (_, again) = Journal::resume(&path, 0x1, 4).unwrap();
        assert_eq!(again.entries.len(), 2);
        assert!(again.damage.is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_different_request_refuses_to_resume() {
        let path = tmpfile("mismatch");
        let j = Journal::create(&path, 0x2, 4).unwrap();
        j.append(0, &result(0)).unwrap();
        drop(j);
        let err = Journal::resume(&path, 0x3, 4).unwrap_err();
        assert!(matches!(err, JournalError::HeaderMismatch { .. }));
        let err = Journal::resume(&path, 0x2, 5).unwrap_err();
        assert!(matches!(err, JournalError::HeaderMismatch { .. }));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flipped_payload_digit_is_caught_not_resumed() {
        let path = tmpfile("flip");
        let j = Journal::create(&path, 0x4, 4).unwrap();
        j.append(0, &result(0)).unwrap();
        j.append(1, &result(1)).unwrap();
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        // Flip a digit in the *first* entry's cycles field: without the CRC
        // this would still parse and silently resume a wrong result.
        lines[1] = lines[1].replace("cycles=1000", "cycles=9000");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let (_, recovery) = Journal::resume(&path, 0x4, 4).unwrap();
        assert_eq!(recovery.entries.len(), 0, "prefix ends at the corrupt first entry");
        assert_eq!(recovery.damage, Some(JournalError::TornLine { line: 2 }));
        let _ = std::fs::remove_file(&path);
    }
}
