//! Supervised sweep-job engine.
//!
//! A [`SweepService`] takes one [`SweepRequest`], shards its grid into
//! cells, and runs the cells on the `TrialRunner` worker pool with a
//! supervision layer the raw harness does not have:
//!
//! * **detection** — worker panics (caught per attempt), deadline overruns
//!   and stalls all surface as typed [`TrialError`]s;
//! * **retry** — transient failures ([`TrialError::is_transient`]) are
//!   retried with seeded exponential backoff and a capped attempt budget;
//!   deterministic failures (misconfiguration, saturation, conflicts) fail
//!   fast, because re-running a pure function cannot change its answer;
//! * **graceful degradation** — a sweep always returns a full
//!   [`SweepMatrix`] with one typed [`CellOutcome`] per cell; a dead cell
//!   never aborts its neighbors;
//! * **memoization** — cells are deduped through the content-addressed
//!   [`ResultCache`], corrupt entries are quarantined and recomputed, and
//!   an optional [`Journal`] makes an interrupted run resumable after
//!   `kill -9`.
//!
//! Determinism contract: the *results* in the matrix are a pure function
//! of the request (worker count, chaos schedule, cache state and resume
//! history only change *how* a result was obtained, which the per-cell
//! status records) — so [`SweepMatrix::digest`] is bit-identical across a
//! clean run, a chaos-ridden run, a warm-cache run and a resumed run.

use crate::cache::{fnv1a64, CacheError, CellResult, ResultCache};
use crate::chaos::{ChaosEvent, ChaosPlan};
use crate::journal::{Journal, JournalError};
use gpgpu_covert::atomic_channel::{AtomicChannel, AtomicScenario};
use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::L1Channel;
use gpgpu_covert::harness::{TrialError, TrialRunner};
use gpgpu_covert::mitigations::ChannelFamily;
use gpgpu_covert::nvlink_channel::NvlinkChannel;
use gpgpu_covert::parallel::ParallelSfuChannel;
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_covert::CovertError;
use gpgpu_sim::{DeviceTuning, FaultPlan};
use gpgpu_spec::{
    presets, DefenseSpec, DeviceSpec, SpecError, SweepCell, SweepRequest, TopologySpec,
};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Cycle budget reported for injected stalls when the runner imposes no
/// explicit per-trial deadline.
const DEFAULT_STALL_BUDGET: u64 = 1_000_000;

/// Why a sweep service could not be built or started. Per-*cell* failures
/// never surface here — they live in the matrix as typed outcomes.
#[derive(Debug)]
pub enum ServeError {
    /// The sweep request failed validation.
    Request(SpecError),
    /// A fault-axis sub-spec does not parse under the `gpgpu-sim` grammar.
    InvalidFaults {
        /// The offending axis value.
        spec: String,
        /// The parser's reason.
        reason: String,
    },
    /// The journal refused to resume (header mismatch or I/O).
    Journal(JournalError),
    /// The cache directory could not be opened.
    CacheDir {
        /// The directory.
        dir: PathBuf,
        /// The I/O error text.
        error: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Request(e) => write!(f, "{e}"),
            ServeError::InvalidFaults { spec, reason } => {
                write!(f, "invalid fault axis value `{spec}`: {reason}")
            }
            ServeError::Journal(e) => write!(f, "{e}"),
            ServeError::CacheDir { dir, error } => {
                write!(f, "cannot open cache directory {}: {error}", dir.display())
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One fully-resolved grid cell, ready to run.
#[derive(Debug, Clone)]
struct JobCell {
    /// The canonicalized cell spec (fault axis normalized through
    /// [`FaultPlan`]'s round trip, so spelling variants dedupe).
    spec: SweepCell,
    /// The canonical cache key ([`SweepCell::key`] of `spec`).
    key: String,
    /// FNV-1a of `key` — the identity every seeded chaos/backoff decision
    /// derives from.
    hash: u64,
    device: DeviceSpec,
    family: ChannelFamily,
    fault: Option<FaultPlan>,
    defense: DefenseSpec,
    topology: Option<TopologySpec>,
}

/// How one cell's result was obtained (or why it was not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellStatus {
    /// Computed fresh on the first attempt.
    Computed(CellResult),
    /// Served from the content-addressed cache.
    Cached(CellResult),
    /// Recovered from the run journal (resume after a hard kill).
    Resumed(CellResult),
    /// Computed after one or more supervised retries.
    Recovered {
        /// The (bit-identical to a clean run) result.
        result: CellResult,
        /// Total attempts, including the successful one.
        attempts: u32,
        /// The transient error the last failed attempt died with.
        last_error: TrialError,
    },
    /// Every attempt failed; the sweep carried on without this cell.
    Failed {
        /// The final attempt's typed error.
        error: TrialError,
        /// Attempts spent (1 for fail-fast deterministic errors).
        attempts: u32,
    },
}

impl CellStatus {
    /// Short status label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            CellStatus::Computed(_) => "computed",
            CellStatus::Cached(_) => "cached",
            CellStatus::Resumed(_) => "resumed",
            CellStatus::Recovered { .. } => "recovered",
            CellStatus::Failed { .. } => "failed",
        }
    }

    /// The result, when the cell has one.
    pub fn result(&self) -> Option<&CellResult> {
        match self {
            CellStatus::Computed(r) | CellStatus::Cached(r) | CellStatus::Resumed(r) => Some(r),
            CellStatus::Recovered { result, .. } => Some(result),
            CellStatus::Failed { .. } => None,
        }
    }
}

/// One cell of the outcome matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellOutcome {
    /// The canonicalized cell spec.
    pub cell: SweepCell,
    /// The canonical cache key.
    pub key: String,
    /// How the cell fared.
    pub status: CellStatus,
    /// The typed corruption error when this run quarantined the cell's
    /// cache entry before recomputing it.
    pub quarantined: Option<CacheError>,
}

/// Aggregate counters over one run's matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Cells computed fresh on the first attempt.
    pub computed: usize,
    /// Cells served from the result cache.
    pub cached: usize,
    /// Cells recovered from the run journal.
    pub resumed: usize,
    /// Cells that needed supervised retries before succeeding.
    pub recovered: usize,
    /// Cells whose attempt budget ran out (or that failed fast).
    pub failed: usize,
    /// Failed attempts that were retried.
    pub retries: usize,
    /// Corrupt cache entries quarantined (and recomputed).
    pub quarantined: usize,
}

/// The typed per-cell outcome matrix of one sweep run.
#[derive(Debug, Clone)]
pub struct SweepMatrix {
    /// The request this matrix answers.
    pub request: SweepRequest,
    /// One outcome per grid cell, in [`SweepRequest::cells`] order.
    pub outcomes: Vec<CellOutcome>,
    /// Aggregate counters.
    pub stats: ServiceStats,
    /// Human-readable note when journal recovery discarded a torn tail.
    pub recovery_note: Option<String>,
}

impl SweepMatrix {
    /// Whether every cell has a result.
    pub fn is_complete(&self) -> bool {
        self.stats.failed == 0
    }

    /// Content digest of the matrix: FNV-1a over every cell's key and its
    /// exact result encoding (or typed error text). Provenance — computed
    /// vs cached vs resumed vs recovered — is deliberately excluded, so a
    /// clean run, a chaos run, a warm re-run and a resumed run of the same
    /// request all digest identically iff their results are bit-identical.
    pub fn digest(&self) -> u64 {
        let mut text = String::new();
        for o in &self.outcomes {
            text.push_str(&o.key);
            text.push('|');
            match o.status.result() {
                Some(r) => text.push_str(&r.encode()),
                None => {
                    if let CellStatus::Failed { error, .. } = &o.status {
                        text.push_str(&format!("failed:{error}"));
                    }
                }
            }
            text.push('\n');
        }
        fnv1a64(text.as_bytes())
    }

    /// Renders the matrix as an aligned text table with a stats footer and
    /// the content digest (the line CI smoke tests grep for).
    pub fn render(&self) -> String {
        let mut rows: Vec<[String; 8]> = vec![[
            "device".into(),
            "family".into(),
            "iters".into(),
            "faults".into(),
            "defense".into(),
            "status".into(),
            "ber".into(),
            "kbps".into(),
        ]];
        for o in &self.outcomes {
            let (ber, kbps) = match o.status.result() {
                Some(r) => (format!("{:.4}", r.ber), format!("{:.1}", r.bandwidth_kbps)),
                None => ("-".into(), "-".into()),
            };
            let status = match &o.status {
                CellStatus::Recovered { attempts, .. } => format!("recovered({attempts})"),
                CellStatus::Failed { error, .. } => format!("failed: {error}"),
                other => other.label().to_string(),
            };
            rows.push([
                o.cell.device.clone(),
                o.cell.family.clone(),
                o.cell.iterations.to_string(),
                o.cell.faults.clone(),
                o.cell.defense.clone(),
                status,
                ber,
                kbps,
            ]);
        }
        let mut widths = [0usize; 8];
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for row in &rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                line.push_str(&format!("{cell:<w$}  "));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        let s = &self.stats;
        out.push_str(&format!(
            "cells={} computed={} cached={} resumed={} recovered={} failed={} retries={} quarantined={}\n",
            self.outcomes.len(),
            s.computed,
            s.cached,
            s.resumed,
            s.recovered,
            s.failed,
            s.retries,
            s.quarantined,
        ));
        if let Some(note) = &self.recovery_note {
            out.push_str(&format!("journal: {note}\n"));
        }
        out.push_str(&format!("matrix digest {:#018x}\n", self.digest()));
        out
    }

    /// Serializes the matrix as JSON (hand-rolled; the workspace carries
    /// no serialization dependency).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"request\": \"{}\",\n", esc(&self.request.to_spec())));
        out.push_str(&format!("  \"digest\": \"{:#018x}\",\n", self.digest()));
        let s = &self.stats;
        out.push_str(&format!(
            "  \"stats\": {{\"computed\": {}, \"cached\": {}, \"resumed\": {}, \"recovered\": {}, \"failed\": {}, \"retries\": {}, \"quarantined\": {}}},\n",
            s.computed, s.cached, s.resumed, s.recovered, s.failed, s.retries, s.quarantined
        ));
        out.push_str("  \"cells\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let sep = if i + 1 == self.outcomes.len() { "" } else { "," };
            match o.status.result() {
                Some(r) => out.push_str(&format!(
                    "    {{\"key\": \"{}\", \"status\": \"{}\", \"ber\": {:.6}, \"kbps\": {:.3}, \"cycles\": {}}}{sep}\n",
                    esc(&o.key),
                    o.status.label(),
                    r.ber,
                    r.bandwidth_kbps,
                    r.cycles
                )),
                None => {
                    let error = match &o.status {
                        CellStatus::Failed { error, .. } => error.to_string(),
                        _ => String::new(),
                    };
                    out.push_str(&format!(
                        "    {{\"key\": \"{}\", \"status\": \"failed\", \"error\": \"{}\"}}{sep}\n",
                        esc(&o.key),
                        esc(&error)
                    ));
                }
            }
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The supervised sweep engine. Build one per request, configure, `run`.
#[derive(Debug)]
pub struct SweepService {
    request: SweepRequest,
    cells: Vec<JobCell>,
    runner: TrialRunner,
    max_attempts: u32,
    backoff_base_ms: u64,
    chaos: ChaosPlan,
    cache: Option<ResultCache>,
    journal_path: Option<PathBuf>,
    resume: bool,
}

impl SweepService {
    /// Builds a service for `request`: validates it, resolves every axis
    /// value (devices, families, fault plans, defenses, topology) and
    /// canonicalizes the per-cell cache keys.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] for an invalid request,
    /// [`ServeError::InvalidFaults`] for a fault axis value the simulator
    /// grammar rejects.
    pub fn new(request: SweepRequest) -> Result<Self, ServeError> {
        request.validate().map_err(ServeError::Request)?;
        let mut cells = Vec::new();
        for raw in request.cells() {
            let fault = if raw.faults == "none" {
                None
            } else {
                Some(FaultPlan::from_spec(&raw.faults).map_err(|reason| {
                    ServeError::InvalidFaults { spec: raw.faults.clone(), reason }
                })?)
            };
            // Canonicalize the fault axis through the plan's round trip so
            // two spellings of one plan share a cache key.
            let spec = SweepCell {
                faults: fault.as_ref().map_or_else(|| "none".to_string(), FaultPlan::to_spec),
                ..raw
            };
            let device = presets::by_name(&spec.device).expect("validated device alias");
            let family = family_from_label(&spec.family).expect("validated family label");
            let defense = if spec.defense == "none" {
                DefenseSpec::none()
            } else {
                DefenseSpec::from_spec(&spec.defense).expect("validated canonical defense sub-spec")
            };
            let topology = if spec.topology == "none" {
                None
            } else {
                Some(
                    TopologySpec::from_spec(&spec.topology)
                        .expect("validated canonical topology sub-spec"),
                )
            };
            let key = spec.key();
            let hash = fnv1a64(key.as_bytes());
            cells.push(JobCell { spec, key, hash, device, family, fault, defense, topology });
        }
        Ok(SweepService {
            request,
            cells,
            runner: TrialRunner::new(),
            max_attempts: 3,
            backoff_base_ms: 1,
            chaos: ChaosPlan::none(),
            cache: None,
            journal_path: None,
            resume: false,
        })
    }

    /// Uses an explicit runner (worker count, base seed, deadline).
    pub fn with_runner(mut self, runner: TrialRunner) -> Self {
        self.runner = runner;
        self
    }

    /// Enables the content-addressed result cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`ServeError::CacheDir`] when the directory cannot be created.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Result<Self, ServeError> {
        let dir = dir.into();
        let cache = ResultCache::open(&dir)
            .map_err(|e| ServeError::CacheDir { dir, error: e.to_string() })?;
        self.cache = Some(cache);
        Ok(self)
    }

    /// Enables the run journal at `path`. With `resume` false the journal
    /// is truncated; with `resume` true an existing journal for the same
    /// request is recovered first (see [`Journal::resume`]).
    pub fn with_journal(mut self, path: impl Into<PathBuf>, resume: bool) -> Self {
        self.journal_path = Some(path.into());
        self.resume = resume;
        self
    }

    /// Installs a chaos schedule (tests and resilience drills).
    pub fn with_chaos(mut self, chaos: ChaosPlan) -> Self {
        self.chaos = chaos;
        self
    }

    /// Caps supervised attempts per cell (minimum 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the exponential-backoff base (milliseconds; 0 disables
    /// sleeping, which tests use to stay fast).
    pub fn with_backoff_base_ms(mut self, ms: u64) -> Self {
        self.backoff_base_ms = ms;
        self
    }

    /// Number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The canonical cache keys, in grid order (diagnostics and tests).
    pub fn keys(&self) -> Vec<String> {
        self.cells.iter().map(|c| c.key.clone()).collect()
    }

    /// The seeded backoff delay before retry `retry` (1-based) of the cell
    /// identified by `cell_hash`: an exponential window with full seeded
    /// jitter, a pure function of its inputs so schedules are reproducible.
    pub fn backoff_delay_ms(&self, cell_hash: u64, retry: u32) -> u64 {
        if self.backoff_base_ms == 0 {
            return 0;
        }
        let window = self.backoff_base_ms << retry.min(6).saturating_sub(1);
        let jitter = crate::chaos::mix_for_backoff(cell_hash, retry) % (window + 1);
        window + jitter
    }

    /// Runs the sweep: journal recovery (when resuming), then every
    /// remaining cell on the worker pool under supervision. Always returns
    /// a full matrix — per-cell failures are typed outcomes, not errors.
    ///
    /// # Errors
    ///
    /// Only *run-level* problems: [`ServeError::Journal`] when an existing
    /// journal belongs to a different request or the journal file cannot
    /// be written.
    pub fn run(&self) -> Result<SweepMatrix, ServeError> {
        let request_hash = fnv1a64(self.request.to_spec().as_bytes());
        let mut prefilled: HashMap<usize, CellResult> = HashMap::new();
        let mut recovery_note = None;
        let journal = match &self.journal_path {
            Some(path) if self.resume => {
                let (journal, recovery) = Journal::resume(path, request_hash, self.cells.len())
                    .map_err(ServeError::Journal)?;
                if let Some(damage) = recovery.damage {
                    recovery_note = Some(damage.to_string());
                }
                for (index, result) in recovery.entries {
                    prefilled.insert(index, result);
                }
                Some(journal)
            }
            Some(path) => Some(
                Journal::create(path, request_hash, self.cells.len())
                    .map_err(ServeError::Journal)?,
            ),
            None => None,
        };
        let indices: Vec<usize> = (0..self.cells.len()).collect();
        let outcomes = self.runner.map(&indices, |trial, &i| {
            self.process(i, trial.deadline, &prefilled, journal.as_ref())
        });
        let mut stats = ServiceStats::default();
        for o in &outcomes {
            if o.quarantined.is_some() {
                stats.quarantined += 1;
            }
            match &o.status {
                CellStatus::Computed(_) => stats.computed += 1,
                CellStatus::Cached(_) => stats.cached += 1,
                CellStatus::Resumed(_) => stats.resumed += 1,
                CellStatus::Recovered { attempts, .. } => {
                    stats.recovered += 1;
                    stats.retries += (*attempts - 1) as usize;
                }
                CellStatus::Failed { attempts, .. } => {
                    stats.failed += 1;
                    stats.retries += (*attempts - 1) as usize;
                }
            }
        }
        Ok(SweepMatrix { request: self.request.clone(), outcomes, stats, recovery_note })
    }

    /// Supervises one cell end to end: journal prefill, chaos corruption
    /// strike, cache lookup (with quarantine on corruption), then the
    /// attempt loop.
    fn process(
        &self,
        i: usize,
        deadline: Option<u64>,
        prefilled: &HashMap<usize, CellResult>,
        journal: Option<&Journal>,
    ) -> CellOutcome {
        let cell = &self.cells[i];
        let mut quarantined = None;
        if let Some(result) = prefilled.get(&i) {
            return CellOutcome {
                cell: cell.spec.clone(),
                key: cell.key.clone(),
                status: CellStatus::Resumed(result.clone()),
                quarantined,
            };
        }
        if let Some(cache) = &self.cache {
            if self.chaos.corrupts(cell.hash) {
                corrupt_file(&cache.entry_path(&cell.key), &self.chaos, cell.hash);
            }
            match cache.load(&cell.key) {
                Ok(result) => {
                    return CellOutcome {
                        cell: cell.spec.clone(),
                        key: cell.key.clone(),
                        status: CellStatus::Cached(result),
                        quarantined,
                    };
                }
                Err(e) if e.is_miss() => {}
                Err(e) => {
                    cache.quarantine(&cell.key);
                    quarantined = Some(e);
                }
            }
        }
        let status = self.supervise(cell, i, deadline, journal);
        CellOutcome { cell: cell.spec.clone(), key: cell.key.clone(), status, quarantined }
    }

    /// The retry state machine: attempt → classify → (done | fail fast |
    /// backoff and retry) until success or the attempt budget runs out.
    fn supervise(
        &self,
        cell: &JobCell,
        index: usize,
        deadline: Option<u64>,
        journal: Option<&Journal>,
    ) -> CellStatus {
        let budget = deadline.unwrap_or(DEFAULT_STALL_BUDGET);
        let mut last_error: Option<TrialError> = None;
        let mut attempts: u32 = 0;
        while attempts < self.max_attempts {
            let attempt = attempts;
            let injected = self.chaos.injection_for(cell.hash, attempt);
            let caught = catch_unwind(AssertUnwindSafe(|| match injected {
                Some(ChaosEvent::Kill) => {
                    panic!("chaos: worker killed on `{}` attempt {attempt}", cell.key)
                }
                Some(ChaosEvent::Stall) => Err(TrialError::DeadlineExceeded { budget }),
                None => compute_cell(cell).map_err(|e| TrialError::from_covert(&e)),
            }));
            let verdict = caught.unwrap_or_else(|payload| {
                Err(TrialError::Panicked { message: panic_text(payload.as_ref()) })
            });
            attempts += 1;
            match verdict {
                Ok(result) => {
                    if let Some(cache) = &self.cache {
                        // Best effort: a failed store costs a future
                        // recompute, never correctness.
                        let _ = cache.store(&cell.key, &result);
                    }
                    if let Some(journal) = journal {
                        let _ = journal.append(index, &result);
                    }
                    return match last_error {
                        None => CellStatus::Computed(result),
                        Some(last_error) => CellStatus::Recovered { result, attempts, last_error },
                    };
                }
                Err(error) => {
                    if !error.is_transient() || attempts >= self.max_attempts {
                        return CellStatus::Failed { error, attempts };
                    }
                    let delay = self.backoff_delay_ms(cell.hash, attempts);
                    if delay > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(delay));
                    }
                    last_error = Some(error);
                }
            }
        }
        // max_attempts >= 1, so the loop always returns before this.
        unreachable!("supervise loop exits via return")
    }
}

/// Maps a family label to the channel family enum.
fn family_from_label(label: &str) -> Option<ChannelFamily> {
    ChannelFamily::ALL.into_iter().find(|f| f.label() == label)
}

/// Computes one cell: builds the family's channel with the cell's symbol
/// time, defense tuning, fault plan and topology, and transmits the
/// request's pseudo-random message. Pure: identical cells give bit-identical
/// results regardless of worker, attempt or cache history.
fn compute_cell(cell: &JobCell) -> Result<CellResult, CovertError> {
    let msg = Message::pseudo_random(cell.spec.bits as usize, cell.spec.seed);
    let tuning = DeviceTuning::from_defense(&cell.defense);
    let unsupported_faults = || CovertError::Config {
        reason: format!(
            "the {} family does not support fault injection (drop the fault axis for it)",
            cell.spec.family
        ),
    };
    let outcome = match cell.family {
        ChannelFamily::L1 => {
            let mut ch = L1Channel::new(cell.device.clone())
                .with_iterations(cell.spec.iterations)
                .with_tuning(tuning);
            if let Some(plan) = &cell.fault {
                ch = ch.with_faults(*plan);
            }
            ch.transmit(&msg)?
        }
        ChannelFamily::Sync => {
            // The sync channel's symbol time is its round structure; the
            // iters axis is accepted but does not re-pace it.
            let mut ch = SyncChannel::new(cell.device.clone()).with_tuning(tuning);
            if let Some(plan) = &cell.fault {
                ch = ch.with_faults(*plan);
            }
            ch.transmit(&msg)?
        }
        ChannelFamily::ParallelSfu => {
            if cell.fault.is_some() {
                return Err(unsupported_faults());
            }
            ParallelSfuChannel::new(cell.device.clone()).with_tuning(tuning).transmit(&msg)?
        }
        ChannelFamily::Atomic => {
            let mut ch = AtomicChannel::new(cell.device.clone(), AtomicScenario::OneAddress)
                .with_iterations(cell.spec.iterations)
                .with_tuning(tuning);
            if let Some(plan) = &cell.fault {
                ch = ch.with_faults(*plan);
            }
            ch.transmit(&msg)?
        }
        ChannelFamily::Nvlink => {
            let topology = cell.topology.clone().ok_or_else(|| CovertError::Config {
                reason: "the nvlink family needs a multi-GPU topology (set the topology field)"
                    .to_string(),
            })?;
            let mut ch = NvlinkChannel::new(topology)?
                .with_iterations(cell.spec.iterations)
                .with_tuning(tuning);
            if let Some(plan) = &cell.fault {
                ch = ch.with_faults(*plan);
            }
            ch.transmit(&msg)?
        }
    };
    Ok(CellResult::from_outcome(&outcome))
}

/// XORs one seeded byte of `path` in place (the chaos corruption strike).
/// Missing files are fine — a cold cache simply has nothing to rot.
fn corrupt_file(path: &std::path::Path, chaos: &ChaosPlan, cell_hash: u64) {
    let Ok(mut bytes) = std::fs::read(path) else { return };
    if bytes.is_empty() {
        return;
    }
    let (offset, mask) = chaos.corruption_site(cell_hash, bytes.len());
    bytes[offset] ^= mask;
    let _ = std::fs::write(path, bytes);
}

/// Stringifies a caught panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}
