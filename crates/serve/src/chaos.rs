//! Chaos harness: a seeded, serializable schedule of worker kills,
//! injected stalls and cache-file corruption.
//!
//! This mirrors the `gpgpu-sim` fault-plan idiom: a [`ChaosPlan`] is a
//! small value with a round-tripping textual grammar, and every decision it
//! makes is a pure function of `(plan seed, cell identity, attempt)` via a
//! splitmix64 mix — so a chaos run is exactly reproducible, shardable
//! across any worker count, and *provably convergent*: a cell suffers at
//! most `kills` kill events followed by at most `stalls` stall events, so
//! any attempt budget larger than `kills + stalls` reaches the clean
//! attempt. That structural bound is what lets the chaos test assert the
//! final matrix is bit-identical to a clean run rather than merely "usually
//! recovers".
//!
//! Grammar (the CLI's `--chaos` argument):
//!
//! ```text
//! seed=0x7,kills=2,stalls=1,corrupt=3
//! ```
//!
//! `kills`/`stalls` bound the per-cell event counts (each cell draws its
//! own count in `0..=bound`, seeded); `corrupt=k` corrupts the cache entry
//! of roughly every `k`-th cell (seeded selection, `0` disables); `none`
//! is the empty plan.

use std::fmt;

/// Per-decision salts so the kill, stall, corruption and site draws are
/// independent streams even for the same cell.
const SALT_KILL: u64 = 0x4B11_AA01_0000_0001;
const SALT_STALL: u64 = 0x57A1_1000_0000_0002;
const SALT_CORRUPT: u64 = 0xC0DE_0FF0_0000_0003;
const SALT_SITE: u64 = 0x0FF5_E701_0000_0004;
const SALT_BACKOFF: u64 = 0xBAC0_0FF0_0000_0005;

/// splitmix64 — the same finalizer the trial harness and fault injector
/// use for seed derivation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded jitter stream for the engine's retry backoff: a pure function of
/// `(cell identity, retry number)`, independent of every chaos stream.
pub(crate) fn mix_for_backoff(cell_hash: u64, retry: u32) -> u64 {
    mix(cell_hash ^ SALT_BACKOFF ^ u64::from(retry))
}

/// What the chaos schedule injects into one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// The worker dies mid-cell (an injected panic the supervisor catches).
    Kill,
    /// The worker wedges and is reaped at its deadline
    /// (surfaces as `TrialError::DeadlineExceeded`).
    Stall,
}

/// A seeded, serializable chaos schedule. The empty plan
/// ([`ChaosPlan::none`]) injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed every decision derives from.
    pub seed: u64,
    /// Upper bound on kill events per cell (each cell draws `0..=kills`).
    pub kills: u32,
    /// Upper bound on stall events per cell (each cell draws `0..=stalls`).
    pub stalls: u32,
    /// Corrupt the cache entry of every ~`corrupt`-th cell (0 = never).
    pub corrupt: u64,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan::none()
    }
}

impl ChaosPlan {
    /// The empty plan (spec string `none`): no kills, stalls or corruption.
    pub fn none() -> Self {
        ChaosPlan { seed: 0, kills: 0, stalls: 0, corrupt: 0 }
    }

    /// Whether this plan injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.kills == 0 && self.stalls == 0 && self.corrupt == 0
    }

    /// The smallest attempt budget guaranteed to converge every cell under
    /// this plan: worst-case kills, then worst-case stalls, then one clean
    /// attempt.
    pub fn attempts_to_converge(&self) -> u32 {
        self.kills + self.stalls + 1
    }

    /// How many kill events cell `cell_hash` suffers (seeded, `0..=kills`).
    pub fn kills_for(&self, cell_hash: u64) -> u32 {
        if self.kills == 0 {
            return 0;
        }
        (mix(self.seed ^ SALT_KILL ^ cell_hash) % u64::from(self.kills + 1)) as u32
    }

    /// How many stall events cell `cell_hash` suffers (seeded, `0..=stalls`).
    pub fn stalls_for(&self, cell_hash: u64) -> u32 {
        if self.stalls == 0 {
            return 0;
        }
        (mix(self.seed ^ SALT_STALL ^ cell_hash) % u64::from(self.stalls + 1)) as u32
    }

    /// The event (if any) this schedule injects into attempt `attempt`
    /// (0-based) of cell `cell_hash`: first the cell's kills, then its
    /// stalls, then clean attempts forever after.
    pub fn injection_for(&self, cell_hash: u64, attempt: u32) -> Option<ChaosEvent> {
        let kills = self.kills_for(cell_hash);
        if attempt < kills {
            return Some(ChaosEvent::Kill);
        }
        if attempt < kills + self.stalls_for(cell_hash) {
            return Some(ChaosEvent::Stall);
        }
        None
    }

    /// Whether this schedule corrupts cell `cell_hash`'s cache entry
    /// (before the cell is served from cache, modelling rot at rest).
    pub fn corrupts(&self, cell_hash: u64) -> bool {
        self.corrupt != 0 && mix(self.seed ^ SALT_CORRUPT ^ cell_hash).is_multiple_of(self.corrupt)
    }

    /// Seeded corruption site for a `len`-byte file: `(offset, xor mask)`
    /// with a guaranteed-nonzero mask, so the strike always changes a byte.
    pub fn corruption_site(&self, cell_hash: u64, len: usize) -> (usize, u8) {
        let r = mix(self.seed ^ SALT_SITE ^ cell_hash);
        let offset = if len == 0 { 0 } else { (r % len as u64) as usize };
        let mask = ((r >> 32) as u8) | 1;
        (offset, mask)
    }

    /// Parses the textual grammar: comma-separated
    /// `seed=<n>` / `kills=<n>` / `stalls=<n>` / `corrupt=<n>` keys (seed
    /// accepts `0x` hex), or the literal `none`. Omitted keys default to 0.
    ///
    /// # Errors
    ///
    /// A human-readable reason, for the CLI to wrap.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let trimmed = spec.trim();
        if trimmed == "none" {
            return Ok(ChaosPlan::none());
        }
        if trimmed.is_empty() {
            return Err("empty chaos spec (use `none` for no chaos)".to_string());
        }
        let mut out = ChaosPlan::none();
        let mut seen: Vec<&str> = Vec::new();
        for part in trimmed.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("expected key=value, got `{part}`"))?;
            let (key, value) = (key.trim(), value.trim());
            if seen.contains(&key) {
                return Err(format!("duplicate chaos key `{key}`"));
            }
            match key {
                "seed" => {
                    out.seed =
                        match value.strip_prefix("0x").or_else(|| value.strip_prefix("0X")) {
                            Some(hex) => u64::from_str_radix(hex, 16),
                            None => value.parse(),
                        }
                        .map_err(|_| format!("invalid chaos seed `{value}`"))?;
                }
                "kills" => {
                    out.kills =
                        value.parse().map_err(|_| format!("invalid kills bound `{value}`"))?;
                }
                "stalls" => {
                    out.stalls =
                        value.parse().map_err(|_| format!("invalid stalls bound `{value}`"))?;
                }
                "corrupt" => {
                    out.corrupt =
                        value.parse().map_err(|_| format!("invalid corrupt period `{value}`"))?;
                }
                other => return Err(format!("unknown chaos key `{other}`")),
            }
            seen.push(match key {
                "seed" => "seed",
                "kills" => "kills",
                "stalls" => "stalls",
                _ => "corrupt",
            });
        }
        Ok(out)
    }

    /// Renders the canonical spec string; `from_spec(to_spec(p)) == p`.
    pub fn to_spec(&self) -> String {
        if *self == ChaosPlan::none() {
            return "none".to_string();
        }
        format!(
            "seed={:#x},kills={},stalls={},corrupt={}",
            self.seed, self.kills, self.stalls, self.corrupt
        )
    }
}

impl fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_spec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        for spec in
            ["none", "seed=0x7,kills=2,stalls=1,corrupt=3", "seed=0x0,kills=1,stalls=0,corrupt=0"]
        {
            let p = ChaosPlan::from_spec(spec).unwrap();
            assert_eq!(ChaosPlan::from_spec(&p.to_spec()).unwrap(), p, "{spec}");
        }
        assert_eq!(ChaosPlan::from_spec("kills=2").unwrap().kills, 2);
        for bad in ["", "seed", "kills=x", "what=1", "kills=1,kills=2"] {
            assert!(ChaosPlan::from_spec(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn schedule_is_deterministic_and_converges() {
        let p = ChaosPlan { seed: 7, kills: 2, stalls: 1, corrupt: 2 };
        for cell in 0..64u64 {
            let hash = mix(cell);
            let kills = p.kills_for(hash);
            let stalls = p.stalls_for(hash);
            assert!(kills <= 2 && stalls <= 1);
            for attempt in 0..p.attempts_to_converge() {
                let e = p.injection_for(hash, attempt);
                assert_eq!(e, p.injection_for(hash, attempt), "pure function of inputs");
                if attempt >= kills + stalls {
                    assert_eq!(e, None, "attempt past the event budget is clean");
                }
            }
            assert_eq!(p.injection_for(hash, p.attempts_to_converge() - 1), None);
        }
    }

    #[test]
    fn some_cells_are_hit_and_some_are_spared() {
        let p = ChaosPlan { seed: 3, kills: 1, stalls: 0, corrupt: 2 };
        let hashes: Vec<u64> = (0..64u64).map(mix).collect();
        let killed = hashes.iter().filter(|&&h| p.kills_for(h) > 0).count();
        let corrupted = hashes.iter().filter(|&&h| p.corrupts(h)).count();
        assert!(killed > 0 && killed < 64, "kills split the population: {killed}");
        assert!(corrupted > 0 && corrupted < 64, "corruption splits the population: {corrupted}");
    }

    #[test]
    fn corruption_site_always_changes_a_byte() {
        let p = ChaosPlan { seed: 9, kills: 0, stalls: 0, corrupt: 1 };
        for cell in 0..32u64 {
            let (offset, mask) = p.corruption_site(mix(cell), 100);
            assert!(offset < 100);
            assert_ne!(mask, 0);
        }
    }
}
