//! # gpgpu-serve — resilient sweep service
//!
//! A supervised job engine over the [`gpgpu_covert::harness`] worker pool,
//! turning one [`SweepRequest`](gpgpu_spec::SweepRequest) — a grid of
//! (device × channel family × fault plan × defense × symbol time) cells —
//! into a typed [`SweepMatrix`], with the robustness layers a long
//! unattended characterization campaign needs:
//!
//! * [`engine`] — the [`SweepService`]: sharding, panic/stall/overrun
//!   supervision, seeded-exponential-backoff retries with a capped attempt
//!   budget, fail-fast on deterministic errors, and graceful per-cell
//!   degradation (a dead cell is a typed outcome, never an abort);
//! * [`cache`] — the crash-safe content-addressed [`ResultCache`]:
//!   atomic-rename entries, CRC-32 + key-echo verification, quarantine and
//!   recompute on corruption;
//! * [`journal`] — the append-only run [`Journal`] for hard-kill resume,
//!   trusting only the contiguous prefix of CRC-intact lines;
//! * [`chaos`] — the seeded [`ChaosPlan`] fault schedule (kills, stalls,
//!   cache rot) whose structural convergence bound lets tests assert a
//!   chaos-ridden sweep is *bit-identical* to a clean one.
//!
//! Everything rests on the workspace's determinism contract: a cell result
//! is a pure function of its canonical spec string, which is therefore also
//! its cache key.
//!
//! ```
//! use gpgpu_serve::SweepService;
//! use gpgpu_spec::SweepRequest;
//!
//! let request = SweepRequest::from_spec("device=kepler;family=l1+atomic;iters=8;bits=8")?;
//! let matrix = SweepService::new(request)?.run()?;
//! assert!(matrix.is_complete());
//! assert_eq!(matrix.outcomes.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cache;
pub mod chaos;
pub mod engine;
pub mod journal;

pub use cache::{fnv1a64, CacheError, CacheErrorKind, CellResult, ResultCache};
pub use chaos::{ChaosEvent, ChaosPlan};
pub use engine::{CellOutcome, CellStatus, ServeError, ServiceStats, SweepMatrix, SweepService};
pub use journal::{Journal, JournalError, JournalRecovery};
