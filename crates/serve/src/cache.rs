//! Crash-safe content-addressed result cache.
//!
//! Every result in this workspace is a pure function of its cell key — the
//! canonical spec string naming `(device, family, symbol time, message,
//! fault plan, defense, topology)` — so a sweep cell computed once never
//! needs computing again, on *any* future request whose grid overlaps.
//! This module stores one [`CellResult`] per key, addressed by the FNV-1a
//! hash of the key, with the crash-consistency discipline the rest of the
//! workspace's file formats use:
//!
//! * **atomic visibility** — entries are written to a temp file in the same
//!   directory and `rename`d into place, so a reader never observes a
//!   half-written entry, even across a `kill -9` mid-store;
//! * **end-to-end integrity** — each entry carries the [`crc32`] of its
//!   payload and echoes its full key, so a flipped byte anywhere (payload,
//!   checksum, key, header) is a typed [`CacheError`], never silently-wrong
//!   data, and a hash collision can never serve the wrong cell;
//! * **self-healing** — corrupt entries are [quarantined][ResultCache::quarantine]
//!   (moved aside for post-mortem, never re-read) and the cell recomputed.

use gpgpu_covert::channel::ChannelOutcome;
use gpgpu_covert::harness::crc32;
use std::fmt;
use std::path::{Path, PathBuf};

/// Magic first line of every cache entry; bump the version when the entry
/// format changes so stale caches read as typed errors, not garbage.
const ENTRY_HEADER: &str = "gpgpu-serve-cache v1";

/// FNV-1a 64-bit hash — the content address. Stable across platforms and
/// releases (it is a file-name contract, not an in-memory detail).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The memoized observable outcome of one sweep cell: everything a client
/// needs from a transmission, encoded *exactly* (bandwidth and BER as f64
/// bit patterns) so a cache hit is bit-identical to fresh computation.
///
/// Equality is bit-exact on the floating-point fields — two results are
/// equal iff their encodings are byte-identical.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Number of bits the trojan sent.
    pub sent: usize,
    /// The bits the spy decoded, in order.
    pub received: Vec<bool>,
    /// Device cycles consumed end to end.
    pub cycles: u64,
    /// Achieved bandwidth in Kbps (exact bit pattern preserved).
    pub bandwidth_kbps: f64,
    /// Bit error rate (exact bit pattern preserved).
    pub ber: f64,
}

impl PartialEq for CellResult {
    fn eq(&self, other: &Self) -> bool {
        self.sent == other.sent
            && self.received == other.received
            && self.cycles == other.cycles
            && self.bandwidth_kbps.to_bits() == other.bandwidth_kbps.to_bits()
            && self.ber.to_bits() == other.ber.to_bits()
    }
}

impl Eq for CellResult {}

impl CellResult {
    /// Extracts the cacheable fields of a channel outcome.
    pub fn from_outcome(o: &ChannelOutcome) -> Self {
        CellResult {
            sent: o.sent.len(),
            received: o.received.bits().to_vec(),
            cycles: o.cycles,
            bandwidth_kbps: o.bandwidth_kbps,
            ber: o.ber,
        }
    }

    /// Renders the single-line payload format:
    /// `cycles=<n>;bw=<f64 bits hex>;ber=<f64 bits hex>;sent=<n>;rx=<bits>`.
    /// [`CellResult::decode`] inverts it exactly.
    pub fn encode(&self) -> String {
        let rx: String = self.received.iter().map(|&b| if b { '1' } else { '0' }).collect();
        format!(
            "cycles={};bw={:#018x};ber={:#018x};sent={};rx={rx}",
            self.cycles,
            self.bandwidth_kbps.to_bits(),
            self.ber.to_bits(),
            self.sent,
        )
    }

    /// Parses [`CellResult::encode`]'s format; `None` for anything else.
    pub fn decode(line: &str) -> Option<Self> {
        let mut cycles = None;
        let mut bw = None;
        let mut ber = None;
        let mut sent = None;
        let mut rx = None;
        for (i, part) in line.split(';').enumerate() {
            let (key, value) = part.split_once('=')?;
            match (i, key) {
                (0, "cycles") => cycles = Some(value.parse().ok()?),
                (1, "bw") => bw = Some(parse_hex_u64(value)?),
                (2, "ber") => ber = Some(parse_hex_u64(value)?),
                (3, "sent") => sent = Some(value.parse().ok()?),
                (4, "rx") => {
                    let mut bits = Vec::with_capacity(value.len());
                    for c in value.chars() {
                        bits.push(match c {
                            '0' => false,
                            '1' => true,
                            _ => return None,
                        });
                    }
                    rx = Some(bits);
                }
                _ => return None,
            }
        }
        Some(CellResult {
            sent: sent?,
            received: rx?,
            cycles: cycles?,
            bandwidth_kbps: f64::from_bits(bw?),
            ber: f64::from_bits(ber?),
        })
    }
}

/// Parses `0x`-prefixed 64-bit hex.
fn parse_hex_u64(value: &str) -> Option<u64> {
    u64::from_str_radix(value.strip_prefix("0x")?, 16).ok()
}

/// Why a cache entry could not be served, tied to the file involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheError {
    /// The entry file.
    pub path: PathBuf,
    /// What went wrong.
    pub kind: CacheErrorKind,
}

/// Classification of a cache-entry failure. [`CacheErrorKind::Missing`] is
/// an ordinary miss; every other kind means the bytes on disk are not
/// trustworthy and the entry must be quarantined and recomputed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheErrorKind {
    /// No entry stored under this key (a plain cache miss).
    Missing,
    /// The entry's structure is wrong (bad header, missing field, or an
    /// undecodable payload) — truncation or corruption.
    Malformed {
        /// What was malformed.
        reason: String,
    },
    /// The payload's CRC-32 does not match the stored checksum: at least
    /// one byte of payload or checksum flipped at rest.
    ChecksumMismatch {
        /// The checksum the entry claims.
        stored: u32,
        /// The checksum the payload actually has.
        computed: u32,
    },
    /// The entry's echoed key is not the requested key — an FNV collision
    /// or a corrupted key line. Either way the payload belongs to some
    /// other cell and must not be served.
    KeyMismatch {
        /// The key found in the entry.
        found: String,
    },
    /// The underlying I/O failed (permissions, disk errors), stringified.
    Io {
        /// The I/O error text.
        error: String,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let path = self.path.display();
        match &self.kind {
            CacheErrorKind::Missing => write!(f, "cache miss: no entry at {path}"),
            CacheErrorKind::Malformed { reason } => {
                write!(f, "corrupt cache entry {path}: {reason}")
            }
            CacheErrorKind::ChecksumMismatch { stored, computed } => write!(
                f,
                "corrupt cache entry {path}: payload crc {computed:#010x} != stored {stored:#010x}"
            ),
            CacheErrorKind::KeyMismatch { found } => {
                write!(f, "cache entry {path} holds a different cell (`{found}`)")
            }
            CacheErrorKind::Io { error } => write!(f, "cache i/o error at {path}: {error}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl CacheError {
    /// Whether this is an ordinary miss (vs. untrustworthy bytes).
    pub fn is_miss(&self) -> bool {
        matches!(self.kind, CacheErrorKind::Missing)
    }
}

/// A directory of content-addressed [`CellResult`] entries, one file per
/// cell key, named `<fnv1a64(key) hex>.cell`.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// I/O failures creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry file a key is addressed to.
    pub fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.cell", fnv1a64(key.as_bytes())))
    }

    /// Loads the entry stored under `key`, verifying structure, checksum
    /// and key echo before trusting a single byte of payload.
    ///
    /// # Errors
    ///
    /// [`CacheErrorKind::Missing`] on a plain miss; any other
    /// [`CacheErrorKind`] means the entry is untrustworthy (quarantine it).
    pub fn load(&self, key: &str) -> Result<CellResult, CacheError> {
        let path = self.entry_path(key);
        let fail = |kind| Err(CacheError { path: path.clone(), kind });
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return fail(CacheErrorKind::Missing);
            }
            Err(e) => return fail(CacheErrorKind::Io { error: e.to_string() }),
        };
        let mut lines = text.lines();
        match lines.next() {
            Some(ENTRY_HEADER) => {}
            other => {
                return fail(CacheErrorKind::Malformed {
                    reason: format!("bad header {:?}", other.unwrap_or("<empty>")),
                });
            }
        }
        let mut field = |name: &str| -> Result<String, CacheError> {
            match lines.next().and_then(|l| l.split_once('=')) {
                Some((k, v)) if k == name => Ok(v.to_string()),
                _ => Err(CacheError {
                    path: path.clone(),
                    kind: CacheErrorKind::Malformed { reason: format!("missing `{name}` line") },
                }),
            }
        };
        let found_key = field("key")?;
        let crc_text = field("crc")?;
        let payload = field("payload")?;
        let stored = u32::from_str_radix(&crc_text, 16).map_err(|_| CacheError {
            path: path.clone(),
            kind: CacheErrorKind::Malformed { reason: format!("bad crc field `{crc_text}`") },
        })?;
        let computed = crc32(payload.as_bytes());
        if stored != computed {
            return fail(CacheErrorKind::ChecksumMismatch { stored, computed });
        }
        if found_key != key {
            return fail(CacheErrorKind::KeyMismatch { found: found_key });
        }
        match CellResult::decode(&payload) {
            Some(result) => Ok(result),
            None => fail(CacheErrorKind::Malformed { reason: "undecodable payload".to_string() }),
        }
    }

    /// Stores `result` under `key`: temp file in the cache directory, then
    /// an atomic rename, so concurrent readers and hard kills never see a
    /// partial entry.
    ///
    /// # Errors
    ///
    /// [`CacheErrorKind::Io`] on filesystem failures.
    pub fn store(&self, key: &str, result: &CellResult) -> Result<(), CacheError> {
        let path = self.entry_path(key);
        let io_err = |e: std::io::Error| CacheError {
            path: path.clone(),
            kind: CacheErrorKind::Io { error: e.to_string() },
        };
        let payload = result.encode();
        let entry = format!(
            "{ENTRY_HEADER}\nkey={key}\ncrc={:08x}\npayload={payload}\n",
            crc32(payload.as_bytes())
        );
        let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
        std::fs::write(&tmp, entry).map_err(io_err)?;
        std::fs::rename(&tmp, &path).map_err(io_err)
    }

    /// Moves the (presumed corrupt) entry for `key` aside to
    /// `<name>.cell.quarantined` so it is never read again but remains
    /// available for post-mortem. Returns the quarantine path, or `None`
    /// when there was nothing to move (already quarantined, or the
    /// filesystem refused — in which case it is removed outright).
    pub fn quarantine(&self, key: &str) -> Option<PathBuf> {
        let path = self.entry_path(key);
        let target = path.with_extension("cell.quarantined");
        match std::fs::rename(&path, &target) {
            Ok(()) => Some(target),
            Err(_) => {
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Number of valid-named entry files currently stored (diagnostics).
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "cell"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gpgpu-serve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> CellResult {
        CellResult {
            sent: 4,
            received: vec![true, false, true, true],
            cycles: 123_456,
            bandwidth_kbps: 74.25,
            ber: 0.25,
        }
    }

    #[test]
    fn encode_decode_is_exact() {
        let r = sample();
        assert_eq!(CellResult::decode(&r.encode()).unwrap(), r);
        // Odd bit patterns survive exactly.
        let odd = CellResult { ber: f64::from_bits(0x7ff8_0000_0000_0001), ..sample() };
        let back = CellResult::decode(&odd.encode()).unwrap();
        assert_eq!(back.ber.to_bits(), 0x7ff8_0000_0000_0001);
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = ResultCache::open(tmpdir("roundtrip")).unwrap();
        let key = "device=kepler;family=l1;iters=4";
        assert!(cache.load(key).unwrap_err().is_miss());
        cache.store(key, &sample()).unwrap();
        assert_eq!(cache.load(key).unwrap(), sample());
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn flipped_byte_is_a_checksum_error_and_quarantines() {
        let cache = ResultCache::open(tmpdir("flip")).unwrap();
        let key = "device=kepler;family=l1;iters=20";
        cache.store(key, &sample()).unwrap();
        let path = cache.entry_path(key);
        let mut bytes = std::fs::read(&path).unwrap();
        let off = bytes.len() - 3; // inside the payload line
        bytes[off] ^= 0x10;
        std::fs::write(&path, bytes).unwrap();
        let err = cache.load(key).unwrap_err();
        assert!(
            matches!(
                err.kind,
                CacheErrorKind::ChecksumMismatch { .. } | CacheErrorKind::Malformed { .. }
            ),
            "{err}"
        );
        let q = cache.quarantine(key).unwrap();
        assert!(q.exists());
        assert!(cache.load(key).unwrap_err().is_miss(), "quarantined entries are never re-read");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn wrong_key_in_the_addressed_file_is_typed() {
        let cache = ResultCache::open(tmpdir("keymismatch")).unwrap();
        let key = "device=kepler;family=sync;iters=1";
        cache.store(key, &sample()).unwrap();
        // Simulate a collision: another key's entry lands in this file.
        let other = "device=fermi;family=atomic;iters=9";
        let payload = sample().encode();
        std::fs::write(
            cache.entry_path(key),
            format!(
                "{ENTRY_HEADER}\nkey={other}\ncrc={:08x}\npayload={payload}\n",
                crc32(payload.as_bytes())
            ),
        )
        .unwrap();
        let err = cache.load(key).unwrap_err();
        assert!(matches!(err.kind, CacheErrorKind::KeyMismatch { .. }), "{err}");
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
